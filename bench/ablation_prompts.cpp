// Ablation: the §2.1 prompting strategies.
//
// The paper motivates three strategies — chain-of-thought, semantic
// variable renaming, and an explicit normalization request — qualitatively.
// This bench quantifies each: turning one off shifts the corresponding
// statistic (diversity, compile rate, normalization rate).
#include <iostream>
#include <optional>
#include <set>

#include "bench/bench_common.h"
#include "filter/checks.h"
#include "gen/state_gen.h"
#include "env/abr_domain.h"

namespace {

struct Rates {
  double compile = 0.0;
  double normalized = 0.0;
  double diversity = 0.0;  // unique sources per candidate
};

Rates measure(const nada::gen::LlmProfile& profile,
              const nada::gen::PromptStrategy& strategy, std::size_t n,
              std::uint64_t seed) {
  using namespace nada;
  gen::StateGenerator generator(profile, strategy, seed);
  std::set<std::string> unique;
  std::size_t compiled = 0;
  std::size_t normalized = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto cand = generator.generate();
    unique.insert(cand.source);
    std::optional<dsl::StateProgram> program;
    if (!filter::compilation_check(cand.source, env::abr_catalog(), &program).passed) continue;
    ++compiled;
    if (filter::normalization_check(*program, env::abr_catalog()).passed) ++normalized;
  }
  Rates r;
  r.compile = static_cast<double>(compiled) / static_cast<double>(n);
  r.normalized = static_cast<double>(normalized) / static_cast<double>(n);
  r.diversity = static_cast<double>(unique.size()) / static_cast<double>(n);
  return r;
}

}  // namespace

int main() {
  using namespace nada;
  const auto scale = util::ScaleConfig::from_env();
  bench::banner("Ablation — prompting strategies (§2.1)", scale);
  bench::Stopwatch timer;
  const std::size_t n = std::max<std::size_t>(scale.gen_count(3000), 1500);

  struct Variant {
    const char* name;
    gen::PromptStrategy strategy;
  };
  std::vector<Variant> variants;
  variants.push_back({"all strategies on (paper)", gen::PromptStrategy{}});
  {
    gen::PromptStrategy s;
    s.chain_of_thought = false;
    variants.push_back({"no chain-of-thought", s});
  }
  {
    gen::PromptStrategy s;
    s.semantic_names = false;
    variants.push_back({"no semantic renaming", s});
  }
  {
    gen::PromptStrategy s;
    s.request_normalization = false;
    variants.push_back({"no normalization request", s});
  }
  {
    gen::PromptStrategy s;
    s.chain_of_thought = false;
    s.semantic_names = false;
    s.request_normalization = false;
    variants.push_back({"all strategies off", s});
  }

  for (const auto& profile : {gen::gpt35_profile(), gen::gpt4_profile()}) {
    util::TextTable table("Prompt ablation — " + profile.name);
    table.set_header(
        {"Variant", "Compilable", "Well normalized", "Unique sources"});
    std::uint64_t seed = 13131;
    for (const auto& variant : variants) {
      const Rates r = measure(profile, variant.strategy, n, seed++);
      table.add_row({variant.name,
                     util::format_double(r.compile * 100, 1) + "%",
                     util::format_double(r.normalized * 100, 1) + "%",
                     util::format_double(r.diversity * 100, 1) + "%"});
    }
    table.print(std::cout);
    bench::save_csv("ablation_prompts_" +
                        (profile.name == "GPT-4" ? std::string("gpt4")
                                                 : std::string("gpt35")) +
                        ".csv",
                    table);
  }
  std::cout << "[done] " << util::format_double(timer.seconds(), 1)
            << " s\n";
  return 0;
}

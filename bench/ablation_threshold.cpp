// Ablation: the normalization-check threshold T.
//
// The paper fixes T = 100. This sweep shows the trade-off the choice
// encodes: a tiny T rejects well-normalized designs (false rejections of
// clean candidates), a huge T lets raw-unit features through (missed
// detections of planted unnormalized candidates).
#include <iostream>
#include <optional>

#include "bench/bench_common.h"
#include "filter/checks.h"
#include "gen/state_gen.h"
#include "env/abr_domain.h"

int main() {
  using namespace nada;
  const auto scale = util::ScaleConfig::from_env();
  bench::banner("Ablation — normalization threshold T sweep", scale);
  bench::Stopwatch timer;

  const std::size_t n = std::max<std::size_t>(scale.gen_count(3000), 1200);
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                31337);
  const auto batch = generator.generate_batch(n);

  // Pre-compile once; the sweep only re-runs the fuzz check.
  struct Compiled {
    dsl::StateProgram program;
    gen::InjectedFlaw flaw;
  };
  std::vector<Compiled> compiled;
  for (const auto& cand : batch) {
    std::optional<dsl::StateProgram> program;
    if (filter::compilation_check(cand.source, env::abr_catalog(), &program).passed) {
      compiled.push_back(Compiled{*std::move(program), cand.flaw});
    }
  }

  util::TextTable table("Threshold sweep (paper uses T = 100)");
  table.set_header({"T", "Pass rate", "Clean rejected (false rejects)",
                    "Raw-unit passed (missed)"});
  for (const double t : {1.0, 10.0, 50.0, 100.0, 500.0, 1e6}) {
    std::size_t passed = 0;
    std::size_t clean_total = 0, clean_rejected = 0;
    std::size_t raw_total = 0, raw_passed = 0;
    for (const auto& c : compiled) {
      const bool pass = filter::normalization_check(c.program, env::abr_catalog(), t).passed;
      passed += pass ? 1 : 0;
      if (c.flaw == gen::InjectedFlaw::kNone) {
        ++clean_total;
        if (!pass) ++clean_rejected;
      } else if (c.flaw == gen::InjectedFlaw::kUnnormalized) {
        ++raw_total;
        if (pass) ++raw_passed;
      }
    }
    auto rate = [](std::size_t num, std::size_t den) {
      return den == 0 ? std::string("n/a")
                      : util::format_double(
                            100.0 * static_cast<double>(num) /
                                static_cast<double>(den),
                            1) + "%";
    };
    table.add_row({util::format_double(t, 0),
                   rate(passed, compiled.size()),
                   rate(clean_rejected, clean_total),
                   rate(raw_passed, raw_total)});
  }
  table.print(std::cout);
  bench::save_csv("ablation_threshold.csv", table);
  std::cout << "[done] " << util::format_double(timer.seconds(), 1)
            << " s\n";
  return 0;
}

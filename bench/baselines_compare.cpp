// Supplementary bench (not a paper table): classic ABR baselines vs the
// trained original Pensieve design and the best NADA-generated state, per
// environment. Positions the paper's RL results against the hand-designed
// algorithms the ABR literature measures by (BBA, rate-based, RobustMPC).
#include <iostream>

#include "abr/policies.h"
#include "bench/bench_common.h"
#include "core/pipeline.h"

int main() {
  using namespace nada;
  const auto scale = util::ScaleConfig::from_env();
  bench::banner("Supplementary — classic baselines vs NADA designs", scale);
  bench::Stopwatch timer;
  util::ThreadPool pool;

  util::TextTable table("Mean per-chunk QoE on held-out traces");
  table.set_header({"Dataset", "fixed-0", "buffer-based", "rate-based",
                    "robust-mpc", "RL original", "RL best generated"});

  for (const auto env : trace::all_environments()) {
    const trace::Dataset dataset =
        trace::build_dataset(env, scale.traces, 42);
    const bool high_bw = env == trace::Environment::k4G ||
                         env == trace::Environment::k5G;
    const video::Video video = video::make_test_video(
        high_bw ? video::youtube_ladder() : video::pensieve_ladder(), 7);

    std::vector<std::string> row = {trace::environment_name(env)};
    for (auto& policy : abr::standard_baselines()) {
      row.push_back(util::format_double(
          abr::evaluate_policy(*policy, dataset.test, video,
                               env::Fidelity::kSimulation, 11),
          3));
    }

    core::PipelineConfig config = core::scaled_pipeline_config(env, scale);
    core::Pipeline pipeline(dataset, video, config,
                            7000 + static_cast<int>(env), &pool);
    row.push_back(
        util::format_double(pipeline.original_baseline().test_score, 3));
    gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                  33 + static_cast<int>(env));
    const auto result =
        pipeline.search_states(generator, config.baseline_arch);
    row.push_back(util::format_double(
        result.has_best() ? result.best_score : result.original_score, 3));
    table.add_row(std::move(row));
  }

  table.print(std::cout);
  bench::save_csv("baselines_compare.csv", table);
  std::cout << "[done] " << util::format_double(timer.seconds(), 1)
            << " s\n";
  return 0;
}

// Shared helpers for the experiment benches. Every table/figure binary
// prints the paper's reported values next to the measured ones and writes
// machine-readable CSVs under bench_results/.
#pragma once

#include <chrono>
#include <iostream>
#include <string>

#include "util/scale.h"
#include "util/table.h"

namespace nada::bench {

/// Prints the standard bench banner (name + scale factors in effect).
inline void banner(const std::string& name, const util::ScaleConfig& scale) {
  std::cout << "\n############################################################\n"
            << "# " << name << "\n"
            << "# " << scale.describe()
            << "  (override via NADA_SCALE_GEN / _EPOCHS / _SEEDS / _TRACES;"
            << " 1.0 = paper scale)\n"
            << "############################################################\n";
}

/// Where CSV artifacts land.
inline std::string results_path(const std::string& filename) {
  return "bench_results/" + filename;
}

inline void save_csv(const std::string& filename,
                     const util::TextTable& table) {
  const std::string path = results_path(filename);
  util::write_file(path, table.to_csv());
  std::cout << "[csv] wrote " << path << "\n";
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nada::bench

// Shared helpers for the experiment benches. Every table/figure binary
// prints the paper's reported values next to the measured ones and writes
// machine-readable CSVs under bench_results/.
#pragma once

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "obs/metrics.h"
#include "util/fs.h"
#include "util/scale.h"
#include "util/table.h"

namespace nada::bench {

/// Prints the standard bench banner (name + scale factors in effect).
inline void banner(const std::string& name, const util::ScaleConfig& scale) {
  std::cout << "\n############################################################\n"
            << "# " << name << "\n"
            << "# " << scale.describe()
            << "  (override via NADA_SCALE_GEN / _EPOCHS / _SEEDS / _TRACES;"
            << " 1.0 = paper scale)\n"
            << "############################################################\n";
}

/// Where CSV artifacts land.
inline std::string results_path(const std::string& filename) {
  return "bench_results/" + filename;
}

inline void save_csv(const std::string& filename,
                     const util::TextTable& table) {
  const std::string path = results_path(filename);
  util::write_file(path, table.to_csv());
  std::cout << "[csv] wrote " << path << "\n";
}

/// Opt-in bench profiling: when NADA_BENCH_METRICS is a non-empty path,
/// returns a registry for the bench to wire into its jobs (JobOptions /
/// ShardRunnerConfig metrics). Pure readout — a bench's measured numbers
/// and CSVs are unaffected; only the snapshot file appears.
inline obs::MetricsRegistry* bench_metrics() {
  const char* path = std::getenv("NADA_BENCH_METRICS");
  if (path == nullptr || *path == '\0') return nullptr;
  static obs::MetricsRegistry registry;
  return &registry;
}

/// Dumps the bench_metrics() snapshot to $NADA_BENCH_METRICS (suffixing
/// `tag` before the extension when given, so multi-phase benches can emit
/// one file per phase). No-op when the knob is unset.
inline void dump_bench_metrics(const std::string& tag = "") {
  obs::MetricsRegistry* registry = bench_metrics();
  if (registry == nullptr) return;
  std::string path = std::getenv("NADA_BENCH_METRICS");
  if (!tag.empty()) {
    const std::size_t dot = path.rfind('.');
    const std::size_t slash = path.rfind('/');
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash)) {
      path.insert(dot, "-" + tag);
    } else {
      path += "-" + tag;
    }
  }
  util::ensure_directories(util::parent_directory(path));
  util::write_file_atomic(path, registry->snapshot().dump() + "\n");
  std::cout << "[metrics] wrote " << path << "\n";
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nada::bench

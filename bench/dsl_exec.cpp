// DSL execution bench: state-program steps/sec, tree-walk interpreter vs
// the slot-resolved bytecode VM, over the programs the funnel actually
// runs — the pensieve baseline plus generator-sampled ABR and CC survivors.
//
// Training dominates the funnel's compute and every training step runs the
// candidate's state program once, so steps/sec here translates directly to
// probe throughput (see bench/probe_batch.cpp for the end-to-end number).
// Each timed pair is also a bit-identity check: any tree/VM divergence
// fails the bench, not just the speedup target.
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cc/cc_state.h"
#include "dsl/state_program.h"
#include "dsl/vm.h"
#include "env/abr_domain.h"
#include "filter/checks.h"
#include "gen/state_gen.h"
#include "util/rng.h"

namespace {

bool same_bits(double x, double y) {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::memcpy(&a, &x, sizeof(a));
  std::memcpy(&b, &y, sizeof(b));
  return a == b;
}

bool matrices_identical(const nada::dsl::StateMatrix& lhs,
                        const nada::dsl::StateMatrix& rhs) {
  if (lhs.rows.size() != rhs.rows.size()) return false;
  for (std::size_t r = 0; r < lhs.rows.size(); ++r) {
    if (lhs.rows[r].name != rhs.rows[r].name ||
        lhs.rows[r].is_vector != rhs.rows[r].is_vector ||
        lhs.rows[r].values.size() != rhs.rows[r].values.size()) {
      return false;
    }
    for (std::size_t i = 0; i < lhs.rows[r].values.size(); ++i) {
      if (!same_bits(lhs.rows[r].values[i], rhs.rows[r].values[i])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace nada;
  const auto scale = util::ScaleConfig::from_env();
  bench::banner("DSL execution — tree-walk vs bytecode VM steps/sec", scale);

  // Check-surviving programs only: these are the ones training replays
  // millions of times. (Flawed candidates die after one or a few runs and
  // are covered by tests/dsl_vm_test.cpp instead.)
  struct Sample {
    std::string label;
    dsl::StateProgram program;
    const dsl::BindingCatalog* catalog;
  };
  std::vector<Sample> samples;
  samples.push_back({"pensieve_state_source",
                     dsl::StateProgram::compile(dsl::pensieve_state_source(),
                                                &env::abr_catalog()),
                     &env::abr_catalog()});
  const auto sample_stream = [&](const gen::StateSpace& space,
                                 const dsl::BindingCatalog& catalog,
                                 const std::string& prefix,
                                 std::uint64_t seed, std::size_t want) {
    gen::StateGenerator generator(space, gen::gpt4_profile(),
                                  gen::PromptStrategy{}, seed);
    std::size_t taken = 0;
    while (taken < want) {
      for (const auto& candidate : generator.generate_batch(16)) {
        if (taken >= want) break;
        std::optional<dsl::StateProgram> program;
        if (!filter::compilation_check(candidate.source, catalog, &program)
                 .passed) {
          continue;
        }
        ++taken;
        samples.push_back({prefix + std::to_string(taken),
                           std::move(*program), &catalog});
      }
    }
  };
  sample_stream(gen::abr_state_space(), env::abr_catalog(), "abr_gen_",
                0x5eedULL, 4);
  sample_stream(gen::cc_state_space(), cc::cc_catalog(), "cc_gen_",
                0xccc5ULL, 4);

  // Cycled observation set per domain: one canned + fuzzed, so timings
  // cover the branchy parts of real inputs rather than one hot row.
  const auto make_obs = [](const dsl::BindingCatalog& catalog) {
    std::vector<dsl::Bindings> obs;
    obs.push_back(catalog.canned());
    util::Rng rng(0xb0b5ULL);
    for (int i = 0; i < 15; ++i) obs.push_back(catalog.fuzz(rng));
    return obs;
  };
  const std::vector<dsl::Bindings> abr_obs = make_obs(env::abr_catalog());
  const std::vector<dsl::Bindings> cc_obs = make_obs(cc::cc_catalog());

  const std::size_t steps = scale.epoch_count(200000, 4000);
  util::TextTable table("State-program execution (steps/sec, higher is "
                        "better; " +
                        std::to_string(steps) + " steps per engine)");
  table.set_header(
      {"program", "tree steps/s", "vm steps/s", "speedup", "bit-identical"});

  bool all_identical = true;
  double pensieve_speedup = 0.0;
  for (const Sample& sample : samples) {
    const auto& obs =
        sample.catalog == &env::abr_catalog() ? abr_obs : cc_obs;

    // Identity first (over every observation), then the timed loops.
    dsl::Vm vm;
    bool identical = true;
    for (const auto& o : obs) {
      const dsl::StateMatrix tree = dsl::run_program(sample.program.program(), o);
      if (!matrices_identical(tree, vm.run(sample.program.code(), o))) {
        identical = false;
      }
    }

    bench::Stopwatch tree_timer;
    double tree_sink = 0.0;
    for (std::size_t i = 0; i < steps; ++i) {
      const dsl::StateMatrix matrix =
          dsl::run_program(sample.program.program(), obs[i % obs.size()]);
      tree_sink += matrix.rows[0].values[0];
    }
    const double tree_s = tree_timer.seconds();

    bench::Stopwatch vm_timer;
    double vm_sink = 0.0;
    for (std::size_t i = 0; i < steps; ++i) {
      const dsl::StateMatrix& matrix =
          vm.run(sample.program.code(), obs[i % obs.size()]);
      vm_sink += matrix.rows[0].values[0];
    }
    const double vm_s = vm_timer.seconds();
    if (!same_bits(tree_sink, vm_sink)) identical = false;

    const double tree_rate = static_cast<double>(steps) / std::max(tree_s, 1e-9);
    const double vm_rate = static_cast<double>(steps) / std::max(vm_s, 1e-9);
    const double speedup = vm_rate / tree_rate;
    if (sample.label == "pensieve_state_source") pensieve_speedup = speedup;
    if (!identical) {
      all_identical = false;
      std::cout << "ERROR: tree/VM outputs diverged for " << sample.label
                << "\n";
    }
    table.add_row_mixed({sample.label},
                        {tree_rate, vm_rate, speedup, identical ? 1.0 : 0.0},
                        2);
  }

  table.print(std::cout);
  bench::save_csv("dsl_exec.csv", table);
  std::cout << "pensieve speedup: " << pensieve_speedup
            << "x (target: >= 3x)\n";
  if (!all_identical) return 1;
  return 0;
}

// Figure 4: test performance of the best generated neural network
// architectures versus the original, per environment, in simulation.
//
// §3.3 restricts the architecture study to GPT-3.5 (budget constraints);
// the paper reports 760/3000 architectures passing the compilation check,
// pronounced improvements on Starlink/4G/5G, and no significant gain on
// FCC. This bench runs the architecture search with the original Pensieve
// state fixed and writes the Figure-4 curves.
#include <iostream>

#include "bench/bench_common.h"
#include "core/pipeline.h"

int main() {
  using namespace nada;
  const auto scale = util::ScaleConfig::from_env();
  bench::banner("Figure 4 — Best generated architectures vs original", scale);
  bench::Stopwatch timer;
  util::ThreadPool pool;

  util::TextTable summary("Figure 4 summary (final scores)");
  summary.set_header({"Dataset", "Original", "Best Generated", "Impr.",
                      "Compilable", "Best arch"});
  util::TextTable fig4("Figure 4 curves");
  fig4.set_header({"dataset", "epoch", "original", "best"});

  const double model_scale = util::env_double("NADA_SCALE_MODEL", 0.25);
  const auto state =
      dsl::StateProgram::compile(dsl::pensieve_state_source());

  for (const auto env : trace::all_environments()) {
    const char* env_name = trace::environment_name(env);
    const trace::Dataset dataset =
        trace::build_dataset(env, scale.traces, 42);
    const bool high_bw = env == trace::Environment::k4G ||
                         env == trace::Environment::k5G;
    const video::Video video = video::make_test_video(
        high_bw ? video::youtube_ladder() : video::pensieve_ladder(), 7);

    core::PipelineConfig config = core::scaled_pipeline_config(env, scale);
    core::Pipeline pipeline(dataset, video, config,
                            3000 + static_cast<int>(env), &pool);
    gen::ArchGenerator generator(gen::gpt35_profile(), gen::PromptStrategy{},
                                 55 + static_cast<int>(env), model_scale);
    const core::PipelineResult result =
        pipeline.search_archs(generator, state);

    const double original_score = result.original_score;
    const double best =
        result.has_best() ? result.best_score : original_score;
    const double impr =
        original_score != 0.0
            ? (best - original_score) / std::abs(original_score)
            : 0.0;
    const std::string arch_desc =
        result.has_best() && result.outcomes[result.best_index].arch
            ? result.outcomes[result.best_index].arch->describe()
            : "-";
    summary.add_row(
        {env_name, util::format_double(original_score, 3),
         util::format_double(best, 3), util::format_percent(impr, 1),
         std::to_string(result.n_compiled) + "/" +
             std::to_string(result.n_total),
         arch_desc});

    if (result.has_best()) {
      const auto& best_outcome = result.outcomes[result.best_index];
      const std::size_t points = std::min(
          best_outcome.median_curve.size(), result.original.median_curve.size());
      for (std::size_t i = 0; i < points; ++i) {
        fig4.add_row({env_name,
                      util::format_double(best_outcome.curve_epochs[i], 0),
                      util::format_double(result.original.median_curve[i], 4),
                      util::format_double(best_outcome.median_curve[i], 4)});
      }
    }
  }

  summary.print(std::cout);
  std::cout << "Paper reference: gains pronounced on Starlink/4G/5G, FCC "
               "not statistically significant;\narchitecture gains smaller "
               "than state gains overall (§3.3).\n";
  bench::save_csv("fig4_arch_summary.csv", summary);
  bench::save_csv("fig4_arch_curves.csv", fig4);
  std::cout << "[done] " << util::format_double(timer.seconds(), 1)
            << " s\n";
  return 0;
}

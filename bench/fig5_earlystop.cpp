// Figure 5: comparison of early-stopping classifiers.
//
// Builds a labeled design corpus by actually training generated state
// designs (recording each design's early reward window and final
// performance), then runs the paper's five-fold protocol (train on 20%,
// validate on 80%) for all five methods and reports false/true negative
// rates. Includes the label-smoothing ablation and an early-window (K)
// sweep, the design choices DESIGN.md calls out.
#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "core/pipeline.h"
#include "filter/earlystop.h"
#include "env/abr_domain.h"

namespace {

using namespace nada;

/// Trains one design and returns its (normalized) record.
filter::DesignRecord train_record(const trace::Dataset& dataset,
                                  const video::Video& video,
                                  const dsl::StateProgram& program,
                                  const std::string& id,
                                  const std::string& source,
                                  const nn::ArchSpec& arch,
                                  std::size_t total_epochs,
                                  double normalizer, std::uint64_t seed) {
  rl::TrainConfig config;
  config.epochs = total_epochs;
  config.evaluate_checkpoints = false;  // ranking uses training rewards
  rl::Trainer trainer(dataset, video, config, seed);
  const rl::TrainResult result = trainer.train(program, arch);
  filter::DesignRecord record;
  record.id = id;
  record.source_text = source;
  if (result.failed) {
    record.final_score = -10.0;
    record.early_rewards.assign(std::max<std::size_t>(total_epochs / 4, 4),
                                -10.0);
    return record;
  }
  // Store the full training curve; callers truncate to the early window
  // they study (the paper's K = first quarter of the budget).
  const double denom = std::max(std::abs(normalizer), 0.1);
  record.early_rewards = result.train_rewards;
  for (double& r : record.early_rewards) r /= denom;
  record.final_score = result.final_score / denom;
  return record;
}

/// Copy of the corpus with curves truncated to `frac` of the budget.
std::vector<filter::DesignRecord> windowed(
    const std::vector<filter::DesignRecord>& corpus, double frac) {
  std::vector<filter::DesignRecord> out = corpus;
  for (auto& r : out) {
    const auto keep = static_cast<std::size_t>(std::max(
        4.0, frac * static_cast<double>(r.early_rewards.size())));
    if (r.early_rewards.size() > keep) r.early_rewards.resize(keep);
  }
  return out;
}

}  // namespace

int main() {
  const auto scale = util::ScaleConfig::from_env();
  bench::banner("Figure 5 — Early-stopping classifier comparison", scale);
  bench::Stopwatch timer;
  util::ThreadPool pool;

  // Corpus: generated designs trained on the two cheapest environments.
  const std::size_t corpus_target =
      std::max<std::size_t>(scale.gen_count(2000), 150);
  const std::size_t total_epochs = scale.epoch_count(10000, 120);

  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  const double model_scale = util::env_double("NADA_SCALE_MODEL", 0.25);
  auto sw = [model_scale](std::size_t w) {
    return std::max<std::size_t>(
        static_cast<std::size_t>(std::lround(w * model_scale)), 8);
  };
  arch.conv_filters = sw(arch.conv_filters);
  arch.rnn_hidden = sw(arch.rnn_hidden);
  arch.scalar_hidden = sw(arch.scalar_hidden);
  arch.merge_hidden = sw(arch.merge_hidden);

  const trace::Environment envs[] = {trace::Environment::kFcc,
                                     trace::Environment::kStarlink};
  std::vector<filter::DesignRecord> corpus;
  for (const auto env : envs) {
    const trace::Dataset dataset =
        trace::build_dataset(env, scale.traces, 42);
    const video::Video video =
        video::make_test_video(video::pensieve_ladder(), 7);

    // Environment normalizer: the original design's training plateau.
    const auto original =
        dsl::StateProgram::compile(dsl::pensieve_state_source());
    const auto base_record =
        train_record(dataset, video, original, "original", "", arch,
                     total_epochs, 1.0, 99);
    const double normalizer = std::max(std::abs(base_record.final_score), 0.1);

    // Generate candidates from both profiles, keep the pre-check survivors.
    gen::StateGenerator g35(gen::gpt35_profile(), gen::PromptStrategy{},
                            400 + static_cast<int>(env));
    gen::StateGenerator g4(gen::gpt4_profile(), gen::PromptStrategy{},
                           500 + static_cast<int>(env));
    std::vector<std::pair<std::string, std::string>> survivors;  // id, src
    auto harvest = [&survivors](gen::StateGenerator& g, std::size_t want) {
      std::size_t tries = 0;
      while (survivors.size() < want && tries < want * 8) {
        ++tries;
        const auto cand = g.generate();
        std::optional<dsl::StateProgram> program;
        if (!filter::compilation_check(cand.source, env::abr_catalog(), &program).passed) {
          continue;
        }
        if (!filter::normalization_check(*program, env::abr_catalog()).passed) continue;
        survivors.emplace_back(cand.id, cand.source);
      }
    };
    const std::size_t per_env = corpus_target / 2;
    harvest(g35, per_env / 2);
    harvest(g4, per_env);

    std::vector<filter::DesignRecord> records(survivors.size());
    pool.parallel_for(survivors.size(), [&](std::size_t i) {
      const auto program = dsl::StateProgram::compile(survivors[i].second);
      records[i] = train_record(dataset, video, program, survivors[i].first,
                                survivors[i].second, arch, total_epochs,
                                normalizer, 1000 + i);
    });
    for (auto& r : records) corpus.push_back(std::move(r));
    std::cout << "[" << trace::environment_name(env) << "] corpus +"
              << survivors.size() << " designs (total " << corpus.size()
              << ")\n";
  }

  // Five-fold protocol for the five methods.
  util::TextTable table("Figure 5 (paper: Reward Only = 12% FNR / 87% TNR,"
                        " best trade-off)");
  table.set_header({"Method", "False Negative Rate", "True Negative Rate"});
  filter::EarlyStopConfig config;
  config.top_fraction = 0.05;  // scaled corpus: 1% of ~200 is too few
  config.smooth_fraction = 0.20;
  config.train.epochs = 40;
  const auto quarter_corpus = windowed(corpus, 0.25);  // the paper's K
  for (const auto method : filter::all_early_stop_methods()) {
    const auto folds =
        filter::cross_validate(method, config, quarter_corpus, 5, 777);
    double fnr = 0.0;
    double tnr = 0.0;
    for (const auto& f : folds) {
      fnr += f.false_negative_rate;
      tnr += f.true_negative_rate;
    }
    fnr /= static_cast<double>(folds.size());
    tnr /= static_cast<double>(folds.size());
    table.add_row({filter::early_stop_method_name(method),
                   util::format_double(fnr, 3),
                   util::format_double(tnr, 3)});
  }
  table.print(std::cout);
  bench::save_csv("fig5_earlystop.csv", table);

  // Ablation 1: label smoothing on vs off (Reward Only).
  util::TextTable ablation("Ablation — label smoothing (Reward Only)");
  ablation.set_header({"Variant", "FNR", "TNR"});
  for (const bool smoothing : {true, false}) {
    filter::EarlyStopConfig c = config;
    c.use_label_smoothing = smoothing;
    const auto folds = filter::cross_validate(
        filter::EarlyStopMethod::kRewardOnly, c, quarter_corpus, 5, 778);
    double fnr = 0.0, tnr = 0.0;
    for (const auto& f : folds) {
      fnr += f.false_negative_rate;
      tnr += f.true_negative_rate;
    }
    ablation.add_row({smoothing ? "top-20% smoothing (paper)" : "raw top labels",
                      util::format_double(fnr / folds.size(), 3),
                      util::format_double(tnr / folds.size(), 3)});
  }
  ablation.print(std::cout);
  bench::save_csv("fig5_ablation_smoothing.csv", ablation);

  // Ablation 2: early-window length K.
  util::TextTable window("Ablation — early-window length (Reward Only)");
  window.set_header({"Window (fraction of budget)", "FNR", "TNR"});
  for (const double frac : {0.125, 0.25, 0.5}) {
    const auto truncated = windowed(corpus, frac);
    const auto folds = filter::cross_validate(
        filter::EarlyStopMethod::kRewardOnly, config, truncated, 5, 779);
    double fnr = 0.0, tnr = 0.0;
    for (const auto& f : folds) {
      fnr += f.false_negative_rate;
      tnr += f.true_negative_rate;
    }
    window.add_row({util::format_double(frac, 3),
                    util::format_double(fnr / folds.size(), 3),
                    util::format_double(tnr / folds.size(), 3)});
  }
  window.print(std::cout);
  bench::save_csv("fig5_ablation_window.csv", window);

  std::cout << "[done] " << util::format_double(timer.seconds(), 1)
            << " s\n";
  return 0;
}

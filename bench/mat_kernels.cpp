// Kernel micro-bench: GFLOP/s of the batched nn kernels (matmul,
// matmul_nt, add_matmul_tn) per flavor at probe-sized shapes, plus the
// bit-identity smoke check (avx2 must reproduce scalar results exactly;
// fma is pinned-divergent and only checked for closeness).
//
// The shapes mirror the probe hot path: n = episode length (batch rows),
// inner = layer input width, m = layer output width.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "nn/mat.h"
#include "nn/mat_kernels.h"
#include "util/rng.h"

namespace {

nada::nn::Mat random_mat(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  nada::util::Rng rng(seed);
  nada::nn::Mat m(rows, cols);
  for (double& v : m.data()) v = rng.uniform(-1.0, 1.0);
  return m;
}

bool same_bits(const nada::nn::Mat& a, const nada::nn::Mat& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace nada;
  const auto scale = util::ScaleConfig::from_env();
  bench::banner("NN kernel flavors — GFLOP/s per kernel and shape", scale);

  std::vector<nn::KernelFlavor> flavors = {nn::KernelFlavor::kScalar};
  if (nn::built_with_avx2_kernels() && nn::cpu_supports_avx2()) {
    flavors.push_back(nn::KernelFlavor::kAvx2);
  }
  if (nn::built_with_fma_kernels() && nn::cpu_supports_avx2() &&
      nn::cpu_supports_fma()) {
    flavors.push_back(nn::KernelFlavor::kFma);
  }
  std::cout << "flavors runnable here:";
  for (const nn::KernelFlavor f : flavors) {
    std::cout << " " << nn::kernel_flavor_name(f);
  }
  std::cout << "\n";

  struct Shape {
    std::size_t n, inner, m;
  };
  // Probe-sized shapes: episode-length batches against the pensieve-scale
  // layer widths, plus one deliberately odd shape to time the tail paths.
  const std::vector<Shape> shapes = {
      {48, 33, 32}, {48, 96, 32}, {48, 32, 8}, {200, 128, 64}, {37, 33, 17}};

  const nn::KernelFlavor entry_flavor = nn::kernel_flavor();
  util::TextTable table("Batched kernel throughput (GFLOP/s)");
  table.set_header({"kernel shape (n x inner x m)", "flavor", "matmul",
                    "matmul_nt", "add_matmul_tn", "vs scalar"});

  bool contract_ok = true;
  for (const Shape& s : shapes) {
    const nn::Mat a = random_mat(s.n, s.inner, 11 * s.n + s.m);
    const nn::Mat b = random_mat(s.inner, s.m, 13 * s.n + s.inner);
    const nn::Mat bt = random_mat(s.m, s.inner, 17 * s.m + s.inner);
    const nn::Mat g = random_mat(s.n, s.m, 19 * s.n + 23 * s.m);
    const double flops = 2.0 * static_cast<double>(s.n) *
                         static_cast<double>(s.inner) *
                         static_cast<double>(s.m);
    // Enough repetitions that each timed section runs ~tens of ms.
    const std::size_t reps = std::max<std::size_t>(
        1, static_cast<std::size_t>(4e7 / std::max(flops, 1.0)));

    nn::Mat matmul_ref(1, 1), matmul_nt_ref(1, 1), tn_ref(1, 1);
    for (const nn::KernelFlavor f : flavors) {
      nn::set_kernel_flavor(f);

      bench::Stopwatch mm_timer;
      nn::Mat c_mm(1, 1);
      for (std::size_t r = 0; r < reps; ++r) c_mm = nn::matmul(a, b);
      const double mm_gflops = flops * reps / mm_timer.seconds() / 1e9;

      bench::Stopwatch nt_timer;
      nn::Mat c_nt(1, 1);
      for (std::size_t r = 0; r < reps; ++r) c_nt = nn::matmul_nt(a, bt);
      const double nt_gflops = flops * reps / nt_timer.seconds() / 1e9;

      bench::Stopwatch tn_timer;
      nn::Mat c_tn = random_mat(s.inner, s.m, 29);
      for (std::size_t r = 0; r < reps; ++r) nn::add_matmul_tn(c_tn, a, g);
      const double tn_gflops = flops * reps / tn_timer.seconds() / 1e9;

      std::string comparison = "(reference)";
      if (f == nn::KernelFlavor::kScalar) {
        matmul_ref = c_mm;
        matmul_nt_ref = c_nt;
        tn_ref = c_tn;
      } else if (f == nn::KernelFlavor::kAvx2) {
        const bool identical = same_bits(c_mm, matmul_ref) &&
                               same_bits(c_nt, matmul_nt_ref) &&
                               same_bits(c_tn, tn_ref);
        comparison = identical ? "bit-identical" : "DIVERGED";
        if (!identical) {
          contract_ok = false;
          std::cout << "ERROR: avx2 diverged from scalar at " << s.n << "x"
                    << s.inner << "x" << s.m << "\n";
        }
      } else {
        comparison = "divergent (pinned, kernel=fma)";
      }

      table.add_row({std::to_string(s.n) + "x" + std::to_string(s.inner) +
                         "x" + std::to_string(s.m),
                     nn::kernel_flavor_name(f),
                     util::format_double(mm_gflops, 2),
                     util::format_double(nt_gflops, 2),
                     util::format_double(tn_gflops, 2), comparison});
    }
  }
  nn::set_kernel_flavor(entry_flavor);

  std::cout << table.to_string() << "\n";
  bench::save_csv("mat_kernels.csv", table);
  if (!contract_ok) {
    std::cout << "FAILED: avx2/scalar bit-identity violated\n";
    return 1;
  }
  return 0;
}

// Microbenchmarks (google-benchmark) for the substrates: NadaScript
// evaluation, network forward/backward, simulator stepping, trace
// generation, and the pre-checks. These quantify the per-unit costs the
// experiment budgets are built on.
#include <benchmark/benchmark.h>

#include "dsl/state_program.h"
#include "env/abr_env.h"
#include "filter/checks.h"
#include "gen/state_gen.h"
#include "nn/arch.h"
#include "rl/agent.h"
#include "trace/generator.h"
#include "video/video.h"
#include "env/abr_domain.h"

namespace {

using namespace nada;

void BM_DslCompile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dsl::StateProgram::compile(dsl::pensieve_state_source()));
  }
}
BENCHMARK(BM_DslCompile);

void BM_DslRunPensieveState(benchmark::State& state) {
  const auto program = dsl::StateProgram::compile(dsl::pensieve_state_source());
  const auto obs = env::bindings_from_observation(env::canned_observation());
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.run(obs));
  }
}
BENCHMARK(BM_DslRunPensieveState);

void BM_DslRunAdvancedState(benchmark::State& state) {
  const auto program = dsl::StateProgram::compile(
      "emit \"tput\" = smooth(throughput_mbps, 3) / 8.0;\n"
      "emit \"pred\" = linreg_predict(throughput_mbps) / 8.0;\n"
      "emit \"buf\" = savgol(buffer_size_s_history) / 60.0;\n"
      "emit \"bufd\" = diff(buffer_size_s_history) / 10.0;\n");
  const auto obs = env::bindings_from_observation(env::canned_observation());
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.run(obs));
  }
}
BENCHMARK(BM_DslRunAdvancedState);

void BM_NetForward(benchmark::State& state) {
  nn::ArchSpec spec = nn::ArchSpec::pensieve();
  const auto width = static_cast<std::size_t>(state.range(0));
  spec.conv_filters = spec.scalar_hidden = spec.merge_hidden = width;
  util::Rng rng(1);
  nn::StateSignature sig;
  sig.row_lengths = {1, 1, 8, 8, 6, 1};
  nn::ActorCriticNet net(spec, sig, 6, rng);
  const std::vector<nn::Vec> rows = {
      {0.3}, {0.9}, {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
      {0.2, 0.2, 0.3, 0.1, 0.4, 0.2, 0.3, 0.2},
      {0.1, 0.2, 0.4, 0.7, 1.1, 1.7}, {0.5}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(rows));
  }
}
BENCHMARK(BM_NetForward)->Arg(32)->Arg(128);

void BM_NetForwardBackward(benchmark::State& state) {
  nn::ArchSpec spec = nn::ArchSpec::pensieve();
  const auto width = static_cast<std::size_t>(state.range(0));
  spec.conv_filters = spec.scalar_hidden = spec.merge_hidden = width;
  util::Rng rng(1);
  nn::StateSignature sig;
  sig.row_lengths = {1, 1, 8, 8, 6, 1};
  nn::ActorCriticNet net(spec, sig, 6, rng);
  const std::vector<nn::Vec> rows = {
      {0.3}, {0.9}, {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
      {0.2, 0.2, 0.3, 0.1, 0.4, 0.2, 0.3, 0.2},
      {0.1, 0.2, 0.4, 0.7, 1.1, 1.7}, {0.5}};
  const nn::Vec dlogits = {0.1, -0.2, 0.3, 0.0, -0.1, -0.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(rows));
    net.backward(dlogits, 0.5);
  }
}
BENCHMARK(BM_NetForwardBackward)->Arg(32)->Arg(128);

void BM_SimulatorEpisode(benchmark::State& state) {
  util::Rng rng(3);
  const auto tr = trace::generate_trace(trace::Environment::k4G, 400.0, rng);
  const auto video = video::make_test_video(video::youtube_ladder(), 5);
  for (auto _ : state) {
    env::AbrEnv env(tr, video, env::Fidelity::kSimulation, rng);
    env.reset();
    double total = 0.0;
    std::size_t level = 0;
    while (!env.done()) {
      const auto step = env.step(level);
      total += step.reward;
      level = (level + 1) % 6;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_SimulatorEpisode);

void BM_EmulationEpisode(benchmark::State& state) {
  util::Rng rng(4);
  const auto tr = trace::generate_trace(trace::Environment::k4G, 400.0, rng);
  const auto video = video::make_test_video(video::youtube_ladder(), 5);
  for (auto _ : state) {
    env::AbrEnv env(tr, video, env::Fidelity::kEmulation, rng);
    env.reset();
    double total = 0.0;
    while (!env.done()) total += env.step(2).reward;
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_EmulationEpisode);

void BM_TraceGeneration(benchmark::State& state) {
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::generate_trace(trace::Environment::kStarlink, 300.0, rng));
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_CandidateGeneration(benchmark::State& state) {
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.generate());
  }
}
BENCHMARK(BM_CandidateGeneration);

void BM_CompilationCheck(benchmark::State& state) {
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                7);
  const auto batch = generator.generate_batch(256);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        filter::compilation_check(batch[i % batch.size()].source, env::abr_catalog()));
    ++i;
  }
}
BENCHMARK(BM_CompilationCheck);

void BM_NormalizationCheck(benchmark::State& state) {
  const auto program =
      dsl::StateProgram::compile(dsl::pensieve_state_source());
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter::normalization_check(program, env::abr_catalog()));
  }
}
BENCHMARK(BM_NormalizationCheck);

}  // namespace

BENCHMARK_MAIN();

// Probe-throughput bench: candidates/sec for the early-probe stage, serial
// Trainer-per-candidate vs the lockstep BatchProbeTrainer, at several
// cohort sizes.
//
// The funnel spends nearly all its compute here (thousands of short runs
// that only feed the early-stop ranker), so this is the number that decides
// how many candidates a machine can screen per hour. The bench also
// verifies the headline guarantee on every row: the batched reward curves
// must be bit-identical to the serial ones.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "gen/state_gen.h"
#include "nn/mat_kernels.h"
#include "rl/batch_probe.h"
#include "rl/trainer.h"
#include "trace/generator.h"
#include "util/thread_pool.h"
#include "video/video.h"

int main() {
  using namespace nada;
  const auto scale = util::ScaleConfig::from_env();
  bench::banner("Batched probe training — candidates/sec vs serial", scale);

  const trace::Environment env = trace::Environment::kFcc;
  const trace::Dataset dataset = trace::build_dataset(env, scale.traces, 7);
  const video::Video video =
      video::make_test_video(video::pensieve_ladder(), 11);
  util::ThreadPool pool;

  rl::TrainConfig probe_config;
  probe_config.epochs = scale.epoch_count(60, 12);
  probe_config.evaluate_checkpoints = false;

  // A pool of distinct state programs cycled across the cohort, as the
  // funnel's pre-check survivors would be.
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                2024);
  std::vector<dsl::StateProgram> programs;
  programs.push_back(
      dsl::StateProgram::compile(dsl::pensieve_state_source()));
  for (const auto& candidate : generator.generate_batch(64)) {
    if (programs.size() >= 8) break;
    try {
      programs.push_back(dsl::StateProgram::compile(candidate.source));
    } catch (const dsl::CompileError&) {
      continue;
    }
  }
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = 32;
  arch.scalar_hidden = 32;
  arch.merge_hidden = 32;

  // Every row is labeled with the NN kernel flavor it ran under: scalar
  // and avx2 rows are mutually comparable (bit-identical results), fma
  // rows are a different numeric universe (pinned-divergent) and must
  // never be diffed against scalar/avx2 rows — the label is what makes a
  // cross-flavor CSV comparison an explicit choice instead of an accident.
  const std::string flavor = nn::kernel_flavor_name(nn::kernel_flavor());
  std::cout << "nn kernel flavor: " << flavor << "\n";

  util::TextTable table("Early-probe throughput (higher is better)");
  table.set_header({"candidates", "kernel", "serial cand/s",
                    "batched cand/s", "speedup", "bit-identical"});

  // CI runs this bench as the bit-identity smoke check: any divergence
  // must fail the job, not just print.
  bool all_identical = true;

  for (const std::size_t cohort : {8u, 16u, 32u}) {
    std::vector<rl::ProbeJob> jobs;
    jobs.reserve(cohort);
    for (std::size_t i = 0; i < cohort; ++i) {
      jobs.push_back(rl::ProbeJob{&programs[i % programs.size()], &arch,
                                  0x9e3779b9ULL * (i + 1)});
    }

    bench::Stopwatch serial_timer;
    std::vector<rl::TrainResult> serial_results;
    serial_results.reserve(cohort);
    for (const auto& job : jobs) {
      rl::Trainer trainer(dataset, video, probe_config, job.seed);
      serial_results.push_back(trainer.train(*job.program, *job.spec));
    }
    const double serial_s = serial_timer.seconds();

    const rl::BatchProbeTrainer batch_trainer(
        dataset, video, rl::BatchProbeConfig{probe_config, 4});
    bench::Stopwatch batch_timer;
    const auto batch_results = batch_trainer.train(jobs, nullptr);
    const double batch_s = batch_timer.seconds();

    bool identical = batch_results.size() == serial_results.size();
    for (std::size_t i = 0; identical && i < batch_results.size(); ++i) {
      identical = batch_results[i].failed == serial_results[i].failed &&
                  batch_results[i].train_rewards ==
                      serial_results[i].train_rewards;
    }

    const double serial_rate = cohort / std::max(serial_s, 1e-9);
    const double batch_rate = cohort / std::max(batch_s, 1e-9);
    table.add_row_mixed({std::to_string(cohort), flavor},
                        {serial_rate, batch_rate, batch_rate / serial_rate,
                         identical ? 1.0 : 0.0},
                        2);
    if (!identical) {
      all_identical = false;
      std::cout << "ERROR: batched curves diverged from serial at cohort "
                << cohort << "\n";
    }
  }

  // Pool-scheduled runs: candidate-blocks vs one task per candidate.
  {
    const std::size_t cohort = 32;
    std::vector<rl::ProbeJob> jobs;
    for (std::size_t i = 0; i < cohort; ++i) {
      jobs.push_back(rl::ProbeJob{&programs[i % programs.size()], &arch,
                                  0x9e3779b9ULL * (i + 1)});
    }
    bench::Stopwatch serial_timer;
    std::vector<rl::TrainResult> serial_results(cohort);
    pool.parallel_for(cohort, [&](std::size_t i) {
      rl::Trainer trainer(dataset, video, probe_config, jobs[i].seed);
      serial_results[i] = trainer.train(*jobs[i].program, *jobs[i].spec);
    });
    const double serial_s = serial_timer.seconds();

    const rl::BatchProbeTrainer batch_trainer(
        dataset, video, rl::BatchProbeConfig{probe_config, 4});
    bench::Stopwatch batch_timer;
    const auto batch_results = batch_trainer.train(jobs, &pool);
    const double batch_s = batch_timer.seconds();
    std::cout << "pool-scheduled, " << cohort << " candidates on "
              << pool.size() << " threads: serial "
              << cohort / std::max(serial_s, 1e-9) << " cand/s, batched "
              << cohort / std::max(batch_s, 1e-9) << " cand/s ("
              << serial_s / std::max(batch_s, 1e-9) << "x)\n";
    for (std::size_t i = 0; i < cohort; ++i) {
      if (batch_results[i].train_rewards != serial_results[i].train_rewards) {
        all_identical = false;
        std::cout << "ERROR: pool-scheduled batched curves diverged from "
                     "serial at candidate " << i << "\n";
      }
    }
  }

  // Kernel-flavor sweep: the same cohort under each runnable flavor.
  // Cross-flavor comparisons follow the contract: avx2 must reproduce the
  // scalar curves bit-for-bit (a divergence fails the bench), while fma is
  // pinned-divergent — its rows are labeled so, never silently compared.
  {
    const nn::KernelFlavor entry_flavor = nn::kernel_flavor();
    std::vector<nn::KernelFlavor> flavors = {nn::KernelFlavor::kScalar};
    if (nn::built_with_avx2_kernels() && nn::cpu_supports_avx2()) {
      flavors.push_back(nn::KernelFlavor::kAvx2);
    }
    if (nn::built_with_fma_kernels() && nn::cpu_supports_avx2() &&
        nn::cpu_supports_fma()) {
      flavors.push_back(nn::KernelFlavor::kFma);
    }

    const std::size_t cohort = 16;
    std::vector<rl::ProbeJob> jobs;
    for (std::size_t i = 0; i < cohort; ++i) {
      jobs.push_back(rl::ProbeJob{&programs[i % programs.size()], &arch,
                                  0x9e3779b9ULL * (i + 1)});
    }
    const rl::BatchProbeTrainer batch_trainer(
        dataset, video, rl::BatchProbeConfig{probe_config, 4});

    util::TextTable sweep("Kernel-flavor sweep (batched, cohort 16)");
    sweep.set_header({"kernel", "batched cand/s", "vs scalar"});
    std::vector<rl::TrainResult> scalar_results;
    for (const nn::KernelFlavor f : flavors) {
      nn::set_kernel_flavor(f);
      bench::Stopwatch flavor_timer;
      const auto flavor_results = batch_trainer.train(jobs, nullptr);
      const double rate = cohort / std::max(flavor_timer.seconds(), 1e-9);
      std::string comparison = "(reference)";
      if (f == nn::KernelFlavor::kScalar) {
        scalar_results = flavor_results;
      } else {
        bool identical = true;
        for (std::size_t i = 0; i < cohort; ++i) {
          identical &= flavor_results[i].train_rewards ==
                       scalar_results[i].train_rewards;
        }
        if (f == nn::KernelFlavor::kAvx2) {
          comparison = identical ? "bit-identical" : "DIVERGED";
          if (!identical) {
            all_identical = false;
            std::cout << "ERROR: avx2 curves diverged from scalar — the "
                         "bit-identity contract is broken\n";
          }
        } else {
          // fma may diverge from scalar (fused rounding) — that is the
          // documented contract. Curves CAN still match bitwise: rewards
          // are quantized by env dynamics, so low-order logit changes
          // only surface when they flip a sampled action.
          comparison = identical ? "curves match (divergence allowed)"
                                 : "divergent (pinned, kernel=fma)";
        }
      }
      sweep.add_row({nn::kernel_flavor_name(f), util::format_double(rate, 2),
                     comparison});
    }
    nn::set_kernel_flavor(entry_flavor);
    std::cout << sweep.to_string() << "\n";
  }

  std::cout << table.to_string() << "\n";
  bench::save_csv("probe_batch.csv", table);
  if (!all_identical) {
    std::cout << "FAILED: batched/serial bit-identity violated\n";
    return 1;
  }
  return 0;
}

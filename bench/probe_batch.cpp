// Probe-throughput bench: candidates/sec for the early-probe stage, serial
// Trainer-per-candidate vs the lockstep BatchProbeTrainer, at several
// cohort sizes.
//
// The funnel spends nearly all its compute here (thousands of short runs
// that only feed the early-stop ranker), so this is the number that decides
// how many candidates a machine can screen per hour. The bench also
// verifies the headline guarantee on every row: the batched reward curves
// must be bit-identical to the serial ones.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "gen/state_gen.h"
#include "rl/batch_probe.h"
#include "rl/trainer.h"
#include "trace/generator.h"
#include "util/thread_pool.h"
#include "video/video.h"

int main() {
  using namespace nada;
  const auto scale = util::ScaleConfig::from_env();
  bench::banner("Batched probe training — candidates/sec vs serial", scale);

  const trace::Environment env = trace::Environment::kFcc;
  const trace::Dataset dataset = trace::build_dataset(env, scale.traces, 7);
  const video::Video video =
      video::make_test_video(video::pensieve_ladder(), 11);
  util::ThreadPool pool;

  rl::TrainConfig probe_config;
  probe_config.epochs = scale.epoch_count(60, 12);
  probe_config.evaluate_checkpoints = false;

  // A pool of distinct state programs cycled across the cohort, as the
  // funnel's pre-check survivors would be.
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                2024);
  std::vector<dsl::StateProgram> programs;
  programs.push_back(
      dsl::StateProgram::compile(dsl::pensieve_state_source()));
  for (const auto& candidate : generator.generate_batch(64)) {
    if (programs.size() >= 8) break;
    try {
      programs.push_back(dsl::StateProgram::compile(candidate.source));
    } catch (const dsl::CompileError&) {
      continue;
    }
  }
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = 32;
  arch.scalar_hidden = 32;
  arch.merge_hidden = 32;

  util::TextTable table("Early-probe throughput (higher is better)");
  table.set_header({"candidates", "serial cand/s", "batched cand/s",
                    "speedup", "bit-identical"});

  // CI runs this bench as the bit-identity smoke check: any divergence
  // must fail the job, not just print.
  bool all_identical = true;

  for (const std::size_t cohort : {8u, 16u, 32u}) {
    std::vector<rl::ProbeJob> jobs;
    jobs.reserve(cohort);
    for (std::size_t i = 0; i < cohort; ++i) {
      jobs.push_back(rl::ProbeJob{&programs[i % programs.size()], &arch,
                                  0x9e3779b9ULL * (i + 1)});
    }

    bench::Stopwatch serial_timer;
    std::vector<rl::TrainResult> serial_results;
    serial_results.reserve(cohort);
    for (const auto& job : jobs) {
      rl::Trainer trainer(dataset, video, probe_config, job.seed);
      serial_results.push_back(trainer.train(*job.program, *job.spec));
    }
    const double serial_s = serial_timer.seconds();

    const rl::BatchProbeTrainer batch_trainer(
        dataset, video, rl::BatchProbeConfig{probe_config, 4});
    bench::Stopwatch batch_timer;
    const auto batch_results = batch_trainer.train(jobs, nullptr);
    const double batch_s = batch_timer.seconds();

    bool identical = batch_results.size() == serial_results.size();
    for (std::size_t i = 0; identical && i < batch_results.size(); ++i) {
      identical = batch_results[i].failed == serial_results[i].failed &&
                  batch_results[i].train_rewards ==
                      serial_results[i].train_rewards;
    }

    const double serial_rate = cohort / std::max(serial_s, 1e-9);
    const double batch_rate = cohort / std::max(batch_s, 1e-9);
    table.add_row_mixed({std::to_string(cohort)},
                        {serial_rate, batch_rate, batch_rate / serial_rate,
                         identical ? 1.0 : 0.0},
                        2);
    if (!identical) {
      all_identical = false;
      std::cout << "ERROR: batched curves diverged from serial at cohort "
                << cohort << "\n";
    }
  }

  // Pool-scheduled runs: candidate-blocks vs one task per candidate.
  {
    const std::size_t cohort = 32;
    std::vector<rl::ProbeJob> jobs;
    for (std::size_t i = 0; i < cohort; ++i) {
      jobs.push_back(rl::ProbeJob{&programs[i % programs.size()], &arch,
                                  0x9e3779b9ULL * (i + 1)});
    }
    bench::Stopwatch serial_timer;
    std::vector<rl::TrainResult> serial_results(cohort);
    pool.parallel_for(cohort, [&](std::size_t i) {
      rl::Trainer trainer(dataset, video, probe_config, jobs[i].seed);
      serial_results[i] = trainer.train(*jobs[i].program, *jobs[i].spec);
    });
    const double serial_s = serial_timer.seconds();

    const rl::BatchProbeTrainer batch_trainer(
        dataset, video, rl::BatchProbeConfig{probe_config, 4});
    bench::Stopwatch batch_timer;
    const auto batch_results = batch_trainer.train(jobs, &pool);
    const double batch_s = batch_timer.seconds();
    std::cout << "pool-scheduled, " << cohort << " candidates on "
              << pool.size() << " threads: serial "
              << cohort / std::max(serial_s, 1e-9) << " cand/s, batched "
              << cohort / std::max(batch_s, 1e-9) << " cand/s ("
              << serial_s / std::max(batch_s, 1e-9) << "x)\n";
    for (std::size_t i = 0; i < cohort; ++i) {
      if (batch_results[i].train_rewards != serial_results[i].train_rewards) {
        all_identical = false;
        std::cout << "ERROR: pool-scheduled batched curves diverged from "
                     "serial at candidate " << i << "\n";
      }
    }
  }

  std::cout << table.to_string() << "\n";
  bench::save_csv("probe_batch.csv", table);
  if (!all_identical) {
    std::cout << "FAILED: batched/serial bit-identity violated\n";
    return 1;
  }
  return 0;
}

// shard_scaling: probe throughput of the sharded multi-worker driver.
//
// For 1/2/4 shards, runs the worker phase (pre-check + probe of each
// shard's candidates) with one concurrent thread per worker — the
// in-process stand-in for N worker processes — then the driver's
// merge+rank pass, and reports candidates probed per second of worker
// wall-clock. The merged best candidate is verified against the
// single-process run each time: scaling must not change the answer.
//
// Writes bench_results/shard_scaling.csv.
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "env/abr_domain.h"
#include "examples/example_common.h"
#include "gen/state_gen.h"
#include "search/candidate.h"
#include "search/search_job.h"
#include "search/shard_runner.h"
#include "trace/generator.h"
#include "util/fs.h"
#include "util/table.h"
#include "video/video.h"

int main() {
  using namespace nada;
  const util::ScaleConfig scale = util::ScaleConfig::from_env();
  bench::banner("shard_scaling: multi-worker probe throughput", scale);

  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::k4G, 0.05, 21);
  const video::Video video =
      video::make_test_video(video::youtube_ladder(), 42);
  const env::AbrDomain domain(dataset, video);

  search::SearchConfig config = examples::demo_funnel_config(
      scale.gen_count(96), /*early_epochs=*/8, /*full_train_top=*/3,
      /*seeds=*/2, /*epochs=*/24, /*test_interval=*/8,
      /*max_eval_traces=*/4);
  config.baseline_arch = examples::small_pensieve_arch(8, 0, 8, 16);
  const std::uint64_t seed = 1234;
  const std::uint64_t gen_seed = 77;

  auto make_source = [&](std::unique_ptr<gen::StateGenerator>& keep) {
    keep = std::make_unique<gen::StateGenerator>(
        gen::gpt4_profile(), gen::PromptStrategy{}, gen_seed);
    return std::make_unique<search::StateCandidateSource>(*keep);
  };

  // Single-process reference (also warms nothing: every run below uses a
  // fresh store directory).
  const std::string base_dir = "bench_shard_scaling_store";
  std::string single_best;
  double single_seconds = 0.0;
  {
    const std::string dir = base_dir + "/single";
    util::ensure_directories(dir);
    const auto scope = search::store_scope(domain, config, seed);
    const std::string path = dir + "/single.jsonl";
    std::remove(path.c_str());
    store::CandidateStore store(path, scope);
    std::unique_ptr<gen::StateGenerator> generator;
    auto source = make_source(generator);
    search::JobOptions options;
    options.store = &store;
    options.metrics = bench::bench_metrics();  // NADA_BENCH_METRICS opt-in
    search::SearchJob job(domain, config, seed, *source,
                          search::FixedDesign{nullptr, &config.baseline_arch},
                          options);
    const bench::Stopwatch watch;
    const auto result = job.run_to_completion();
    single_seconds = watch.seconds();
    single_best = result.has_best() ? result.outcomes[result.best_index].id
                                    : "(none)";
    std::cout << "single-process: " << result.n_probes_run << " probes, "
              << result.n_full_trains_run << " full trainings, best "
              << single_best << ", " << single_seconds << "s\n";
  }

  // Worker concurrency is real threads; on a 1-core box the wall-clock is
  // flat and only the correctness column is meaningful, so record the
  // core count next to the numbers.
  util::TextTable table(
      "shard_scaling (" + std::to_string(config.num_candidates) +
      " candidates, " +
      std::to_string(std::thread::hardware_concurrency()) + " cores)");
  table.set_header({"shards", "worker wall s", "probes", "probe cand/s",
                    "merge+rank s", "best matches single"});
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    const std::string dir = base_dir + "/s" + std::to_string(shards);
    search::ShardRunnerConfig shard_config;
    shard_config.num_shards = shards;
    shard_config.store_dir = dir;
    shard_config.metrics = bench::bench_metrics();
    search::ShardRunner runner(domain, config, seed, shard_config);
    for (std::size_t s = 0; s < shards; ++s) {
      util::ensure_directories(dir);
      std::remove(runner.shard_store_path(s).c_str());
    }
    std::remove(runner.merged_store_path().c_str());

    // Worker phase: one thread per shard, each replaying its own stream —
    // the in-process equivalent of N shard_worker processes.
    std::vector<std::size_t> probes(shards, 0);
    const bench::Stopwatch worker_watch;
    {
      std::vector<std::thread> workers;
      workers.reserve(shards);
      for (std::size_t s = 0; s < shards; ++s) {
        workers.emplace_back([&, s] {
          std::unique_ptr<gen::StateGenerator> generator;
          auto source = make_source(generator);
          const auto result = runner.run_worker(
              s, *source, search::FixedDesign{nullptr, &config.baseline_arch});
          probes[s] = result.n_probes_run;
        });
      }
      for (auto& worker : workers) worker.join();
    }
    const double worker_seconds = worker_watch.seconds();

    std::unique_ptr<gen::StateGenerator> generator;
    auto source = make_source(generator);
    const bench::Stopwatch merge_watch;
    const auto merged = runner.merge_and_rank(
        *source, search::FixedDesign{nullptr, &config.baseline_arch});
    const double merge_seconds = merge_watch.seconds();

    std::size_t total_probes = 0;
    for (std::size_t p : probes) total_probes += p;
    const std::string best = merged.has_best()
                                 ? merged.outcomes[merged.best_index].id
                                 : "(none)";
    table.add_row({std::to_string(shards),
                   util::format_double(worker_seconds, 2),
                   std::to_string(total_probes),
                   util::format_double(
                       static_cast<double>(total_probes) / worker_seconds, 2),
                   util::format_double(merge_seconds, 2),
                   best == single_best ? "yes" : "NO"});
  }
  table.print(std::cout);
  bench::save_csv("shard_scaling.csv", table);
  bench::dump_bench_metrics();
  return 0;
}

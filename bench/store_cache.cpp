// Candidate-store cache bench: the same funnel run cold (empty store),
// warm (fully journaled store), and sharded across simulated workers.
//
// The paper's whole premise is not spending training compute on duds; the
// persistent store extends that across processes — a repeated or resumed
// search replays recorded outcomes instead of retraining. This bench
// measures exactly that saving, and demonstrates the shard-plan split of
// one search across N independent stores merged at the end.
#include <filesystem>
#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "core/pipeline.h"
#include "gen/state_gen.h"
#include "store/candidate_store.h"
#include "store/shard.h"
#include "trace/generator.h"
#include "util/thread_pool.h"
#include "video/video.h"

int main() {
  using namespace nada;
  const auto scale = util::ScaleConfig::from_env();
  bench::banner("Candidate store — cold vs warm funnel runs", scale);

  const trace::Environment env = trace::Environment::kStarlink;
  const trace::Dataset dataset = trace::build_dataset(env, scale.traces, 7);
  const video::Video video =
      video::make_test_video(video::pensieve_ladder(), 11);
  util::ThreadPool pool;

  core::PipelineConfig config = core::scaled_pipeline_config(env, scale);
  config.num_candidates = std::min<std::size_t>(config.num_candidates, 120);

  const auto run_once = [&](store::CandidateStore* cache,
                            double* seconds) {
    core::Pipeline pipeline(dataset, video, config, 31337, &pool);
    if (cache != nullptr) pipeline.attach_store(cache);
    gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                  2024);
    bench::Stopwatch timer;
    const core::PipelineResult result =
        pipeline.search_states(generator, config.baseline_arch);
    *seconds = timer.seconds();
    return result;
  };

  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "nada_store_bench").string();
  std::filesystem::remove_all(store_dir);
  core::Pipeline scoped(dataset, video, config, 31337, &pool);
  const store::StoreScope scope = scoped.store_scope();
  const std::string journal = store_dir + "/funnel.jsonl";

  double cold_s = 0.0;
  double warm_s = 0.0;
  core::PipelineResult cold;
  core::PipelineResult warm;
  {
    store::CandidateStore cache(journal, scope);
    cold = run_once(&cache, &cold_s);
  }
  {
    store::CandidateStore cache(journal, scope);
    warm = run_once(&cache, &warm_s);
  }

  util::TextTable table("Funnel runs over one generator stream");
  table.set_header({"run", "seconds", "probes run", "full trains run",
                    "cache hits"});
  table.add_row_mixed({"cold"}, {cold_s, double(cold.n_probes_run),
                                 double(cold.n_full_trains_run),
                                 double(cold.cache_hits())},
                      2);
  table.add_row_mixed({"warm"}, {warm_s, double(warm.n_probes_run),
                                 double(warm.n_full_trains_run),
                                 double(warm.cache_hits())},
                      2);
  std::cout << table.to_string() << "\n";
  std::cout << "warm speedup: " << (warm_s > 0 ? cold_s / warm_s : 0.0)
            << "x (identical ranked result: "
            << (cold.best_index == warm.best_index ? "yes" : "NO") << ")\n";

  // Shard-plan demo: split the journal across 3 simulated workers by
  // fingerprint range, then merge back into one store.
  const store::ShardPlan plan(3);
  std::vector<std::string> shard_paths;
  {
    store::CandidateStore full(journal, scope);
    std::vector<std::unique_ptr<store::CandidateStore>> shards;
    for (std::size_t s = 0; s < plan.num_shards(); ++s) {
      shard_paths.push_back(store_dir + "/shard-" + std::to_string(s) +
                            ".jsonl");
      shards.push_back(
          std::make_unique<store::CandidateStore>(shard_paths[s], scope));
    }
    for (const auto& record : full.records()) {
      shards[plan.shard_of(record.fingerprint)]->put(record);
    }
    std::cout << "sharded " << full.size() << " records across "
              << plan.num_shards() << " worker stores:";
    for (const auto& shard : shards) std::cout << " " << shard->size();
    std::cout << "\n";
  }
  store::CandidateStore merged(store_dir + "/merged.jsonl", scope);
  const std::size_t merged_count =
      store::merge_shard_files(shard_paths, merged);
  std::cout << "merged " << merged_count << " records back into one store ("
            << merged.size() << " distinct candidates)\n";

  bench::save_csv("store_cache.csv", table);
  return 0;
}

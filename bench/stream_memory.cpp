// stream_memory: the constant-memory claim of the rolling-window funnel.
//
// Runs the same seeded congestion-control state search at 1k/5k/20k
// candidates in batch mode (window_size = 0, the whole stream materialized)
// and in streaming mode (rolling windows of 64), and records each run's
// peak RSS and candidates/sec. Every measurement runs in a forked child so
// ru_maxrss is per-run, not the monotone process-lifetime max. Expected
// shape: the batch path's peak RSS grows linearly with the candidate count
// (specs, parsed programs, and outcomes all live until rank); the streaming
// path stays flat — its 20k run should sit within ~2x of its 1k run.
//
// The probe budget is deliberately tiny (short CC episodes, 2-epoch
// probes): the bench measures the funnel's memory mechanics, not training
// throughput. No store is attached — a store would add its own O(n)
// in-memory index to both modes (see docs/STORE_FORMAT.md).
//
// A second table measures the candidate store's open path per format:
// journals of 10k/100k/1M synthetic records (scaled by NADA_SCALE_GEN) are
// opened in forked children, timing CandidateStore construction plus one
// lookup and recording peak RSS. Expected shape: the JSONL columns grow
// linearly in both time and RSS (open materializes every record); the
// binary columns stay flat — the mmap'd sidecar makes open O(index) and
// the lookup deserializes one frame ("frames decoded" pins that at 1).
//
// Writes bench_results/stream_memory.csv and
// bench_results/store_open.csv. Args: `store-only` / `funnel-only` run a
// single table (CI's store-format-smoke job uses store-only at full
// scale).
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cc/cc_domain.h"
#include "gen/state_gen.h"
#include "search/candidate.h"
#include "search/search_job.h"
#include "store/candidate_store.h"
#include "store/record_codec.h"
#include "trace/generator.h"
#include "util/table.h"

#if defined(_WIN32)
int main() {
  std::cout << "stream_memory: per-run peak-RSS accounting needs "
               "fork()/wait4(); bench skipped on this platform\n";
  return 0;
}
#else

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "util/strings.h"

namespace {

using namespace nada;

struct RunStats {
  std::size_t n_total = 0;
  std::size_t probes = 0;
  double seconds = 0.0;
  double best = 0.0;
  double peak_rss_mb = 0.0;
};

search::SearchConfig bench_config(std::size_t candidates,
                                  std::size_t window) {
  search::SearchConfig config;
  config.num_candidates = candidates;
  config.early_epochs = 2;
  config.full_train_top = 2;
  config.seeds = 1;
  config.train.epochs = 4;
  config.train.test_interval = 2;
  config.train.max_eval_traces = 2;
  config.window_size = window;
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = 8;
  arch.rnn_hidden = 8;
  arch.scalar_hidden = 8;
  arch.merge_hidden = 16;
  config.baseline_arch = arch;
  return config;
}

/// The measured workload, executed inside the forked child: build the
/// domain, stream the candidates through the funnel, report counters.
RunStats run_search(std::size_t candidates, std::size_t window) {
  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::k4G, 0.05, 21);
  cc::CcConfig cc_config;
  cc_config.init_rate_mbps = 2.0;
  cc_config.steps_per_episode = 8;
  const cc::CcDomain domain(dataset, cc_config);
  const search::SearchConfig config = bench_config(candidates, window);
  gen::StateGenerator generator(gen::cc_state_space(), gen::gpt4_profile(),
                                gen::PromptStrategy{}, 77);
  search::StateCandidateSource source(generator);
  search::JobOptions options;
  options.metrics = bench::bench_metrics();  // NADA_BENCH_METRICS opt-in
  search::SearchJob job(domain, config, 1234, source,
                        search::FixedDesign{nullptr, &config.baseline_arch},
                        options);
  const bench::Stopwatch watch;
  const auto result = job.run_to_completion();
  RunStats stats;
  stats.n_total = result.n_total;
  stats.probes = result.n_probes_run;
  stats.seconds = watch.seconds();
  stats.best = result.best_score;
  // Each measurement is its own forked child, so the dump happens here
  // (one snapshot file per run, tagged by mode and count).
  bench::dump_bench_metrics((window == 0 ? "batch-" : "stream-") +
                            std::to_string(candidates));
  return stats;
}

/// Forks, runs the search in the child, and collects the child's counters
/// (over a pipe) plus its peak RSS (via wait4's rusage).
RunStats measure(std::size_t candidates, std::size_t window) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("stream_memory: pipe");
    std::exit(1);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("stream_memory: fork");
    std::exit(1);
  }
  if (pid == 0) {
    close(fds[0]);
    const RunStats stats = run_search(candidates, window);
    FILE* out = fdopen(fds[1], "w");
    std::fprintf(out, "%zu %zu %.9f %.9f\n", stats.n_total, stats.probes,
                 stats.seconds, stats.best);
    std::fclose(out);
    _exit(0);
  }
  close(fds[1]);
  RunStats stats;
  FILE* in = fdopen(fds[0], "r");
  if (std::fscanf(in, "%zu %zu %lf %lf", &stats.n_total, &stats.probes,
                  &stats.seconds, &stats.best) != 4) {
    std::cerr << "stream_memory: child reported no stats\n";
    std::exit(1);
  }
  std::fclose(in);
  int status = 0;
  struct rusage usage{};
  if (wait4(pid, &status, 0, &usage) != pid || status != 0) {
    std::cerr << "stream_memory: child failed (status " << status << ")\n";
    std::exit(1);
  }
  // Linux reports ru_maxrss in KiB.
  stats.peak_rss_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;
  return stats;
}

// ---- store-format open path ------------------------------------------------

store::StoreScope bench_scope() {
  return store::StoreScope{"bench", "store-open-bench-digest"};
}

store::Fingerprint nth_fingerprint(std::size_t i) {
  store::Fingerprint fp;
  fp.hi = util::mix64(0x9e3779b97f4a7c15ULL + i);
  fp.lo = util::mix64(0x2545f4914f6cdd1dULL ^ i) | 1;
  return fp;
}

store::OutcomeRecord nth_record(std::size_t i) {
  store::OutcomeRecord r;
  r.fingerprint = nth_fingerprint(i);
  r.stage = store::Stage::kProbed;
  r.id = "cand-" + std::to_string(i);
  r.source = "emit \"x\" = " + std::to_string(i) + ";\n";
  r.compiled = true;
  r.normalized = true;
  r.early_probed = true;
  r.early_rewards = {0.25, 0.5, 0.75};
  return r;
}

/// Writes an n-record journal in `format` (and, for binary, lets a throwaway
/// open build + persist the sidecar, as any real prior run would have).
std::string build_journal(std::size_t n, store::StoreFormat format,
                          const std::string& dir) {
  const std::string path = dir + "/open-bench-" + std::to_string(n) +
                           store::journal_extension(format);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (format == store::StoreFormat::kBinary) {
    out.write(store::kBinaryJournalMagic.data(),
              static_cast<std::streamsize>(store::kBinaryJournalMagic.size()));
  }
  std::string buffer;
  for (std::size_t i = 0; i < n; ++i) {
    if (format == store::StoreFormat::kBinary) {
      buffer += store::encode_record(nth_record(i), bench_scope());
    } else {
      buffer += store::CandidateStore::encode_line(nth_record(i),
                                                   bench_scope()) +
                "\n";
    }
    if (buffer.size() > (1u << 20)) {
      out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
      buffer.clear();
    }
  }
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  out.flush();
  if (!out) {
    std::cerr << "stream_memory: cannot write " << path << "\n";
    std::exit(1);
  }
  out.close();
  if (format == store::StoreFormat::kBinary) {
    // Build the sidecar (as any real prior run would have) in a child, so
    // the rebuild scan's RSS is not inherited by the measurement fork.
    const pid_t pid = fork();
    if (pid == 0) {
      store::CandidateStore store(path, bench_scope());
      _exit(0);
    }
    int status = 0;
    if (pid < 0 || waitpid(pid, &status, 0) != pid || status != 0) {
      std::cerr << "stream_memory: sidecar build for " << path << " failed\n";
      std::exit(1);
    }
  }
  return path;
}

struct OpenStats {
  std::size_t records = 0;
  double open_ms = 0.0;
  double lookup_ms = 0.0;
  std::size_t frames_decoded = 0;
  double peak_rss_mb = 0.0;
};

/// Forked child: time CandidateStore construction and one cache-hit
/// lookup; peak RSS comes from the parent's wait4.
OpenStats measure_open(const std::string& path, std::size_t n) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("stream_memory: pipe");
    std::exit(1);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("stream_memory: fork");
    std::exit(1);
  }
  if (pid == 0) {
    close(fds[0]);
    const auto t0 = std::chrono::steady_clock::now();
    store::CandidateStore store(path, bench_scope());
    const auto t1 = std::chrono::steady_clock::now();
    const auto got = store.lookup(nth_fingerprint(n / 2));
    const auto t2 = std::chrono::steady_clock::now();
    if (!got.has_value() || store.size() != n) {
      std::cerr << "stream_memory: store at " << path << " lost records\n";
      _exit(1);
    }
    const double open_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double lookup_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    FILE* out = fdopen(fds[1], "w");
    std::fprintf(out, "%zu %.9f %.9f %zu\n", store.size(), open_ms, lookup_ms,
                 store.decoded_frames());
    std::fclose(out);
    _exit(0);
  }
  close(fds[1]);
  OpenStats stats;
  FILE* in = fdopen(fds[0], "r");
  if (std::fscanf(in, "%zu %lf %lf %zu", &stats.records, &stats.open_ms,
                  &stats.lookup_ms, &stats.frames_decoded) != 4) {
    std::cerr << "stream_memory: open-bench child reported no stats\n";
    std::exit(1);
  }
  std::fclose(in);
  int status = 0;
  struct rusage usage{};
  if (wait4(pid, &status, 0, &usage) != pid || status != 0) {
    std::cerr << "stream_memory: open-bench child failed (status " << status
              << ")\n";
    std::exit(1);
  }
  stats.peak_rss_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;
  return stats;
}

int run_store_table(const util::ScaleConfig& scale) {
  const std::vector<std::size_t> counts = {scale.gen_count(10'000),
                                           scale.gen_count(100'000),
                                           scale.gen_count(1'000'000)};
  const std::string dir =
      (std::filesystem::temp_directory_path() / "nada_store_open_bench")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  util::TextTable table("store open path (jsonl vs binary+index)");
  table.set_header({"format", "records", "open ms", "lookup ms",
                    "frames decoded", "peak RSS MB"});
  for (const std::size_t n : counts) {
    for (const auto format :
         {store::StoreFormat::kJsonl, store::StoreFormat::kBinary}) {
      const std::string path = build_journal(n, format, dir);
      const OpenStats stats = measure_open(path, n);
      const char* name =
          format == store::StoreFormat::kBinary ? "binary" : "jsonl";
      table.add_row({name, std::to_string(stats.records),
                     util::format_double(stats.open_ms, 2),
                     util::format_double(stats.lookup_ms, 3),
                     std::to_string(stats.frames_decoded),
                     util::format_double(stats.peak_rss_mb, 1)});
      std::cout << name << " " << n << " records: open "
                << util::format_double(stats.open_ms, 2) << " ms, "
                << stats.frames_decoded << " frame(s) decoded, "
                << util::format_double(stats.peak_rss_mb, 1)
                << " MB peak\n";
    }
  }
  table.print(std::cout);
  bench::save_csv("store_open.csv", table);
  std::filesystem::remove_all(dir);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  if (!mode.empty() && mode != "store-only" && mode != "funnel-only") {
    std::cerr << "usage: stream_memory [store-only|funnel-only]\n";
    return 2;
  }
  const util::ScaleConfig scale = util::ScaleConfig::from_env();
  bench::banner("stream_memory: batch vs rolling-window funnel memory",
                scale);
  if (mode == "store-only") return run_store_table(scale);

  const std::vector<std::size_t> counts = {
      scale.gen_count(1000), scale.gen_count(5000), scale.gen_count(20000)};
  const std::size_t kWindow = 64;

  util::TextTable table("stream_memory (CC domain, window " +
                        std::to_string(kWindow) + " vs batch)");
  table.set_header({"mode", "candidates", "peak RSS MB", "seconds",
                    "cand/s", "RSS vs smallest"});
  double base_rss[2] = {0.0, 0.0};  // [batch, stream] smallest-count RSS
  for (std::size_t c = 0; c < counts.size(); ++c) {
    for (const bool streaming : {false, true}) {
      const RunStats stats = measure(counts[c], streaming ? kWindow : 0);
      if (c == 0) base_rss[streaming ? 1 : 0] = stats.peak_rss_mb;
      const double ratio =
          stats.peak_rss_mb / std::max(base_rss[streaming ? 1 : 0], 1e-9);
      table.add_row({streaming ? "stream" : "batch",
                     std::to_string(stats.n_total),
                     util::format_double(stats.peak_rss_mb, 1),
                     util::format_double(stats.seconds, 2),
                     util::format_double(
                         static_cast<double>(stats.n_total) / stats.seconds,
                         1),
                     util::format_double(ratio, 2) + "x"});
      std::cout << (streaming ? "stream" : "batch ") << " " << stats.n_total
                << " candidates: " << util::format_double(stats.peak_rss_mb, 1)
                << " MB peak, " << stats.probes << " probes, "
                << util::format_double(stats.seconds, 2) << "s\n";
    }
  }
  table.print(std::cout);
  bench::save_csv("stream_memory.csv", table);
  if (mode != "funnel-only") return run_store_table(scale);
  return 0;
}
#endif

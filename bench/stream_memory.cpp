// stream_memory: the constant-memory claim of the rolling-window funnel.
//
// Runs the same seeded congestion-control state search at 1k/5k/20k
// candidates in batch mode (window_size = 0, the whole stream materialized)
// and in streaming mode (rolling windows of 64), and records each run's
// peak RSS and candidates/sec. Every measurement runs in a forked child so
// ru_maxrss is per-run, not the monotone process-lifetime max. Expected
// shape: the batch path's peak RSS grows linearly with the candidate count
// (specs, parsed programs, and outcomes all live until rank); the streaming
// path stays flat — its 20k run should sit within ~2x of its 1k run.
//
// The probe budget is deliberately tiny (short CC episodes, 2-epoch
// probes): the bench measures the funnel's memory mechanics, not training
// throughput. No store is attached — a store would add its own O(n)
// in-memory index to both modes (see docs/STORE_FORMAT.md).
//
// Writes bench_results/stream_memory.csv.
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cc/cc_domain.h"
#include "gen/state_gen.h"
#include "search/candidate.h"
#include "search/search_job.h"
#include "trace/generator.h"
#include "util/table.h"

#if defined(_WIN32)
int main() {
  std::cout << "stream_memory: per-run peak-RSS accounting needs "
               "fork()/wait4(); bench skipped on this platform\n";
  return 0;
}
#else

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace {

using namespace nada;

struct RunStats {
  std::size_t n_total = 0;
  std::size_t probes = 0;
  double seconds = 0.0;
  double best = 0.0;
  double peak_rss_mb = 0.0;
};

search::SearchConfig bench_config(std::size_t candidates,
                                  std::size_t window) {
  search::SearchConfig config;
  config.num_candidates = candidates;
  config.early_epochs = 2;
  config.full_train_top = 2;
  config.seeds = 1;
  config.train.epochs = 4;
  config.train.test_interval = 2;
  config.train.max_eval_traces = 2;
  config.window_size = window;
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = 8;
  arch.rnn_hidden = 8;
  arch.scalar_hidden = 8;
  arch.merge_hidden = 16;
  config.baseline_arch = arch;
  return config;
}

/// The measured workload, executed inside the forked child: build the
/// domain, stream the candidates through the funnel, report counters.
RunStats run_search(std::size_t candidates, std::size_t window) {
  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::k4G, 0.05, 21);
  cc::CcConfig cc_config;
  cc_config.init_rate_mbps = 2.0;
  cc_config.steps_per_episode = 8;
  const cc::CcDomain domain(dataset, cc_config);
  const search::SearchConfig config = bench_config(candidates, window);
  gen::StateGenerator generator(gen::cc_state_space(), gen::gpt4_profile(),
                                gen::PromptStrategy{}, 77);
  search::StateCandidateSource source(generator);
  search::JobOptions options;
  options.metrics = bench::bench_metrics();  // NADA_BENCH_METRICS opt-in
  search::SearchJob job(domain, config, 1234, source,
                        search::FixedDesign{nullptr, &config.baseline_arch},
                        options);
  const bench::Stopwatch watch;
  const auto result = job.run_to_completion();
  RunStats stats;
  stats.n_total = result.n_total;
  stats.probes = result.n_probes_run;
  stats.seconds = watch.seconds();
  stats.best = result.best_score;
  // Each measurement is its own forked child, so the dump happens here
  // (one snapshot file per run, tagged by mode and count).
  bench::dump_bench_metrics((window == 0 ? "batch-" : "stream-") +
                            std::to_string(candidates));
  return stats;
}

/// Forks, runs the search in the child, and collects the child's counters
/// (over a pipe) plus its peak RSS (via wait4's rusage).
RunStats measure(std::size_t candidates, std::size_t window) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("stream_memory: pipe");
    std::exit(1);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("stream_memory: fork");
    std::exit(1);
  }
  if (pid == 0) {
    close(fds[0]);
    const RunStats stats = run_search(candidates, window);
    FILE* out = fdopen(fds[1], "w");
    std::fprintf(out, "%zu %zu %.9f %.9f\n", stats.n_total, stats.probes,
                 stats.seconds, stats.best);
    std::fclose(out);
    _exit(0);
  }
  close(fds[1]);
  RunStats stats;
  FILE* in = fdopen(fds[0], "r");
  if (std::fscanf(in, "%zu %zu %lf %lf", &stats.n_total, &stats.probes,
                  &stats.seconds, &stats.best) != 4) {
    std::cerr << "stream_memory: child reported no stats\n";
    std::exit(1);
  }
  std::fclose(in);
  int status = 0;
  struct rusage usage{};
  if (wait4(pid, &status, 0, &usage) != pid || status != 0) {
    std::cerr << "stream_memory: child failed (status " << status << ")\n";
    std::exit(1);
  }
  // Linux reports ru_maxrss in KiB.
  stats.peak_rss_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;
  return stats;
}

}  // namespace

int main() {
  const util::ScaleConfig scale = util::ScaleConfig::from_env();
  bench::banner("stream_memory: batch vs rolling-window funnel memory",
                scale);

  const std::vector<std::size_t> counts = {
      scale.gen_count(1000), scale.gen_count(5000), scale.gen_count(20000)};
  const std::size_t kWindow = 64;

  util::TextTable table("stream_memory (CC domain, window " +
                        std::to_string(kWindow) + " vs batch)");
  table.set_header({"mode", "candidates", "peak RSS MB", "seconds",
                    "cand/s", "RSS vs smallest"});
  double base_rss[2] = {0.0, 0.0};  // [batch, stream] smallest-count RSS
  for (std::size_t c = 0; c < counts.size(); ++c) {
    for (const bool streaming : {false, true}) {
      const RunStats stats = measure(counts[c], streaming ? kWindow : 0);
      if (c == 0) base_rss[streaming ? 1 : 0] = stats.peak_rss_mb;
      const double ratio =
          stats.peak_rss_mb / std::max(base_rss[streaming ? 1 : 0], 1e-9);
      table.add_row({streaming ? "stream" : "batch",
                     std::to_string(stats.n_total),
                     util::format_double(stats.peak_rss_mb, 1),
                     util::format_double(stats.seconds, 2),
                     util::format_double(
                         static_cast<double>(stats.n_total) / stats.seconds,
                         1),
                     util::format_double(ratio, 2) + "x"});
      std::cout << (streaming ? "stream" : "batch ") << " " << stats.n_total
                << " candidates: " << util::format_double(stats.peak_rss_mb, 1)
                << " MB peak, " << stats.probes << " probes, "
                << util::format_double(stats.seconds, 2) << "s\n";
    }
  }
  table.print(std::cout);
  bench::save_csv("stream_memory.csv", table);
  return 0;
}
#endif

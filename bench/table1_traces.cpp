// Table 1: network traces used in the study.
//
// Builds the four synthetic datasets and reports, for each, the trace
// counts, total hours, and mean throughput next to the paper's values,
// plus the training budget columns (epochs, checkpoint interval).
#include <iostream>

#include "bench/bench_common.h"
#include "trace/generator.h"

int main() {
  using namespace nada;
  const auto scale = util::ScaleConfig::from_env();
  bench::banner("Table 1 — Network traces used in the study", scale);
  bench::Stopwatch timer;

  util::TextTable table("Table 1 (paper value in parentheses)");
  table.set_header({"Dataset", "Train traces", "Train hours", "Test traces",
                    "Test hours", "Tput Mbps", "Train epochs",
                    "Test interval"});

  for (const auto env : trace::all_environments()) {
    const trace::DatasetSpec spec = trace::paper_spec(env);
    const trace::Dataset ds = trace::build_dataset(env, scale.traces, 42);
    auto with_paper = [](double measured, double paper, int precision = 1) {
      return util::format_double(measured, precision) + " (" +
             util::format_double(paper, precision) + ")";
    };
    table.add_row({
        trace::environment_name(env),
        std::to_string(ds.train.size()) + " (" +
            std::to_string(spec.train_traces) + ")",
        with_paper(ds.train_hours(), spec.train_hours),
        std::to_string(ds.test.size()) + " (" +
            std::to_string(spec.test_traces) + ")",
        with_paper(ds.test_hours(), spec.test_hours),
        with_paper(ds.mean_throughput_mbps(), spec.mean_throughput_mbps),
        std::to_string(spec.train_epochs),
        std::to_string(spec.test_interval),
    });
  }
  table.print(std::cout);
  bench::save_csv("table1_traces.csv", table);
  std::cout << "[done] " << util::format_double(timer.seconds(), 1)
            << " s\n";
  return 0;
}

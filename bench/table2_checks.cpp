// Table 2: fraction of generated ABR state designs that pass the
// compilation check and the normalization check, per LLM profile.
//
// The paper generates 3,000 states with each of GPT-3.5 and GPT-4; the
// candidate generators here are calibrated to those rates, and this bench
// regenerates the table end-to-end through the real checks.
#include <iostream>
#include <optional>

#include "bench/bench_common.h"
#include "filter/checks.h"
#include "gen/state_gen.h"
#include "util/thread_pool.h"
#include "env/abr_domain.h"

int main() {
  using namespace nada;
  const auto scale = util::ScaleConfig::from_env();
  bench::banner("Table 2 — Compilation / normalization check pass rates",
                scale);
  bench::Stopwatch timer;
  // Generation + checks are cheap; run at least 1,500 even when scaled.
  const std::size_t n = std::max<std::size_t>(scale.gen_count(3000), 1500);

  struct PaperRow {
    gen::LlmProfile profile;
    double paper_compilable;
    double paper_normalized;
  };
  const PaperRow rows[] = {
      {gen::gpt35_profile(), 0.412, 0.274},
      {gen::gpt4_profile(), 0.686, 0.502},
  };

  util::TextTable table("Table 2 (paper value in parentheses)");
  table.set_header({"Nada", "Total", "Compilable", "Well Normalized"});
  util::ThreadPool pool;

  for (const auto& row : rows) {
    gen::StateGenerator generator(row.profile, gen::PromptStrategy{}, 2024);
    const auto batch = generator.generate_batch(n);
    std::vector<int> compiled(n, 0);
    std::vector<int> normalized(n, 0);
    pool.parallel_for(n, [&](std::size_t i) {
      std::optional<dsl::StateProgram> program;
      if (!filter::compilation_check(batch[i].source, env::abr_catalog(), &program).passed) {
        return;
      }
      compiled[i] = 1;
      if (filter::normalization_check(*program, env::abr_catalog()).passed) normalized[i] = 1;
    });
    std::size_t n_compiled = 0;
    std::size_t n_normalized = 0;
    for (std::size_t i = 0; i < n; ++i) {
      n_compiled += compiled[i];
      n_normalized += normalized[i];
    }
    const double pc = static_cast<double>(n_compiled) / n;
    const double pn = static_cast<double>(n_normalized) / n;
    table.add_row({
        "w/ " + row.profile.name,
        std::to_string(n),
        std::to_string(n_compiled) + " = " +
            util::format_double(pc * 100, 1) + "% (paper " +
            util::format_double(row.paper_compilable * 100, 1) + "%)",
        std::to_string(n_normalized) + " = " +
            util::format_double(pn * 100, 1) + "% (paper " +
            util::format_double(row.paper_normalized * 100, 1) + "%)",
    });
  }
  table.print(std::cout);
  bench::save_csv("table2_checks.csv", table);
  std::cout << "[done] " << util::format_double(timer.seconds(), 1)
            << " s\n";
  return 0;
}

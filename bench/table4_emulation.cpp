// Table 4: emulation results of the best generated states.
//
// The paper streams video through dash.js over Mahimahi and finds that the
// states selected in simulation keep their advantage under the different
// measurement substrate (with shifted absolute scores). Here the emulation
// substrate is the EmuSession model (TCP slow start + HTTP overhead + RTT
// jitter): designs are trained and selected in simulation, and the winners
// (and the original) are re-evaluated under emulation fidelity.
//
// FCC is skipped exactly as in the paper (its simulation gains were already
// statistically insignificant).
#include <iostream>

#include "bench/bench_common.h"
#include "core/pipeline.h"

namespace {

struct PaperEntry {
  double original;
  double gpt35;
  double gpt4;
};

PaperEntry paper_emulation(nada::trace::Environment env) {
  using E = nada::trace::Environment;
  switch (env) {
    case E::kStarlink: return {-0.0482, 0.0899, 0.0759};
    case E::k4G: return {4.976, 8.010, 9.233};
    case E::k5G: return {17.26, 17.43, 21.55};
    default: return {};
  }
}

}  // namespace

int main() {
  using namespace nada;
  const auto scale = util::ScaleConfig::from_env();
  bench::banner("Table 4 — Emulation results of the best generated states",
                scale);
  bench::Stopwatch timer;
  util::ThreadPool pool;

  util::TextTable table("Table 4 (paper value in parentheses)");
  table.set_header({"Dataset", "Method", "Emu score", "Impr."});

  const trace::Environment envs[] = {trace::Environment::kStarlink,
                                     trace::Environment::k4G,
                                     trace::Environment::k5G};
  for (const auto env : envs) {
    const char* env_name = trace::environment_name(env);
    const trace::Dataset dataset =
        trace::build_dataset(env, scale.traces, 42);
    const bool high_bw = env != trace::Environment::kStarlink;
    const video::Video video = video::make_test_video(
        high_bw ? video::youtube_ladder() : video::pensieve_ladder(), 7);

    core::PipelineConfig config = core::scaled_pipeline_config(env, scale);
    config.train.emulation_final_eval = true;
    core::Pipeline pipeline(dataset, video, config,
                            4000 + static_cast<int>(env), &pool);

    const PaperEntry paper = paper_emulation(env);
    const double original_emu =
        pipeline.original_baseline().emulation_score;
    table.add_row({env_name, "Original",
                   util::format_double(original_emu, 4) + " (" +
                       util::format_double(paper.original, 4) + ")",
                   "-"});

    struct Run {
      gen::LlmProfile profile;
      double paper_score;
    };
    const Run runs[] = {{gen::gpt35_profile(), paper.gpt35},
                        {gen::gpt4_profile(), paper.gpt4}};
    for (const auto& run : runs) {
      gen::StateGenerator generator(run.profile, gen::PromptStrategy{},
                                    900 + static_cast<int>(env));
      const core::PipelineResult result =
          pipeline.search_states(generator, config.baseline_arch);
      // Winner is chosen by *simulation* score; we report its emulation
      // score, exactly the paper's protocol.
      const double emu =
          result.has_best()
              ? result.outcomes[result.best_index].emulation_score
              : original_emu;
      const double impr =
          original_emu != 0.0
              ? (emu - original_emu) / std::abs(original_emu)
              : 0.0;
      const double paper_impr =
          (run.paper_score - paper.original) / std::abs(paper.original);
      table.add_row({env_name, "w/ " + run.profile.name,
                     util::format_double(emu, 4) + " (" +
                         util::format_double(run.paper_score, 4) + ")",
                     util::format_percent(impr, 1) + " (" +
                         util::format_percent(paper_impr, 1) + ")"});
    }
  }

  table.print(std::cout);
  bench::save_csv("table4_emulation.csv", table);
  std::cout << "[done] " << util::format_double(timer.seconds(), 1)
            << " s\n";
  return 0;
}

// Table 5: combining the states and neural networks generated with the
// GPT-3.5 profile.
//
// The paper crosses the top-30 states with the top-30 architectures (900
// combinations); the scaled version crosses the top-k of each search and
// trains every combination, reporting the per-environment improvement of
// state-only, net-only, and combined designs over the original.
#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "core/pipeline.h"

namespace {

struct PaperEntry {
  double state, net, combined;  // improvements (fractions)
};

PaperEntry paper_improvements(nada::trace::Environment env) {
  using E = nada::trace::Environment;
  switch (env) {
    case E::kFcc: return {0.017, 0.014, 0.022};
    case E::kStarlink: return {0.529, 0.500, 0.611};
    case E::k4G: return {0.130, 0.026, 0.165};
    case E::k5G: return {0.022, 0.030, 0.031};
  }
  return {};
}

/// Indices of the fully trained outcomes, best first.
std::vector<std::size_t> ranked_trained(
    const nada::core::PipelineResult& result) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    if (result.outcomes[i].fully_trained) idx.push_back(i);
  }
  std::sort(idx.begin(), idx.end(), [&result](std::size_t a, std::size_t b) {
    return result.outcomes[a].test_score > result.outcomes[b].test_score;
  });
  return idx;
}

}  // namespace

int main() {
  using namespace nada;
  const auto scale = util::ScaleConfig::from_env();
  bench::banner("Table 5 — Combining generated states and architectures",
                scale);
  bench::Stopwatch timer;
  util::ThreadPool pool;
  const double model_scale = util::env_double("NADA_SCALE_MODEL", 0.25);
  // Paper: top 30 x top 30 = 900 combinations; scaled: top_k x top_k.
  const std::size_t top_k =
      std::clamp<std::size_t>(scale.gen_count(30, 2), 2, 4);

  util::TextTable table("Table 5 improvements (paper value in parentheses)");
  table.set_header({"Dataset", "State", "Neural Net", "Combined"});

  for (const auto env : trace::all_environments()) {
    const char* env_name = trace::environment_name(env);
    const trace::Dataset dataset =
        trace::build_dataset(env, scale.traces, 42);
    const bool high_bw = env == trace::Environment::k4G ||
                         env == trace::Environment::k5G;
    const video::Video video = video::make_test_video(
        high_bw ? video::youtube_ladder() : video::pensieve_ladder(), 7);

    core::PipelineConfig config = core::scaled_pipeline_config(env, scale);
    config.full_train_top = top_k;
    core::Pipeline pipeline(dataset, video, config,
                            5000 + static_cast<int>(env), &pool);
    const double original = pipeline.original_baseline().test_score;

    gen::StateGenerator state_gen(gen::gpt35_profile(), gen::PromptStrategy{},
                                  71 + static_cast<int>(env));
    const auto state_result =
        pipeline.search_states(state_gen, config.baseline_arch);

    gen::ArchGenerator arch_gen(gen::gpt35_profile(), gen::PromptStrategy{},
                                72 + static_cast<int>(env), model_scale);
    const auto original_state =
        dsl::StateProgram::compile(dsl::pensieve_state_source());
    const auto arch_result = pipeline.search_archs(arch_gen, original_state);

    const auto top_states = ranked_trained(state_result);
    const auto top_archs = ranked_trained(arch_result);

    // Cross the winners: every (state, arch) pair gets full training.
    struct Combo {
      std::size_t state_idx;
      std::size_t arch_idx;
      double score = -1e9;
    };
    std::vector<Combo> combos;
    for (std::size_t s = 0; s < std::min(top_states.size(), top_k); ++s) {
      for (std::size_t a = 0; a < std::min(top_archs.size(), top_k); ++a) {
        combos.push_back(Combo{top_states[s], top_archs[a]});
      }
    }
    rl::SessionConfig session_config;
    session_config.seeds = config.seeds;
    session_config.train = config.train;
    pool.parallel_for(combos.size(), [&](std::size_t c) {
      const auto program = dsl::StateProgram::compile(
          state_result.outcomes[combos[c].state_idx].source);
      const auto result = rl::run_sessions(
          dataset, video, program,
          *arch_result.outcomes[combos[c].arch_idx].arch, session_config,
          6000 + c, nullptr);
      combos[c].score = result.failed ? -1e9 : result.test_score;
    });

    double best_combined = original;
    for (const auto& combo : combos) {
      best_combined = std::max(best_combined, combo.score);
    }
    const double state_best =
        state_result.has_best() ? state_result.best_score : original;
    const double arch_best =
        arch_result.has_best() ? arch_result.best_score : original;

    const PaperEntry paper = paper_improvements(env);
    auto impr = [original](double score) {
      return original != 0.0 ? (score - original) / std::abs(original) : 0.0;
    };
    table.add_row({env_name,
                   util::format_percent(impr(state_best), 1) + " (" +
                       util::format_percent(paper.state, 1) + ")",
                   util::format_percent(impr(arch_best), 1) + " (" +
                       util::format_percent(paper.net, 1) + ")",
                   util::format_percent(impr(best_combined), 1) + " (" +
                       util::format_percent(paper.combined, 1) + ")"});
    std::cout << "[" << env_name << "] " << combos.size()
              << " combinations trained (paper: 900)\n";
  }

  table.print(std::cout);
  bench::save_csv("table5_combined.csv", table);
  std::cout << "[done] " << util::format_double(timer.seconds(), 1)
            << " s\n";
  return 0;
}

// congestion_control: the paper's §5 extension direction, demonstrated.
//
// NADA's framework only requires (1) an algorithm with a code
// implementation and (2) a simulator to score it. This example moves both
// requirements from ABR to congestion control: the same NadaScript DSL
// expresses CC state functions over sender-side observations, the same
// pre-checks validate candidates, and a policy trained on those features
// competes with classic AIMD on a trace-driven bottleneck.
//
// Run: ./build/examples/congestion_control
#include <iostream>

#include "cc/cc_env.h"
#include "cc/cc_state.h"
#include "dsl/parser.h"
#include "nn/classifier.h"
#include "nn/layers.h"
#include "nn/mat.h"
#include "nn/optimizer.h"
#include "trace/generator.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace nada;

/// Tiny REINFORCE policy over DSL-produced features: flatten the state
/// matrix, one hidden layer, softmax over the rate actions.
class DslPolicy {
 public:
  DslPolicy(const dsl::Program& program, const cc::CcObservation& sample,
            util::Rng& rng)
      : program_(&program) {
    const auto matrix = cc::run_cc_program(program, sample);
    std::size_t dim = 0;
    for (const auto& len : matrix.row_lengths()) dim += len;
    hidden_ = std::make_unique<nn::Dense>(dim, 32, nn::Activation::kTanh, rng);
    head_ = std::make_unique<nn::Dense>(32, cc::rate_actions().size(),
                                        nn::Activation::kLinear, rng);
  }

  nn::Vec features(const cc::CcObservation& obs) const {
    const auto matrix = cc::run_cc_program(*program_, obs);
    nn::Vec flat;
    for (const auto& row : matrix.rows) {
      flat.insert(flat.end(), row.values.begin(), row.values.end());
    }
    return flat;
  }

  nn::Vec probs(const cc::CcObservation& obs) {
    return nn::softmax(head_->forward(hidden_->forward(features(obs))));
  }

  void reinforce(const cc::CcObservation& obs, std::size_t action,
                 double advantage) {
    const nn::Vec p = probs(obs);
    nn::Vec dlogits(p.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
      dlogits[i] = advantage * (p[i] - (i == action ? 1.0 : 0.0));
    }
    hidden_->backward(head_->backward(dlogits));
  }

  std::vector<nn::ParamRef> params() {
    auto ps = hidden_->params();
    for (auto p : head_->params()) ps.push_back(p);
    return ps;
  }

 private:
  const dsl::Program* program_;
  std::unique_ptr<nn::Dense> hidden_;
  std::unique_ptr<nn::Dense> head_;
};

}  // namespace

int main() {
  std::cout << "CC state-function input variables:\n";
  for (const auto& var : cc::cc_input_variables()) {
    std::cout << "  " << var.name << (var.is_vector ? " (vector)" : "")
              << "\n";
  }
  std::cout << "\nDefault CC state function:\n"
            << cc::default_cc_state_source() << "\n";

  // Environment: a 4G-like fluctuating bottleneck.
  util::Rng rng(7);
  const trace::Trace capacity =
      trace::generate_trace(trace::Environment::k4G, 400.0, rng);
  cc::CcConfig config;
  config.init_rate_mbps = 2.0;

  // Train a small REINFORCE policy on the DSL features.
  const dsl::Program program = dsl::parse(cc::default_cc_state_source());
  cc::CcEnv env(capacity, config, rng);
  DslPolicy policy(program, env.reset(), rng);
  nn::Adam adam(3e-3);
  util::Rng sample_rng(11);

  std::cout << "Training REINFORCE policy (120 episodes)...\n";
  for (int episode = 0; episode < 120; ++episode) {
    cc::CcObservation obs = env.reset();
    struct Step {
      cc::CcObservation obs;
      std::size_t action;
      double reward;
    };
    std::vector<Step> steps;
    while (!env.done()) {
      const nn::Vec p = policy.probs(obs);
      const std::size_t action = sample_rng.weighted_index(p);
      const auto r = env.step(action);
      steps.push_back({obs, action, r.reward});
      obs = r.observation;
    }
    // Discounted returns, standardized as the advantage baseline.
    std::vector<double> returns(steps.size());
    double running = 0.0;
    for (std::size_t t = steps.size(); t-- > 0;) {
      running = steps[t].reward + 0.95 * running;
      returns[t] = running;
    }
    const double mean = util::mean(returns);
    const double sd = std::max(util::stddev(returns), 1e-6);
    for (auto& r : returns) r = (r - mean) / sd;
    for (std::size_t t = 0; t < steps.size(); ++t) {
      policy.reinforce(steps[t].obs, steps[t].action,
                       returns[t] / static_cast<double>(steps.size()));
    }
    auto params = policy.params();
    nn::Optimizer::clip_global_norm(params, 5.0);
    adam.step(params);
  }

  // Head-to-head against AIMD on fresh episodes.
  util::Rng eval_rng(23);
  cc::CcEnv eval_env(capacity, config, eval_rng);
  cc::AimdController aimd;
  util::RunningStats aimd_scores, learned_scores;
  for (int i = 0; i < 10; ++i) {
    aimd.reset();
    aimd_scores.add(cc::run_episode(
        eval_env, [&aimd](const cc::CcObservation& o) { return aimd.act(o); }));
    learned_scores.add(cc::run_episode(
        eval_env, [&policy](const cc::CcObservation& o) {
          const nn::Vec p = policy.probs(o);
          std::size_t best = 0;
          for (std::size_t i = 1; i < p.size(); ++i) {
            if (p[i] > p[best]) best = i;
          }
          return best;
        }));
  }

  util::TextTable table("Mean per-interval reward (10 episodes)");
  table.set_header({"Controller", "Reward"});
  table.add_row({"AIMD", util::format_double(aimd_scores.mean(), 3)});
  table.add_row(
      {"DSL-state RL policy", util::format_double(learned_scores.mean(), 3)});
  table.print(std::cout);
  std::cout << "\nThe full NADA loop (generate CC states -> checks -> probe\n"
               "-> train) runs over this environment exactly as it does for\n"
               "ABR; see src/cc and DESIGN.md §5 notes.\n";
  return 0;
}

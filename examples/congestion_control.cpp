// congestion_control: the paper's §5 extension direction, as a first-class
// search domain.
//
// NADA's framework only requires (1) an algorithm with a code
// implementation and (2) a simulator to score it. This example runs the
// full funnel — generate CC state functions -> pre-check against the CC
// binding catalog -> batched probe -> early-stop ranking -> full training
// -> rank — over cc::CcDomain, through core::Pipeline, i.e. exactly the
// code path the ABR search uses. A persistent candidate store makes the
// second invocation serve every stage from its journal.
//
// Run: ./build/examples/congestion_control
#include <iostream>

#include "cc/cc_domain.h"
#include "cc/cc_env.h"
#include "cc/cc_state.h"
#include "core/pipeline.h"
#include "examples/example_common.h"
#include "gen/state_gen.h"
#include "store/candidate_store.h"
#include "trace/generator.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

int main() {
  using namespace nada;

  std::cout << "CC state-function input variables:\n";
  for (const auto& var : cc::cc_input_variables()) {
    std::cout << "  " << var.name << (var.is_vector ? " (vector)" : "")
              << "\n";
  }
  std::cout << "\nBaseline (hand-written) CC state function:\n"
            << cc::default_cc_state_source() << "\n";

  // Domain: a 4G-like fluctuating bottleneck, short monitor episodes so
  // the demo finishes in seconds.
  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::k4G, 0.2, 7);
  cc::CcConfig cc_config;
  cc_config.init_rate_mbps = 2.0;
  cc_config.steps_per_episode = 60;
  const cc::CcDomain domain(dataset, cc_config);

  // Funnel budgets (tiny demo scale).
  core::PipelineConfig config =
      examples::demo_funnel_config(/*candidates=*/24, /*early_epochs=*/6,
                                   /*full_train_top=*/3, /*seeds=*/2,
                                   /*epochs=*/16, /*test_interval=*/8,
                                   /*max_eval_traces=*/3);
  config.baseline_arch = examples::small_pensieve_arch(8, 8, 8, 16);

  util::ThreadPool pool(4);
  core::Pipeline pipeline(domain, config, 2024, &pool);

  // Persistent store: reruns of this example serve cached stages.
  const auto store = examples::attach_default_store(pipeline);
  std::cout << "\n";

  // CC candidates from the CC design space; the same generator machinery
  // the ABR search uses, pointed at the CC binding vocabulary.
  gen::StateGenerator generator(gen::cc_state_space(), gen::gpt4_profile(),
                                gen::PromptStrategy{}, 11);

  std::cout << "Running the CC search funnel (generate -> pre-check -> "
               "batched probe -> rank -> full train)...\n";
  const core::PipelineResult result =
      pipeline.search_states(generator, config.baseline_arch);

  util::TextTable funnel("CC search funnel");
  funnel.set_header({"Stage", "Count"});
  funnel.add_row({"generated", std::to_string(result.n_total)});
  funnel.add_row({"compiled", std::to_string(result.n_compiled)});
  funnel.add_row({"well-normalized", std::to_string(result.n_normalized)});
  funnel.add_row({"early-stopped", std::to_string(result.n_early_stopped)});
  funnel.add_row({"fully trained", std::to_string(result.n_fully_trained)});
  funnel.add_row({"cache hits", std::to_string(result.cache_hits())});
  funnel.add_row({"probes run", std::to_string(result.n_probes_run)});
  funnel.add_row({"full trains run",
                  std::to_string(result.n_full_trains_run)});
  funnel.print(std::cout);

  // AIMD reference over the same strided test-trace subset the trained
  // policies' checkpoint evaluations use (max_eval_traces). Episode start
  // offsets still differ between the runs (each trained seed evaluates
  // under its own eval seed), so read the table as indicative, not as an
  // episode-matched head-to-head.
  const auto eval_units =
      rl::eval_trace_indices(domain.num_eval_units(),
                             config.train.max_eval_traces);
  util::Rng aimd_rng(23);
  cc::AimdController aimd;
  util::RunningStats aimd_rewards;
  for (std::size_t unit : eval_units) {
    cc::CcEnv env(dataset.test[unit], cc_config, aimd_rng);
    aimd.reset();
    cc::CcObservation obs = env.reset();
    while (!env.done()) {
      const auto r = env.step(aimd.act(obs));
      aimd_rewards.add(r.reward);
      obs = r.observation;
    }
  }

  util::TextTable table(
      "Mean per-interval reward (held-out capacity traces)");
  table.set_header({"Controller", "Reward"});
  table.add_row({"AIMD", util::format_double(aimd_rewards.mean(), 3)});
  table.add_row({"hand-written CC state (trained)",
                 util::format_double(result.original_score, 3)});
  if (result.has_best()) {
    const auto& best = result.outcomes[result.best_index];
    table.add_row({"best searched CC state (" + best.id + ")",
                   util::format_double(best.test_score, 3)});
  }
  table.print(std::cout);

  if (result.has_best()) {
    std::cout << "\nBest searched CC state function:\n"
              << result.outcomes[result.best_index].source;
  }
  std::cout << "\nRe-run this example: every funnel stage above is served "
               "from the store journal\n(probes run and full trains run "
               "drop to 0).\n";
  return 0;
}

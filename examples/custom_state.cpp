// custom_state: write your own ABR state function in NadaScript, validate
// it with NADA's pre-checks, train it, and compare against Pensieve's.
//
// Demonstrates the state-function DSL: available inputs, builtins (trend,
// EMA, Savitzky-Golay smoothing, linear-regression prediction), and the
// compile/normalization checks a design must pass before training.
//
// Run: ./build/examples/custom_state
#include <iostream>

#include "dsl/state_program.h"
#include "filter/checks.h"
#include "rl/session.h"
#include "trace/generator.h"
#include "util/table.h"
#include "video/video.h"
#include "env/abr_domain.h"

int main() {
  using namespace nada;

  // A 4G-oriented design using the features §4 of the paper highlights:
  // ladder-relative normalization, buffer history trends, and predicted
  // throughput.
  const std::string my_state = R"(# custom: ladder-aware + buffer-trend state
emit "last_quality" = last_bitrate_kbps / max_bitrate_kbps;
emit "buffer_s" = buffer_size_s / 10.0;
emit "throughput" = throughput_mbps / (max_bitrate_kbps / 1000.0);
emit "next_sizes" = next_chunk_sizes_bytes * 8.0 / (max_bitrate_kbps * 1000.0 * chunk_length_s);
emit "chunks_left" = chunks_remaining / total_chunks;
emit "buf_trend" = trend(buffer_size_s_history) / chunk_length_s;
emit "tput_pred" = linreg_predict(throughput_mbps) / (max_bitrate_kbps / 1000.0);
)";

  std::cout << "Input variables available to state programs:\n";
  for (const auto& var : env::input_variables()) {
    std::cout << "  " << var.name << (var.is_vector ? "  (vector)" : "")
              << "\n";
  }

  // --- validate -------------------------------------------------------------
  std::optional<dsl::StateProgram> program;
  const auto compile = filter::compilation_check(my_state, env::abr_catalog(), &program);
  if (!compile.passed) {
    std::cerr << "compilation check failed: " << compile.reason << "\n";
    return 1;
  }
  const auto norm = filter::normalization_check(*program, env::abr_catalog());
  if (!norm.passed) {
    std::cerr << "normalization check failed: " << norm.reason << "\n";
    return 1;
  }
  std::cout << "\nBoth pre-checks passed. State shape:";
  for (std::size_t len : program->run(env::abr_catalog().canned()).row_lengths()) {
    std::cout << " " << len;
  }
  std::cout << "\n";

  // --- train & compare -------------------------------------------------------
  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::k4G, 0.08, 5);
  const video::Video video = video::make_test_video(video::youtube_ladder(),
                                                    3);
  rl::SessionConfig config;
  config.seeds = 3;
  config.train.epochs = 1500;
  config.train.test_interval = 75;
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = arch.rnn_hidden = arch.scalar_hidden =
      arch.merge_hidden = 32;
  util::ThreadPool pool;

  std::cout << "Training custom and original states ("
            << config.train.epochs << " epochs x " << config.seeds
            << " seeds each)...\n";
  const auto original =
      dsl::StateProgram::compile(dsl::pensieve_state_source());
  const auto original_result =
      rl::run_sessions(dataset, video, original, arch, config, 31, &pool);
  const auto custom_result =
      rl::run_sessions(dataset, video, *program, arch, config, 31, &pool);

  util::TextTable table("4G test scores");
  table.set_header({"State design", "Score"});
  table.add_row({"Pensieve original",
                 util::format_double(original_result.test_score, 3)});
  table.add_row({"custom (ladder-aware)",
                 util::format_double(custom_result.test_score, 3)});
  table.print(std::cout);
  const double impr =
      (custom_result.test_score - original_result.test_score) /
      std::abs(original_result.test_score);
  std::cout << "Improvement: " << util::format_percent(impr, 1) << "\n";
  return 0;
}

// design_search: run the full NADA loop on the Starlink environment and
// print what it found.
//
// This is the paper's Figure-1 workflow end to end at demo scale:
// generate candidate state functions with the GPT-4-calibrated generator,
// filter them through the compilation and normalization checks, probe the
// survivors with short training runs, fully train the most promising, and
// compare the winner with Pensieve's original state.
//
// Run: ./build/examples/design_search
#include <iostream>

#include "core/pipeline.h"
#include "examples/example_common.h"
#include "util/table.h"

int main() {
  using namespace nada;

  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::kStarlink, 0.3, 2024);
  const video::Video video =
      video::make_test_video(video::pensieve_ladder(), 11);
  util::ThreadPool pool;

  core::PipelineConfig config =
      examples::demo_funnel_config(/*candidates=*/60, /*early_epochs=*/80,
                                   /*full_train_top=*/4, /*seeds=*/3,
                                   /*epochs=*/500, /*test_interval=*/25,
                                   /*max_eval_traces=*/0);
  config.baseline_arch = examples::small_pensieve_arch(32, 32, 32, 32);

  std::cout << "Searching " << config.num_candidates
            << " generated state designs on Starlink...\n";
  core::Pipeline pipeline(dataset, video, config, 99, &pool);
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                7);
  const core::PipelineResult result =
      pipeline.search_states(generator, config.baseline_arch);

  std::cout << "\nFunnel: " << result.n_total << " generated -> "
            << result.n_compiled << " compiled -> " << result.n_normalized
            << " well-normalized -> "
            << (result.n_normalized - result.n_early_stopped)
            << " kept after probes -> " << result.n_fully_trained
            << " fully trained\n";

  // Show a couple of rejected candidates and why.
  std::cout << "\nSample rejections:\n";
  std::size_t shown = 0;
  for (const auto& outcome : result.outcomes) {
    if (shown >= 3) break;
    if (!outcome.compiled) {
      std::cout << "  [" << outcome.id << "] compilation check: "
                << outcome.compile_error << "\n";
      ++shown;
    } else if (!outcome.normalized) {
      std::cout << "  [" << outcome.id << "] normalization check: "
                << outcome.normalization_error << "\n";
      ++shown;
    }
  }

  std::cout << "\nOriginal (Pensieve) score: "
            << util::format_double(result.original_score, 3) << "\n";
  if (result.has_best()) {
    const auto& best = result.outcomes[result.best_index];
    std::cout << "Best generated score:      "
              << util::format_double(result.best_score, 3) << "  ("
              << util::format_percent(result.improvement(), 1)
              << " vs original)\n";
    std::cout << "\n--- winning state function (" << best.id << ") ---\n"
              << best.source << "---\n";
  } else {
    std::cout << "No candidate survived to full training (rerun with more "
                 "candidates).\n";
  }
  return 0;
}

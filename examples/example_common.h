// Shared boilerplate for the example binaries: demo-scale funnel configs,
// the store-dir setup every store-backed example repeats, and the funnel
// summary printer. Examples stay single-file and readable; this header
// keeps them from each re-implementing the same setup with drifting
// details.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/metrics_observer.h"
#include "obs/status.h"
#include "obs/trace_sink.h"
#include "search/search_job.h"
#include "search/types.h"
#include "store/candidate_store.h"
#include "util/fs.h"

namespace nada::examples {

/// Pensieve's architecture with demo-scale tower widths. Any width left 0
/// keeps the paper-scale default.
inline nn::ArchSpec small_pensieve_arch(std::size_t conv_filters,
                                        std::size_t rnn_hidden,
                                        std::size_t scalar_hidden,
                                        std::size_t merge_hidden) {
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  if (conv_filters != 0) arch.conv_filters = conv_filters;
  if (rnn_hidden != 0) arch.rnn_hidden = rnn_hidden;
  if (scalar_hidden != 0) arch.scalar_hidden = scalar_hidden;
  if (merge_hidden != 0) arch.merge_hidden = merge_hidden;
  return arch;
}

/// A demo-scale funnel config (seconds, not hours): `candidates` through a
/// `early_epochs`-epoch probe, `full_train_top` survivors across `seeds`
/// seeds of `epochs`-epoch training.
inline search::SearchConfig demo_funnel_config(
    std::size_t candidates, std::size_t early_epochs,
    std::size_t full_train_top, std::size_t seeds, std::size_t epochs,
    std::size_t test_interval, std::size_t max_eval_traces) {
  search::SearchConfig config;
  config.num_candidates = candidates;
  config.early_epochs = early_epochs;
  config.full_train_top = full_train_top;
  config.seeds = seeds;
  config.train.epochs = epochs;
  config.train.test_interval = test_interval;
  config.train.max_eval_traces = max_eval_traces;
  return config;
}

/// Opens (creating if absent) the journal for `scope` under
/// $NADA_STORE_DIR (default ./nada_store) and prints the standard store
/// banner.
inline std::unique_ptr<store::CandidateStore> open_default_store(
    const store::StoreScope& scope, std::ostream& out = std::cout) {
  auto cache = std::make_unique<store::CandidateStore>(
      store::default_store_path(scope), scope);
  out << "store: " << cache->path() << " (" << cache->size()
      << " records on open, scope " << scope.env << "/"
      << scope.config_digest.substr(0, 12) << "...)\n";
  return cache;
}

/// As above, and attaches the store to the pipeline.
inline std::unique_ptr<store::CandidateStore> attach_default_store(
    core::Pipeline& pipeline, std::ostream& out = std::cout) {
  auto cache = open_default_store(pipeline.store_scope(), out);
  pipeline.attach_store(cache.get());
  return cache;
}

/// Environment-variable-driven observability sinks for the example
/// binaries (no flag parsing in the examples):
///
///   NADA_METRICS_OUT=metrics.json  final registry snapshot on finish()
///   NADA_TRACE_OUT=trace.jsonl     every search event, one JSONL line
///   NADA_STATUS_OUT=status.json    live atomic status snapshot
///
/// Unset variables cost nothing. All sinks are pure readout — results are
/// bit-identical with and without them (see docs/OBSERVABILITY.md).
struct EnvSinks {
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::MetricsObserver> metrics;
  std::unique_ptr<obs::TraceSink> trace;
  std::unique_ptr<obs::StatusWriter> status;
  std::string metrics_path;

  /// Registers the active sinks on a job. Pair with
  /// `options.metrics = sinks.registry.get()` before constructing the job
  /// to also capture the hot-path profiling histograms.
  void attach(search::SearchJob& job) {
    if (metrics != nullptr) job.add_observer(metrics.get());
    if (trace != nullptr) job.add_observer(trace.get());
    if (status != nullptr) job.add_observer(status.get());
  }

  /// Terminal status snapshot + the metrics dump. Call once, after the
  /// last attached job completes.
  void finish(std::ostream& out = std::cout) {
    if (status != nullptr) status->finish();
    if (registry != nullptr) {
      util::ensure_directories(util::parent_directory(metrics_path));
      util::write_file_atomic(metrics_path,
                              registry->snapshot().dump() + "\n");
      out << "metrics: " << metrics_path << "\n";
    }
  }
};

/// Builds the sinks selected by the NADA_*_OUT environment variables.
/// `label` and `total_candidates` feed the status snapshot.
inline EnvSinks env_sinks(const std::string& label,
                          std::size_t total_candidates) {
  const auto env_path = [](const char* name) {
    const char* value = std::getenv(name);
    return std::string(value != nullptr ? value : "");
  };
  EnvSinks sinks;
  if (const std::string path = env_path("NADA_METRICS_OUT"); !path.empty()) {
    sinks.registry = std::make_unique<obs::MetricsRegistry>();
    sinks.metrics = std::make_unique<obs::MetricsObserver>(*sinks.registry);
    sinks.metrics_path = path;
  }
  if (const std::string path = env_path("NADA_TRACE_OUT"); !path.empty()) {
    util::ensure_directories(util::parent_directory(path));
    sinks.trace = std::make_unique<obs::TraceSink>(path);
  }
  if (const std::string path = env_path("NADA_STATUS_OUT"); !path.empty()) {
    util::ensure_directories(util::parent_directory(path));
    sinks.status = std::make_unique<obs::StatusWriter>(
        obs::StatusConfig{path, label, total_candidates});
  }
  return sinks;
}

/// The funnel-counts summary every search example prints.
inline void print_funnel_summary(const search::SearchResult& result,
                                 std::ostream& out = std::cout) {
  out << "funnel: " << result.n_total << " candidates, " << result.n_compiled
      << " compiled, " << result.n_normalized << " well-normalized, "
      << result.n_early_stopped << " early-stopped, "
      << result.n_fully_trained << " fully trained\n"
      << "work:   " << result.n_probes_run << " probes and "
      << result.n_full_trains_run << " full trainings executed; "
      << result.cache_hits() << " stage results from cache\n";
  if (result.has_best()) {
    out << "best:   " << result.outcomes[result.best_index].id << " score "
        << result.best_score << " (baseline " << result.original_score
        << ")\n";
  }
}

}  // namespace nada::examples

// Shared boilerplate for the example binaries: demo-scale funnel configs,
// the store-dir setup every store-backed example repeats, and the funnel
// summary printer. Examples stay single-file and readable; this header
// keeps them from each re-implementing the same setup with drifting
// details.
#pragma once

#include <iostream>
#include <memory>
#include <string>

#include "core/pipeline.h"
#include "search/types.h"
#include "store/candidate_store.h"

namespace nada::examples {

/// Pensieve's architecture with demo-scale tower widths. Any width left 0
/// keeps the paper-scale default.
inline nn::ArchSpec small_pensieve_arch(std::size_t conv_filters,
                                        std::size_t rnn_hidden,
                                        std::size_t scalar_hidden,
                                        std::size_t merge_hidden) {
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  if (conv_filters != 0) arch.conv_filters = conv_filters;
  if (rnn_hidden != 0) arch.rnn_hidden = rnn_hidden;
  if (scalar_hidden != 0) arch.scalar_hidden = scalar_hidden;
  if (merge_hidden != 0) arch.merge_hidden = merge_hidden;
  return arch;
}

/// A demo-scale funnel config (seconds, not hours): `candidates` through a
/// `early_epochs`-epoch probe, `full_train_top` survivors across `seeds`
/// seeds of `epochs`-epoch training.
inline search::SearchConfig demo_funnel_config(
    std::size_t candidates, std::size_t early_epochs,
    std::size_t full_train_top, std::size_t seeds, std::size_t epochs,
    std::size_t test_interval, std::size_t max_eval_traces) {
  search::SearchConfig config;
  config.num_candidates = candidates;
  config.early_epochs = early_epochs;
  config.full_train_top = full_train_top;
  config.seeds = seeds;
  config.train.epochs = epochs;
  config.train.test_interval = test_interval;
  config.train.max_eval_traces = max_eval_traces;
  return config;
}

/// Opens (creating if absent) the journal for `scope` under
/// $NADA_STORE_DIR (default ./nada_store) and prints the standard store
/// banner.
inline std::unique_ptr<store::CandidateStore> open_default_store(
    const store::StoreScope& scope, std::ostream& out = std::cout) {
  auto cache = std::make_unique<store::CandidateStore>(
      store::default_store_path(scope), scope);
  out << "store: " << cache->path() << " (" << cache->size()
      << " records on open, scope " << scope.env << "/"
      << scope.config_digest.substr(0, 12) << "...)\n";
  return cache;
}

/// As above, and attaches the store to the pipeline.
inline std::unique_ptr<store::CandidateStore> attach_default_store(
    core::Pipeline& pipeline, std::ostream& out = std::cout) {
  auto cache = open_default_store(pipeline.store_scope(), out);
  pipeline.attach_store(cache.get());
  return cache;
}

/// The funnel-counts summary every search example prints.
inline void print_funnel_summary(const search::SearchResult& result,
                                 std::ostream& out = std::cout) {
  out << "funnel: " << result.n_total << " candidates, " << result.n_compiled
      << " compiled, " << result.n_normalized << " well-normalized, "
      << result.n_early_stopped << " early-stopped, "
      << result.n_fully_trained << " fully trained\n"
      << "work:   " << result.n_probes_run << " probes and "
      << result.n_full_trains_run << " full trainings executed; "
      << result.cache_hits() << " stage results from cache\n";
  if (result.has_best()) {
    out << "best:   " << result.outcomes[result.best_index].id << " score "
        << result.best_score << " (baseline " << result.original_score
        << ")\n";
  }
}

}  // namespace nada::examples

// Persistent search: the candidate store in front of the NADA funnel.
//
//   1. Open (or create) a content-addressed store for this funnel config.
//   2. Run a state search — every stage checkpoints into the store.
//   3. Run it again: everything is served from cache, nothing retrains.
//   4. Kill-and-resume: resume_states() continues from the journal.
//
// Run it twice to see the cache carry across processes:
//   ./build/examples/persistent_search
//   ./build/examples/persistent_search   # all cache hits
// The journal lands under $NADA_STORE_DIR (default ./nada_store).
#include <iostream>

#include "core/pipeline.h"
#include "gen/state_gen.h"
#include "store/candidate_store.h"
#include "trace/generator.h"
#include "util/thread_pool.h"
#include "video/video.h"

int main() {
  using namespace nada;

  // --- a small funnel over synthetic 4G traces -----------------------------
  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::k4G, 0.05, 21);
  const video::Video video = video::make_test_video(video::youtube_ladder(),
                                                    42);
  util::ThreadPool pool;

  core::PipelineConfig config;
  config.num_candidates = 30;
  config.early_epochs = 8;
  config.full_train_top = 3;
  config.seeds = 2;
  config.train.epochs = 24;
  config.train.test_interval = 8;
  config.train.max_eval_traces = 4;
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = 8;
  arch.scalar_hidden = 8;
  arch.merge_hidden = 16;
  config.baseline_arch = arch;

  core::Pipeline pipeline(dataset, video, config, 1234, &pool);

  // --- 1. the store, scoped to (environment, funnel-config digest) ---------
  const store::StoreScope scope = pipeline.store_scope();
  const std::string journal = store::default_store_path(scope);
  store::CandidateStore cache(journal, scope);
  pipeline.attach_store(&cache);
  std::cout << "store: " << journal << " (" << cache.size()
            << " records on open, scope " << scope.env << "/"
            << scope.config_digest.substr(0, 12) << "...)\n";

  // --- 2./3. the search; reruns hit the journal ----------------------------
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                77);
  const core::PipelineResult result =
      pipeline.search_states(generator, config.baseline_arch);
  std::cout << "funnel: " << result.n_total << " candidates, "
            << result.n_compiled << " compiled, " << result.n_fully_trained
            << " fully trained\n"
            << "work:   " << result.n_probes_run << " probes and "
            << result.n_full_trains_run << " full trainings executed; "
            << result.cache_hits() << " stage results from cache\n";
  if (result.has_best()) {
    std::cout << "best:   " << result.outcomes[result.best_index].id
              << " score " << result.best_score << " (baseline "
              << result.original_score << ")\n";
  }

  // --- 4. resuming an interrupted run is the same call, after reset --------
  // If the previous process died mid-funnel, the journal holds whatever
  // stages completed; resume_states replays the generator stream and only
  // executes the missing work.
  const core::PipelineResult resumed =
      pipeline.resume_states(generator, config.baseline_arch);
  std::cout << "resume: " << resumed.n_probes_run << " probes and "
            << resumed.n_full_trains_run
            << " full trainings executed (expected 0 and 0: the run above "
               "checkpointed every stage)\n";
  return 0;
}

// Persistent search through the composable search API.
//
//   1. Open (or create) a content-addressed store for this funnel config.
//   2. Run a state search as a search::SearchJob, stepping stage by stage
//      with a StreamObserver printing live funnel events.
//   3. Run it again: everything is served from cache, nothing retrains.
//   4. Kill-and-resume: SearchJob::resume() continues from the journal.
//
// Run it twice to see the cache carry across processes:
//   ./build/examples/persistent_search
//   ./build/examples/persistent_search   # all cache hits
// The journal lands under $NADA_STORE_DIR (default ./nada_store).
//
// (core::Pipeline::search_states/resume_states remain as the stable
// blocking wrappers over exactly this job — see examples/design_search.cpp
// for that surface.)
#include <iostream>
#include <optional>

#include "examples/example_common.h"
#include "gen/state_gen.h"
#include "search/candidate.h"
#include "search/observer.h"
#include "search/search_job.h"
#include "trace/generator.h"
#include "util/thread_pool.h"
#include "video/video.h"

int main() {
  using namespace nada;

  // --- a small funnel over synthetic 4G traces -----------------------------
  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::k4G, 0.05, 21);
  const video::Video video = video::make_test_video(video::youtube_ladder(),
                                                    42);
  const env::AbrDomain domain(dataset, video);
  util::ThreadPool pool;

  search::SearchConfig config =
      examples::demo_funnel_config(/*candidates=*/30, /*early_epochs=*/8,
                                   /*full_train_top=*/3, /*seeds=*/2,
                                   /*epochs=*/24, /*test_interval=*/8,
                                   /*max_eval_traces=*/4);
  config.baseline_arch = examples::small_pensieve_arch(8, 0, 8, 16);

  // --- 1. the store, scoped to (environment, funnel-config digest) ---------
  const store::StoreScope scope = search::store_scope(domain, config, 1234);
  const auto cache = examples::open_default_store(scope);

  // --- 2./3. the search, one observable stage at a time --------------------
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                77);
  search::StateCandidateSource source(generator);
  std::optional<rl::SessionResult> baseline;  // trained once, shared below
  // Optional sinks via NADA_METRICS_OUT / NADA_TRACE_OUT / NADA_STATUS_OUT
  // (pure readout — attach them all and the results stay bit-identical).
  auto sinks = examples::env_sinks("persistent_search", config.num_candidates);
  search::JobOptions options;
  options.store = cache.get();
  options.pool = &pool;
  options.baseline_cache = &baseline;
  options.metrics = sinks.registry.get();
  search::SearchJob job(domain, config, 1234, source,
                        search::FixedDesign{nullptr, &config.baseline_arch},
                        options);
  search::StreamObserver observer(std::cout, /*candidate_events=*/false);
  job.add_observer(&observer);
  sinks.attach(job);
  while (job.next_stage()) {
    // next_stage() runs exactly one funnel stage; a service would pump
    // other work (or report progress) between stages here.
  }
  const search::SearchResult result = job.result();
  examples::print_funnel_summary(result);

  // --- 4. resuming an interrupted run: same stream, fresh job --------------
  // If the previous process died mid-funnel, the journal holds whatever
  // stages completed; resume() replays the generator stream and only
  // executes the missing work.
  search::SearchJob resume_job(
      domain, config, 1234, source,
      search::FixedDesign{nullptr, &config.baseline_arch}, options);
  const search::SearchResult resumed = resume_job.resume();
  std::cout << "resume: " << resumed.n_probes_run << " probes and "
            << resumed.n_full_trains_run
            << " full trainings executed (expected 0 and 0: the run above "
               "checkpointed every stage)\n";
  sinks.finish();
  return 0;
}

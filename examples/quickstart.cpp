// Quickstart: the 5-minute tour of the library.
//
//   1. Generate a synthetic 4G bandwidth trace.
//   2. Stream a video over it with a trivial fixed policy and look at QoE.
//   3. Compile Pensieve's state function (written in NadaScript).
//   4. Train an actor-critic ABR agent on a small dataset.
//   5. Evaluate it against the fixed policy.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <iostream>

#include "dsl/state_program.h"
#include "env/abr_env.h"
#include "rl/session.h"
#include "trace/generator.h"
#include "util/stats.h"
#include "util/table.h"
#include "video/video.h"
#include "env/abr_domain.h"

int main() {
  using namespace nada;

  // --- 1. A synthetic 4G trace (see trace::model_for for the model). -------
  util::Rng rng(7);
  const trace::Trace tr =
      trace::generate_trace(trace::Environment::k4G, 300.0, rng);
  std::cout << "Generated trace '" << tr.name() << "': "
            << tr.duration_s() << " s, mean "
            << util::format_double(tr.mean_kbps() / 1000.0, 1) << " Mbps\n";

  // --- 2. Stream with a fixed mid-ladder policy. ---------------------------
  const video::Video video = video::make_test_video(video::youtube_ladder(),
                                                    42);
  env::AbrEnv env(tr, video, env::Fidelity::kSimulation, rng);
  env.reset();
  double fixed_total = 0.0;
  std::size_t stalls = 0;
  while (!env.done()) {
    const auto step = env.step(2);  // always 4.3 Mbps
    fixed_total += step.reward;
    if (step.rebuffer_s > 0.0) ++stalls;
  }
  std::cout << "Fixed 4.3 Mbps policy: total QoE "
            << util::format_double(fixed_total, 1) << " over "
            << video.num_chunks() << " chunks (" << stalls << " stalls)\n";

  // --- 3. The original Pensieve state, as a NadaScript program. ------------
  const dsl::StateProgram state =
      dsl::StateProgram::compile(dsl::pensieve_state_source());
  const dsl::StateMatrix matrix = state.run(env::abr_catalog().canned());
  std::cout << "\nPensieve state matrix (" << matrix.rows.size()
            << " rows):\n";
  for (const auto& row : matrix.rows) {
    std::cout << "  " << row.name << " [" << row.values.size() << "]\n";
  }

  // --- 4. Train an agent (tiny budget; see bench/ for full experiments). ---
  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::k4G, 0.05, 21);
  rl::SessionConfig config;
  config.seeds = 2;
  config.train.epochs = 1000;
  config.train.test_interval = 100;
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = arch.rnn_hidden = arch.scalar_hidden =
      arch.merge_hidden = 32;  // shrink for the demo
  std::cout << "\nTraining " << config.seeds << " sessions of "
            << config.train.epochs << " epochs (" << arch.describe()
            << ")...\n";
  const rl::SessionResult result =
      rl::run_sessions(dataset, video, state, arch, config, 1234);

  // --- 5. Compare. -----------------------------------------------------------
  util::TextTable table("Results (mean per-chunk QoE on held-out traces)");
  table.set_header({"Policy", "Score"});
  double fixed_eval = 0.0;
  {
    util::Rng eval_rng(5);
    util::RunningStats rs;
    for (const auto& test_trace : dataset.test) {
      env::AbrEnv e(test_trace, video, env::Fidelity::kSimulation, eval_rng);
      e.reset();
      while (!e.done()) rs.add(e.step(2).reward);
    }
    fixed_eval = rs.mean();
  }
  table.add_row({"fixed 4.3 Mbps", util::format_double(fixed_eval, 3)});
  table.add_row({"trained agent", util::format_double(result.test_score, 3)});
  table.print(std::cout);
  std::cout << "\nNext: examples/design_search shows NADA generating states"
               " that beat this one.\n";
  return 0;
}

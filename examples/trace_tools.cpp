// trace_tools: generate per-environment trace datasets and export them in
// both the Pensieve "cooked" format and the Mahimahi packet-delivery
// format, then reload and verify.
//
// Useful when pointing an external simulator/emulator at the same synthetic
// conditions this repository trains on.
//
// Run: ./build/examples/trace_tools [output_dir]
#include <filesystem>
#include <iostream>

#include "trace/generator.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nada;
  const std::string out_dir = argc > 1 ? argv[1] : "generated_traces";

  util::TextTable table("Exported traces");
  table.set_header({"File", "Duration s", "Mean Mbps", "Stddev Mbps"});

  for (const auto env : trace::all_environments()) {
    util::Rng rng(2024 + static_cast<int>(env));
    for (int i = 0; i < 3; ++i) {
      const trace::Trace tr = trace::generate_trace(env, 240.0, rng);
      const std::string base = std::string(out_dir) + "/" +
                               trace::environment_name(env) + "_" +
                               std::to_string(i);
      util::write_file(base + ".cooked", trace::to_cooked_format(tr));
      util::write_file(base + ".mahimahi", trace::to_mahimahi_format(tr));

      // Round-trip sanity: the mahimahi schedule reproduces the rate.
      const trace::Trace back = trace::from_mahimahi_format(
          "verify", trace::to_mahimahi_format(tr));
      const double drift =
          std::abs(back.mean_kbps() - tr.mean_kbps()) / tr.mean_kbps();
      if (drift > 0.05) {
        std::cerr << "round-trip drift too large for " << base << "\n";
        return 1;
      }
      table.add_row({base + ".{cooked,mahimahi}",
                     util::format_double(tr.duration_s(), 0),
                     util::format_double(tr.mean_kbps() / 1000.0, 2),
                     util::format_double(tr.stddev_kbps() / 1000.0, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "Files written under '" << out_dir << "/'.\n";
  return 0;
}

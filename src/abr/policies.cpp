#include "abr/policies.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.h"

namespace nada::abr {
namespace {

std::size_t level_index_of_kbps(const env::Observation& obs, double kbps) {
  for (std::size_t i = 0; i < obs.ladder_kbps.size(); ++i) {
    if (obs.ladder_kbps[i] == kbps) return i;
  }
  return 0;
}

}  // namespace

double harmonic_mean_positive(std::span<const double> xs) {
  double inv_sum = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x > 0.0) {
      inv_sum += 1.0 / x;
      ++n;
    }
  }
  return n > 0 ? static_cast<double>(n) / inv_sum : 0.0;
}

std::size_t FixedPolicy::choose(const env::Observation& obs) {
  if (level_ >= obs.ladder_kbps.size()) {
    throw std::out_of_range("FixedPolicy: level outside ladder");
  }
  return level_;
}

BufferBasedPolicy::BufferBasedPolicy(double reservoir_s, double cushion_s)
    : reservoir_s_(reservoir_s), cushion_s_(cushion_s) {
  if (reservoir_s_ < 0.0 || cushion_s_ <= 0.0) {
    throw std::invalid_argument("BufferBasedPolicy: bad parameters");
  }
}

std::size_t BufferBasedPolicy::choose(const env::Observation& obs) {
  const std::size_t levels = obs.ladder_kbps.size();
  if (obs.buffer_s <= reservoir_s_) return 0;
  if (obs.buffer_s >= reservoir_s_ + cushion_s_) return levels - 1;
  const double fraction = (obs.buffer_s - reservoir_s_) / cushion_s_;
  return static_cast<std::size_t>(fraction * static_cast<double>(levels - 1) +
                                  0.5);
}

RateBasedPolicy::RateBasedPolicy(double safety, double startup_buffer_s)
    : safety_(safety), startup_buffer_s_(startup_buffer_s) {
  if (safety_ <= 0.0 || safety_ > 1.0) {
    throw std::invalid_argument("RateBasedPolicy: safety outside (0, 1]");
  }
}

std::size_t RateBasedPolicy::choose(const env::Observation& obs) {
  const double predicted_mbps =
      harmonic_mean_positive(obs.throughput_mbps);
  if (predicted_mbps <= 0.0 || obs.buffer_s < startup_buffer_s_) return 0;
  const double budget_kbps = predicted_mbps * 1000.0 * safety_;
  std::size_t level = 0;
  for (std::size_t i = 0; i < obs.ladder_kbps.size(); ++i) {
    if (obs.ladder_kbps[i] <= budget_kbps) level = i;
  }
  return level;
}

RobustMpcPolicy::RobustMpcPolicy(std::size_t horizon) : horizon_(horizon) {
  if (horizon_ == 0 || horizon_ > 5) {
    throw std::invalid_argument("RobustMpcPolicy: horizon outside [1, 5]");
  }
}

void RobustMpcPolicy::reset() {
  last_forecast_mbps_ = 0.0;
  max_error_ = 0.0;
}

double RobustMpcPolicy::forecast_mbps(const env::Observation& obs) {
  const double actual = obs.throughput_mbps.empty()
                            ? 0.0
                            : obs.throughput_mbps.back();
  if (last_forecast_mbps_ > 0.0 && actual > 0.0) {
    const double error =
        std::abs(last_forecast_mbps_ - actual) / actual;
    // Track the recent worst error with slow decay.
    max_error_ = std::max(error, max_error_ * 0.9);
  }
  const double harmonic = harmonic_mean_positive(obs.throughput_mbps);
  last_forecast_mbps_ = harmonic;
  return harmonic / (1.0 + max_error_);
}

std::size_t RobustMpcPolicy::choose(const env::Observation& obs) {
  const std::size_t levels = obs.ladder_kbps.size();
  const double forecast = forecast_mbps(obs);
  if (forecast <= 0.0) return 0;

  const double chunk_s = obs.chunk_len_s;
  const double mu = obs.ladder_kbps.back() / 1000.0;  // QoE_lin penalty
  const std::size_t last_level =
      level_index_of_kbps(obs, obs.last_bitrate_kbps);
  const auto chunks_left = static_cast<std::size_t>(obs.chunks_remaining);
  const std::size_t steps = std::min(horizon_, std::max<std::size_t>(
                                                   chunks_left, 1));

  // Enumerate all plans of length `steps` (levels^steps <= 6^5 = 7776).
  std::size_t plan_count = 1;
  for (std::size_t i = 0; i < steps; ++i) plan_count *= levels;

  double best_value = -1e18;
  std::size_t best_first = 0;
  for (std::size_t plan = 0; plan < plan_count; ++plan) {
    double buffer = obs.buffer_s;
    double value = 0.0;
    std::size_t prev = last_level;
    std::size_t code = plan;
    std::size_t first = code % levels;
    for (std::size_t step = 0; step < steps; ++step) {
      const std::size_t level = code % levels;
      code /= levels;
      // Future chunk sizes approximated by nominal encode size; the next
      // chunk uses the observation's exact sizes.
      const double bytes =
          step == 0 && level < obs.next_chunk_bytes.size() &&
                  obs.next_chunk_bytes[level] > 0.0
              ? obs.next_chunk_bytes[level]
              : obs.ladder_kbps[level] * 1000.0 / 8.0 * chunk_s;
      const double download_s = bytes * 8.0 / 1e6 / forecast;
      const double rebuffer = std::max(download_s - buffer, 0.0);
      buffer = std::max(buffer - download_s, 0.0) + chunk_s;
      const double quality = obs.ladder_kbps[level] / 1000.0;
      const double prev_quality = obs.ladder_kbps[prev] / 1000.0;
      value += quality - mu * rebuffer - std::abs(quality - prev_quality);
      prev = level;
    }
    if (value > best_value) {
      best_value = value;
      best_first = first;
    }
  }
  return best_first;
}

double evaluate_policy(AbrPolicy& policy,
                       std::span<const trace::Trace> traces,
                       const video::Video& video, env::Fidelity fidelity,
                       std::uint64_t seed) {
  util::Rng rng(seed);
  util::RunningStats rewards;
  for (const auto& tr : traces) {
    env::AbrEnv env(tr, video, fidelity, rng);
    env::Observation obs = env.reset();
    policy.reset();
    while (!env.done()) {
      const std::size_t level = policy.choose(obs);
      const env::StepResult step = env.step(level);
      rewards.add(step.reward);
      obs = step.observation;
    }
  }
  return rewards.mean();
}

std::vector<std::unique_ptr<AbrPolicy>> standard_baselines() {
  std::vector<std::unique_ptr<AbrPolicy>> policies;
  policies.push_back(std::make_unique<FixedPolicy>(0));
  policies.push_back(std::make_unique<BufferBasedPolicy>());
  policies.push_back(std::make_unique<RateBasedPolicy>());
  policies.push_back(std::make_unique<RobustMpcPolicy>());
  return policies;
}

}  // namespace nada::abr

// Classic ABR control policies.
//
// The RL designs NADA searches over are one family; these are the classic
// hand-designed algorithms the ABR literature (and Pensieve's own
// evaluation) measures against:
//
//   FixedPolicy      — always the same ladder rung (sanity baseline)
//   BufferBased      — BBA (Huang et al.): reservoir/cushion mapping from
//                      buffer level to bitrate
//   RateBased        — harmonic-mean throughput prediction, pick the top
//                      rung below a safety fraction of it
//   RobustMpc        — model-predictive control (Yin et al.): enumerate
//                      bitrate plans over a short horizon against a
//                      conservative (error-discounted) throughput forecast
//                      and pick the plan maximizing QoE_lin
//
// All consume the same env::Observation the RL agents see, so every
// policy runs on both the simulator and the emulation-fidelity session.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "env/abr_env.h"
#include "video/video.h"

namespace nada::abr {

class AbrPolicy {
 public:
  virtual ~AbrPolicy() = default;

  /// Chooses the bitrate index for the next chunk.
  [[nodiscard]] virtual std::size_t choose(const env::Observation& obs) = 0;

  /// Clears per-episode state (throughput estimators etc.).
  virtual void reset() {}

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Always selects `level`.
class FixedPolicy : public AbrPolicy {
 public:
  explicit FixedPolicy(std::size_t level) : level_(level) {}
  std::size_t choose(const env::Observation& obs) override;
  [[nodiscard]] std::string name() const override {
    return "fixed-" + std::to_string(level_);
  }

 private:
  std::size_t level_;
};

/// BBA-style buffer mapping: below the reservoir stream the lowest rung;
/// above reservoir+cushion stream the highest; linear in between.
class BufferBasedPolicy : public AbrPolicy {
 public:
  explicit BufferBasedPolicy(double reservoir_s = 5.0, double cushion_s = 40.0);
  std::size_t choose(const env::Observation& obs) override;
  [[nodiscard]] std::string name() const override { return "buffer-based"; }

 private:
  double reservoir_s_;
  double cushion_s_;
};

/// Harmonic-mean rate prediction with a safety factor; refuses to exceed
/// the lowest rung until the buffer covers a startup threshold.
class RateBasedPolicy : public AbrPolicy {
 public:
  explicit RateBasedPolicy(double safety = 0.85, double startup_buffer_s = 4.0);
  std::size_t choose(const env::Observation& obs) override;
  [[nodiscard]] std::string name() const override { return "rate-based"; }

 private:
  double safety_;
  double startup_buffer_s_;
};

/// RobustMPC with exhaustive plan enumeration over a short horizon.
class RobustMpcPolicy : public AbrPolicy {
 public:
  explicit RobustMpcPolicy(std::size_t horizon = 3);
  std::size_t choose(const env::Observation& obs) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "robust-mpc"; }

 private:
  /// Conservative forecast: harmonic mean discounted by the recent maximum
  /// relative prediction error (the "robust" part of RobustMPC).
  [[nodiscard]] double forecast_mbps(const env::Observation& obs);

  std::size_t horizon_;
  double last_forecast_mbps_ = 0.0;
  double max_error_ = 0.0;
};

/// Harmonic mean of the positive entries (0 if none).
[[nodiscard]] double harmonic_mean_positive(std::span<const double> xs);

/// Streams every test trace once with `policy` and returns the mean
/// per-chunk QoE (the same metric as rl::evaluate_agent).
[[nodiscard]] double evaluate_policy(AbrPolicy& policy,
                                     std::span<const trace::Trace> traces,
                                     const video::Video& video,
                                     env::Fidelity fidelity,
                                     std::uint64_t seed);

/// The standard baseline set, ready to evaluate.
[[nodiscard]] std::vector<std::unique_ptr<AbrPolicy>> standard_baselines();

}  // namespace nada::abr

#include "cc/cc_domain.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace nada::cc {

namespace {

class CcEpisode final : public env::Episode {
 public:
  CcEpisode(const trace::Trace& capacity, const CcConfig& config,
            util::Rng& rng)
      : env_(capacity, config, rng) {}

  dsl::Bindings reset() override {
    return bindings_from_cc_observation(env_.reset());
  }

  env::DomainStep step(std::size_t action) override {
    CcStepResult sr = env_.step(action);
    return env::DomainStep{bindings_from_cc_observation(sr.observation),
                           sr.reward, sr.done};
  }

  [[nodiscard]] bool done() const override { return env_.done(); }

 private:
  CcEnv env_;
};

}  // namespace

CcDomain::CcDomain(const trace::Dataset& dataset, CcConfig config)
    : dataset_(&dataset), config_(config) {
  if (dataset_->train.empty() || dataset_->test.empty()) {
    throw std::invalid_argument("CcDomain: dataset has an empty split");
  }
  if (config_.interval_s <= 0.0 || config_.steps_per_episode == 0) {
    throw std::invalid_argument("CcDomain: degenerate CcConfig");
  }
}

const std::string& CcDomain::name() const {
  static const std::string kName = "cc";
  return kName;
}

const dsl::BindingCatalog& CcDomain::catalog() const { return cc_catalog(); }

std::size_t CcDomain::num_actions() const { return rate_actions().size(); }

std::size_t CcDomain::episode_length() const {
  return config_.steps_per_episode;
}

double CcDomain::reward_scale_hint() const {
  // Per-interval rewards are throughput minus latency/loss penalties, so
  // their magnitude tracks the bottleneck's capacity in Mbps. Deterministic
  // in the dataset: the mean train-trace throughput, floored at 1 Mbps so
  // starved environments do not blow gradients up.
  double sum_mbps = 0.0;
  for (const auto& t : dataset_->train) sum_mbps += t.mean_kbps() / 1000.0;
  const double mean_mbps =
      sum_mbps / static_cast<double>(dataset_->train.size());
  return std::max(mean_mbps, 1.0);
}

const std::string& CcDomain::baseline_state_source() const {
  return default_cc_state_source();
}

std::unique_ptr<env::Episode> CcDomain::start_train_episode(
    env::Fidelity /*fidelity*/, util::Rng& rng) const {
  const trace::Trace& tr = rng.choice(dataset_->train);
  return std::make_unique<CcEpisode>(tr, config_, rng);
}

std::size_t CcDomain::num_eval_units() const { return dataset_->test.size(); }

std::unique_ptr<env::Episode> CcDomain::start_eval_episode(
    std::size_t unit, env::Fidelity /*fidelity*/, util::Rng& rng) const {
  return std::make_unique<CcEpisode>(dataset_->test.at(unit), config_, rng);
}

std::string CcDomain::scope_env() const {
  // Domain-distinct token: CC journals never alias ABR journals built from
  // the same trace environment.
  return std::string("cc-") + trace::environment_name(dataset_->spec.env);
}

void CcDomain::append_scope_spec(std::ostream& out) const {
  out << ";cc_train_traces=" << trace::traces_digest(dataset_->train)
      << ";cc_test_traces=" << trace::traces_digest(dataset_->test)
      << ";cc_cfg=" << util::shortest_double(config_.base_rtt_ms) << ","
      << util::shortest_double(config_.queue_capacity_ms) << ","
      << util::shortest_double(config_.interval_s) << ","
      << util::shortest_double(config_.init_rate_mbps) << ","
      << util::shortest_double(config_.min_rate_mbps) << ","
      << util::shortest_double(config_.max_rate_mbps) << ","
      << util::shortest_double(config_.latency_penalty) << ","
      << util::shortest_double(config_.loss_penalty) << ","
      << config_.steps_per_episode;
}

}  // namespace nada::cc

// Congestion control as a first-class TaskDomain — the funnel's second
// domain, realizing the paper's §5 extension plan.
//
// CcDomain adapts cc::CcEnv to env::TaskDomain: episodes are
// steps_per_episode monitor intervals over one capacity trace drawn from a
// trace::Dataset (the same generators that model FCC/Starlink/4G/5G
// capacity for ABR model bottleneck capacity here), actions are the
// Aurora-style rate multipliers, and observations are lowered through
// cc::bindings_from_cc_observation. With this adapter the entire funnel —
// generate -> pre-check -> batched probe -> early-stop -> full train ->
// rank, store checkpointing included — runs over CC through exactly the
// code path ABR uses.
#pragma once

#include <cstddef>
#include <string>

#include "cc/cc_env.h"
#include "cc/cc_state.h"
#include "env/domain.h"
#include "trace/generator.h"

namespace nada::cc {

class CcDomain final : public env::TaskDomain {
 public:
  /// `dataset` supplies bottleneck-capacity traces (train split for
  /// training episodes, test split for evaluation). Throws
  /// std::invalid_argument when either split is empty or the config is
  /// degenerate.
  CcDomain(const trace::Dataset& dataset, CcConfig config = CcConfig{});

  [[nodiscard]] const std::string& name() const override;
  [[nodiscard]] const dsl::BindingCatalog& catalog() const override;
  [[nodiscard]] std::size_t num_actions() const override;
  [[nodiscard]] std::size_t episode_length() const override;
  [[nodiscard]] double reward_scale_hint() const override;
  [[nodiscard]] const std::string& baseline_state_source() const override;
  /// CC has no emulation model: both fidelities run the same simulator.
  [[nodiscard]] std::unique_ptr<env::Episode> start_train_episode(
      env::Fidelity fidelity, util::Rng& rng) const override;
  [[nodiscard]] std::size_t num_eval_units() const override;
  [[nodiscard]] std::unique_ptr<env::Episode> start_eval_episode(
      std::size_t unit, env::Fidelity fidelity, util::Rng& rng) const override;
  [[nodiscard]] std::string scope_env() const override;
  void append_scope_spec(std::ostream& out) const override;

  [[nodiscard]] const trace::Dataset& dataset() const { return *dataset_; }
  [[nodiscard]] const CcConfig& config() const { return config_; }

 private:
  const trace::Dataset* dataset_;
  CcConfig config_;
};

}  // namespace nada::cc

#include "cc/cc_env.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nada::cc {

const std::vector<double>& rate_actions() {
  static const std::vector<double> kActions = {0.6, 0.85, 1.0, 1.15, 1.5};
  return kActions;
}

CcEnv::CcEnv(const trace::Trace& capacity, CcConfig config, util::Rng& rng)
    : capacity_(&capacity), config_(config), rng_(&rng) {
  if (config_.interval_s <= 0.0 || config_.steps_per_episode == 0) {
    throw std::invalid_argument("CcEnv: degenerate config");
  }
  if (config_.min_rate_mbps <= 0.0 ||
      config_.min_rate_mbps >= config_.max_rate_mbps) {
    throw std::invalid_argument("CcEnv: bad rate bounds");
  }
}

CcObservation CcEnv::reset() {
  started_ = true;
  clock_s_ = rng_->uniform(0.0, std::max(capacity_->duration_s() - 1.0, 0.0));
  rate_mbps_ = config_.init_rate_mbps;
  queue_ms_ = 0.0;
  step_ = 0;
  send_hist_.assign(kCcHistoryLen, 0.0);
  ack_hist_.assign(kCcHistoryLen, 0.0);
  rtt_hist_.assign(kCcHistoryLen, config_.base_rtt_ms);
  loss_hist_.assign(kCcHistoryLen, 0.0);
  return make_observation();
}

void CcEnv::push(std::vector<double>& hist, double v) {
  hist.erase(hist.begin());
  hist.push_back(v);
}

CcStepResult CcEnv::step(std::size_t action) {
  if (!started_) throw std::logic_error("CcEnv::step before reset");
  if (done()) throw std::logic_error("CcEnv::step after episode end");
  if (action >= rate_actions().size()) {
    throw std::out_of_range("CcEnv::step: action index");
  }
  rate_mbps_ = std::clamp(rate_mbps_ * rate_actions()[action],
                          config_.min_rate_mbps, config_.max_rate_mbps);

  // One monitor interval: offered load vs trace capacity. Excess feeds the
  // queue (measured in drain-time ms at current capacity); queue overflow
  // is loss.
  const double capacity_mbps =
      std::max(capacity_->bandwidth_kbps_at(clock_s_) / 1000.0, 1e-3);
  const double offered_mbit = rate_mbps_ * config_.interval_s;
  const double drained_mbit = capacity_mbps * config_.interval_s;

  // Queue currently holds queue_ms_ worth of drain time.
  double backlog_mbit = queue_ms_ / 1000.0 * capacity_mbps;
  backlog_mbit += offered_mbit;
  double delivered_mbit = std::min(backlog_mbit, drained_mbit);
  backlog_mbit -= delivered_mbit;

  // Convert back to queuing delay; drop what exceeds the buffer.
  double new_queue_ms = backlog_mbit / capacity_mbps * 1000.0;
  double lost_mbit = 0.0;
  if (new_queue_ms > config_.queue_capacity_ms) {
    const double overflow_ms = new_queue_ms - config_.queue_capacity_ms;
    lost_mbit = overflow_ms / 1000.0 * capacity_mbps;
    new_queue_ms = config_.queue_capacity_ms;
  }
  queue_ms_ = new_queue_ms;
  clock_s_ += config_.interval_s;
  ++step_;

  const double throughput_mbps = delivered_mbit / config_.interval_s;
  const double rtt_ms = config_.base_rtt_ms + queue_ms_ +
                        rng_->uniform(0.0, 1.0);  // measurement jitter
  const double loss =
      offered_mbit > 0.0 ? std::clamp(lost_mbit / offered_mbit, 0.0, 1.0)
                         : 0.0;

  push(send_hist_, rate_mbps_);
  push(ack_hist_, throughput_mbps);
  push(rtt_hist_, rtt_ms);
  push(loss_hist_, loss);

  CcStepResult result;
  result.throughput_mbps = throughput_mbps;
  result.rtt_ms = rtt_ms;
  result.loss = loss;
  result.reward = throughput_mbps -
                  config_.latency_penalty * (queue_ms_ / 1000.0) *
                      throughput_mbps -
                  config_.loss_penalty * loss;
  result.done = done();
  result.observation = make_observation();
  return result;
}

CcObservation CcEnv::make_observation() const {
  CcObservation obs;
  obs.send_rate_mbps = send_hist_;
  obs.ack_rate_mbps = ack_hist_;
  obs.rtt_ms = rtt_hist_;
  obs.loss_fraction = loss_hist_;
  obs.min_rtt_ms = config_.base_rtt_ms;
  obs.current_rate_mbps = rate_mbps_;
  return obs;
}

AimdController::AimdController(double increase_mbps, double decrease_factor)
    : increase_mbps_(increase_mbps), decrease_factor_(decrease_factor) {
  if (increase_mbps_ <= 0.0 || decrease_factor_ <= 0.0 ||
      decrease_factor_ >= 1.0) {
    throw std::invalid_argument("AimdController: bad parameters");
  }
}

void AimdController::reset() {}

std::size_t AimdController::act(const CcObservation& obs) {
  const double rate = std::max(obs.current_rate_mbps, 1e-6);
  const auto& actions = rate_actions();
  if (!obs.loss_fraction.empty() && obs.loss_fraction.back() > 0.0) {
    // Multiplicative decrease: the action nearest the decrease factor.
    std::size_t best = 0;
    for (std::size_t i = 1; i < actions.size(); ++i) {
      if (std::abs(actions[i] - decrease_factor_) <
          std::abs(actions[best] - decrease_factor_)) {
        best = i;
      }
    }
    return best;
  }
  // Additive increase: the discrete grid cannot express "+increase_mbps"
  // exactly, so always probe with the smallest up-multiplier that reaches
  // at least the additive target (never hold flat while loss-free).
  const double desired = (rate + increase_mbps_) / rate;
  std::size_t best = actions.size() - 1;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (actions[i] > 1.0 && actions[i] >= std::min(desired, actions.back())) {
      best = i;
      break;
    }
  }
  return best;
}

}  // namespace nada::cc

// Congestion-control environment — the paper's §5 extension target.
//
// NADA's discussion section plans to extend the framework from ABR to
// congestion control. This module provides that substrate: a rate-based CC
// environment in the Aurora/PCC-RL mold. A sender picks a rate action each
// monitor interval; the bottleneck has trace-driven capacity (reusing the
// same trace generators), a FIFO queue, and a base RTT. Observations are
// histories of achieved throughput, RTT, loss, and sending rate — the
// quantities a CC state function (NadaScript over cc::bindings) consumes.
//
// Reward follows the throughput-latency-loss shape used by RL-CC work
// (Jay et al., ICML'19): reward = throughput − a·queue_delay − b·loss.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/trace.h"
#include "util/rng.h"

namespace nada::cc {

inline constexpr std::size_t kCcHistoryLen = 8;

struct CcConfig {
  double base_rtt_ms = 40.0;
  double queue_capacity_ms = 200.0;   ///< max queuing delay before drops
  double interval_s = 0.1;            ///< monitor interval per action
  double init_rate_mbps = 1.0;
  double min_rate_mbps = 0.05;
  double max_rate_mbps = 500.0;
  double latency_penalty = 0.5;       ///< reward weight on queue delay (s)
  double loss_penalty = 10.0;         ///< reward weight on loss fraction
  std::size_t steps_per_episode = 400;
};

/// Multiplicative rate actions (Aurora-style discrete control).
[[nodiscard]] const std::vector<double>& rate_actions();

struct CcObservation {
  std::vector<double> send_rate_mbps;   ///< last kCcHistoryLen sent rates
  std::vector<double> ack_rate_mbps;    ///< achieved throughput history
  std::vector<double> rtt_ms;           ///< RTT sample history
  std::vector<double> loss_fraction;    ///< per-interval loss history
  double min_rtt_ms = 0.0;
  double current_rate_mbps = 0.0;
};

struct CcStepResult {
  CcObservation observation;
  double reward = 0.0;
  double throughput_mbps = 0.0;
  double rtt_ms = 0.0;
  double loss = 0.0;
  bool done = false;
};

/// One episode = steps_per_episode monitor intervals over one capacity
/// trace (wrapping like the ABR simulator).
///
/// Construction consumes no randomness: the RNG is only drawn when reset()
/// starts an episode (start offset) and during steps (measurement jitter),
/// so the caller's seed stream is a pure function of the episodes it
/// actually runs — the property the batched/serial probe equivalence
/// guarantee rests on. reset() must be called before step().
class CcEnv {
 public:
  CcEnv(const trace::Trace& capacity, CcConfig config, util::Rng& rng);

  /// Starts a fresh episode (new random trace offset); returns the initial
  /// observation.
  CcObservation reset();

  /// Applies rate action index (see rate_actions()) and advances one
  /// monitor interval. Throws std::logic_error before the first reset().
  CcStepResult step(std::size_t action);

  [[nodiscard]] bool done() const {
    return started_ && step_ >= config_.steps_per_episode;
  }
  [[nodiscard]] std::size_t num_actions() const {
    return rate_actions().size();
  }
  [[nodiscard]] double rate_mbps() const { return rate_mbps_; }
  [[nodiscard]] double queue_ms() const { return queue_ms_; }

 private:
  [[nodiscard]] CcObservation make_observation() const;
  void push(std::vector<double>& hist, double v);

  const trace::Trace* capacity_;
  CcConfig config_;
  util::Rng* rng_;
  double clock_s_ = 0.0;
  double rate_mbps_ = 0.0;
  double queue_ms_ = 0.0;  ///< queue occupancy expressed as drain time
  std::size_t step_ = 0;
  bool started_ = false;
  std::vector<double> send_hist_, ack_hist_, rtt_hist_, loss_hist_;
};

/// Classic AIMD (Reno-flavoured, per monitor interval): additive increase
/// while loss-free, multiplicative decrease on loss.
class AimdController {
 public:
  AimdController(double increase_mbps = 0.2, double decrease_factor = 0.5);

  /// Maps the desired rate change to the nearest discrete action.
  [[nodiscard]] std::size_t act(const CcObservation& obs);
  void reset();

 private:
  double increase_mbps_;
  double decrease_factor_;
};

/// Runs one episode with a controller callback; returns mean reward.
template <typename Controller>
double run_episode(CcEnv& env, Controller&& controller) {
  CcObservation obs = env.reset();
  double total = 0.0;
  std::size_t steps = 0;
  while (!env.done()) {
    const CcStepResult r = env.step(controller(obs));
    total += r.reward;
    obs = r.observation;
    ++steps;
  }
  return steps > 0 ? total / static_cast<double>(steps) : 0.0;
}

}  // namespace nada::cc

#include "cc/cc_state.h"

namespace nada::cc {

dsl::Bindings bindings_from_cc_observation(const CcObservation& obs) {
  dsl::Bindings b;
  // One entry per cc_input_variables() slot; reserved up front to spare
  // per-step rehashing (bucket layout is unobservable — nothing iterates).
  b.reserve(cc_input_variables().size());
  b.emplace("send_rate_mbps", dsl::Value(obs.send_rate_mbps));
  b.emplace("ack_rate_mbps", dsl::Value(obs.ack_rate_mbps));
  b.emplace("rtt_ms", dsl::Value(obs.rtt_ms));
  b.emplace("loss_fraction", dsl::Value(obs.loss_fraction));
  b.emplace("min_rtt_ms", dsl::Value(obs.min_rtt_ms));
  b.emplace("current_rate_mbps", dsl::Value(obs.current_rate_mbps));
  return b;
}

const std::vector<dsl::InputVariable>& cc_input_variables() {
  // Order is the CC domain's canonical slot numbering (see
  // dsl::BindingCatalog::slot_index); the bytecode compiler annotates
  // input references with these positions, so treat the list as
  // append-only.
  static const std::vector<dsl::InputVariable> kVars = {
      {"send_rate_mbps", true},   {"ack_rate_mbps", true},
      {"rtt_ms", true},           {"loss_fraction", true},
      {"min_rtt_ms", false},      {"current_rate_mbps", false},
  };
  return kVars;
}

const std::string& default_cc_state_source() {
  static const std::string kSource = R"(# Hand-written CC state: normalized rates, RTT inflation, loss history.
emit "rate" = log1p(current_rate_mbps) / 6.0;
emit "ack_rate" = log1p(ack_rate_mbps) / 6.0;
emit "utilization" = min(ack_rate_mbps / max(send_rate_mbps, vec(8, 0.001)), vec(8, 2.0));
emit "rtt_inflation" = rtt_ms / min_rtt_ms / 10.0;
emit "loss" = loss_fraction;
emit "rtt_trend" = trend(rtt_ms) / min_rtt_ms;
)";
  return kSource;
}

dsl::StateMatrix run_cc_program(const dsl::Program& program,
                                const CcObservation& obs) {
  return dsl::run_program(program, bindings_from_cc_observation(obs));
}

CcObservation canned_cc_observation() {
  CcObservation obs;
  obs.send_rate_mbps = {2.0, 2.3, 2.6, 3.0, 2.8, 3.2, 3.0, 3.4};
  obs.ack_rate_mbps = {1.9, 2.2, 2.5, 2.7, 2.6, 2.9, 2.8, 3.0};
  obs.rtt_ms = {48.0, 52.0, 55.0, 61.0, 58.0, 64.0, 60.0, 66.0};
  obs.loss_fraction = {0.0, 0.0, 0.01, 0.0, 0.02, 0.0, 0.0, 0.01};
  obs.min_rtt_ms = 40.0;
  obs.current_rate_mbps = 3.4;
  return obs;
}

CcObservation fuzz_cc_observation(util::Rng& rng) {
  CcObservation obs;
  // Wide but physical ranges, mirroring the ABR fuzz: the check must
  // surface raw-unit features (kbps rates, millisecond RTTs) while
  // well-normalized designs stay clear of the threshold. RTTs are the
  // base RTT plus queueing bounded by a deep (400 ms) buffer, so
  // inflation-style features see at most ~81x min RTT.
  const bool high_bandwidth = rng.bernoulli(0.5);
  const double rate_cap_mbps = high_bandwidth ? 500.0 : 20.0;
  const double base_rtt_ms = rng.uniform(5.0, 200.0);
  obs.send_rate_mbps.resize(kCcHistoryLen);
  obs.ack_rate_mbps.resize(kCcHistoryLen);
  obs.rtt_ms.resize(kCcHistoryLen);
  obs.loss_fraction.resize(kCcHistoryLen);
  for (std::size_t i = 0; i < kCcHistoryLen; ++i) {
    obs.send_rate_mbps[i] = rng.uniform(0.05, rate_cap_mbps);
    obs.ack_rate_mbps[i] = rng.uniform(0.0, obs.send_rate_mbps[i]);
    obs.rtt_ms[i] = base_rtt_ms + rng.uniform(0.0, 400.0) + rng.uniform(0.0, 1.0);
    obs.loss_fraction[i] = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.0, 1.0);
  }
  obs.min_rtt_ms = base_rtt_ms;
  obs.current_rate_mbps = rng.uniform(0.05, rate_cap_mbps);
  return obs;
}

namespace {

class CcBindingCatalog final : public dsl::BindingCatalog {
 public:
  [[nodiscard]] const std::string& domain() const override {
    static const std::string kDomain = "cc";
    return kDomain;
  }
  [[nodiscard]] const std::vector<dsl::InputVariable>& variables()
      const override {
    return cc_input_variables();
  }
  [[nodiscard]] dsl::Bindings canned() const override {
    return bindings_from_cc_observation(canned_cc_observation());
  }
  [[nodiscard]] dsl::Bindings fuzz(util::Rng& rng) const override {
    return bindings_from_cc_observation(fuzz_cc_observation(rng));
  }
};

}  // namespace

const dsl::BindingCatalog& cc_catalog() {
  static const CcBindingCatalog kCatalog;
  return kCatalog;
}

}  // namespace nada::cc

#include "cc/cc_state.h"

namespace nada::cc {

dsl::Bindings bindings_from_cc_observation(const CcObservation& obs) {
  dsl::Bindings b;
  b.emplace("send_rate_mbps", dsl::Value(obs.send_rate_mbps));
  b.emplace("ack_rate_mbps", dsl::Value(obs.ack_rate_mbps));
  b.emplace("rtt_ms", dsl::Value(obs.rtt_ms));
  b.emplace("loss_fraction", dsl::Value(obs.loss_fraction));
  b.emplace("min_rtt_ms", dsl::Value(obs.min_rtt_ms));
  b.emplace("current_rate_mbps", dsl::Value(obs.current_rate_mbps));
  return b;
}

const std::vector<CcInputVariable>& cc_input_variables() {
  static const std::vector<CcInputVariable> kVars = {
      {"send_rate_mbps", true},   {"ack_rate_mbps", true},
      {"rtt_ms", true},           {"loss_fraction", true},
      {"min_rtt_ms", false},      {"current_rate_mbps", false},
  };
  return kVars;
}

const std::string& default_cc_state_source() {
  static const std::string kSource = R"(# Hand-written CC state: normalized rates, RTT inflation, loss history.
emit "rate" = log1p(current_rate_mbps) / 6.0;
emit "ack_rate" = log1p(ack_rate_mbps) / 6.0;
emit "utilization" = min(ack_rate_mbps / max(send_rate_mbps, vec(8, 0.001)), vec(8, 2.0));
emit "rtt_inflation" = rtt_ms / min_rtt_ms / 10.0;
emit "loss" = loss_fraction;
emit "rtt_trend" = trend(rtt_ms) / min_rtt_ms;
)";
  return kSource;
}

dsl::StateMatrix run_cc_program(const dsl::Program& program,
                                const CcObservation& obs) {
  return dsl::run_program(program, bindings_from_cc_observation(obs));
}

}  // namespace nada::cc

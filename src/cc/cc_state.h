// NadaScript bindings for congestion control.
//
// The same DSL that expresses ABR state functions expresses CC state
// functions: only the input variables change. This is the concrete form of
// the paper's claim that NADA is "applicable to any network algorithm"
// with a code implementation and a simulator (§1, §5). cc_catalog() packs
// the vocabulary into a dsl::BindingCatalog so the funnel's pre-checks
// validate CC programs against CC observations, never ABR ones.
#pragma once

#include <string>
#include <vector>

#include "cc/cc_env.h"
#include "dsl/binding_catalog.h"
#include "dsl/interpreter.h"

namespace nada::cc {

/// Interpreter bindings for a CC observation (semantic names, as the
/// paper's prompting strategy prescribes).
[[nodiscard]] dsl::Bindings bindings_from_cc_observation(
    const CcObservation& obs);

/// Names/kinds of the CC input variables (generator and docs).
[[nodiscard]] const std::vector<dsl::InputVariable>& cc_input_variables();

/// A reasonable hand-written CC state (the "original design" for a CC
/// search): normalized rate, throughput, RTT inflation, and loss history.
[[nodiscard]] const std::string& default_cc_state_source();

/// Runs a compiled NadaScript program against a CC observation.
[[nodiscard]] dsl::StateMatrix run_cc_program(const dsl::Program& program,
                                              const CcObservation& obs);

/// A synthetic mid-episode CC observation (trial-run input for the
/// compilation check).
[[nodiscard]] CcObservation canned_cc_observation();

/// A randomized CC observation for the normalization fuzz check: rates up
/// to 500 Mbps, base RTTs from 5 to 200 ms with up to 400 ms of queueing,
/// loss fractions with a point mass at zero. RTT samples never drop below
/// the episode's min RTT, so inflation-style features stay physical.
[[nodiscard]] CcObservation fuzz_cc_observation(util::Rng& rng);

/// The CC binding catalog (vocabulary + canned/fuzz inputs, as bindings).
[[nodiscard]] const dsl::BindingCatalog& cc_catalog();

}  // namespace nada::cc

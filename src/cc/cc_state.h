// NadaScript bindings for congestion control.
//
// The same DSL that expresses ABR state functions expresses CC state
// functions: only the input variables change. This is the concrete form of
// the paper's claim that NADA is "applicable to any network algorithm"
// with a code implementation and a simulator (§1, §5).
#pragma once

#include <string>
#include <vector>

#include "cc/cc_env.h"
#include "dsl/interpreter.h"

namespace nada::cc {

/// Interpreter bindings for a CC observation (semantic names, as the
/// paper's prompting strategy prescribes).
[[nodiscard]] dsl::Bindings bindings_from_cc_observation(
    const CcObservation& obs);

/// Names/kinds of the CC input variables (generator and docs).
struct CcInputVariable {
  std::string name;
  bool is_vector = false;
};
[[nodiscard]] const std::vector<CcInputVariable>& cc_input_variables();

/// A reasonable hand-written CC state (the "original design" for a CC
/// search): normalized rate, throughput, RTT inflation, and loss history.
[[nodiscard]] const std::string& default_cc_state_source();

/// Runs a compiled NadaScript program against a CC observation.
[[nodiscard]] dsl::StateMatrix run_cc_program(const dsl::Program& program,
                                              const CcObservation& obs);

}  // namespace nada::cc

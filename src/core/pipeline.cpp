#include "core/pipeline.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace nada::core {
namespace {

/// Probe curves are compared via their tail: the mean of the last quarter
/// of the early-training rewards.
double probe_score(const std::vector<double>& early_rewards) {
  if (early_rewards.empty()) return -1e9;
  return util::tail_mean(early_rewards,
                         std::max<std::size_t>(early_rewards.size() / 4, 4));
}

filter::DesignRecord make_record(const CandidateOutcome& outcome,
                                 double normalizer) {
  filter::DesignRecord record;
  record.id = outcome.id;
  record.source_text = outcome.source;
  record.early_rewards = outcome.early_rewards;
  const double denom = std::max(std::abs(normalizer), 0.1);
  for (double& r : record.early_rewards) r /= denom;
  record.final_score = probe_score(outcome.early_rewards) / denom;
  return record;
}

}  // namespace

Pipeline::Pipeline(const trace::Dataset& dataset, const video::Video& video,
                   PipelineConfig config, std::uint64_t seed,
                   util::ThreadPool* pool)
    : dataset_(&dataset), video_(&video), config_(std::move(config)),
      seed_(seed), pool_(pool) {
  if (config_.num_candidates == 0) {
    throw std::invalid_argument("Pipeline: zero candidates");
  }
  if (config_.full_train_top == 0) {
    throw std::invalid_argument("Pipeline: full_train_top is zero");
  }
}

const rl::SessionResult& Pipeline::original_baseline() {
  if (!original_.has_value()) {
    const dsl::StateProgram original_state =
        dsl::StateProgram::compile(dsl::pensieve_state_source());
    rl::SessionConfig sc;
    sc.seeds = config_.seeds;
    sc.train = config_.train;
    original_ = rl::run_sessions(*dataset_, *video_, original_state,
                                 config_.baseline_arch, sc,
                                 seed_ ^ 0x0817b05eULL, pool_);
  }
  return *original_;
}

std::vector<std::size_t> Pipeline::select_survivors(
    const std::vector<CandidateOutcome>& outcomes,
    const filter::EarlyStopModel* early_stop_model,
    std::vector<CandidateOutcome>& all) const {
  // Candidates eligible for selection: probed ones.
  std::vector<std::size_t> probed;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].early_probed) probed.push_back(i);
  }

  std::vector<std::size_t> kept;
  if (early_stop_model != nullptr) {
    const double normalizer =
        original_.has_value() ? original_->test_score : 1.0;
    for (std::size_t i : probed) {
      const auto record = make_record(outcomes[i], normalizer);
      if (early_stop_model->keep(record)) {
        kept.push_back(i);
      } else {
        all[i].early_stopped = true;
      }
    }
  } else {
    kept = probed;
  }

  // Rank the kept probes by tail reward and take the full-training slots.
  std::sort(kept.begin(), kept.end(), [&outcomes](std::size_t a,
                                                  std::size_t b) {
    return probe_score(outcomes[a].early_rewards) >
           probe_score(outcomes[b].early_rewards);
  });
  if (kept.size() > config_.full_train_top) {
    for (std::size_t r = config_.full_train_top; r < kept.size(); ++r) {
      all[kept[r]].early_stopped = true;
    }
    kept.resize(config_.full_train_top);
  }
  return kept;
}

void Pipeline::apply_session_results(
    std::vector<CandidateOutcome>& outcomes,
    const std::vector<std::size_t>& selected,
    const std::vector<rl::SessionResult>& sessions) {
  for (std::size_t k = 0; k < selected.size(); ++k) {
    CandidateOutcome& outcome = outcomes[selected[k]];
    const rl::SessionResult& session = sessions[k];
    outcome.fully_trained = !session.failed;
    outcome.test_score = session.test_score;
    outcome.emulation_score = session.emulation_score;
    outcome.median_curve = session.median_curve;
    outcome.curve_epochs = session.curve_epochs;
  }
}

PipelineResult Pipeline::search_states(
    gen::StateGenerator& generator, const nn::ArchSpec& arch,
    const filter::EarlyStopModel* early_stop_model) {
  PipelineResult result;
  const auto candidates = generator.generate_batch(config_.num_candidates);
  result.n_total = candidates.size();

  // Baseline first: selection and reporting are relative to it.
  result.original = original_baseline();
  result.original_score = result.original.test_score;

  // Stage 1+2: pre-checks. Cheap and embarrassingly parallel.
  std::vector<CandidateOutcome> outcomes(candidates.size());
  std::vector<std::optional<dsl::StateProgram>> programs(candidates.size());
  auto precheck = [&](std::size_t i) {
    CandidateOutcome& outcome = outcomes[i];
    outcome.id = candidates[i].id;
    outcome.source = candidates[i].source;
    const auto compile = filter::compilation_check(candidates[i].source,
                                                   &programs[i]);
    outcome.compiled = compile.passed;
    outcome.compile_error = compile.reason;
    if (!compile.passed) return;
    const auto norm = filter::normalization_check(
        *programs[i], config_.normalization_threshold,
        config_.normalization_fuzz_runs, seed_ ^ (i * 0x9e3779b9ULL));
    outcome.normalized = norm.passed;
    outcome.normalization_error = norm.reason;
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(candidates.size(), precheck);
  } else {
    for (std::size_t i = 0; i < candidates.size(); ++i) precheck(i);
  }

  // Stage 3: the early "batch training" probe.
  std::vector<std::size_t> probe_set;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].compiled) ++result.n_compiled;
    if (outcomes[i].compiled && outcomes[i].normalized) {
      ++result.n_normalized;
      probe_set.push_back(i);
    }
  }
  rl::TrainConfig probe_config = config_.train;
  probe_config.epochs = config_.early_epochs;
  probe_config.evaluate_checkpoints = false;
  auto probe = [&](std::size_t k) {
    const std::size_t i = probe_set[k];
    rl::Trainer trainer(*dataset_, *video_, probe_config,
                        seed_ ^ (0xb10b << 8) ^ i);
    const rl::TrainResult probe_result = trainer.train(*programs[i], arch);
    if (!probe_result.failed) {
      outcomes[i].early_probed = true;
      outcomes[i].early_rewards = probe_result.train_rewards;
    } else {
      // Blew up only under real training inputs; treat as compile-stage
      // failure discovered late.
      outcomes[i].compile_error = probe_result.error;
    }
  };
  if (pool_ != nullptr && probe_set.size() > 1) {
    pool_->parallel_for(probe_set.size(), probe);
  } else {
    for (std::size_t k = 0; k < probe_set.size(); ++k) probe(k);
  }

  // Stage 4: selection (early-stop model or tail-reward ranking).
  const std::vector<std::size_t> selected =
      select_survivors(outcomes, early_stop_model, outcomes);
  for (const auto& outcome : outcomes) {
    if (outcome.early_stopped) ++result.n_early_stopped;
  }

  // Stage 5: full-scale training of the survivors, every (design, seed)
  // pair scheduled independently on the pool.
  rl::SessionConfig session_config;
  session_config.seeds = config_.seeds;
  session_config.train = config_.train;
  std::vector<rl::SessionJob> jobs;
  jobs.reserve(selected.size());
  for (std::size_t i : selected) {
    jobs.push_back(rl::SessionJob{&*programs[i], &arch,
                                  seed_ ^ (0xf111 << 4) ^ i});
  }
  const auto sessions =
      rl::run_session_batch(*dataset_, *video_, jobs, session_config, pool_);
  apply_session_results(outcomes, selected, sessions);

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].fully_trained) continue;
    ++result.n_fully_trained;
    if (outcomes[i].test_score > result.best_score) {
      result.best_score = outcomes[i].test_score;
      result.best_index = i;
    }
  }
  result.outcomes = std::move(outcomes);
  return result;
}

PipelineResult Pipeline::search_archs(
    gen::ArchGenerator& generator, const dsl::StateProgram& state,
    const filter::EarlyStopModel* early_stop_model) {
  PipelineResult result;
  const auto candidates = generator.generate_batch(config_.num_candidates);
  result.n_total = candidates.size();

  result.original = original_baseline();
  result.original_score = result.original.test_score;

  const nn::StateSignature signature = rl::derive_signature(state);

  std::vector<CandidateOutcome> outcomes(candidates.size());
  std::vector<std::size_t> probe_set;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    outcomes[i].id = candidates[i].id;
    outcomes[i].arch = candidates[i].spec;
    outcomes[i].source = candidates[i].description;
    const auto check = filter::arch_compilation_check(
        candidates[i].spec, signature, video_->ladder().levels());
    outcomes[i].compiled = check.passed;
    outcomes[i].compile_error = check.reason;
    // The normalization check does not apply to architectures (§2.2).
    outcomes[i].normalized = check.passed;
    if (check.passed) {
      ++result.n_compiled;
      ++result.n_normalized;
      probe_set.push_back(i);
    }
  }

  rl::TrainConfig probe_config = config_.train;
  probe_config.epochs = config_.early_epochs;
  probe_config.evaluate_checkpoints = false;
  auto probe = [&](std::size_t k) {
    const std::size_t i = probe_set[k];
    rl::Trainer trainer(*dataset_, *video_, probe_config,
                        seed_ ^ (0xa10b << 8) ^ i);
    const rl::TrainResult probe_result = trainer.train(state, *outcomes[i].arch);
    if (!probe_result.failed) {
      outcomes[i].early_probed = true;
      outcomes[i].early_rewards = probe_result.train_rewards;
    } else {
      outcomes[i].compile_error = probe_result.error;
    }
  };
  if (pool_ != nullptr && probe_set.size() > 1) {
    pool_->parallel_for(probe_set.size(), probe);
  } else {
    for (std::size_t k = 0; k < probe_set.size(); ++k) probe(k);
  }

  const std::vector<std::size_t> selected =
      select_survivors(outcomes, early_stop_model, outcomes);
  for (const auto& outcome : outcomes) {
    if (outcome.early_stopped) ++result.n_early_stopped;
  }

  rl::SessionConfig session_config;
  session_config.seeds = config_.seeds;
  session_config.train = config_.train;
  std::vector<rl::SessionJob> jobs;
  jobs.reserve(selected.size());
  for (std::size_t i : selected) {
    jobs.push_back(rl::SessionJob{&state, &*outcomes[i].arch,
                                  seed_ ^ (0xf222 << 4) ^ i});
  }
  const auto sessions =
      rl::run_session_batch(*dataset_, *video_, jobs, session_config, pool_);
  apply_session_results(outcomes, selected, sessions);

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].fully_trained) continue;
    ++result.n_fully_trained;
    if (outcomes[i].test_score > result.best_score) {
      result.best_score = outcomes[i].test_score;
      result.best_index = i;
    }
  }
  result.outcomes = std::move(outcomes);
  return result;
}

PipelineConfig scaled_pipeline_config(trace::Environment env,
                                      const util::ScaleConfig& scale) {
  const trace::DatasetSpec spec = trace::paper_spec(env);
  PipelineConfig config;
  config.num_candidates = scale.gen_count(3000);
  config.seeds = scale.seed_count(5);
  config.train.epochs = scale.epoch_count(spec.train_epochs, 120);
  // Keep roughly the paper's checkpoints-per-run ratio (~80 for FCC/4G/5G,
  // 40 for Starlink) but never fewer than 10 checkpoints.
  const std::size_t paper_checkpoints =
      std::max<std::size_t>(spec.train_epochs / spec.test_interval, 10);
  config.train.test_interval = std::max<std::size_t>(
      config.train.epochs / std::min<std::size_t>(paper_checkpoints, 40), 1);
  config.train.max_eval_traces = 12;
  // First-quarter probe window (the paper watches the first 10k of 40k),
  // capped so probing the many pre-check survivors stays cheaper than fully
  // training the few selected ones.
  config.early_epochs = std::clamp<std::size_t>(config.train.epochs / 4, 20,
                                                400);
  config.full_train_top = 6;

  // Model scale: the paper's 128-wide towers shrink for bench runtime.
  const double model_scale = util::env_double("NADA_SCALE_MODEL", 0.25);
  auto scaled_width = [model_scale](std::size_t w) {
    return std::max<std::size_t>(
        static_cast<std::size_t>(std::lround(w * model_scale)), 8);
  };
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = scaled_width(arch.conv_filters);
  arch.rnn_hidden = scaled_width(arch.rnn_hidden);
  arch.scalar_hidden = scaled_width(arch.scalar_hidden);
  arch.merge_hidden = scaled_width(arch.merge_hidden);
  config.baseline_arch = arch;
  return config;
}

}  // namespace nada::core

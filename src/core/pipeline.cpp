#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "rl/batch_probe.h"
#include "util/stats.h"
#include "util/strings.h"

namespace nada::core {
namespace {

/// Probe curves are compared via their tail: the mean of the last quarter
/// of the early-training rewards.
double probe_score(const std::vector<double>& early_rewards) {
  if (early_rewards.empty()) return -1e9;
  const double score = util::tail_mean(
      early_rewards, std::max<std::size_t>(early_rewards.size() / 4, 4));
  // A diverged probe can leave NaN in the curve; NaN in the ranking
  // comparator would break std::sort's strict weak ordering.
  return std::isnan(score) ? -1e9 : score;
}

filter::DesignRecord make_record(const CandidateOutcome& outcome,
                                 double normalizer) {
  filter::DesignRecord record;
  record.id = outcome.id;
  record.source_text = outcome.source;
  record.early_rewards = outcome.early_rewards;
  const double denom = std::max(std::abs(normalizer), 0.1);
  for (double& r : record.early_rewards) r /= denom;
  record.final_score = probe_score(outcome.early_rewards) / denom;
  return record;
}

/// Snapshot of a candidate's work products for the persistent store.
store::OutcomeRecord to_store_record(const CandidateOutcome& outcome,
                                     const store::Fingerprint& fp,
                                     store::Stage stage) {
  store::OutcomeRecord record;
  record.fingerprint = fp;
  record.stage = stage;
  record.id = outcome.id;
  record.source = outcome.source;
  record.arch = outcome.arch;
  record.compiled = outcome.compiled;
  record.compile_error = outcome.compile_error;
  record.normalized = outcome.normalized;
  record.normalization_error = outcome.normalization_error;
  record.early_probed = outcome.early_probed;
  record.early_rewards = outcome.early_rewards;
  record.fully_trained = outcome.fully_trained;
  record.test_score = outcome.test_score;
  record.emulation_score = outcome.emulation_score;
  record.curve_epochs = outcome.curve_epochs;
  record.median_curve = outcome.median_curve;
  return record;
}

/// Restores the store's work products onto a fresh outcome (everything but
/// the per-run selection verdict).
void apply_store_record(const store::OutcomeRecord& record,
                        CandidateOutcome& outcome) {
  outcome.compiled = record.compiled;
  outcome.compile_error = record.compile_error;
  outcome.normalized = record.normalized;
  outcome.normalization_error = record.normalization_error;
  if (record.stage >= store::Stage::kProbed) {
    outcome.early_probed = record.early_probed;
    outcome.early_rewards = record.early_rewards;
  }
}

/// Single point of truth for the full-training output fields: every path
/// that produces them (fresh session, store record, in-batch clone) funnels
/// through here, so a new field cannot be silently dropped on just one.
void set_full_train_fields(CandidateOutcome& outcome, bool fully_trained,
                           double test_score, double emulation_score,
                           std::vector<double> median_curve,
                           std::vector<double> curve_epochs) {
  outcome.fully_trained = fully_trained;
  outcome.test_score = test_score;
  outcome.emulation_score = emulation_score;
  outcome.median_curve = std::move(median_curve);
  outcome.curve_epochs = std::move(curve_epochs);
}

void apply_full_train_record(const store::OutcomeRecord& record,
                             CandidateOutcome& outcome) {
  set_full_train_fields(outcome, record.fully_trained, record.test_score,
                        record.emulation_score, record.median_curve,
                        record.curve_epochs);
}

/// In-batch dedup: index of the first candidate with each fingerprint.
/// Clones copy their leader's probe/training results instead of re-running
/// them (content-derived seeds make the results identical anyway).
std::vector<std::size_t> leaders_by_fingerprint(
    const std::vector<store::Fingerprint>& fps) {
  std::unordered_map<std::string, std::size_t> first_seen;
  std::vector<std::size_t> leader(fps.size());
  for (std::size_t i = 0; i < fps.size(); ++i) {
    leader[i] = first_seen.try_emplace(fps[i].hex(), i).first->second;
  }
  return leader;
}

void copy_probe_result(const CandidateOutcome& from, CandidateOutcome& to) {
  to.early_probed = from.early_probed;
  to.early_rewards = from.early_rewards;
  if (!from.early_probed) to.compile_error = from.compile_error;
}

void copy_full_train_result(const CandidateOutcome& from,
                            CandidateOutcome& to) {
  set_full_train_fields(to, from.fully_trained, from.test_score,
                        from.emulation_score, from.median_curve,
                        from.curve_epochs);
}

/// Runs the early-probe stage over `jobs` — batched lockstep blocks or one
/// serial Trainer per candidate (bit-identical either way) — and hands
/// each result to `apply(k, result)` with k indexing `jobs`. Shared by the
/// state and architecture searches so the two dispatches cannot drift.
void run_probe_stage(
    const env::TaskDomain& domain, util::ThreadPool* pool,
    const PipelineConfig& config, const rl::TrainConfig& probe_config,
    const std::vector<rl::ProbeJob>& jobs,
    const std::function<void(std::size_t, const rl::TrainResult&)>& apply) {
  if (config.probe_batch) {
    const rl::BatchProbeTrainer batch_trainer(
        domain, rl::BatchProbeConfig{probe_config, config.probe_block});
    const auto results = batch_trainer.train(jobs, pool);
    for (std::size_t k = 0; k < jobs.size(); ++k) apply(k, results[k]);
    return;
  }
  auto probe = [&](std::size_t k) {
    rl::Trainer trainer(domain, probe_config, jobs[k].seed);
    apply(k, trainer.train(*jobs[k].program, *jobs[k].spec));
  };
  if (pool != nullptr && jobs.size() > 1) {
    pool->parallel_for(jobs.size(), probe);
  } else {
    for (std::size_t k = 0; k < jobs.size(); ++k) probe(k);
  }
}

}  // namespace

void Pipeline::validate_config(const PipelineConfig& config) {
  if (config.num_candidates == 0) {
    throw std::invalid_argument(
        "PipelineConfig: num_candidates must be >= 1 (got 0)");
  }
  if (config.full_train_top == 0) {
    throw std::invalid_argument(
        "PipelineConfig: full_train_top must be >= 1 (got 0)");
  }
  if (config.full_train_top > config.num_candidates) {
    throw std::invalid_argument(
        "PipelineConfig: full_train_top (" +
        std::to_string(config.full_train_top) +
        ") exceeds num_candidates (" +
        std::to_string(config.num_candidates) +
        "): cannot fully train more designs than the stream holds");
  }
  if (config.seeds == 0) {
    throw std::invalid_argument(
        "PipelineConfig: seeds must be >= 1 (got 0); the paper's protocol "
        "trains each survivor across independent seeds");
  }
  if (config.probe_block == 0) {
    throw std::invalid_argument(
        "PipelineConfig: probe_block must be >= 1 (got 0)");
  }
  if (config.early_epochs == 0) {
    throw std::invalid_argument(
        "PipelineConfig: early_epochs must be >= 1 (got 0); the probe "
        "stage needs a non-empty reward window");
  }
}

Pipeline::Pipeline(std::shared_ptr<const env::TaskDomain> domain,
                   PipelineConfig config, std::uint64_t seed,
                   util::ThreadPool* pool)
    : owned_domain_(std::move(domain)), domain_(owned_domain_.get()),
      config_(std::move(config)), seed_(seed), pool_(pool) {
  validate_config(config_);
}

Pipeline::Pipeline(const env::TaskDomain& domain, PipelineConfig config,
                   std::uint64_t seed, util::ThreadPool* pool)
    : Pipeline(std::shared_ptr<const env::TaskDomain>(
                   std::shared_ptr<void>{}, &domain),
               std::move(config), seed, pool) {}

Pipeline::Pipeline(const trace::Dataset& dataset, const video::Video& video,
                   PipelineConfig config, std::uint64_t seed,
                   util::ThreadPool* pool)
    : Pipeline(std::make_shared<env::AbrDomain>(dataset, video),
               std::move(config), seed, pool) {}

const rl::SessionResult& Pipeline::original_baseline() {
  if (!original_.has_value()) {
    const dsl::StateProgram original_state =
        dsl::StateProgram::compile(domain_->baseline_state_source());
    rl::SessionConfig sc;
    sc.seeds = config_.seeds;
    sc.train = config_.train;
    original_ = rl::run_sessions(*domain_, original_state,
                                 config_.baseline_arch, sc,
                                 seed_ ^ 0x0817b05eULL, pool_);
  }
  return *original_;
}

store::StoreScope Pipeline::store_scope() const {
  std::ostringstream spec;
  // Simulator-semantics revision: bumped whenever a code change alters the
  // per-candidate results produced for the same (fingerprint, config) —
  // e.g. rev 2 fixed AbrEnv's constructor RNG draw, the eval-prefix bias,
  // and the stall-deadline "completed" lie. Journals written under an
  // older revision are scoped out rather than silently mixed with
  // incomparable fresh results. Execution-only knobs (probe_batch,
  // probe_block) never feed the digest: batched and serial runs are
  // bit-identical and share journals.
  spec << "sim_rev=2;" << store::canonical_train_config(config_.train)
       << ";seeds=" << config_.seeds
       << ";early_epochs=" << config_.early_epochs
       << ";norm_threshold=" << config_.normalization_threshold
       << ";norm_fuzz=" << config_.normalization_fuzz_runs
       << ";pipeline_seed=" << seed_;
  // The domain appends the identity of its data (traces, video, simulator
  // parameters): results are only reusable against the same inputs.
  domain_->append_scope_spec(spec);
  store::StoreScope scope;
  scope.env = domain_->scope_env();
  scope.config_digest = store::fingerprint_text(spec.str()).hex();
  return scope;
}

void Pipeline::attach_store(store::CandidateStore* store) {
  if (store != nullptr && !(store->scope() == store_scope())) {
    throw std::invalid_argument(
        "Pipeline::attach_store: store scope (" + store->scope().env + "/" +
        store->scope().config_digest +
        ") does not match this pipeline's scope (" + store_scope().env + "/" +
        store_scope().config_digest + ")");
  }
  store_ = store;
}

PipelineResult Pipeline::resume_states(
    gen::StateGenerator& generator, const nn::ArchSpec& arch,
    const filter::EarlyStopModel* early_stop_model) {
  if (store_ == nullptr) {
    throw std::logic_error("Pipeline::resume_states: no store attached");
  }
  generator.reset();
  return search_states(generator, arch, early_stop_model);
}

PipelineResult Pipeline::resume_archs(
    gen::ArchGenerator& generator, const dsl::StateProgram& state,
    const filter::EarlyStopModel* early_stop_model) {
  if (store_ == nullptr) {
    throw std::logic_error("Pipeline::resume_archs: no store attached");
  }
  generator.reset();
  return search_archs(generator, state, early_stop_model);
}

std::vector<std::size_t> Pipeline::select_survivors(
    const std::vector<CandidateOutcome>& outcomes,
    const filter::EarlyStopModel* early_stop_model,
    std::vector<CandidateOutcome>& all) const {
  // Candidates eligible for selection: probed ones.
  std::vector<std::size_t> probed;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].early_probed) probed.push_back(i);
  }

  std::vector<std::size_t> kept;
  if (early_stop_model != nullptr) {
    const double normalizer =
        original_.has_value() ? original_->test_score : 1.0;
    for (std::size_t i : probed) {
      const auto record = make_record(outcomes[i], normalizer);
      if (early_stop_model->keep(record)) {
        kept.push_back(i);
      } else {
        all[i].early_stopped = true;
      }
    }
  } else {
    kept = probed;
  }

  // Rank the kept probes by tail reward and take the full-training slots.
  // Ties break by stream position so reruns and resumed runs select
  // identically even when deduplicated candidates share a reward curve.
  std::sort(kept.begin(), kept.end(), [&outcomes](std::size_t a,
                                                  std::size_t b) {
    const double score_a = probe_score(outcomes[a].early_rewards);
    const double score_b = probe_score(outcomes[b].early_rewards);
    if (score_a != score_b) return score_a > score_b;
    return a < b;
  });
  if (kept.size() > config_.full_train_top) {
    for (std::size_t r = config_.full_train_top; r < kept.size(); ++r) {
      all[kept[r]].early_stopped = true;
    }
    kept.resize(config_.full_train_top);
  }
  return kept;
}

void Pipeline::apply_session_results(
    std::vector<CandidateOutcome>& outcomes,
    const std::vector<std::size_t>& selected,
    const std::vector<rl::SessionResult>& sessions) {
  for (std::size_t k = 0; k < selected.size(); ++k) {
    const rl::SessionResult& session = sessions[k];
    set_full_train_fields(outcomes[selected[k]], !session.failed,
                          session.test_score, session.emulation_score,
                          session.median_curve, session.curve_epochs);
  }
}

PipelineResult Pipeline::search_states(
    gen::StateGenerator& generator, const nn::ArchSpec& arch,
    const filter::EarlyStopModel* early_stop_model) {
  PipelineResult result;
  const auto candidates = generator.generate_batch(config_.num_candidates);
  result.n_total = candidates.size();

  // Baseline first: selection and reporting are relative to it.
  result.original = original_baseline();
  result.original_score = result.original.test_score;

  // Content addresses: a candidate is the (state, arch) pair. Per-candidate
  // training seeds derive from the fingerprint, not the stream position, so
  // identical content always trains identically — the property that makes
  // cached results transplantable across runs and shards.
  const store::Fingerprint arch_fp = store::fingerprint_arch(arch);
  std::vector<store::Fingerprint> fps(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    fps[i] = store::combine(
        store::fingerprint_state_source(candidates[i].source), arch_fp);
  }
  const std::vector<std::size_t> leader = leaders_by_fingerprint(fps);
  std::vector<std::optional<store::OutcomeRecord>> cached(candidates.size());
  if (store_ != nullptr) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      cached[i] = store_->lookup(fps[i]);
    }
  }

  // Stage 1+2: pre-checks. Cheap and embarrassingly parallel. Cache hits
  // serve the recorded verdict; compiled sources are still re-parsed (a
  // cheap parse) so later stages have the program object.
  std::vector<CandidateOutcome> outcomes(candidates.size());
  std::vector<std::optional<dsl::StateProgram>> programs(candidates.size());
  auto precheck = [&](std::size_t i) {
    CandidateOutcome& outcome = outcomes[i];
    outcome.id = candidates[i].id;
    outcome.source = candidates[i].source;
    if (cached[i].has_value()) {
      bool record_usable = true;
      if (cached[i]->compiled && cached[i]->stage < store::Stage::kTrained) {
        try {
          programs[i] = dsl::StateProgram::compile(candidates[i].source);
        } catch (const dsl::CompileError&) {
          // The record says this source compiles but it doesn't: a
          // fingerprint collision (or foreign journal). Fall through to a
          // genuine miss so the candidate is evaluated on its own merits.
          record_usable = false;
        }
      }
      if (record_usable) {
        apply_store_record(*cached[i], outcome);
        return;
      }
      cached[i].reset();
    }
    const auto compile = filter::compilation_check(
        candidates[i].source, domain_->catalog(), &programs[i]);
    outcome.compiled = compile.passed;
    outcome.compile_error = compile.reason;
    if (compile.passed) {
      const auto norm = filter::normalization_check(
          *programs[i], domain_->catalog(), config_.normalization_threshold,
          config_.normalization_fuzz_runs, seed_ ^ (fps[i].lo * 0x9e3779b9ULL));
      outcome.normalized = norm.passed;
      outcome.normalization_error = norm.reason;
    }
    if (store_ != nullptr) {
      store_->put(to_store_record(outcome, fps[i], store::Stage::kChecked));
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(candidates.size(), precheck);
  } else {
    for (std::size_t i = 0; i < candidates.size(); ++i) precheck(i);
  }
  for (const auto& c : cached) {
    if (c.has_value()) ++result.n_precheck_cache_hits;
  }

  // Stage 3: the early "batch training" probe, skipping candidates whose
  // probe curve the store already holds.
  std::vector<std::size_t> probe_set;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].compiled) ++result.n_compiled;
    if (!outcomes[i].compiled || !outcomes[i].normalized) continue;
    ++result.n_normalized;
    if (cached[i].has_value() && cached[i]->stage >= store::Stage::kProbed) {
      ++result.n_probe_cache_hits;  // probe verdict already applied
    } else if (leader[i] != i) {
      // In-batch clone: copies the leader's probe result after the stage.
    } else if (programs[i].has_value()) {
      probe_set.push_back(i);
    }
  }
  rl::TrainConfig probe_config = config_.train;
  probe_config.epochs = config_.early_epochs;
  probe_config.evaluate_checkpoints = false;
  std::vector<rl::ProbeJob> probe_jobs;
  probe_jobs.reserve(probe_set.size());
  for (std::size_t i : probe_set) {
    probe_jobs.push_back(rl::ProbeJob{&*programs[i], &arch,
                                      seed_ ^ (0xb10b << 8) ^ fps[i].lo});
  }
  run_probe_stage(
      *domain_, pool_, config_, probe_config, probe_jobs,
      [&](std::size_t k, const rl::TrainResult& probe_result) {
        const std::size_t i = probe_set[k];
        if (!probe_result.failed) {
          outcomes[i].early_probed = true;
          outcomes[i].early_rewards = probe_result.train_rewards;
        } else {
          // Blew up only under real training inputs; treat as
          // compile-stage failure discovered late.
          outcomes[i].compile_error = probe_result.error;
        }
        if (store_ != nullptr) {
          store_->put(
              to_store_record(outcomes[i], fps[i], store::Stage::kProbed));
        }
      });
  result.n_probes_run = probe_set.size();
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (leader[i] != i && outcomes[i].compiled && outcomes[i].normalized &&
        !outcomes[i].early_probed) {
      copy_probe_result(outcomes[leader[i]], outcomes[i]);
    }
  }

  // Stage 4: selection (early-stop model or tail-reward ranking).
  const std::vector<std::size_t> selected =
      select_survivors(outcomes, early_stop_model, outcomes);
  for (const auto& outcome : outcomes) {
    if (outcome.early_stopped) ++result.n_early_stopped;
  }

  // Stage 5: full-scale training of the survivors, every (design, seed)
  // pair scheduled independently on the pool. Survivors whose full run is
  // journaled reuse it outright; a selected clone waits for its leader
  // (equal probe score + index tie-break guarantee the leader is selected
  // whenever a clone is).
  std::vector<std::size_t> to_train;
  std::vector<std::size_t> clones;
  for (std::size_t i : selected) {
    if (cached[i].has_value() && cached[i]->stage >= store::Stage::kTrained) {
      apply_full_train_record(*cached[i], outcomes[i]);
      ++result.n_full_cache_hits;
    } else if (leader[i] != i) {
      clones.push_back(i);
    } else if (programs[i].has_value()) {
      to_train.push_back(i);
    }
  }
  rl::SessionConfig session_config;
  session_config.seeds = config_.seeds;
  session_config.train = config_.train;
  std::vector<rl::SessionJob> jobs;
  jobs.reserve(to_train.size());
  for (std::size_t i : to_train) {
    jobs.push_back(rl::SessionJob{&*programs[i], &arch,
                                  seed_ ^ (0xf111 << 4) ^ fps[i].lo});
  }
  const auto sessions =
      rl::run_session_batch(*domain_, jobs, session_config, pool_);
  apply_session_results(outcomes, to_train, sessions);
  result.n_full_trains_run = to_train.size();
  for (std::size_t i : clones) {
    copy_full_train_result(outcomes[leader[i]], outcomes[i]);
  }
  if (store_ != nullptr) {
    for (std::size_t i : to_train) {
      store_->put(to_store_record(outcomes[i], fps[i], store::Stage::kTrained));
    }
  }

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].fully_trained) continue;
    ++result.n_fully_trained;
    if (outcomes[i].test_score > result.best_score) {
      result.best_score = outcomes[i].test_score;
      result.best_index = i;
    }
  }
  result.outcomes = std::move(outcomes);
  return result;
}

PipelineResult Pipeline::search_archs(
    gen::ArchGenerator& generator, const dsl::StateProgram& state,
    const filter::EarlyStopModel* early_stop_model) {
  PipelineResult result;
  const auto candidates = generator.generate_batch(config_.num_candidates);
  result.n_total = candidates.size();

  result.original = original_baseline();
  result.original_score = result.original.test_score;

  const nn::StateSignature signature =
      rl::derive_signature(state, domain_->catalog());

  const store::Fingerprint state_fp =
      store::fingerprint_state_source(state.source());
  std::vector<store::Fingerprint> fps(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    fps[i] = store::combine(store::fingerprint_arch(candidates[i].spec),
                            state_fp);
  }

  const std::vector<std::size_t> leader = leaders_by_fingerprint(fps);
  std::vector<CandidateOutcome> outcomes(candidates.size());
  std::vector<std::optional<store::OutcomeRecord>> cached(candidates.size());
  std::vector<std::size_t> probe_set;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    outcomes[i].id = candidates[i].id;
    outcomes[i].arch = candidates[i].spec;
    outcomes[i].source = candidates[i].description;
    if (store_ != nullptr) cached[i] = store_->lookup(fps[i]);
    if (cached[i].has_value()) {
      apply_store_record(*cached[i], outcomes[i]);
      ++result.n_precheck_cache_hits;
    } else {
      const auto check = filter::arch_compilation_check(
          candidates[i].spec, signature, domain_->num_actions());
      outcomes[i].compiled = check.passed;
      outcomes[i].compile_error = check.reason;
      // The normalization check does not apply to architectures (§2.2).
      outcomes[i].normalized = check.passed;
      if (store_ != nullptr) {
        store_->put(
            to_store_record(outcomes[i], fps[i], store::Stage::kChecked));
      }
    }
    if (!outcomes[i].compiled) continue;
    ++result.n_compiled;
    ++result.n_normalized;
    if (cached[i].has_value() && cached[i]->stage >= store::Stage::kProbed) {
      ++result.n_probe_cache_hits;
    } else if (leader[i] == i) {
      probe_set.push_back(i);
    }
  }

  rl::TrainConfig probe_config = config_.train;
  probe_config.epochs = config_.early_epochs;
  probe_config.evaluate_checkpoints = false;
  std::vector<rl::ProbeJob> probe_jobs;
  probe_jobs.reserve(probe_set.size());
  for (std::size_t i : probe_set) {
    probe_jobs.push_back(rl::ProbeJob{&state, &*outcomes[i].arch,
                                      seed_ ^ (0xa10b << 8) ^ fps[i].lo});
  }
  run_probe_stage(
      *domain_, pool_, config_, probe_config, probe_jobs,
      [&](std::size_t k, const rl::TrainResult& probe_result) {
        const std::size_t i = probe_set[k];
        if (!probe_result.failed) {
          outcomes[i].early_probed = true;
          outcomes[i].early_rewards = probe_result.train_rewards;
        } else {
          outcomes[i].compile_error = probe_result.error;
        }
        if (store_ != nullptr) {
          store_->put(
              to_store_record(outcomes[i], fps[i], store::Stage::kProbed));
        }
      });
  result.n_probes_run = probe_set.size();
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (leader[i] != i && outcomes[i].compiled && !outcomes[i].early_probed) {
      copy_probe_result(outcomes[leader[i]], outcomes[i]);
    }
  }

  const std::vector<std::size_t> selected =
      select_survivors(outcomes, early_stop_model, outcomes);
  for (const auto& outcome : outcomes) {
    if (outcome.early_stopped) ++result.n_early_stopped;
  }

  std::vector<std::size_t> to_train;
  std::vector<std::size_t> clones;
  for (std::size_t i : selected) {
    if (cached[i].has_value() && cached[i]->stage >= store::Stage::kTrained) {
      apply_full_train_record(*cached[i], outcomes[i]);
      ++result.n_full_cache_hits;
    } else if (leader[i] != i) {
      clones.push_back(i);
    } else {
      to_train.push_back(i);
    }
  }
  rl::SessionConfig session_config;
  session_config.seeds = config_.seeds;
  session_config.train = config_.train;
  std::vector<rl::SessionJob> jobs;
  jobs.reserve(to_train.size());
  for (std::size_t i : to_train) {
    jobs.push_back(rl::SessionJob{&state, &*outcomes[i].arch,
                                  seed_ ^ (0xf222 << 4) ^ fps[i].lo});
  }
  const auto sessions =
      rl::run_session_batch(*domain_, jobs, session_config, pool_);
  apply_session_results(outcomes, to_train, sessions);
  result.n_full_trains_run = to_train.size();
  for (std::size_t i : clones) {
    copy_full_train_result(outcomes[leader[i]], outcomes[i]);
  }
  if (store_ != nullptr) {
    for (std::size_t i : to_train) {
      store_->put(to_store_record(outcomes[i], fps[i], store::Stage::kTrained));
    }
  }

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].fully_trained) continue;
    ++result.n_fully_trained;
    if (outcomes[i].test_score > result.best_score) {
      result.best_score = outcomes[i].test_score;
      result.best_index = i;
    }
  }
  result.outcomes = std::move(outcomes);
  return result;
}

PipelineConfig scaled_pipeline_config(trace::Environment env,
                                      const util::ScaleConfig& scale) {
  const trace::DatasetSpec spec = trace::paper_spec(env);
  PipelineConfig config;
  config.num_candidates = scale.gen_count(3000);
  config.seeds = scale.seed_count(5);
  config.train.epochs = scale.epoch_count(spec.train_epochs, 120);
  // Keep roughly the paper's checkpoints-per-run ratio (~80 for FCC/4G/5G,
  // 40 for Starlink) but never fewer than 10 checkpoints.
  const std::size_t paper_checkpoints =
      std::max<std::size_t>(spec.train_epochs / spec.test_interval, 10);
  config.train.test_interval = std::max<std::size_t>(
      config.train.epochs / std::min<std::size_t>(paper_checkpoints, 40), 1);
  config.train.max_eval_traces = 12;
  // First-quarter probe window (the paper watches the first 10k of 40k),
  // capped so probing the many pre-check survivors stays cheaper than fully
  // training the few selected ones.
  config.early_epochs = std::clamp<std::size_t>(config.train.epochs / 4, 20,
                                                400);
  config.full_train_top = 6;

  // Model scale: the paper's 128-wide towers shrink for bench runtime.
  const double model_scale = util::env_double("NADA_SCALE_MODEL", 0.25);
  auto scaled_width = [model_scale](std::size_t w) {
    return std::max<std::size_t>(
        static_cast<std::size_t>(std::lround(w * model_scale)), 8);
  };
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = scaled_width(arch.conv_filters);
  arch.rnn_hidden = scaled_width(arch.rnn_hidden);
  arch.scalar_hidden = scaled_width(arch.scalar_hidden);
  arch.merge_hidden = scaled_width(arch.merge_hidden);
  config.baseline_arch = arch;
  return config;
}

}  // namespace nada::core

#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nada::core {

Pipeline::Pipeline(std::shared_ptr<const env::TaskDomain> domain,
                   PipelineConfig config, std::uint64_t seed,
                   util::ThreadPool* pool)
    : owned_domain_(std::move(domain)), domain_(owned_domain_.get()),
      config_(std::move(config)), seed_(seed), pool_(pool) {
  search::validate_config(config_);
}

Pipeline::Pipeline(const env::TaskDomain& domain, PipelineConfig config,
                   std::uint64_t seed, util::ThreadPool* pool)
    : Pipeline(std::shared_ptr<const env::TaskDomain>(
                   std::shared_ptr<void>{}, &domain),
               std::move(config), seed, pool) {}

Pipeline::Pipeline(const trace::Dataset& dataset, const video::Video& video,
                   PipelineConfig config, std::uint64_t seed,
                   util::ThreadPool* pool)
    : Pipeline(std::make_shared<env::AbrDomain>(dataset, video),
               std::move(config), seed, pool) {}

const rl::SessionResult& Pipeline::original_baseline() {
  if (!original_.has_value()) {
    original_ = search::train_baseline(*domain_, config_, seed_, pool_);
  }
  return *original_;
}

store::StoreScope Pipeline::store_scope() const {
  return search::store_scope(*domain_, config_, seed_);
}

void Pipeline::attach_store(store::CandidateStore* store) {
  if (store != nullptr && !(store->scope() == store_scope())) {
    throw std::invalid_argument(
        "Pipeline::attach_store: store scope (" + store->scope().env + "/" +
        store->scope().config_digest +
        ") does not match this pipeline's scope (" + store_scope().env + "/" +
        store_scope().config_digest + ")");
  }
  store_ = store;
}

PipelineResult Pipeline::run_job(search::CandidateSource& source,
                                 search::FixedDesign fixed,
                                 const filter::EarlyStopModel* early_stop_model,
                                 bool resume) {
  search::SearchJob::Options options;
  options.early_stop_model = early_stop_model;
  options.store = store_;
  options.pool = pool_;
  options.baseline_cache = &original_;
  search::SearchJob job(*domain_, config_, seed_, source, fixed, options);
  return resume ? job.resume() : job.run_to_completion();
}

PipelineResult Pipeline::search_states(
    gen::StateGenerator& generator, const nn::ArchSpec& arch,
    const filter::EarlyStopModel* early_stop_model) {
  search::StateCandidateSource source(generator);
  return run_job(source, search::FixedDesign{nullptr, &arch},
                 early_stop_model, /*resume=*/false);
}

PipelineResult Pipeline::search_archs(
    gen::ArchGenerator& generator, const dsl::StateProgram& state,
    const filter::EarlyStopModel* early_stop_model) {
  search::ArchCandidateSource source(generator);
  return run_job(source, search::FixedDesign{&state, nullptr},
                 early_stop_model, /*resume=*/false);
}

PipelineResult Pipeline::resume_states(
    gen::StateGenerator& generator, const nn::ArchSpec& arch,
    const filter::EarlyStopModel* early_stop_model) {
  if (store_ == nullptr) {
    throw std::logic_error("Pipeline::resume_states: no store attached");
  }
  search::StateCandidateSource source(generator);
  return run_job(source, search::FixedDesign{nullptr, &arch},
                 early_stop_model, /*resume=*/true);
}

PipelineResult Pipeline::resume_archs(
    gen::ArchGenerator& generator, const dsl::StateProgram& state,
    const filter::EarlyStopModel* early_stop_model) {
  if (store_ == nullptr) {
    throw std::logic_error("Pipeline::resume_archs: no store attached");
  }
  search::ArchCandidateSource source(generator);
  return run_job(source, search::FixedDesign{&state, nullptr},
                 early_stop_model, /*resume=*/true);
}

PipelineConfig scaled_pipeline_config(trace::Environment env,
                                      const util::ScaleConfig& scale) {
  const trace::DatasetSpec spec = trace::paper_spec(env);
  PipelineConfig config;
  config.num_candidates = scale.gen_count(3000);
  config.seeds = scale.seed_count(5);
  config.train.epochs = scale.epoch_count(spec.train_epochs, 120);
  // Keep roughly the paper's checkpoints-per-run ratio (~80 for FCC/4G/5G,
  // 40 for Starlink) but never fewer than 10 checkpoints.
  const std::size_t paper_checkpoints =
      std::max<std::size_t>(spec.train_epochs / spec.test_interval, 10);
  config.train.test_interval = std::max<std::size_t>(
      config.train.epochs / std::min<std::size_t>(paper_checkpoints, 40), 1);
  config.train.max_eval_traces = 12;
  // First-quarter probe window (the paper watches the first 10k of 40k),
  // capped so probing the many pre-check survivors stays cheaper than fully
  // training the few selected ones.
  config.early_epochs = std::clamp<std::size_t>(config.train.epochs / 4, 20,
                                                400);
  config.full_train_top = 6;

  // Model scale: the paper's 128-wide towers shrink for bench runtime.
  const double model_scale = util::env_double("NADA_SCALE_MODEL", 0.25);
  auto scaled_width = [model_scale](std::size_t w) {
    return std::max<std::size_t>(
        static_cast<std::size_t>(std::lround(w * model_scale)), 8);
  };
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = scaled_width(arch.conv_filters);
  arch.rnn_hidden = scaled_width(arch.rnn_hidden);
  arch.scalar_hidden = scaled_width(arch.scalar_hidden);
  arch.merge_hidden = scaled_width(arch.merge_hidden);
  config.baseline_arch = arch;
  return config;
}

}  // namespace nada::core

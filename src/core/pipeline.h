// The NADA pipeline (Figure 1): generate -> pre-check -> batch-train with
// early stopping -> full-scale training -> rank.
//
// This is the paper's primary contribution: an orchestration loop that
// turns a stream of LLM-generated candidate code blocks into a ranked set
// of validated designs while spending as little training compute as
// possible on the duds.
//
// The pipeline is domain-generic: it runs over any env::TaskDomain (ABR
// streaming and congestion control ship in-tree), checking candidates
// against the domain's binding catalog and training them in the domain's
// episodes through the identical funnel code path. The historical
// (dataset, video) constructor is the ABR convenience form.
//
// With a store::CandidateStore attached (attach_store), the funnel also
// never re-spends compute across runs: every stage consults the store
// first and checkpoints its results into it, so reruns serve cached
// outcomes and interrupted runs continue via resume_states/resume_archs.
// store_scope() carries the domain token, so ABR and CC journals coexist
// in one store directory without aliasing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dsl/state_program.h"
#include "env/abr_domain.h"
#include "env/domain.h"
#include "filter/checks.h"
#include "filter/earlystop.h"
#include "gen/arch_gen.h"
#include "gen/state_gen.h"
#include "rl/session.h"
#include "rl/trainer.h"
#include "store/candidate_store.h"
#include "store/fingerprint.h"
#include "trace/generator.h"
#include "util/scale.h"
#include "util/thread_pool.h"
#include "video/video.h"

namespace nada::core {

struct PipelineConfig {
  std::size_t num_candidates = 150;
  /// Epochs for the early "batch training" probe (the paper's first-K
  /// reward window).
  std::size_t early_epochs = 60;
  /// How many ranked survivors get the full training budget.
  std::size_t full_train_top = 6;
  /// Sessions (seeds) for full-scale training.
  std::size_t seeds = 3;
  rl::TrainConfig train;  ///< full-scale budget; early probe reuses it with
                          ///< `early_epochs` epochs
  /// Architecture used for the baseline and for state-search candidates.
  nn::ArchSpec baseline_arch = nn::ArchSpec::pensieve();
  double normalization_threshold = filter::kNormalizationThreshold;
  std::size_t normalization_fuzz_runs = 16;
  /// Run the early-probe stage through rl::BatchProbeTrainer: candidates
  /// train in lockstep blocks with fused matrix-matrix updates instead of
  /// one serial Trainer each. Bit-identical per-candidate reward curves
  /// and store records either way (per-candidate seeds are fingerprint-
  /// derived and unaffected), so this is an execution knob, not a scope
  /// knob: it does not feed store_scope() and journals are shared freely
  /// between batched and serial runs of the same code revision.
  bool probe_batch = true;
  /// Candidates per lockstep block when probe_batch is on.
  std::size_t probe_block = 4;
};

/// Everything that happened to one candidate on its way through the funnel.
struct CandidateOutcome {
  std::string id;
  std::string source;            ///< state candidates only
  std::optional<nn::ArchSpec> arch;  ///< architecture candidates only
  bool compiled = false;
  std::string compile_error;
  bool normalized = false;       ///< always true for architecture candidates
  std::string normalization_error;
  bool early_probed = false;
  std::vector<double> early_rewards;
  bool early_stopped = false;    ///< filtered out after the probe
  bool fully_trained = false;
  double test_score = -1e9;      ///< paper's test score (median over seeds)
  double emulation_score = 0.0;  ///< Table-4 style emulation score, if asked
  std::vector<double> curve_epochs;  ///< checkpoint curve of the full run
  std::vector<double> median_curve;
};

struct PipelineResult {
  std::vector<CandidateOutcome> outcomes;
  std::size_t n_total = 0;
  std::size_t n_compiled = 0;
  std::size_t n_normalized = 0;
  std::size_t n_early_stopped = 0;
  std::size_t n_fully_trained = 0;
  /// Stage results served from the attached candidate store instead of
  /// recomputed (always 0 without a store).
  std::size_t n_precheck_cache_hits = 0;
  std::size_t n_probe_cache_hits = 0;
  std::size_t n_full_cache_hits = 0;
  /// Work actually executed by this invocation (cache misses). A rerun
  /// over an unchanged stream reports n_probes_run == n_full_trains_run
  /// == 0: every result comes from the store.
  std::size_t n_probes_run = 0;
  std::size_t n_full_trains_run = 0;

  [[nodiscard]] std::size_t cache_hits() const {
    return n_precheck_cache_hits + n_probe_cache_hits + n_full_cache_hits;
  }
  /// Baseline: the original design trained with the same protocol.
  rl::SessionResult original;
  double original_score = 0.0;
  /// Index into `outcomes` of the best fully trained candidate, or npos.
  std::size_t best_index = SIZE_MAX;
  double best_score = -1e9;

  [[nodiscard]] bool has_best() const { return best_index != SIZE_MAX; }
  [[nodiscard]] double improvement() const {
    return original_score != 0.0 && has_best()
               ? (best_score - original_score) / std::abs(original_score)
               : 0.0;
  }
};

class Pipeline {
 public:
  /// Domain-generic pipeline; `domain` must outlive it. `pool` may be null
  /// (serial execution). Throws std::invalid_argument on a degenerate
  /// config (see validate_config).
  Pipeline(const env::TaskDomain& domain, PipelineConfig config,
           std::uint64_t seed, util::ThreadPool* pool = nullptr);

  /// ABR convenience: wraps (dataset, video) in an owned env::AbrDomain.
  Pipeline(const trace::Dataset& dataset, const video::Video& video,
           PipelineConfig config, std::uint64_t seed,
           util::ThreadPool* pool = nullptr);

  /// Searches over state functions with a fixed architecture. When
  /// `early_stop_model` is null the pipeline ranks probes by their tail
  /// reward and fully trains the top `full_train_top` (the behaviour the
  /// paper's heuristic baseline provides); otherwise the fitted model
  /// decides which probes continue, and the top `full_train_top` of the
  /// kept set get full training.
  [[nodiscard]] PipelineResult search_states(
      gen::StateGenerator& generator, const nn::ArchSpec& arch,
      const filter::EarlyStopModel* early_stop_model = nullptr);

  /// Searches over architectures with a fixed state program.
  [[nodiscard]] PipelineResult search_archs(
      gen::ArchGenerator& generator, const dsl::StateProgram& state,
      const filter::EarlyStopModel* early_stop_model = nullptr);

  /// Trains the domain's original design (state + architecture) under the
  /// same protocol; used as the comparison baseline and cached.
  [[nodiscard]] const rl::SessionResult& original_baseline();

  /// The (environment, funnel-config digest) scope this pipeline's results
  /// live under in a candidate store. Everything that changes a stored
  /// per-candidate result — training protocol, probe budget, seeds,
  /// normalization check parameters, the pipeline seed, the identity of
  /// the domain's data (traces, video, simulator parameters), and the
  /// simulator-semantics revision — feeds the digest; selection-only knobs
  /// (num_candidates, full_train_top) do not, so the cache survives
  /// re-ranking with a different top-K. The scope's env field is the
  /// domain token ("starlink" for ABR, "cc-starlink" for CC).
  [[nodiscard]] store::StoreScope store_scope() const;

  /// Attaches a persistent store: subsequent searches consult it before
  /// every funnel stage (hits skip the work) and checkpoint results into
  /// it as each stage completes. The store's scope must equal
  /// store_scope() — attaching a store from a different environment or
  /// protocol throws std::invalid_argument. Pass nullptr to detach. The
  /// store must outlive the pipeline.
  void attach_store(store::CandidateStore* store);

  /// Continues an interrupted state search: rewinds the generator to the
  /// start of its stream and re-runs the funnel against the attached
  /// store, so every stage journaled before the interruption is served
  /// from the checkpoint and only the remaining work executes. Requires an
  /// attached store (std::logic_error otherwise).
  [[nodiscard]] PipelineResult resume_states(
      gen::StateGenerator& generator, const nn::ArchSpec& arch,
      const filter::EarlyStopModel* early_stop_model = nullptr);

  /// Architecture-search twin of resume_states.
  [[nodiscard]] PipelineResult resume_archs(
      gen::ArchGenerator& generator, const dsl::StateProgram& state,
      const filter::EarlyStopModel* early_stop_model = nullptr);

 private:
  Pipeline(std::shared_ptr<const env::TaskDomain> domain,
           PipelineConfig config, std::uint64_t seed, util::ThreadPool* pool);

  /// Up-front validation with descriptive errors: num_candidates >= 1,
  /// 1 <= full_train_top <= num_candidates, seeds >= 1, probe_block >= 1,
  /// early_epochs >= 1.
  static void validate_config(const PipelineConfig& config);

  static void apply_session_results(
      std::vector<CandidateOutcome>& outcomes,
      const std::vector<std::size_t>& selected,
      const std::vector<rl::SessionResult>& sessions);
  [[nodiscard]] std::vector<std::size_t> select_survivors(
      const std::vector<CandidateOutcome>& outcomes,
      const filter::EarlyStopModel* early_stop_model,
      std::vector<CandidateOutcome>& all) const;

  std::shared_ptr<const env::TaskDomain> owned_domain_;
  const env::TaskDomain* domain_;
  PipelineConfig config_;
  std::uint64_t seed_;
  util::ThreadPool* pool_;
  store::CandidateStore* store_ = nullptr;
  std::optional<rl::SessionResult> original_;
};

/// Environment-scaled PipelineConfig: applies ScaleConfig to the paper's
/// budgets for `env` (Table 1 epochs / test interval, 3,000 candidates).
[[nodiscard]] PipelineConfig scaled_pipeline_config(
    trace::Environment env, const util::ScaleConfig& scale);

}  // namespace nada::core

// The NADA pipeline (Figure 1): generate -> pre-check -> batch-train with
// early stopping -> full-scale training -> rank.
//
// STABLE COMPATIBILITY SURFACE. Since the search-API redesign the funnel
// itself lives in src/search/ (search::SearchJob: steppable stages,
// observer event streams, rolling-window streaming, shard workers, unified
// state/arch candidates); core::Pipeline is a thin wrapper that binds the
// historical blocking entry points to one SearchJob each. The wrapper is
// bit-identical to the pre-redesign implementation: same store journals
// byte for byte, same rankings for the same seeds (pinned by
// tests/search_test.cpp). Existing callers keep working unchanged; new
// code that wants progress events, incremental stepping, streaming, or
// sharding should use nada::search directly.
//
// The pipeline is domain-generic: it runs over any env::TaskDomain (ABR
// streaming and congestion control ship in-tree). The historical
// (dataset, video) constructor is the ABR convenience form.
//
// With a store::CandidateStore attached (attach_store), the funnel never
// re-spends compute across runs: every stage consults the store first and
// checkpoints its results into it, so reruns serve cached outcomes and
// interrupted runs continue. Resuming is SearchJob::resume() underneath;
// the resume_states/resume_archs members here are the historical
// spellings of the same thing, kept for existing callers.
//
// Candidates stream through the wrapped job exactly as SearchConfig
// (alias: PipelineConfig) dictates: window_size == 0 is the historical
// materialize-everything batch mode and the default;  window_size >= 1
// runs the funnel in constant-memory rolling windows — identical rankings
// and journal records, but PipelineResult::outcomes then holds only the
// retained (fully-trained) candidates. See search/search_job.h.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "dsl/state_program.h"
#include "env/abr_domain.h"
#include "env/domain.h"
#include "filter/checks.h"
#include "filter/earlystop.h"
#include "gen/arch_gen.h"
#include "gen/state_gen.h"
#include "rl/session.h"
#include "search/candidate.h"
#include "search/search_job.h"
#include "search/types.h"
#include "store/candidate_store.h"
#include "trace/generator.h"
#include "util/scale.h"
#include "util/thread_pool.h"
#include "video/video.h"

namespace nada::core {

// The pipeline's value types are the search API's (one definition, two
// names): core::PipelineConfig et al. remain the stable spellings.
using PipelineConfig = search::SearchConfig;
using CandidateOutcome = search::CandidateOutcome;
using PipelineResult = search::SearchResult;

class Pipeline {
 public:
  /// Domain-generic pipeline; `domain` must outlive it. `pool` may be null
  /// (serial execution). Throws std::invalid_argument on a degenerate
  /// config (see search::validate_config).
  Pipeline(const env::TaskDomain& domain, PipelineConfig config,
           std::uint64_t seed, util::ThreadPool* pool = nullptr);

  /// ABR convenience: wraps (dataset, video) in an owned env::AbrDomain.
  Pipeline(const trace::Dataset& dataset, const video::Video& video,
           PipelineConfig config, std::uint64_t seed,
           util::ThreadPool* pool = nullptr);

  /// Searches over state functions with a fixed architecture. When
  /// `early_stop_model` is null the pipeline ranks probes by their tail
  /// reward and fully trains the top `full_train_top` (the behaviour the
  /// paper's heuristic baseline provides); otherwise the fitted model
  /// decides which probes continue, and the top `full_train_top` of the
  /// kept set get full training.
  [[nodiscard]] PipelineResult search_states(
      gen::StateGenerator& generator, const nn::ArchSpec& arch,
      const filter::EarlyStopModel* early_stop_model = nullptr);

  /// Searches over architectures with a fixed state program.
  [[nodiscard]] PipelineResult search_archs(
      gen::ArchGenerator& generator, const dsl::StateProgram& state,
      const filter::EarlyStopModel* early_stop_model = nullptr);

  /// Trains the domain's original design (state + architecture) under the
  /// same protocol; used as the comparison baseline and cached.
  [[nodiscard]] const rl::SessionResult& original_baseline();

  /// The (environment, funnel-config digest) scope this pipeline's results
  /// live under in a candidate store; see search::store_scope.
  [[nodiscard]] store::StoreScope store_scope() const;

  /// Attaches a persistent store: subsequent searches consult it before
  /// every funnel stage (hits skip the work) and checkpoint results into
  /// it as each stage completes. The store's scope must equal
  /// store_scope() — attaching a store from a different environment or
  /// protocol throws std::invalid_argument. Pass nullptr to detach. The
  /// store must outlive the pipeline.
  void attach_store(store::CandidateStore* store);

  /// Continues an interrupted state search — the historical spelling of
  /// search::SearchJob::resume(): rewinds the generator to the start of
  /// its stream and re-runs the funnel against the attached store, so
  /// every stage journaled before the interruption is served from the
  /// checkpoint and only the remaining work executes. Requires an attached
  /// store (std::logic_error otherwise). New code should build a SearchJob
  /// and call resume() on it (works for any candidate kind or mix).
  [[nodiscard]] PipelineResult resume_states(
      gen::StateGenerator& generator, const nn::ArchSpec& arch,
      const filter::EarlyStopModel* early_stop_model = nullptr);

  /// Architecture-search twin of resume_states (same SearchJob::resume()
  /// underneath).
  [[nodiscard]] PipelineResult resume_archs(
      gen::ArchGenerator& generator, const dsl::StateProgram& state,
      const filter::EarlyStopModel* early_stop_model = nullptr);

 private:
  Pipeline(std::shared_ptr<const env::TaskDomain> domain,
           PipelineConfig config, std::uint64_t seed, util::ThreadPool* pool);

  /// All four entry points funnel here: one search::SearchJob per call,
  /// sharing this pipeline's store and cached baseline.
  [[nodiscard]] PipelineResult run_job(
      search::CandidateSource& source, search::FixedDesign fixed,
      const filter::EarlyStopModel* early_stop_model, bool resume);

  std::shared_ptr<const env::TaskDomain> owned_domain_;
  const env::TaskDomain* domain_;
  PipelineConfig config_;
  std::uint64_t seed_;
  util::ThreadPool* pool_;
  store::CandidateStore* store_ = nullptr;
  std::optional<rl::SessionResult> original_;
};

/// Environment-scaled PipelineConfig: applies ScaleConfig to the paper's
/// budgets for `env` (Table 1 epochs / test interval, 3,000 candidates).
[[nodiscard]] PipelineConfig scaled_pipeline_config(
    trace::Environment env, const util::ScaleConfig& scale);

}  // namespace nada::core

// NadaScript abstract syntax tree.
//
// Programs are a sequence of `let` bindings and `emit` statements; the
// emitted rows form the state matrix fed to the actor-critic network.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace nada::dsl {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kLess, kGreater, kLessEq, kGreaterEq, kEq, kNotEq,
  kAnd, kOr,
};

[[nodiscard]] const char* binary_op_name(BinaryOp op);

enum class UnaryOp { kNeg, kNot };

enum class ExprKind {
  kNumber,
  kVariable,
  kUnary,
  kBinary,
  kTernary,
  kCall,
  kIndex,
  kVectorLiteral,
};

struct Expr {
  ExprKind kind = ExprKind::kNumber;
  std::size_t line = 1;

  // kNumber
  double number = 0.0;
  // kVariable / kCall
  std::string name;
  // kUnary
  UnaryOp unary_op = UnaryOp::kNeg;
  // kBinary
  BinaryOp binary_op = BinaryOp::kAdd;
  // children: kUnary uses [0]; kBinary uses [0], [1]; kTernary uses
  // [0]=cond, [1]=then, [2]=else; kCall uses all as arguments; kIndex uses
  // [0]=base, [1]=index; kVectorLiteral uses all as elements.
  std::vector<ExprPtr> children;
};

enum class StatementKind { kLet, kEmit };

struct Statement {
  StatementKind kind = StatementKind::kLet;
  std::size_t line = 1;
  std::string name;  ///< binding name (let) or row name (emit)
  ExprPtr expr;
};

struct Program {
  std::vector<Statement> statements;

  [[nodiscard]] std::size_t emit_count() const {
    std::size_t n = 0;
    for (const auto& s : statements) {
      if (s.kind == StatementKind::kEmit) ++n;
    }
    return n;
  }
};

}  // namespace nada::dsl

// Per-domain binding catalogs.
//
// A state program is only meaningful relative to a vocabulary of input
// variables: ABR programs read throughput/buffer histories, congestion-
// control programs read rate/RTT/loss histories. A BindingCatalog makes one
// domain's vocabulary concrete — the variable list the candidate generator
// samples from, a canned observation for trial runs (the compilation
// check), and a fuzz-observation generator for the normalization check.
//
// The pre-checks validate every program against the catalog of the domain
// it was generated for: a program that references a name outside the
// vocabulary fails its trial run on canned() exactly like the paper's
// Python exception check, so cross-domain programs cannot slip through on
// the strength of an unrelated domain's bindings.
#pragma once

#include <string>
#include <vector>

#include "dsl/interpreter.h"
#include "util/rng.h"

namespace nada::dsl {

/// One observation variable exposed to state programs.
struct InputVariable {
  std::string name;
  bool is_vector = false;
};

class BindingCatalog {
 public:
  virtual ~BindingCatalog() = default;

  /// Domain token ("abr", "cc") naming this vocabulary.
  [[nodiscard]] virtual const std::string& domain() const = 0;

  /// All variables exposed to programs, with vector/scalar kinds. The
  /// candidate generator samples from this set; docs enumerate it.
  [[nodiscard]] virtual const std::vector<InputVariable>& variables()
      const = 0;

  /// A synthetic observation with plausible mid-episode values; the canned
  /// input for trial runs (the compilation check).
  [[nodiscard]] virtual Bindings canned() const = 0;

  /// A randomized observation for the normalization fuzz check. Values are
  /// drawn from wide but physically meaningful ranges.
  [[nodiscard]] virtual Bindings fuzz(util::Rng& rng) const = 0;
};

}  // namespace nada::dsl

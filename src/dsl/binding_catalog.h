// Per-domain binding catalogs.
//
// A state program is only meaningful relative to a vocabulary of input
// variables: ABR programs read throughput/buffer histories, congestion-
// control programs read rate/RTT/loss histories. A BindingCatalog makes one
// domain's vocabulary concrete — the variable list the candidate generator
// samples from, a canned observation for trial runs (the compilation
// check), and a fuzz-observation generator for the normalization check.
//
// The pre-checks validate every program against the catalog of the domain
// it was generated for: a program that references a name outside the
// vocabulary fails its trial run on canned() exactly like the paper's
// Python exception check, so cross-domain programs cannot slip through on
// the strength of an unrelated domain's bindings.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dsl/interpreter.h"
#include "util/rng.h"

namespace nada::dsl {

/// One observation variable exposed to state programs.
struct InputVariable {
  std::string name;
  bool is_vector = false;
};

class BindingCatalog {
 public:
  virtual ~BindingCatalog() = default;

  /// Domain token ("abr", "cc") naming this vocabulary.
  [[nodiscard]] virtual const std::string& domain() const = 0;

  /// All variables exposed to programs, with vector/scalar kinds. The
  /// candidate generator samples from this set; docs enumerate it.
  [[nodiscard]] virtual const std::vector<InputVariable>& variables()
      const = 0;

  /// A synthetic observation with plausible mid-episode values; the canned
  /// input for trial runs (the compilation check).
  [[nodiscard]] virtual Bindings canned() const = 0;

  /// A randomized observation for the normalization fuzz check. Values are
  /// drawn from wide but physically meaningful ranges.
  [[nodiscard]] virtual Bindings fuzz(util::Rng& rng) const = 0;

  /// Position of `name` in variables() order — the domain's canonical slot
  /// numbering. The bytecode compiler annotates each input reference with
  /// this slot, and canned()/fuzz() observations bind exactly this set, so
  /// slot order is a stable contract per domain. nullopt when `name` is
  /// outside the vocabulary.
  [[nodiscard]] std::optional<std::size_t> slot_index(
      std::string_view name) const {
    const auto& vars = variables();
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (vars[i].name == name) return i;
    }
    return std::nullopt;
  }
};

}  // namespace nada::dsl

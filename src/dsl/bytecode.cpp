#include "dsl/bytecode.h"

#include <atomic>
#include <cstring>
#include <unordered_map>

namespace nada::dsl {
namespace {

std::uint64_t next_program_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Single-pass AST walk. Registers are SSA-style: every value-producing
// node gets a fresh register, so no instruction's operand can alias its
// destination and the VM may compute vector results in place. Let-bound
// names are pure aliases for the defining expression's register.
class Compiler {
 public:
  explicit Compiler(const BindingCatalog* catalog) : catalog_(catalog) {}

  CompiledProgram compile(const Program& program) {
    for (const auto& stmt : program.statements) {
      const std::uint32_t reg = eval(*stmt.expr);
      if (stmt.kind == StatementKind::kLet) {
        locals_[stmt.name] = reg;
      } else {
        const auto row = static_cast<std::uint32_t>(out_.emit_names.size());
        out_.emit_names.push_back(stmt.name);
        emit_instr({Op::kEmit, 0, line32(stmt.line), 0, reg, row, 0});
      }
    }
    // The tree-walk's row-count checks fire only after every statement has
    // executed (a mid-program error must win); the emit count is static,
    // so they lower to a trailing throw.
    if (out_.emit_names.empty()) {
      emit_instr({Op::kThrow, 0, 1, 0,
                  message("program emitted no state rows"), 0, 0});
    } else if (out_.emit_names.size() > 24) {
      emit_instr({Op::kThrow, 0, 1, 0,
                  message("program emitted more than 24 state rows"), 0, 0});
    }
    out_.id = next_program_id();
    return std::move(out_);
  }

 private:
  std::uint32_t eval(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kNumber:
        return const_reg(e.number);

      case ExprKind::kVariable: {
        if (const auto it = locals_.find(e.name); it != locals_.end()) {
          return it->second;
        }
        // Unknown names cannot be rejected here: a reference inside a
        // never-taken ternary branch must not fail, matching the
        // tree-walk's lazy lookup. The load throws when actually executed
        // against a Bindings map missing the name.
        const std::uint32_t input = input_slot(e.name);
        const std::uint32_t msg =
            message("undefined variable '" + e.name + "' (line " +
                    std::to_string(e.line) + ")");
        const std::uint32_t dst = alloc_reg();
        emit_instr({Op::kLoadInput, 0, line32(e.line), dst, input, msg, 0});
        return dst;
      }

      case ExprKind::kUnary: {
        const std::uint32_t a = eval(*e.children[0]);
        const std::uint32_t dst = alloc_reg();
        emit_instr({Op::kUnary, static_cast<std::uint8_t>(e.unary_op),
                    line32(e.line), dst, a, 0, 0});
        return dst;
      }

      case ExprKind::kBinary: {
        const std::uint32_t a = eval(*e.children[0]);
        const std::uint32_t b = eval(*e.children[1]);
        const std::uint32_t dst = alloc_reg();
        emit_instr({Op::kBinary, static_cast<std::uint8_t>(e.binary_op),
                    line32(e.line), dst, a, b, 0});
        return dst;
      }

      case ExprKind::kTernary: {
        const std::uint32_t cond = eval(*e.children[0]);
        const std::uint32_t dst = alloc_reg();
        const std::size_t branch =
            emit_instr({Op::kBranchIfZero, 0, line32(e.line), 0, cond, 0, 0});
        const std::uint32_t then_reg = eval(*e.children[1]);
        emit_instr({Op::kCopy, 0, line32(e.line), dst, then_reg, 0, 0});
        const std::size_t jump =
            emit_instr({Op::kJump, 0, line32(e.line), 0, 0, 0, 0});
        out_.code[branch].b = static_cast<std::uint32_t>(out_.code.size());
        const std::uint32_t else_reg = eval(*e.children[2]);
        emit_instr({Op::kCopy, 0, line32(e.line), dst, else_reg, 0, 0});
        out_.code[jump].b = static_cast<std::uint32_t>(out_.code.size());
        return dst;
      }

      case ExprKind::kCall: {
        // The tree-walk validates name and arity BEFORE evaluating any
        // argument, so both lower to a throw that skips the children.
        const int idx = builtin_index(e.name);
        if (idx < 0) {
          return throw_expr("unknown function '" + e.name + "' (line " +
                                std::to_string(e.line) + ")",
                            e.line);
        }
        const Builtin& builtin = *builtin_table()[idx].builtin;
        if (e.children.size() < builtin.min_args ||
            e.children.size() > builtin.max_args) {
          return throw_expr(
              "function '" + e.name + "' expects " +
                  std::to_string(builtin.min_args) +
                  (builtin.max_args != builtin.min_args
                       ? ".." + std::to_string(builtin.max_args)
                       : "") +
                  " arguments, got " + std::to_string(e.children.size()) +
                  " (line " + std::to_string(e.line) + ")",
              e.line);
        }
        std::vector<std::uint32_t> args;
        args.reserve(e.children.size());
        for (const auto& child : e.children) args.push_back(eval(*child));
        const std::uint32_t offset = pool(args);
        const std::uint32_t dst = alloc_reg();
        emit_instr({Op::kCall, 0, line32(e.line), dst,
                    static_cast<std::uint32_t>(idx), offset,
                    static_cast<std::uint32_t>(args.size())});
        return dst;
      }

      case ExprKind::kIndex: {
        const std::uint32_t base = eval(*e.children[0]);
        const std::uint32_t index = eval(*e.children[1]);
        const std::uint32_t dst = alloc_reg();
        emit_instr({Op::kIndex, 0, line32(e.line), dst, base, index, 0});
        return dst;
      }

      case ExprKind::kVectorLiteral: {
        // The tree-walk checks each element is a scalar as it is
        // evaluated, interleaved with the evaluation of the next element,
        // so the check must sit right after each element's code.
        std::vector<std::uint32_t> elems;
        elems.reserve(e.children.size());
        const std::uint32_t msg =
            message("vector literal element must be a scalar");
        for (const auto& child : e.children) {
          const std::uint32_t reg = eval(*child);
          emit_instr(
              {Op::kCheckScalar, 0, line32(child->line), 0, reg, msg, 0});
          elems.push_back(reg);
        }
        const std::uint32_t offset = pool(elems);
        const std::uint32_t dst = alloc_reg();
        emit_instr({Op::kVector, 0, line32(e.line), dst, 0, offset,
                    static_cast<std::uint32_t>(elems.size())});
        return dst;
      }
    }
    return throw_expr("unknown expression kind", e.line);
  }

  std::uint32_t alloc_reg() { return out_.num_registers++; }

  std::size_t emit_instr(Instr instr) {
    out_.code.push_back(instr);
    return out_.code.size() - 1;
  }

  static std::uint32_t line32(std::size_t line) {
    return static_cast<std::uint32_t>(line);
  }

  std::uint32_t message(std::string text) {
    if (const auto it = message_ids_.find(text); it != message_ids_.end()) {
      return it->second;
    }
    const auto idx = static_cast<std::uint32_t>(out_.messages.size());
    message_ids_[text] = idx;
    out_.messages.push_back(std::move(text));
    return idx;
  }

  std::uint32_t const_reg(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    if (const auto it = const_regs_.find(bits); it != const_regs_.end()) {
      return it->second;
    }
    const std::uint32_t reg = alloc_reg();
    out_.constants.emplace_back(reg, Value(v));
    const_regs_[bits] = reg;
    return reg;
  }

  std::uint32_t input_slot(const std::string& name) {
    if (const auto it = input_ids_.find(name); it != input_ids_.end()) {
      return it->second;
    }
    InputRef ref;
    ref.name = name;
    if (catalog_ != nullptr) {
      if (const auto slot = catalog_->slot_index(name)) {
        ref.catalog_slot = static_cast<int>(*slot);
      }
    }
    const auto idx = static_cast<std::uint32_t>(out_.inputs.size());
    out_.inputs.push_back(std::move(ref));
    input_ids_[name] = idx;
    return idx;
  }

  /// Lowers an error the tree-walk raises at this node's evaluation point.
  /// The returned register is never written; code after the throw in the
  /// same branch arm is unreachable.
  std::uint32_t throw_expr(std::string msg, std::size_t line) {
    const std::uint32_t dst = alloc_reg();
    emit_instr({Op::kThrow, 0, line32(line), 0, message(std::move(msg)), 0, 0});
    return dst;
  }

  std::uint32_t pool(const std::vector<std::uint32_t>& regs) {
    const auto offset = static_cast<std::uint32_t>(out_.operands.size());
    out_.operands.insert(out_.operands.end(), regs.begin(), regs.end());
    return offset;
  }

  const BindingCatalog* catalog_;
  CompiledProgram out_;
  std::unordered_map<std::string, std::uint32_t> locals_;
  std::unordered_map<std::string, std::uint32_t> input_ids_;
  std::unordered_map<std::string, std::uint32_t> message_ids_;
  std::unordered_map<std::uint64_t, std::uint32_t> const_regs_;
};

}  // namespace

CompiledProgram compile_program(const Program& program,
                                const BindingCatalog* catalog) {
  return Compiler(catalog).compile(program);
}

}  // namespace nada::dsl

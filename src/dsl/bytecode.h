// Flat register bytecode for NadaScript.
//
// The tree-walk interpreter re-resolves every variable through a string
// hash map and allocates fresh Values per AST node, per step — and the
// state program is the per-step inner loop of precheck, probe, and full
// training. compile_program() lowers the parsed AST once into straight-
// line register code: variable references become input/local slot indices
// (annotated with the domain catalog's canonical slot numbering when a
// catalog is supplied), builtin calls become direct indices into the flat
// builtin_table(), numeric literals are pooled and bound to registers up
// front, and let-bindings are zero-cost register aliases. dsl::Vm (vm.h)
// executes the result against a reusable register file.
//
// Lowering is total: it never rejects a program. Errors the tree-walk
// interpreter raises lazily — an undefined variable, an unknown function,
// a bad arity — are lowered to instructions that raise the exact same
// RuntimeError message at the exact same evaluation point, because a
// reference inside a never-taken ternary branch must NOT fail (the
// tree-walk never evaluates it) while the same reference in straight-line
// code must fail with the tree-walk's message. Bit-identical behaviour,
// including failure behaviour, is the equivalence bar: store journals
// record failure reasons, and tree/VM runs must journal byte-identically.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dsl/ast.h"
#include "dsl/binding_catalog.h"
#include "dsl/interpreter.h"
#include "dsl/value.h"

namespace nada::dsl {

enum class Op : std::uint8_t {
  kLoadInput,     ///< regs[dst] <- *input_ptrs[a]; throws messages[b] if unbound
  kUnary,         ///< regs[dst] <- UnaryOp(sub)(regs[a])
  kBinary,        ///< regs[dst] <- BinaryOp(sub)(regs[a], regs[b])
  kCall,          ///< regs[dst] <- builtin_table()[a](operands[b..b+c))
  kIndex,         ///< regs[dst] <- regs[a][regs[b]]
  kVector,        ///< regs[dst] <- [regs[operands[b]], ...) (c elements)
  kCheckScalar,   ///< require regs[a] scalar, else throw messages[b]
  kBranchIfZero,  ///< require regs[a] scalar ("ternary condition"); pc=b if 0
  kJump,          ///< pc = b
  kCopy,          ///< regs[dst] aliases regs[a] (ternary result merge)
  kEmit,          ///< state row b <- regs[a] (with the emit-time checks)
  kThrow,         ///< throw RuntimeError(messages[a])
};

/// One instruction. `sub` holds the UnaryOp/BinaryOp for kUnary/kBinary;
/// `line` is the source line errors report.
struct Instr {
  Op op = Op::kThrow;
  std::uint8_t sub = 0;
  std::uint32_t line = 1;
  std::uint32_t dst = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
};

/// One observation input the program reads, resolved against the Bindings
/// map once per run (not once per reference per step, as the tree does).
struct InputRef {
  std::string name;
  /// Index into the domain catalog's variables() — its canonical slot —
  /// or -1 when compiled without a catalog / the name is outside the
  /// vocabulary (which the tree-walk only discovers on evaluation, so the
  /// VM must too; see kLoadInput).
  int catalog_slot = -1;
};

/// A lowered program: straight-line register code plus its pools. Owned by
/// StateProgram (shared_ptr) and immutable after compilation, so many
/// threads may execute one CompiledProgram concurrently, each with its own
/// Vm.
struct CompiledProgram {
  std::vector<Instr> code;
  /// Argument-register pools for kCall / kVector (b = offset, c = count).
  std::vector<std::uint32_t> operands;
  /// Pooled numeric literals, deduped by bit pattern; each pair binds a
  /// reserved register to its Value before execution starts.
  std::vector<std::pair<std::uint32_t, Value>> constants;
  /// Unique observation inputs in first-reference order.
  std::vector<InputRef> inputs;
  /// Emit-row names in emission order; the VM preallocates the
  /// StateMatrix from this.
  std::vector<std::string> emit_names;
  /// Prebuilt error strings for kLoadInput / kCheckScalar / kThrow.
  std::vector<std::string> messages;
  std::uint32_t num_registers = 0;
  /// Process-unique id, used by Vm to detect program switches without
  /// relying on pointer identity (which can alias after frees).
  std::uint64_t id = 0;
};

/// Lowers a parsed program. Never throws on well-parsed input: semantic
/// errors are lowered to runtime throws so the VM's failure behaviour
/// matches the tree-walk interpreter exactly. `catalog`, when non-null,
/// only annotates InputRef::catalog_slot — it does not affect execution.
[[nodiscard]] CompiledProgram compile_program(
    const Program& program, const BindingCatalog* catalog = nullptr);

}  // namespace nada::dsl

#include "dsl/canonical.h"

#include <unordered_map>

#include "util/strings.h"

namespace nada::dsl {
namespace {

using RenameMap = std::unordered_map<std::string, std::string>;

void append_expr(std::string& out, const Expr& expr, const RenameMap& renames) {
  switch (expr.kind) {
    case ExprKind::kNumber:
      out += util::shortest_double(expr.number);
      break;
    case ExprKind::kVariable: {
      // Free (observation) variables live in a sigiled namespace so a
      // program that literally references "v0" can never collide with a
      // renamed binding — capture would fingerprint semantically different
      // programs identically.
      const auto it = renames.find(expr.name);
      if (it == renames.end()) {
        out += '@';
        out += expr.name;
      } else {
        out += it->second;
      }
      break;
    }
    case ExprKind::kUnary:
      out += '(';
      out += expr.unary_op == UnaryOp::kNeg ? '-' : '!';
      append_expr(out, *expr.children[0], renames);
      out += ')';
      break;
    case ExprKind::kBinary:
      out += '(';
      append_expr(out, *expr.children[0], renames);
      out += ' ';
      out += binary_op_name(expr.binary_op);
      out += ' ';
      append_expr(out, *expr.children[1], renames);
      out += ')';
      break;
    case ExprKind::kTernary:
      out += '(';
      append_expr(out, *expr.children[0], renames);
      out += " ? ";
      append_expr(out, *expr.children[1], renames);
      out += " : ";
      append_expr(out, *expr.children[2], renames);
      out += ')';
      break;
    case ExprKind::kCall: {
      out += expr.name;
      out += '(';
      bool first = true;
      for (const auto& arg : expr.children) {
        if (!first) out += ", ";
        first = false;
        append_expr(out, *arg, renames);
      }
      out += ')';
      break;
    }
    case ExprKind::kIndex:
      append_expr(out, *expr.children[0], renames);
      out += '[';
      append_expr(out, *expr.children[1], renames);
      out += ']';
      break;
    case ExprKind::kVectorLiteral: {
      out += '[';
      bool first = true;
      for (const auto& element : expr.children) {
        if (!first) out += ", ";
        first = false;
        append_expr(out, *element, renames);
      }
      out += ']';
      break;
    }
  }
}

}  // namespace

std::string canonical_source(const Program& program) {
  std::string out;
  RenameMap renames;
  std::size_t next_binding = 0;
  for (const auto& statement : program.statements) {
    if (statement.kind == StatementKind::kLet) {
      out += "let ";
      // Serialize the value under the renames in scope *before* this
      // binding shadows its name, exactly matching evaluation order.
      std::string value;
      append_expr(value, *statement.expr, renames);
      std::string& canonical_name = renames[statement.name];
      canonical_name = "v" + std::to_string(next_binding++);
      out += canonical_name;
      out += " = ";
      out += value;
    } else {
      out += "emit \"";
      out += statement.name;
      out += "\" = ";
      append_expr(out, *statement.expr, renames);
    }
    out += ";\n";
  }
  return out;
}

std::string canonical_expr(const Expr& expr) {
  std::string out;
  append_expr(out, expr, RenameMap{});
  return out;
}

}  // namespace nada::dsl

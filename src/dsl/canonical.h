// Canonical serialization of NadaScript ASTs.
//
// Two candidate programs that differ only in formatting — whitespace,
// comments, redundant parentheses, number spellings (2 vs 2.0), or the
// names chosen for `let` bindings — describe the same state function. The
// canonical form normalizes all of that away so the content-addressed
// candidate store (src/store/) can hash alpha-equivalent programs to the
// same fingerprint:
//
//   * every expression is fully parenthesized (grammar precedence erased),
//   * numbers print as their shortest round-trip decimal form,
//   * `let` bindings are renamed v0, v1, ... in binding order; observation
//     inputs and emitted row names keep their real (semantic) names.
#pragma once

#include <string>

#include "dsl/ast.h"

namespace nada::dsl {

/// One statement per line: `let vN = <expr>;` / `emit "name" = <expr>;`.
[[nodiscard]] std::string canonical_source(const Program& program);

/// Canonical form of a single expression under an empty rename map (used
/// by tests; canonical_source applies let-binding renames).
[[nodiscard]] std::string canonical_expr(const Expr& expr);

}  // namespace nada::dsl

#include "dsl/interpreter.h"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "util/stats.h"

namespace nada::dsl {
namespace {

// ---- helpers ---------------------------------------------------------------

double require_scalar(const Value& v, const char* what) {
  if (!v.is_scalar()) {
    throw RuntimeError(std::string(what) + " must be a scalar");
  }
  return v.as_scalar();
}

std::vector<double> as_series(const Value& v) {
  if (v.is_vector()) return v.as_vector();
  return {v.as_scalar()};
}

std::size_t require_index(const Value& v, const char* what) {
  const double d = require_scalar(v, what);
  if (d < 0.0 || std::floor(d) != d) {
    throw RuntimeError(std::string(what) + " must be a non-negative integer");
  }
  return static_cast<std::size_t>(d);
}

Value map_unary(const Value& v, const std::function<double(double)>& fn) {
  if (v.is_scalar()) return Value(fn(v.as_scalar()));
  std::vector<double> out(v.as_vector().size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = fn(v.as_vector()[i]);
  }
  return Value(std::move(out));
}

double checked_div(double a, double b) {
  if (std::abs(b) < 1e-12) throw RuntimeError("division by zero");
  return a / b;
}

double checked_log(double x) {
  if (x <= 0.0) throw RuntimeError("log of non-positive value");
  return std::log(x);
}

double checked_sqrt(double x) {
  if (x < 0.0) throw RuntimeError("sqrt of negative value");
  return std::sqrt(x);
}

double checked_exp(double x) {
  if (x > 700.0) throw RuntimeError("exp overflow");
  return std::exp(x);
}

// ---- builtin registry -------------------------------------------------------

std::map<std::string, Builtin> make_builtins() {
  std::map<std::string, Builtin> reg;

  auto add = [&reg](const std::string& name, std::size_t min_args,
                    std::size_t max_args, const std::string& sig,
                    std::function<Value(const std::vector<Value>&)> fn) {
    reg[name] = Builtin{min_args, max_args, sig, std::move(fn)};
  };

  // -- elementwise unary math
  add("abs", 1, 1, "abs(x)", [](const auto& a) {
    return map_unary(a[0], [](double x) { return std::abs(x); });
  });
  add("sqrt", 1, 1, "sqrt(x)", [](const auto& a) {
    return map_unary(a[0], checked_sqrt);
  });
  add("log", 1, 1, "log(x)", [](const auto& a) {
    return map_unary(a[0], checked_log);
  });
  add("log1p", 1, 1, "log1p(x)", [](const auto& a) {
    return map_unary(a[0], [](double x) {
      if (x <= -1.0) throw RuntimeError("log1p of value <= -1");
      return std::log1p(x);
    });
  });
  add("exp", 1, 1, "exp(x)", [](const auto& a) {
    return map_unary(a[0], checked_exp);
  });
  add("floor", 1, 1, "floor(x)", [](const auto& a) {
    return map_unary(a[0], [](double x) { return std::floor(x); });
  });
  add("ceil", 1, 1, "ceil(x)", [](const auto& a) {
    return map_unary(a[0], [](double x) { return std::ceil(x); });
  });
  add("sign", 1, 1, "sign(x)", [](const auto& a) {
    return map_unary(a[0], [](double x) {
      return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0);
    });
  });
  add("tanh", 1, 1, "tanh(x)", [](const auto& a) {
    return map_unary(a[0], [](double x) { return std::tanh(x); });
  });
  add("sigmoid", 1, 1, "sigmoid(x)", [](const auto& a) {
    return map_unary(a[0], [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
  });
  add("relu", 1, 1, "relu(x)", [](const auto& a) {
    return map_unary(a[0], [](double x) { return x > 0.0 ? x : 0.0; });
  });

  // -- binary / clamping
  add("pow", 2, 2, "pow(x, y)", [](const auto& a) {
    return broadcast_binary(a[0], a[1], [](double x, double y) {
      if (x < 0.0 && std::floor(y) != y) {
        throw RuntimeError("pow of negative base with fractional exponent");
      }
      const double r = std::pow(x, y);
      if (!std::isfinite(r)) throw RuntimeError("pow overflow");
      return r;
    }, "pow");
  });
  add("min", 2, 2, "min(a, b)", [](const auto& a) {
    return broadcast_binary(
        a[0], a[1], [](double x, double y) { return std::min(x, y); }, "min");
  });
  add("max", 2, 2, "max(a, b)", [](const auto& a) {
    return broadcast_binary(
        a[0], a[1], [](double x, double y) { return std::max(x, y); }, "max");
  });
  add("clip", 3, 3, "clip(x, lo, hi)", [](const auto& a) {
    const double lo = require_scalar(a[1], "clip lower bound");
    const double hi = require_scalar(a[2], "clip upper bound");
    if (lo > hi) throw RuntimeError("clip: lower bound above upper bound");
    return map_unary(a[0], [lo, hi](double x) {
      return std::clamp(x, lo, hi);
    });
  });
  add("where", 3, 3, "where(cond, a, b)", [](const auto& a) {
    const Value& cond = a[0];
    if (cond.is_scalar()) {
      return cond.as_scalar() != 0.0 ? a[1] : a[2];
    }
    const std::size_t n = cond.size();
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = cond.element(i) != 0.0 ? a[1].element(i < a[1].size() ? i : 0)
                                      : a[2].element(i < a[2].size() ? i : 0);
    }
    return Value(std::move(out));
  });

  // -- reductions
  add("mean", 1, 1, "mean(v)", [](const auto& a) {
    return Value(util::mean(as_series(a[0])));
  });
  add("sum", 1, 1, "sum(v)", [](const auto& a) {
    double s = 0.0;
    for (double x : as_series(a[0])) s += x;
    return Value(s);
  });
  add("var", 1, 1, "var(v)", [](const auto& a) {
    return Value(util::variance(as_series(a[0])));
  });
  add("std", 1, 1, "std(v)", [](const auto& a) {
    return Value(util::stddev(as_series(a[0])));
  });
  add("median", 1, 1, "median(v)", [](const auto& a) {
    return Value(util::median(as_series(a[0])));
  });
  add("percentile", 2, 2, "percentile(v, p)", [](const auto& a) {
    const double p = require_scalar(a[1], "percentile p");
    if (p < 0.0 || p > 100.0) {
      throw RuntimeError("percentile p outside [0, 100]");
    }
    return Value(util::percentile(as_series(a[0]), p));
  });
  add("vmin", 1, 1, "vmin(v)", [](const auto& a) {
    const auto s = as_series(a[0]);
    if (s.empty()) throw RuntimeError("vmin of empty vector");
    return Value(*std::min_element(s.begin(), s.end()));
  });
  add("vmax", 1, 1, "vmax(v)", [](const auto& a) {
    const auto s = as_series(a[0]);
    if (s.empty()) throw RuntimeError("vmax of empty vector");
    return Value(*std::max_element(s.begin(), s.end()));
  });
  add("first", 1, 1, "first(v)", [](const auto& a) {
    const auto s = as_series(a[0]);
    if (s.empty()) throw RuntimeError("first of empty vector");
    return Value(s.front());
  });
  add("last", 1, 1, "last(v)", [](const auto& a) {
    const auto s = as_series(a[0]);
    if (s.empty()) throw RuntimeError("last of empty vector");
    return Value(s.back());
  });
  add("len", 1, 1, "len(v)", [](const auto& a) {
    return Value(static_cast<double>(a[0].size()));
  });

  // -- trend analysis (the features §4 highlights)
  add("trend", 1, 1, "trend(v)", [](const auto& a) {
    return Value(util::linear_trend(as_series(a[0])));
  });
  add("linreg_predict", 1, 1, "linreg_predict(v)", [](const auto& a) {
    return Value(util::linreg_predict_next(as_series(a[0])));
  });
  add("ema", 2, 2, "ema(v, alpha)", [](const auto& a) {
    const double alpha = require_scalar(a[1], "ema alpha");
    if (alpha <= 0.0 || alpha > 1.0) {
      throw RuntimeError("ema alpha outside (0, 1]");
    }
    return Value(util::ema_series(as_series(a[0]), alpha));
  });
  add("ema_last", 2, 2, "ema_last(v, alpha)", [](const auto& a) {
    const double alpha = require_scalar(a[1], "ema alpha");
    if (alpha <= 0.0 || alpha > 1.0) {
      throw RuntimeError("ema alpha outside (0, 1]");
    }
    return Value(util::ema(as_series(a[0]), alpha));
  });
  add("savgol", 1, 1, "savgol(v)", [](const auto& a) {
    return Value(util::savgol5(as_series(a[0])));
  });

  // -- vector transforms
  add("diff", 1, 1, "diff(v)", [](const auto& a) {
    const auto s = as_series(a[0]);
    if (s.size() < 2) throw RuntimeError("diff needs at least two elements");
    std::vector<double> out(s.size() - 1);
    for (std::size_t i = 0; i + 1 < s.size(); ++i) out[i] = s[i + 1] - s[i];
    return Value(std::move(out));
  });
  add("cumsum", 1, 1, "cumsum(v)", [](const auto& a) {
    auto s = as_series(a[0]);
    for (std::size_t i = 1; i < s.size(); ++i) s[i] += s[i - 1];
    return Value(std::move(s));
  });
  add("reverse", 1, 1, "reverse(v)", [](const auto& a) {
    auto s = as_series(a[0]);
    std::reverse(s.begin(), s.end());
    return Value(std::move(s));
  });
  add("smooth", 2, 2, "smooth(v, window)", [](const auto& a) {
    const std::size_t w = require_index(a[1], "smooth window");
    if (w == 0) throw RuntimeError("smooth window is zero");
    const auto s = as_series(a[0]);
    std::vector<double> out(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      const std::size_t begin = i + 1 >= w ? i + 1 - w : 0;
      double acc = 0.0;
      for (std::size_t j = begin; j <= i; ++j) acc += s[j];
      out[i] = acc / static_cast<double>(i - begin + 1);
    }
    return Value(std::move(out));
  });
  add("tail", 2, 2, "tail(v, k)", [](const auto& a) {
    const std::size_t k = require_index(a[1], "tail k");
    const auto s = as_series(a[0]);
    if (k == 0 || k > s.size()) {
      throw RuntimeError("tail k outside [1, len]");
    }
    return Value(std::vector<double>(s.end() - static_cast<std::ptrdiff_t>(k),
                                     s.end()));
  });
  add("slice", 3, 3, "slice(v, start, end)", [](const auto& a) {
    const auto s = as_series(a[0]);
    const std::size_t start = require_index(a[1], "slice start");
    const std::size_t end = require_index(a[2], "slice end");
    if (start >= end || end > s.size()) {
      throw RuntimeError("slice bounds [" + std::to_string(start) + ", " +
                         std::to_string(end) + ") invalid for length " +
                         std::to_string(s.size()));
    }
    return Value(std::vector<double>(
        s.begin() + static_cast<std::ptrdiff_t>(start),
        s.begin() + static_cast<std::ptrdiff_t>(end)));
  });
  add("vec", 2, 2, "vec(n, fill)", [](const auto& a) {
    const std::size_t n = require_index(a[0], "vec length");
    if (n == 0 || n > 64) throw RuntimeError("vec length outside [1, 64]");
    return Value(std::vector<double>(n, require_scalar(a[1], "vec fill")));
  });
  add("concat", 2, 2, "concat(a, b)", [](const auto& a) {
    auto left = as_series(a[0]);
    const auto right = as_series(a[1]);
    left.insert(left.end(), right.begin(), right.end());
    return Value(std::move(left));
  });

  // -- normalization helpers
  add("normalize_minmax", 1, 1, "normalize_minmax(v)", [](const auto& a) {
    const auto s = as_series(a[0]);
    if (s.size() < 2) throw RuntimeError("normalize_minmax needs a vector");
    const double lo = *std::min_element(s.begin(), s.end());
    const double hi = *std::max_element(s.begin(), s.end());
    if (hi - lo < 1e-12) {
      throw RuntimeError("normalize_minmax of constant vector");
    }
    std::vector<double> out(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) out[i] = (s[i] - lo) / (hi - lo);
    return Value(std::move(out));
  });
  add("zscore", 1, 1, "zscore(v)", [](const auto& a) {
    const auto s = as_series(a[0]);
    const double sd = util::stddev(s);
    if (sd < 1e-12) throw RuntimeError("zscore of constant vector");
    const double m = util::mean(s);
    std::vector<double> out(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) out[i] = (s[i] - m) / sd;
    return Value(std::move(out));
  });
  add("rescale", 3, 3, "rescale(v, lo, hi)", [](const auto& a) {
    const double lo = require_scalar(a[1], "rescale lo");
    const double hi = require_scalar(a[2], "rescale hi");
    if (lo >= hi) throw RuntimeError("rescale: lo >= hi");
    const auto s = as_series(a[0]);
    if (s.size() < 2) throw RuntimeError("rescale needs a vector");
    const double smin = *std::min_element(s.begin(), s.end());
    const double smax = *std::max_element(s.begin(), s.end());
    if (smax - smin < 1e-12) throw RuntimeError("rescale of constant vector");
    std::vector<double> out(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      out[i] = lo + (s[i] - smin) / (smax - smin) * (hi - lo);
    }
    return Value(std::move(out));
  });

  return reg;
}

}  // namespace

const std::map<std::string, Builtin>& builtins() {
  static const std::map<std::string, Builtin> kRegistry = make_builtins();
  return kRegistry;
}

const std::vector<IndexedBuiltin>& builtin_table() {
  static const std::vector<IndexedBuiltin> kTable = [] {
    std::vector<IndexedBuiltin> table;
    table.reserve(builtins().size());
    for (const auto& [name, builtin] : builtins()) {
      table.push_back(IndexedBuiltin{&name, &builtin});
    }
    return table;
  }();
  return kTable;
}

int builtin_index(const std::string& name) {
  const auto& reg = builtins();
  const auto it = reg.find(name);
  if (it == reg.end()) return -1;
  return static_cast<int>(std::distance(reg.begin(), it));
}

Value eval_expr(const Expr& expr, const Bindings& inputs,
                const Bindings& locals) {
  switch (expr.kind) {
    case ExprKind::kNumber:
      return Value(expr.number);

    case ExprKind::kVariable: {
      if (auto it = locals.find(expr.name); it != locals.end()) {
        return it->second;
      }
      if (auto it = inputs.find(expr.name); it != inputs.end()) {
        return it->second;
      }
      throw RuntimeError("undefined variable '" + expr.name + "' (line " +
                         std::to_string(expr.line) + ")");
    }

    case ExprKind::kUnary: {
      const Value operand = eval_expr(*expr.children[0], inputs, locals);
      if (expr.unary_op == UnaryOp::kNeg) {
        return map_unary(operand, [](double x) { return -x; });
      }
      return map_unary(operand, [](double x) { return x == 0.0 ? 1.0 : 0.0; });
    }

    case ExprKind::kBinary: {
      const Value lhs = eval_expr(*expr.children[0], inputs, locals);
      const Value rhs = eval_expr(*expr.children[1], inputs, locals);
      switch (expr.binary_op) {
        case BinaryOp::kAdd:
          return broadcast_binary(
              lhs, rhs, [](double a, double b) { return a + b; }, "+");
        case BinaryOp::kSub:
          return broadcast_binary(
              lhs, rhs, [](double a, double b) { return a - b; }, "-");
        case BinaryOp::kMul:
          return broadcast_binary(
              lhs, rhs, [](double a, double b) { return a * b; }, "*");
        case BinaryOp::kDiv:
          return broadcast_binary(lhs, rhs, checked_div, "/");
        case BinaryOp::kMod:
          return broadcast_binary(lhs, rhs, [](double a, double b) {
            if (std::abs(b) < 1e-12) throw RuntimeError("modulo by zero");
            return std::fmod(a, b);
          }, "%");
        case BinaryOp::kLess:
          return broadcast_binary(
              lhs, rhs, [](double a, double b) { return a < b ? 1.0 : 0.0; },
              "<");
        case BinaryOp::kGreater:
          return broadcast_binary(
              lhs, rhs, [](double a, double b) { return a > b ? 1.0 : 0.0; },
              ">");
        case BinaryOp::kLessEq:
          return broadcast_binary(
              lhs, rhs, [](double a, double b) { return a <= b ? 1.0 : 0.0; },
              "<=");
        case BinaryOp::kGreaterEq:
          return broadcast_binary(
              lhs, rhs, [](double a, double b) { return a >= b ? 1.0 : 0.0; },
              ">=");
        case BinaryOp::kEq:
          return broadcast_binary(
              lhs, rhs, [](double a, double b) { return a == b ? 1.0 : 0.0; },
              "==");
        case BinaryOp::kNotEq:
          return broadcast_binary(
              lhs, rhs, [](double a, double b) { return a != b ? 1.0 : 0.0; },
              "!=");
        case BinaryOp::kAnd:
          return Value(require_scalar(lhs, "'&&' operand") != 0.0 &&
                               require_scalar(rhs, "'&&' operand") != 0.0
                           ? 1.0
                           : 0.0);
        case BinaryOp::kOr:
          return Value(require_scalar(lhs, "'||' operand") != 0.0 ||
                               require_scalar(rhs, "'||' operand") != 0.0
                           ? 1.0
                           : 0.0);
      }
      throw RuntimeError("unknown binary operator");
    }

    case ExprKind::kTernary: {
      const Value cond = eval_expr(*expr.children[0], inputs, locals);
      const double c = require_scalar(cond, "ternary condition");
      return c != 0.0 ? eval_expr(*expr.children[1], inputs, locals)
                      : eval_expr(*expr.children[2], inputs, locals);
    }

    case ExprKind::kCall: {
      const auto it = builtins().find(expr.name);
      if (it == builtins().end()) {
        throw RuntimeError("unknown function '" + expr.name + "' (line " +
                           std::to_string(expr.line) + ")");
      }
      const Builtin& builtin = it->second;
      if (expr.children.size() < builtin.min_args ||
          expr.children.size() > builtin.max_args) {
        throw RuntimeError("function '" + expr.name + "' expects " +
                           std::to_string(builtin.min_args) +
                           (builtin.max_args != builtin.min_args
                                ? ".." + std::to_string(builtin.max_args)
                                : "") +
                           " arguments, got " +
                           std::to_string(expr.children.size()) + " (line " +
                           std::to_string(expr.line) + ")");
      }
      std::vector<Value> args;
      args.reserve(expr.children.size());
      for (const auto& child : expr.children) {
        args.push_back(eval_expr(*child, inputs, locals));
      }
      return builtin.fn(args);
    }

    case ExprKind::kIndex: {
      const Value base = eval_expr(*expr.children[0], inputs, locals);
      const Value index = eval_expr(*expr.children[1], inputs, locals);
      if (!base.is_vector()) {
        throw RuntimeError("cannot index a scalar (line " +
                           std::to_string(expr.line) + ")");
      }
      const double raw = require_scalar(index, "index");
      if (std::floor(raw) != raw) {
        throw RuntimeError("index must be an integer");
      }
      // Python-style negative indexing.
      std::ptrdiff_t i = static_cast<std::ptrdiff_t>(raw);
      const auto n = static_cast<std::ptrdiff_t>(base.size());
      if (i < 0) i += n;
      if (i < 0 || i >= n) {
        throw RuntimeError("index " + std::to_string(raw) +
                           " out of range for vector of length " +
                           std::to_string(n));
      }
      return Value(base.as_vector()[static_cast<std::size_t>(i)]);
    }

    case ExprKind::kVectorLiteral: {
      std::vector<double> out;
      out.reserve(expr.children.size());
      for (const auto& child : expr.children) {
        out.push_back(require_scalar(
            eval_expr(*child, inputs, locals), "vector literal element"));
      }
      if (out.empty()) throw RuntimeError("empty vector literal");
      return Value(std::move(out));
    }
  }
  throw RuntimeError("unknown expression kind");
}

std::vector<std::size_t> StateMatrix::row_lengths() const {
  std::vector<std::size_t> lengths;
  lengths.reserve(rows.size());
  for (const auto& row : rows) lengths.push_back(row.values.size());
  return lengths;
}

double StateMatrix::max_abs() const {
  double m = 0.0;
  for (const auto& row : rows) {
    for (double v : row.values) m = std::max(m, std::abs(v));
  }
  return m;
}

bool StateMatrix::all_finite() const {
  for (const auto& row : rows) {
    for (double v : row.values) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

std::vector<std::vector<double>> StateMatrix::to_network_rows() const {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(row.values);
  return out;
}

StateMatrix run_program(const Program& program, const Bindings& inputs) {
  Bindings locals;
  StateMatrix matrix;
  for (const auto& stmt : program.statements) {
    Value value = eval_expr(*stmt.expr, inputs, locals);
    if (stmt.kind == StatementKind::kLet) {
      locals[stmt.name] = std::move(value);
    } else {
      StateRow row;
      row.name = stmt.name;
      row.is_vector = value.is_vector();
      if (value.is_vector()) {
        row.values = value.as_vector();
        if (row.values.empty()) {
          throw RuntimeError("emit '" + stmt.name + "': empty vector");
        }
      } else {
        row.values = {value.as_scalar()};
      }
      if (row.values.size() > 64) {
        throw RuntimeError("emit '" + stmt.name + "': row longer than 64");
      }
      matrix.rows.push_back(std::move(row));
    }
  }
  if (matrix.rows.empty()) {
    throw RuntimeError("program emitted no state rows");
  }
  if (matrix.rows.size() > 24) {
    throw RuntimeError("program emitted more than 24 state rows");
  }
  return matrix;
}

}  // namespace nada::dsl

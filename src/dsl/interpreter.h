// NadaScript interpreter.
//
// Evaluates a parsed Program against a set of named input values (the raw
// observation) and collects the emitted state rows. The builtin library
// intentionally covers the numeric toolbox the paper reports LLM-generated
// states drawing on: moving averages, variance, trends, linear-regression
// prediction (statsmodels in the paper), and Savitzky-Golay smoothing
// (scipy in the paper).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsl/ast.h"
#include "dsl/value.h"

namespace nada::dsl {

using Bindings = std::unordered_map<std::string, Value>;

/// A builtin function: validated arity plus an implementation.
struct Builtin {
  std::size_t min_args = 1;
  std::size_t max_args = 1;
  std::string signature;  ///< human-readable, e.g. "ema(v, alpha)"
  std::function<Value(const std::vector<Value>&)> fn;
};

/// The builtin registry, keyed by function name. Stable across the process;
/// the candidate generator enumerates this to assemble programs.
[[nodiscard]] const std::map<std::string, Builtin>& builtins();

/// One entry of the flat builtin table: the registry flattened in
/// name-sorted (std::map) order so call sites can be resolved to dense
/// indices once, at bytecode-compile time, instead of a map lookup per
/// call per step.
struct IndexedBuiltin {
  const std::string* name = nullptr;
  const Builtin* builtin = nullptr;
};

/// The builtin registry as a flat, index-addressable table. Indices are
/// stable for the process lifetime (the registry never changes after
/// first use).
[[nodiscard]] const std::vector<IndexedBuiltin>& builtin_table();

/// Index of `name` in builtin_table(), or -1 when unknown.
[[nodiscard]] int builtin_index(const std::string& name);

/// Evaluates one expression. `inputs` are the observation variables;
/// `locals` are let-bindings accumulated so far.
[[nodiscard]] Value eval_expr(const Expr& expr, const Bindings& inputs,
                              const Bindings& locals);

/// One emitted state row.
struct StateRow {
  std::string name;
  std::vector<double> values;  ///< single element for scalar rows
  bool is_vector = false;
};

/// The state matrix produced by one program run.
struct StateMatrix {
  std::vector<StateRow> rows;

  /// Row lengths (1 for scalar rows) — the network input signature.
  [[nodiscard]] std::vector<std::size_t> row_lengths() const;

  /// Largest absolute feature value (the normalization-check statistic).
  [[nodiscard]] double max_abs() const;

  /// True if every value is finite.
  [[nodiscard]] bool all_finite() const;

  /// Flattens to per-row vectors for the network.
  [[nodiscard]] std::vector<std::vector<double>> to_network_rows() const;
};

/// Runs a full program; throws RuntimeError on any evaluation error.
[[nodiscard]] StateMatrix run_program(const Program& program,
                                      const Bindings& inputs);

}  // namespace nada::dsl

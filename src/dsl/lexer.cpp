#include "dsl/lexer.h"

#include <cctype>
#include <cstdlib>

#include "dsl/value.h"

namespace nada::dsl {

const char* token_type_name(TokenType t) {
  switch (t) {
    case TokenType::kNumber: return "number";
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kString: return "string";
    case TokenType::kLet: return "'let'";
    case TokenType::kEmit: return "'emit'";
    case TokenType::kPlus: return "'+'";
    case TokenType::kMinus: return "'-'";
    case TokenType::kStar: return "'*'";
    case TokenType::kSlash: return "'/'";
    case TokenType::kPercent: return "'%'";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    case TokenType::kLBracket: return "'['";
    case TokenType::kRBracket: return "']'";
    case TokenType::kComma: return "','";
    case TokenType::kSemicolon: return "';'";
    case TokenType::kAssign: return "'='";
    case TokenType::kLess: return "'<'";
    case TokenType::kGreater: return "'>'";
    case TokenType::kLessEq: return "'<='";
    case TokenType::kGreaterEq: return "'>='";
    case TokenType::kEqEq: return "'=='";
    case TokenType::kNotEq: return "'!='";
    case TokenType::kAndAnd: return "'&&'";
    case TokenType::kOrOr: return "'||'";
    case TokenType::kBang: return "'!'";
    case TokenType::kQuestion: return "'?'";
    case TokenType::kColon: return "':'";
    case TokenType::kEof: return "end of input";
  }
  return "?";
}

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto push = [&tokens, &line](TokenType type, std::string text = {}) {
    tokens.push_back(Token{type, std::move(text), 0.0, line});
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])) != 0)) {
      const std::size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(source[i])) ||
                       source[i] == '.' || source[i] == 'e' ||
                       source[i] == 'E' ||
                       ((source[i] == '+' || source[i] == '-') && i > start &&
                        (source[i - 1] == 'e' || source[i - 1] == 'E')))) {
        ++i;
      }
      const std::string text(source.substr(start, i - start));
      char* end = nullptr;
      const double value = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size()) {
        throw CompileError("malformed number '" + text + "'", line);
      }
      Token tok{TokenType::kNumber, text, value, line};
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      const std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      const std::string word(source.substr(start, i - start));
      if (word == "let") {
        push(TokenType::kLet, word);
      } else if (word == "emit") {
        push(TokenType::kEmit, word);
      } else {
        push(TokenType::kIdentifier, word);
      }
      continue;
    }
    if (c == '"') {
      const std::size_t start = ++i;
      while (i < n && source[i] != '"' && source[i] != '\n') ++i;
      if (i >= n || source[i] != '"') {
        throw CompileError("unterminated string literal", line);
      }
      push(TokenType::kString, std::string(source.substr(start, i - start)));
      ++i;
      continue;
    }
    auto two = [&](char second) {
      return i + 1 < n && source[i + 1] == second;
    };
    switch (c) {
      case '+': push(TokenType::kPlus); ++i; break;
      case '-': push(TokenType::kMinus); ++i; break;
      case '*': push(TokenType::kStar); ++i; break;
      case '/': push(TokenType::kSlash); ++i; break;
      case '%': push(TokenType::kPercent); ++i; break;
      case '(': push(TokenType::kLParen); ++i; break;
      case ')': push(TokenType::kRParen); ++i; break;
      case '[': push(TokenType::kLBracket); ++i; break;
      case ']': push(TokenType::kRBracket); ++i; break;
      case ',': push(TokenType::kComma); ++i; break;
      case ';': push(TokenType::kSemicolon); ++i; break;
      case '?': push(TokenType::kQuestion); ++i; break;
      case ':': push(TokenType::kColon); ++i; break;
      case '=':
        if (two('=')) {
          push(TokenType::kEqEq);
          i += 2;
        } else {
          push(TokenType::kAssign);
          ++i;
        }
        break;
      case '<':
        if (two('=')) {
          push(TokenType::kLessEq);
          i += 2;
        } else {
          push(TokenType::kLess);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenType::kGreaterEq);
          i += 2;
        } else {
          push(TokenType::kGreater);
          ++i;
        }
        break;
      case '!':
        if (two('=')) {
          push(TokenType::kNotEq);
          i += 2;
        } else {
          push(TokenType::kBang);
          ++i;
        }
        break;
      case '&':
        if (two('&')) {
          push(TokenType::kAndAnd);
          i += 2;
        } else {
          throw CompileError("stray '&' (did you mean '&&'?)", line);
        }
        break;
      case '|':
        if (two('|')) {
          push(TokenType::kOrOr);
          i += 2;
        } else {
          throw CompileError("stray '|' (did you mean '||'?)", line);
        }
        break;
      default:
        throw CompileError(std::string("unexpected character '") + c + "'",
                           line);
    }
  }
  tokens.push_back(Token{TokenType::kEof, "", 0.0, line});
  return tokens;
}

}  // namespace nada::dsl

// NadaScript lexer.
//
// Token stream for the state-function language. `#` starts a comment that
// runs to end of line (generated programs carry explanatory comments, like
// the LLM output the paper describes).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace nada::dsl {

enum class TokenType {
  kNumber,
  kIdentifier,
  kString,     // double-quoted, used for emit row names
  kLet,        // keyword
  kEmit,       // keyword
  kPlus, kMinus, kStar, kSlash, kPercent,
  kLParen, kRParen,
  kLBracket, kRBracket,
  kComma, kSemicolon, kAssign,
  kLess, kGreater, kLessEq, kGreaterEq, kEqEq, kNotEq,
  kAndAnd, kOrOr, kBang,
  kQuestion, kColon,
  kEof,
};

[[nodiscard]] const char* token_type_name(TokenType t);

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;       // raw text (identifier name / string contents)
  double number = 0.0;    // valid when type == kNumber
  std::size_t line = 1;
};

/// Tokenizes `source`; throws CompileError on unrecognized characters,
/// unterminated strings, or malformed numbers.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

}  // namespace nada::dsl

#include "dsl/parser.h"

#include <utility>

#include "dsl/lexer.h"
#include "dsl/value.h"

namespace nada::dsl {

const char* binary_op_name(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kLess: return "<";
    case BinaryOp::kGreater: return ">";
    case BinaryOp::kLessEq: return "<=";
    case BinaryOp::kGreaterEq: return ">=";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNotEq: return "!=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program parse_program() {
    Program program;
    while (!check(TokenType::kEof)) {
      program.statements.push_back(parse_statement());
    }
    if (program.statements.empty()) {
      throw CompileError("empty program", 1);
    }
    if (program.emit_count() == 0) {
      throw CompileError("program never emits a state row", current().line);
    }
    return program;
  }

 private:
  const Token& current() const { return tokens_[pos_]; }

  bool check(TokenType t) const { return current().type == t; }

  Token advance() { return tokens_[pos_++]; }

  Token expect(TokenType t, const char* context) {
    if (!check(t)) {
      throw CompileError(std::string("expected ") + token_type_name(t) +
                             " " + context + ", found " +
                             token_type_name(current().type),
                         current().line);
    }
    return advance();
  }

  Statement parse_statement() {
    Statement stmt;
    stmt.line = current().line;
    if (check(TokenType::kLet)) {
      advance();
      stmt.kind = StatementKind::kLet;
      stmt.name = expect(TokenType::kIdentifier, "after 'let'").text;
      expect(TokenType::kAssign, "in let binding");
      stmt.expr = parse_expr();
      expect(TokenType::kSemicolon, "after let binding");
    } else if (check(TokenType::kEmit)) {
      advance();
      stmt.kind = StatementKind::kEmit;
      stmt.name = expect(TokenType::kString, "after 'emit'").text;
      if (stmt.name.empty()) {
        throw CompileError("emit row name is empty", stmt.line);
      }
      expect(TokenType::kAssign, "in emit statement");
      stmt.expr = parse_expr();
      expect(TokenType::kSemicolon, "after emit statement");
    } else {
      throw CompileError(std::string("expected 'let' or 'emit', found ") +
                             token_type_name(current().type),
                         current().line);
    }
    return stmt;
  }

  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_or();
    if (!check(TokenType::kQuestion)) return cond;
    const std::size_t line = advance().line;
    ExprPtr then_branch = parse_expr();
    expect(TokenType::kColon, "in ternary expression");
    ExprPtr else_branch = parse_expr();
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kTernary;
    node->line = line;
    node->children.push_back(std::move(cond));
    node->children.push_back(std::move(then_branch));
    node->children.push_back(std::move(else_branch));
    return node;
  }

  ExprPtr parse_or() {
    ExprPtr left = parse_and();
    while (check(TokenType::kOrOr)) {
      const std::size_t line = advance().line;
      left = make_binary(BinaryOp::kOr, std::move(left), parse_and(), line);
    }
    return left;
  }

  ExprPtr parse_and() {
    ExprPtr left = parse_comparison();
    while (check(TokenType::kAndAnd)) {
      const std::size_t line = advance().line;
      left = make_binary(BinaryOp::kAnd, std::move(left), parse_comparison(),
                         line);
    }
    return left;
  }

  ExprPtr parse_comparison() {
    ExprPtr left = parse_additive();
    BinaryOp op{};
    bool has_op = true;
    switch (current().type) {
      case TokenType::kLess: op = BinaryOp::kLess; break;
      case TokenType::kGreater: op = BinaryOp::kGreater; break;
      case TokenType::kLessEq: op = BinaryOp::kLessEq; break;
      case TokenType::kGreaterEq: op = BinaryOp::kGreaterEq; break;
      case TokenType::kEqEq: op = BinaryOp::kEq; break;
      case TokenType::kNotEq: op = BinaryOp::kNotEq; break;
      default: has_op = false; break;
    }
    if (!has_op) return left;
    const std::size_t line = advance().line;
    return make_binary(op, std::move(left), parse_additive(), line);
  }

  ExprPtr parse_additive() {
    ExprPtr left = parse_multiplicative();
    while (check(TokenType::kPlus) || check(TokenType::kMinus)) {
      const BinaryOp op = check(TokenType::kPlus) ? BinaryOp::kAdd
                                                  : BinaryOp::kSub;
      const std::size_t line = advance().line;
      left = make_binary(op, std::move(left), parse_multiplicative(), line);
    }
    return left;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr left = parse_unary();
    while (check(TokenType::kStar) || check(TokenType::kSlash) ||
           check(TokenType::kPercent)) {
      BinaryOp op = BinaryOp::kMul;
      if (check(TokenType::kSlash)) op = BinaryOp::kDiv;
      if (check(TokenType::kPercent)) op = BinaryOp::kMod;
      const std::size_t line = advance().line;
      left = make_binary(op, std::move(left), parse_unary(), line);
    }
    return left;
  }

  ExprPtr parse_unary() {
    if (check(TokenType::kMinus) || check(TokenType::kBang)) {
      const UnaryOp op =
          check(TokenType::kMinus) ? UnaryOp::kNeg : UnaryOp::kNot;
      const std::size_t line = advance().line;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->unary_op = op;
      node->line = line;
      node->children.push_back(parse_unary());
      return node;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr base = parse_primary();
    while (check(TokenType::kLBracket)) {
      const std::size_t line = advance().line;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kIndex;
      node->line = line;
      node->children.push_back(std::move(base));
      node->children.push_back(parse_expr());
      expect(TokenType::kRBracket, "after index expression");
      base = std::move(node);
    }
    return base;
  }

  ExprPtr parse_primary() {
    if (check(TokenType::kNumber)) {
      const Token tok = advance();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kNumber;
      node->number = tok.number;
      node->line = tok.line;
      return node;
    }
    if (check(TokenType::kIdentifier)) {
      const Token tok = advance();
      if (check(TokenType::kLParen)) {
        advance();
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kCall;
        node->name = tok.text;
        node->line = tok.line;
        if (!check(TokenType::kRParen)) {
          node->children.push_back(parse_expr());
          while (check(TokenType::kComma)) {
            advance();
            node->children.push_back(parse_expr());
          }
        }
        expect(TokenType::kRParen, "to close argument list");
        return node;
      }
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kVariable;
      node->name = tok.text;
      node->line = tok.line;
      return node;
    }
    if (check(TokenType::kLParen)) {
      advance();
      ExprPtr inner = parse_expr();
      expect(TokenType::kRParen, "to close parenthesized expression");
      return inner;
    }
    if (check(TokenType::kLBracket)) {
      const std::size_t line = advance().line;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kVectorLiteral;
      node->line = line;
      if (!check(TokenType::kRBracket)) {
        node->children.push_back(parse_expr());
        while (check(TokenType::kComma)) {
          advance();
          node->children.push_back(parse_expr());
        }
      }
      expect(TokenType::kRBracket, "to close vector literal");
      return node;
    }
    throw CompileError(std::string("unexpected ") +
                           token_type_name(current().type) +
                           " in expression",
                       current().line);
  }

  static ExprPtr make_binary(BinaryOp op, ExprPtr left, ExprPtr right,
                             std::size_t line) {
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kBinary;
    node->binary_op = op;
    node->line = line;
    node->children.push_back(std::move(left));
    node->children.push_back(std::move(right));
    return node;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source) {
  return Parser(tokenize(source)).parse_program();
}

}  // namespace nada::dsl

// NadaScript recursive-descent parser.
#pragma once

#include <string_view>

#include "dsl/ast.h"

namespace nada::dsl {

/// Parses source into a Program; throws CompileError with the offending
/// line on any syntax error. An empty program (no statements) is an error,
/// as is a program that never emits a state row.
[[nodiscard]] Program parse(std::string_view source);

}  // namespace nada::dsl

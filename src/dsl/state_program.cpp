#include "dsl/state_program.h"

#include <atomic>
#include <cstdlib>

#include "dsl/binding_catalog.h"
#include "dsl/parser.h"
#include "dsl/vm.h"

namespace nada::dsl {
namespace {

std::atomic<int> g_exec_mode{-1};  // -1: not yet read from the environment

int read_exec_mode_env() {
  const char* v = std::getenv("NADA_DSL_EXEC");
  if (v != nullptr && std::string(v) == "tree") {
    return static_cast<int>(ExecMode::kTree);
  }
  return static_cast<int>(ExecMode::kVm);
}

}  // namespace

ExecMode exec_mode() {
  int mode = g_exec_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    mode = read_exec_mode_env();
    g_exec_mode.store(mode, std::memory_order_relaxed);
  }
  return static_cast<ExecMode>(mode);
}

void set_exec_mode(ExecMode mode) {
  g_exec_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

StateProgram::StateProgram(std::string source, Program program,
                           const BindingCatalog* catalog)
    : source_(std::move(source)),
      program_(std::move(program)),
      code_(std::make_shared<const CompiledProgram>(
          compile_program(program_, catalog))),
      signature_cache_(std::make_shared<SignatureCache>()) {}

StateProgram StateProgram::compile(std::string source,
                                   const BindingCatalog* catalog) {
  Program program = parse(source);
  return StateProgram(std::move(source), std::move(program), catalog);
}

StateMatrix StateProgram::run(const Bindings& inputs) const {
  if (exec_mode() == ExecMode::kTree) {
    return run_program(program_, inputs);
  }
  // One VM per thread: run() is called concurrently on shared programs
  // (rl::run_sessions fans one program out across seed workers), and a Vm
  // is single-threaded mutable state. The matrix is copied out for API
  // compatibility; allocation-free execution uses PolicyAgent's own Vm.
  thread_local Vm vm;
  return vm.run(*code_, inputs);
}

std::vector<std::size_t> StateProgram::signature_row_lengths(
    const BindingCatalog& catalog) const {
  {
    std::lock_guard<std::mutex> lock(signature_cache_->mu);
    if (signature_cache_->catalog == &catalog) {
      return signature_cache_->lengths;
    }
  }
  std::vector<std::size_t> lengths = run(catalog.canned()).row_lengths();
  prime_signature(catalog, lengths);
  return lengths;
}

void StateProgram::prime_signature(const BindingCatalog& catalog,
                                   std::vector<std::size_t> lengths) const {
  std::lock_guard<std::mutex> lock(signature_cache_->mu);
  signature_cache_->catalog = &catalog;
  signature_cache_->lengths = std::move(lengths);
}

const std::string& pensieve_state_source() {
  static const std::string kSource = R"(# Original Pensieve state representation (Mao et al., SIGCOMM 2017).
# Six rows: scalar features normalized to ~[0, 1], histories passed to the
# network's temporal units.
emit "last_quality" = last_bitrate_kbps / max_bitrate_kbps;
emit "buffer_s" = buffer_size_s / 10.0;
emit "throughput" = throughput_mbps / 8.0;
emit "download_time" = download_time_s / 10.0;
emit "next_sizes_mb" = next_chunk_sizes_bytes / 1000000.0;
emit "chunks_left" = chunks_remaining / total_chunks;
)";
  return kSource;
}

}  // namespace nada::dsl

#include "dsl/state_program.h"

#include "dsl/parser.h"

namespace nada::dsl {

StateProgram StateProgram::compile(std::string source) {
  Program program = parse(source);
  return StateProgram(std::move(source), std::move(program));
}

StateMatrix StateProgram::run(const Bindings& inputs) const {
  return run_program(program_, inputs);
}

const std::string& pensieve_state_source() {
  static const std::string kSource = R"(# Original Pensieve state representation (Mao et al., SIGCOMM 2017).
# Six rows: scalar features normalized to ~[0, 1], histories passed to the
# network's temporal units.
emit "last_quality" = last_bitrate_kbps / max_bitrate_kbps;
emit "buffer_s" = buffer_size_s / 10.0;
emit "throughput" = throughput_mbps / 8.0;
emit "download_time" = download_time_s / 10.0;
emit "next_sizes_mb" = next_chunk_sizes_bytes / 1000000.0;
emit "chunks_left" = chunks_remaining / total_chunks;
)";
  return kSource;
}

}  // namespace nada::dsl

#include "dsl/state_program.h"

#include "dsl/parser.h"

namespace nada::dsl {

Bindings bindings_from_observation(const env::Observation& obs) {
  Bindings b;
  b.emplace("throughput_mbps", Value(obs.throughput_mbps));
  b.emplace("download_time_s", Value(obs.download_time_s));
  b.emplace("buffer_size_s_history", Value(obs.buffer_s_history));
  b.emplace("next_chunk_sizes_bytes", Value(obs.next_chunk_bytes));
  b.emplace("bitrate_levels_kbps", Value(obs.ladder_kbps));
  b.emplace("buffer_size_s", Value(obs.buffer_s));
  b.emplace("chunks_remaining", Value(obs.chunks_remaining));
  b.emplace("total_chunks", Value(obs.total_chunks));
  b.emplace("last_bitrate_kbps", Value(obs.last_bitrate_kbps));
  b.emplace("chunk_length_s", Value(obs.chunk_len_s));
  b.emplace("max_bitrate_kbps",
            Value(obs.ladder_kbps.empty() ? 0.0 : obs.ladder_kbps.back()));
  return b;
}

const std::vector<InputVariable>& input_variables() {
  static const std::vector<InputVariable> kVars = {
      {"throughput_mbps", true},
      {"download_time_s", true},
      {"buffer_size_s_history", true},
      {"next_chunk_sizes_bytes", true},
      {"bitrate_levels_kbps", true},
      {"buffer_size_s", false},
      {"chunks_remaining", false},
      {"total_chunks", false},
      {"last_bitrate_kbps", false},
      {"chunk_length_s", false},
      {"max_bitrate_kbps", false},
  };
  return kVars;
}

StateProgram StateProgram::compile(std::string source) {
  Program program = parse(source);
  return StateProgram(std::move(source), std::move(program));
}

StateMatrix StateProgram::run(const env::Observation& obs) const {
  return run_program(program_, bindings_from_observation(obs));
}

const std::string& pensieve_state_source() {
  static const std::string kSource = R"(# Original Pensieve state representation (Mao et al., SIGCOMM 2017).
# Six rows: scalar features normalized to ~[0, 1], histories passed to the
# network's temporal units.
emit "last_quality" = last_bitrate_kbps / max_bitrate_kbps;
emit "buffer_s" = buffer_size_s / 10.0;
emit "throughput" = throughput_mbps / 8.0;
emit "download_time" = download_time_s / 10.0;
emit "next_sizes_mb" = next_chunk_sizes_bytes / 1000000.0;
emit "chunks_left" = chunks_remaining / total_chunks;
)";
  return kSource;
}

env::Observation canned_observation() {
  env::Observation obs;
  obs.throughput_mbps = {2.1, 1.8, 2.4, 2.2, 1.9, 2.6, 2.3, 2.0};
  obs.download_time_s = {1.5, 1.9, 1.3, 1.4, 1.8, 1.2, 1.5, 1.6};
  obs.buffer_s_history = {8.0, 9.5, 11.0, 12.2, 13.0, 13.5, 14.1, 14.8};
  obs.next_chunk_bytes = {150000, 375000, 600000, 925000, 1425000, 2150000};
  obs.ladder_kbps = {300, 750, 1200, 1850, 2850, 4300};
  obs.buffer_s = 14.8;
  obs.chunks_remaining = 30.0;
  obs.total_chunks = 48.0;
  obs.last_bitrate_kbps = 1200.0;
  obs.chunk_len_s = 4.0;
  return obs;
}

env::Observation fuzz_observation(util::Rng& rng) {
  env::Observation obs;
  // Wide but physical ranges: the point of the fuzz check is to surface
  // features that blow past the threshold once realistic magnitudes (bytes,
  // kbps) flow through un-normalized code paths.
  const bool high_bandwidth = rng.bernoulli(0.5);
  const double bw_cap_mbps = high_bandwidth ? 400.0 : 10.0;
  obs.throughput_mbps.resize(env::kHistoryLen);
  obs.download_time_s.resize(env::kHistoryLen);
  obs.buffer_s_history.resize(env::kHistoryLen);
  for (std::size_t i = 0; i < env::kHistoryLen; ++i) {
    obs.throughput_mbps[i] = rng.uniform(0.05, bw_cap_mbps);
    obs.download_time_s[i] = rng.uniform(0.05, 40.0);
    obs.buffer_s_history[i] = rng.uniform(0.0, 60.0);
  }
  if (high_bandwidth) {
    obs.ladder_kbps = {1850, 2850, 4300, 12000, 24000, 53000};
  } else {
    obs.ladder_kbps = {300, 750, 1200, 1850, 2850, 4300};
  }
  obs.next_chunk_bytes.resize(obs.ladder_kbps.size());
  for (std::size_t i = 0; i < obs.ladder_kbps.size(); ++i) {
    obs.next_chunk_bytes[i] =
        obs.ladder_kbps[i] * 1000.0 / 8.0 * 4.0 * rng.uniform(0.7, 1.3);
  }
  obs.buffer_s = rng.uniform(0.0, 60.0);
  obs.total_chunks = 48.0;
  obs.chunks_remaining = rng.uniform(0.0, obs.total_chunks);
  obs.last_bitrate_kbps =
      obs.ladder_kbps[static_cast<std::size_t>(rng.uniform_int(0, 5))];
  obs.chunk_len_s = 4.0;
  return obs;
}

}  // namespace nada::dsl

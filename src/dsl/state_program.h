// StateProgram: a compiled NadaScript state function.
//
// This is the unit NADA searches over for the "state representation"
// component. A program maps the raw observation (throughput history, buffer
// level, next chunk sizes, ...) to the state matrix the actor-critic
// network consumes. The original Pensieve state is provided in this
// language (pensieve_state_source) and serves as the seed design.
#pragma once

#include <string>
#include <vector>

#include "dsl/ast.h"
#include "dsl/interpreter.h"
#include "env/abr_env.h"

namespace nada::dsl {

/// Converts an observation into the interpreter's input bindings. The
/// variable names are the "semantically meaningful names" the paper's
/// prompting strategy introduces (§2.1).
[[nodiscard]] Bindings bindings_from_observation(const env::Observation& obs);

/// Names of all observation variables exposed to programs, with a flag for
/// whether each is a vector. The candidate generator samples from this set.
struct InputVariable {
  std::string name;
  bool is_vector = false;
};
[[nodiscard]] const std::vector<InputVariable>& input_variables();

class StateProgram {
 public:
  /// Parses `source`; throws CompileError on syntax errors.
  [[nodiscard]] static StateProgram compile(std::string source);

  /// Runs against an observation; throws RuntimeError on evaluation errors.
  [[nodiscard]] StateMatrix run(const env::Observation& obs) const;

  [[nodiscard]] const std::string& source() const { return source_; }
  [[nodiscard]] const Program& program() const { return program_; }

 private:
  StateProgram(std::string source, Program program)
      : source_(std::move(source)), program_(std::move(program)) {}

  std::string source_;
  Program program_;
};

/// The original Pensieve state representation, expressed in NadaScript:
/// six rows matching Figure 2 of the paper (last quality, buffer,
/// throughput history, download-time history, next chunk sizes, chunks
/// remaining) with Pensieve's normalization constants.
[[nodiscard]] const std::string& pensieve_state_source();

/// A synthetic observation with plausible mid-stream values; used as the
/// canned input for trial runs (the compilation check).
[[nodiscard]] env::Observation canned_observation();

/// A randomized observation for the normalization fuzz check. Values are
/// drawn from wide but physically meaningful ranges (throughput up to
/// hundreds of Mbps, chunk sizes up to tens of MB).
[[nodiscard]] env::Observation fuzz_observation(util::Rng& rng);

}  // namespace nada::dsl

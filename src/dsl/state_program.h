// StateProgram: a compiled NadaScript state function.
//
// This is the unit NADA searches over for the "state representation"
// component. A program maps a raw observation — expressed as named input
// bindings, per the domain's BindingCatalog — to the state matrix the
// actor-critic network consumes. The language itself is domain-agnostic:
// the same DSL expresses ABR state functions over throughput/buffer
// histories and CC state functions over rate/RTT/loss histories; only the
// binding vocabulary changes (src/env and src/cc own those vocabularies).
//
// Execution: compile() parses the source AND lowers it to register
// bytecode (bytecode.h); run() dispatches to the bytecode VM or the
// tree-walk interpreter per exec_mode(). The VM is the default and is
// bit-identical to the tree-walk — same matrices, same error messages —
// so rankings, store journals, and sim_rev are unchanged; NADA_DSL_EXEC
// exists for differential testing and as an escape hatch, and
// deliberately does NOT feed the store digest.
//
// The original Pensieve state is provided in this language
// (pensieve_state_source) and serves as the ABR seed design.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dsl/ast.h"
#include "dsl/bytecode.h"
#include "dsl/interpreter.h"

namespace nada::dsl {

class BindingCatalog;

/// Which engine StateProgram::run uses.
enum class ExecMode { kTree, kVm };

/// The process-wide execution mode: NADA_DSL_EXEC=tree selects the
/// tree-walk interpreter, anything else (including unset) the VM. Read
/// once, then cached; set_exec_mode overrides it.
[[nodiscard]] ExecMode exec_mode();

/// Process-wide override for tests and benches (e.g. differential runs).
void set_exec_mode(ExecMode mode);

class StateProgram {
 public:
  /// Parses and lowers `source`; throws CompileError on syntax errors.
  /// Lowering never rejects a parseable program (semantic errors surface
  /// at run time with tree-walk-identical messages; see bytecode.h).
  /// `catalog`, when given, annotates the bytecode's input table with the
  /// domain's canonical slot indices (execution is unaffected; see
  /// InputRef::catalog_slot).
  [[nodiscard]] static StateProgram compile(
      std::string source, const BindingCatalog* catalog = nullptr);

  /// Runs against a set of observation bindings (see BindingCatalog);
  /// throws RuntimeError on evaluation errors, including references to
  /// variables outside the bound vocabulary, and BudgetError (VM mode)
  /// when a run exceeds the execution budget.
  [[nodiscard]] StateMatrix run(const Bindings& inputs) const;

  [[nodiscard]] const std::string& source() const { return source_; }
  [[nodiscard]] const Program& program() const { return program_; }

  /// The lowered bytecode. Immutable and shared_ptr-owned: hot paths that
  /// keep their own Vm (rl::PolicyAgent) execute this directly.
  [[nodiscard]] const CompiledProgram& code() const { return *code_; }
  [[nodiscard]] std::shared_ptr<const CompiledProgram> code_ptr() const {
    return code_;
  }

  /// Row lengths of this program's state matrix under `catalog`'s canned
  /// observation — the network input signature. Computed at most once per
  /// (program, catalog) and cached on the program, so agent construction
  /// does not re-run the program (filter::compilation_check primes the
  /// cache from its trial run). Thread-safe: pre-check workers compile and
  /// probe the same program concurrently.
  [[nodiscard]] std::vector<std::size_t> signature_row_lengths(
      const BindingCatalog& catalog) const;

  /// Seeds the signature cache with row lengths already computed from a
  /// run on `catalog`'s canned observation (the compilation check's trial
  /// run), so later signature_row_lengths calls are lookup-only.
  void prime_signature(const BindingCatalog& catalog,
                       std::vector<std::size_t> lengths) const;

 private:
  StateProgram(std::string source, Program program,
               const BindingCatalog* catalog);

  // The signature cache outlives moves of the StateProgram (the store
  // pipeline moves compiled programs into per-candidate slots) and must be
  // lockable from const methods on shared instances, hence a shared_ptr
  // to a heap-allocated mutex-guarded record.
  struct SignatureCache {
    std::mutex mu;
    const BindingCatalog* catalog = nullptr;
    std::vector<std::size_t> lengths;
  };

  std::string source_;
  Program program_;
  std::shared_ptr<const CompiledProgram> code_;
  std::shared_ptr<SignatureCache> signature_cache_;
};

/// The original Pensieve state representation, expressed in NadaScript:
/// six rows matching Figure 2 of the paper (last quality, buffer,
/// throughput history, download-time history, next chunk sizes, chunks
/// remaining) with Pensieve's normalization constants.
[[nodiscard]] const std::string& pensieve_state_source();

}  // namespace nada::dsl

// StateProgram: a compiled NadaScript state function.
//
// This is the unit NADA searches over for the "state representation"
// component. A program maps a raw observation — expressed as named input
// bindings, per the domain's BindingCatalog — to the state matrix the
// actor-critic network consumes. The language itself is domain-agnostic:
// the same DSL expresses ABR state functions over throughput/buffer
// histories and CC state functions over rate/RTT/loss histories; only the
// binding vocabulary changes (src/env and src/cc own those vocabularies).
//
// The original Pensieve state is provided in this language
// (pensieve_state_source) and serves as the ABR seed design.
#pragma once

#include <string>

#include "dsl/ast.h"
#include "dsl/interpreter.h"

namespace nada::dsl {

class StateProgram {
 public:
  /// Parses `source`; throws CompileError on syntax errors.
  [[nodiscard]] static StateProgram compile(std::string source);

  /// Runs against a set of observation bindings (see BindingCatalog);
  /// throws RuntimeError on evaluation errors, including references to
  /// variables outside the bound vocabulary.
  [[nodiscard]] StateMatrix run(const Bindings& inputs) const;

  [[nodiscard]] const std::string& source() const { return source_; }
  [[nodiscard]] const Program& program() const { return program_; }

 private:
  StateProgram(std::string source, Program program)
      : source_(std::move(source)), program_(std::move(program)) {}

  std::string source_;
  Program program_;
};

/// The original Pensieve state representation, expressed in NadaScript:
/// six rows matching Figure 2 of the paper (last quality, buffer,
/// throughput history, download-time history, next chunk sizes, chunks
/// remaining) with Pensieve's normalization constants.
[[nodiscard]] const std::string& pensieve_state_source();

}  // namespace nada::dsl

#include "dsl/value.h"

namespace nada::dsl {

double Value::as_scalar() const {
  if (is_vector_) {
    throw RuntimeError("expected scalar, got vector of length " +
                       std::to_string(vector_.size()));
  }
  return scalar_;
}

const std::vector<double>& Value::as_vector() const {
  if (!is_vector_) throw RuntimeError("expected vector, got scalar");
  return vector_;
}

double Value::element(std::size_t i) const {
  if (!is_vector_) return scalar_;
  if (i >= vector_.size()) {
    throw RuntimeError("index " + std::to_string(i) +
                       " out of range for vector of length " +
                       std::to_string(vector_.size()));
  }
  return vector_[i];
}

}  // namespace nada::dsl

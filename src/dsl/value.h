// Runtime values for NadaScript: a dynamically-typed scalar/vector algebra.
//
// State functions in the paper are small Python functions over numpy-like
// values; NadaScript mirrors that: every expression evaluates to either a
// scalar or a 1-D vector, with elementwise broadcasting between them.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace nada::dsl {

/// Thrown by the interpreter for type errors, bad arity, division by zero,
/// domain errors, and other Python-exception-like conditions. A candidate
/// whose trial run throws RuntimeError fails NADA's compilation check.
class RuntimeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by the lexer/parser for malformed programs.
class CompileError : public std::runtime_error {
 public:
  CompileError(const std::string& message, std::size_t line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

class Value {
 public:
  Value() : is_vector_(false), scalar_(0.0) {}
  /*implicit*/ Value(double s) : is_vector_(false), scalar_(s) {}
  /*implicit*/ Value(std::vector<double> v)
      : is_vector_(true), scalar_(0.0), vector_(std::move(v)) {}

  [[nodiscard]] bool is_vector() const { return is_vector_; }
  [[nodiscard]] bool is_scalar() const { return !is_vector_; }

  /// Scalar access; throws RuntimeError if this is a vector.
  [[nodiscard]] double as_scalar() const;

  /// Vector view; throws RuntimeError if this is a scalar.
  [[nodiscard]] const std::vector<double>& as_vector() const;

  /// Number of elements (1 for scalars).
  [[nodiscard]] std::size_t size() const {
    return is_vector_ ? vector_.size() : 1;
  }

  /// Element i with scalar broadcast (scalars repeat).
  [[nodiscard]] double element(std::size_t i) const;

  [[nodiscard]] std::string type_name() const {
    return is_vector_ ? "vector" : "scalar";
  }

  /// In-place scalar write for the bytecode VM's register file: no
  /// allocation, and the register's vector capacity (if any) is kept for
  /// later vector results.
  void set_scalar(double s) {
    is_vector_ = false;
    scalar_ = s;
  }

  /// In-place vector write for the VM: marks this value as a vector and
  /// returns the element buffer so the caller can resize() + fill it,
  /// reusing whatever capacity the register already holds.
  [[nodiscard]] std::vector<double>& mutable_vector() {
    is_vector_ = true;
    return vector_;
  }

 private:
  bool is_vector_;
  double scalar_;
  std::vector<double> vector_;
};

/// Applies a binary op elementwise with numpy-style broadcasting: scalars
/// broadcast against vectors; two vectors must have equal length.
template <typename Op>
Value broadcast_binary(const Value& a, const Value& b, Op op,
                       const char* op_name) {
  if (a.is_scalar() && b.is_scalar()) {
    return Value(op(a.as_scalar(), b.as_scalar()));
  }
  const std::size_t n = a.is_vector() ? a.size() : b.size();
  if (a.is_vector() && b.is_vector() && a.size() != b.size()) {
    throw RuntimeError(std::string("operator ") + op_name +
                       ": vector length mismatch (" + std::to_string(a.size()) +
                       " vs " + std::to_string(b.size()) + ")");
  }
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = op(a.element(i), b.element(i));
  }
  return Value(std::move(out));
}

}  // namespace nada::dsl

#include "dsl/vm.h"

#include <cmath>
#include <cstdlib>
#include <string>

namespace nada::dsl {
namespace {

// Mirrors the tree-walk interpreter's require_scalar exactly (message
// identity matters: failure reasons are journaled by the store, and
// tree/VM journals must be byte-identical).
double require_scalar(const Value& v, const char* what) {
  if (!v.is_scalar()) {
    throw RuntimeError(std::string(what) + " must be a scalar");
  }
  return v.as_scalar();
}

// One element of a broadcast binary op — the same per-element lambdas the
// tree-walk passes to broadcast_binary, including the checked div/mod.
// kAnd/kOr never reach here (they have scalar-only semantics with a
// short-circuited operand check; see Vm::run).
double apply_binary(BinaryOp op, double a, double b) {
  switch (op) {
    case BinaryOp::kAdd: return a + b;
    case BinaryOp::kSub: return a - b;
    case BinaryOp::kMul: return a * b;
    case BinaryOp::kDiv:
      if (std::abs(b) < 1e-12) throw RuntimeError("division by zero");
      return a / b;
    case BinaryOp::kMod:
      if (std::abs(b) < 1e-12) throw RuntimeError("modulo by zero");
      return std::fmod(a, b);
    case BinaryOp::kLess: return a < b ? 1.0 : 0.0;
    case BinaryOp::kGreater: return a > b ? 1.0 : 0.0;
    case BinaryOp::kLessEq: return a <= b ? 1.0 : 0.0;
    case BinaryOp::kGreaterEq: return a >= b ? 1.0 : 0.0;
    case BinaryOp::kEq: return a == b ? 1.0 : 0.0;
    case BinaryOp::kNotEq: return a != b ? 1.0 : 0.0;
    case BinaryOp::kAnd:
    case BinaryOp::kOr: break;
  }
  throw RuntimeError("unknown binary operator");
}

// Broadcast loop with the operator dispatched ONCE instead of per element.
// Operands read through pointer+stride (stride 0 broadcasts a scalar), and
// the checked ops throw at the first offending element — the same element
// order as broadcast_binary, so the surviving message is identical.
void broadcast_op(BinaryOp op, const double* lp, std::size_t ls,
                  const double* rp, std::size_t rs, double* out,
                  std::size_t n) {
  switch (op) {
    case BinaryOp::kAdd:
      for (std::size_t i = 0; i < n; ++i) out[i] = lp[i * ls] + rp[i * rs];
      return;
    case BinaryOp::kSub:
      for (std::size_t i = 0; i < n; ++i) out[i] = lp[i * ls] - rp[i * rs];
      return;
    case BinaryOp::kMul:
      for (std::size_t i = 0; i < n; ++i) out[i] = lp[i * ls] * rp[i * rs];
      return;
    case BinaryOp::kDiv:
      for (std::size_t i = 0; i < n; ++i) {
        const double b = rp[i * rs];
        if (std::abs(b) < 1e-12) throw RuntimeError("division by zero");
        out[i] = lp[i * ls] / b;
      }
      return;
    case BinaryOp::kMod:
      for (std::size_t i = 0; i < n; ++i) {
        const double b = rp[i * rs];
        if (std::abs(b) < 1e-12) throw RuntimeError("modulo by zero");
        out[i] = std::fmod(lp[i * ls], b);
      }
      return;
    case BinaryOp::kLess:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = lp[i * ls] < rp[i * rs] ? 1.0 : 0.0;
      }
      return;
    case BinaryOp::kGreater:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = lp[i * ls] > rp[i * rs] ? 1.0 : 0.0;
      }
      return;
    case BinaryOp::kLessEq:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = lp[i * ls] <= rp[i * rs] ? 1.0 : 0.0;
      }
      return;
    case BinaryOp::kGreaterEq:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = lp[i * ls] >= rp[i * rs] ? 1.0 : 0.0;
      }
      return;
    case BinaryOp::kEq:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = lp[i * ls] == rp[i * rs] ? 1.0 : 0.0;
      }
      return;
    case BinaryOp::kNotEq:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = lp[i * ls] != rp[i * rs] ? 1.0 : 0.0;
      }
      return;
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      break;
  }
  throw RuntimeError("unknown binary operator");
}

// Accumulates the run's instruction/cost counters in locals (kept in
// registers by the run loop) and flushes them into the shared Stats on
// every exit path, thrown errors included.
struct StatsFlush {
  Vm::Stats& stats;
  std::uint64_t instructions = 0;
  std::uint64_t cost_units = 0;
  ~StatsFlush() {
    stats.instructions += instructions;
    stats.cost_units += cost_units;
  }
};

}  // namespace

std::uint64_t instruction_budget() {
  static const std::uint64_t kBudget = [] {
    if (const char* env = std::getenv("NADA_DSL_BUDGET")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && v > 0) {
        return static_cast<std::uint64_t>(v);
      }
    }
    return kDefaultInstructionBudget;
  }();
  return kBudget;
}

void Vm::prepare(const CompiledProgram& program) {
  if (prepared_id_ == program.id) return;
  storage_.resize(program.num_registers);
  view_.assign(program.num_registers, nullptr);
  // Constant registers point straight into the (immutable, shared_ptr-
  // owned) CompiledProgram; they stay bound for as long as this program
  // stays prepared.
  for (const auto& [reg, value] : program.constants) view_[reg] = &value;
  input_ptrs_.assign(program.inputs.size(), nullptr);
  matrix_.rows.resize(program.emit_names.size());
  for (std::size_t i = 0; i < program.emit_names.size(); ++i) {
    matrix_.rows[i].name = program.emit_names[i];
  }
  prepared_id_ = program.id;
}

const StateMatrix& Vm::run(const CompiledProgram& program,
                           const Bindings& inputs) {
  prepare(program);
  // Inputs resolve once per run (the tree-walk pays a hash lookup per
  // reference per step). A missing name is NOT an error yet — the
  // tree-walk only fails when the reference is evaluated, so a reference
  // in a never-taken branch must stay silent.
  for (std::size_t i = 0; i < program.inputs.size(); ++i) {
    const auto it = inputs.find(program.inputs[i].name);
    input_ptrs_[i] = it == inputs.end() ? nullptr : &it->second;
  }

  const std::uint64_t budget =
      budget_override_ != 0 ? budget_override_ : instruction_budget();
  ++stats_.runs;
  StatsFlush counters{stats_};

  const Instr* code = program.code.data();
  const std::size_t code_size = program.code.size();
  const Value** view = view_.data();
  Value* storage = storage_.data();
  std::size_t pc = 0;
  while (pc < code_size) {
    const Instr& in = code[pc];
    ++counters.instructions;
    ++counters.cost_units;
    switch (in.op) {
      case Op::kLoadInput: {
        const Value* p = input_ptrs_[in.a];
        if (p == nullptr) throw RuntimeError(program.messages[in.b]);
        view[in.dst] = p;
        break;
      }

      case Op::kUnary: {
        const Value& v = *view[in.a];
        Value& dst = storage[in.dst];
        const bool neg = static_cast<UnaryOp>(in.sub) == UnaryOp::kNeg;
        if (v.is_scalar()) {
          const double x = v.as_scalar();
          dst.set_scalar(neg ? -x : (x == 0.0 ? 1.0 : 0.0));
        } else {
          const auto& src = v.as_vector();
          auto& out = dst.mutable_vector();
          out.resize(src.size());
          for (std::size_t i = 0; i < src.size(); ++i) {
            out[i] = neg ? -src[i] : (src[i] == 0.0 ? 1.0 : 0.0);
          }
          counters.cost_units += src.size();
        }
        view[in.dst] = &dst;
        break;
      }

      case Op::kBinary: {
        const Value& l = *view[in.a];
        const Value& r = *view[in.b];
        const auto op = static_cast<BinaryOp>(in.sub);
        Value& dst = storage[in.dst];
        if (op == BinaryOp::kAnd) {
          // Both operands are always EVALUATED (the compiler emitted their
          // code unconditionally, as the tree-walk evaluates both), but
          // the scalar CHECK of the right operand short-circuits, exactly
          // like the tree-walk's `require_scalar(l) != 0 &&
          // require_scalar(r) != 0`.
          double result = 0.0;
          if (require_scalar(l, "'&&' operand") != 0.0) {
            result = require_scalar(r, "'&&' operand") != 0.0 ? 1.0 : 0.0;
          }
          dst.set_scalar(result);
        } else if (op == BinaryOp::kOr) {
          double result = 1.0;
          if (require_scalar(l, "'||' operand") == 0.0) {
            result = require_scalar(r, "'||' operand") != 0.0 ? 1.0 : 0.0;
          }
          dst.set_scalar(result);
        } else if (l.is_scalar() && r.is_scalar()) {
          dst.set_scalar(apply_binary(op, l.as_scalar(), r.as_scalar()));
        } else {
          // The broadcast_binary loop, writing in place (registers are
          // SSA: operands never alias the destination).
          if (l.is_vector() && r.is_vector() && l.size() != r.size()) {
            throw RuntimeError(std::string("operator ") +
                               binary_op_name(op) +
                               ": vector length mismatch (" +
                               std::to_string(l.size()) + " vs " +
                               std::to_string(r.size()) + ")");
          }
          const std::size_t n = l.is_vector() ? l.size() : r.size();
          const double lsc = l.is_scalar() ? l.as_scalar() : 0.0;
          const double rsc = r.is_scalar() ? r.as_scalar() : 0.0;
          const double* lp = l.is_vector() ? l.as_vector().data() : &lsc;
          const double* rp = r.is_vector() ? r.as_vector().data() : &rsc;
          auto& out = dst.mutable_vector();
          out.resize(n);
          broadcast_op(op, lp, l.is_vector() ? 1 : 0, rp,
                       r.is_vector() ? 1 : 0, out.data(), n);
          counters.cost_units += n;
        }
        view[in.dst] = &dst;
        break;
      }

      case Op::kCall: {
        const Builtin& builtin = *builtin_table()[in.a].builtin;
        call_args_.resize(in.c);
        for (std::size_t i = 0; i < in.c; ++i) {
          call_args_[i] = *view[program.operands[in.b + i]];
        }
        Value result = builtin.fn(call_args_);
        counters.cost_units += result.is_vector() ? result.size() : 0;
        Value& dst = storage[in.dst];
        dst = std::move(result);
        view[in.dst] = &dst;
        break;
      }

      case Op::kIndex: {
        const Value& base = *view[in.a];
        const Value& index = *view[in.b];
        if (!base.is_vector()) {
          throw RuntimeError("cannot index a scalar (line " +
                             std::to_string(in.line) + ")");
        }
        const double raw = require_scalar(index, "index");
        if (std::floor(raw) != raw) {
          throw RuntimeError("index must be an integer");
        }
        std::ptrdiff_t i = static_cast<std::ptrdiff_t>(raw);
        const auto n = static_cast<std::ptrdiff_t>(base.size());
        if (i < 0) i += n;
        if (i < 0 || i >= n) {
          throw RuntimeError("index " + std::to_string(raw) +
                             " out of range for vector of length " +
                             std::to_string(n));
        }
        Value& dst = storage[in.dst];
        dst.set_scalar(base.as_vector()[static_cast<std::size_t>(i)]);
        view[in.dst] = &dst;
        break;
      }

      case Op::kVector: {
        if (in.c == 0) throw RuntimeError("empty vector literal");
        Value& dst = storage[in.dst];
        auto& out = dst.mutable_vector();
        out.resize(in.c);
        for (std::size_t i = 0; i < in.c; ++i) {
          // Elements were checked scalar by the preceding kCheckScalar.
          out[i] = view[program.operands[in.b + i]]->as_scalar();
        }
        counters.cost_units += in.c;
        view[in.dst] = &dst;
        break;
      }

      case Op::kCheckScalar: {
        if (!view[in.a]->is_scalar()) {
          throw RuntimeError(program.messages[in.b]);
        }
        break;
      }

      case Op::kBranchIfZero: {
        const double c = require_scalar(*view[in.a], "ternary condition");
        if (c == 0.0) {
          pc = in.b;
          continue;
        }
        break;
      }

      case Op::kJump:
        pc = in.b;
        continue;

      case Op::kCopy:
        view[in.dst] = view[in.a];
        break;

      case Op::kEmit: {
        StateRow& row = matrix_.rows[in.b];
        const Value& v = *view[in.a];
        if (v.is_vector()) {
          const auto& src = v.as_vector();
          row.is_vector = true;
          row.values.assign(src.begin(), src.end());
          if (row.values.empty()) {
            throw RuntimeError("emit '" + row.name + "': empty vector");
          }
        } else {
          row.is_vector = false;
          row.values.assign(1, v.as_scalar());
        }
        if (row.values.size() > 64) {
          throw RuntimeError("emit '" + row.name + "': row longer than 64");
        }
        counters.cost_units += row.values.size();
        break;
      }

      case Op::kThrow:
        throw RuntimeError(program.messages[in.a]);
    }
    if (counters.cost_units > budget) {
      throw BudgetError(
          "instruction budget exceeded: run passed " + std::to_string(budget) +
          " cost units at line " + std::to_string(in.line) +
          " (default " + std::to_string(kDefaultInstructionBudget) +
          "; override with NADA_DSL_BUDGET, see docs/DSL.md)");
    }
    ++pc;
  }
  return matrix_;
}

}  // namespace nada::dsl

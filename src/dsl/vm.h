// Register VM for compiled NadaScript (see bytecode.h).
//
// A Vm owns a reusable register file, a preallocated StateMatrix, and the
// scratch buffers execution needs, so running the same program across an
// episode performs zero heap allocation for scalar operations and reuses
// vector capacity steady-state. Vector results are computed in place
// (registers are SSA — operands never alias destinations) with exactly the
// tree-walk interpreter's broadcast loops and error messages; builtin
// calls dispatch through the flat builtin_table() to the same Builtin::fn
// implementations the tree-walk uses, so builtin semantics are identical
// by construction.
//
// The VM also enforces an execution budget the tree-walk cannot: at
// million-candidate scale the generator's output is untrusted input, and
// NadaScript's only unbounded axis is vector growth (e.g. repeated
// `let x = concat(x, x)` doubles a register per statement). Each run
// accumulates cost units — one per instruction plus the element count of
// every vector produced — and a run that exceeds the budget throws
// BudgetError, which the pre-checks surface as a descriptive failure
// instead of an unbounded stall. The default is generous (real candidate
// programs cost a few hundred units per run); NADA_DSL_BUDGET overrides
// it process-wide.
//
// Threading: a Vm is single-threaded mutable state. Share a
// CompiledProgram across threads freely; give each thread its own Vm.
#pragma once

#include <cstdint>
#include <vector>

#include "dsl/bytecode.h"
#include "dsl/interpreter.h"
#include "dsl/value.h"

namespace nada::dsl {

/// Thrown when one run exceeds the execution budget. Derives RuntimeError,
/// so every existing catch — the pre-checks, the probe trainers — treats
/// it as a candidate failure.
class BudgetError : public RuntimeError {
 public:
  using RuntimeError::RuntimeError;
};

/// Default per-run budget in cost units (instructions + vector elements
/// produced).
inline constexpr std::uint64_t kDefaultInstructionBudget = 1'000'000;

/// The per-run execution budget: NADA_DSL_BUDGET when set (parsed once),
/// else kDefaultInstructionBudget.
[[nodiscard]] std::uint64_t instruction_budget();

class Vm {
 public:
  /// Cumulative execution counters, e.g. for obs `dsl.exec.*` metrics.
  struct Stats {
    std::uint64_t runs = 0;
    std::uint64_t instructions = 0;  ///< instructions executed
    std::uint64_t cost_units = 0;    ///< instructions + vector elements
  };

  /// Executes `program` against `inputs` and returns the VM-owned state
  /// matrix (valid until the next run). Throws RuntimeError exactly where
  /// and with exactly the message the tree-walk interpreter would, and
  /// BudgetError when the run exceeds the budget. `program` must outlive
  /// the returned reference (constant registers point into it).
  const StateMatrix& run(const CompiledProgram& program,
                         const Bindings& inputs);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  /// Per-Vm budget override; 0 restores the process-wide
  /// instruction_budget().
  void set_budget(std::uint64_t cost_units) { budget_override_ = cost_units; }

 private:
  void prepare(const CompiledProgram& program);

  std::uint64_t prepared_id_ = 0;
  std::vector<Value> storage_;           ///< backing store per register
  std::vector<const Value*> view_;       ///< register -> current value
  std::vector<const Value*> input_ptrs_; ///< resolved once per run
  std::vector<Value> call_args_;         ///< builtin argument scratch
  StateMatrix matrix_;
  Stats stats_;
  std::uint64_t budget_override_ = 0;
};

}  // namespace nada::dsl

#include "env/abr_domain.h"

#include <stdexcept>

#include "dsl/state_program.h"
#include "util/strings.h"

namespace nada::env {

dsl::Bindings bindings_from_observation(const Observation& obs) {
  dsl::Bindings b;
  // One entry per input_variables() slot; reserving up front spares the
  // per-step rehash churn (this runs once per env step on every funnel
  // path). Nothing iterates the map, so bucket layout is unobservable.
  b.reserve(input_variables().size());
  b.emplace("throughput_mbps", dsl::Value(obs.throughput_mbps));
  b.emplace("download_time_s", dsl::Value(obs.download_time_s));
  b.emplace("buffer_size_s_history", dsl::Value(obs.buffer_s_history));
  b.emplace("next_chunk_sizes_bytes", dsl::Value(obs.next_chunk_bytes));
  b.emplace("bitrate_levels_kbps", dsl::Value(obs.ladder_kbps));
  b.emplace("buffer_size_s", dsl::Value(obs.buffer_s));
  b.emplace("chunks_remaining", dsl::Value(obs.chunks_remaining));
  b.emplace("total_chunks", dsl::Value(obs.total_chunks));
  b.emplace("last_bitrate_kbps", dsl::Value(obs.last_bitrate_kbps));
  b.emplace("chunk_length_s", dsl::Value(obs.chunk_len_s));
  b.emplace("max_bitrate_kbps",
            dsl::Value(obs.ladder_kbps.empty() ? 0.0 : obs.ladder_kbps.back()));
  return b;
}

const std::vector<dsl::InputVariable>& input_variables() {
  // Order is the ABR domain's canonical slot numbering (see
  // dsl::BindingCatalog::slot_index); the bytecode compiler annotates
  // input references with these positions, so treat the list as
  // append-only.
  static const std::vector<dsl::InputVariable> kVars = {
      {"throughput_mbps", true},
      {"download_time_s", true},
      {"buffer_size_s_history", true},
      {"next_chunk_sizes_bytes", true},
      {"bitrate_levels_kbps", true},
      {"buffer_size_s", false},
      {"chunks_remaining", false},
      {"total_chunks", false},
      {"last_bitrate_kbps", false},
      {"chunk_length_s", false},
      {"max_bitrate_kbps", false},
  };
  return kVars;
}

Observation canned_observation() {
  Observation obs;
  obs.throughput_mbps = {2.1, 1.8, 2.4, 2.2, 1.9, 2.6, 2.3, 2.0};
  obs.download_time_s = {1.5, 1.9, 1.3, 1.4, 1.8, 1.2, 1.5, 1.6};
  obs.buffer_s_history = {8.0, 9.5, 11.0, 12.2, 13.0, 13.5, 14.1, 14.8};
  obs.next_chunk_bytes = {150000, 375000, 600000, 925000, 1425000, 2150000};
  obs.ladder_kbps = {300, 750, 1200, 1850, 2850, 4300};
  obs.buffer_s = 14.8;
  obs.chunks_remaining = 30.0;
  obs.total_chunks = 48.0;
  obs.last_bitrate_kbps = 1200.0;
  obs.chunk_len_s = 4.0;
  return obs;
}

Observation fuzz_observation(util::Rng& rng) {
  Observation obs;
  // Wide but physical ranges: the point of the fuzz check is to surface
  // features that blow past the threshold once realistic magnitudes (bytes,
  // kbps) flow through un-normalized code paths.
  const bool high_bandwidth = rng.bernoulli(0.5);
  const double bw_cap_mbps = high_bandwidth ? 400.0 : 10.0;
  obs.throughput_mbps.resize(kHistoryLen);
  obs.download_time_s.resize(kHistoryLen);
  obs.buffer_s_history.resize(kHistoryLen);
  for (std::size_t i = 0; i < kHistoryLen; ++i) {
    obs.throughput_mbps[i] = rng.uniform(0.05, bw_cap_mbps);
    obs.download_time_s[i] = rng.uniform(0.05, 40.0);
    obs.buffer_s_history[i] = rng.uniform(0.0, 60.0);
  }
  if (high_bandwidth) {
    obs.ladder_kbps = {1850, 2850, 4300, 12000, 24000, 53000};
  } else {
    obs.ladder_kbps = {300, 750, 1200, 1850, 2850, 4300};
  }
  obs.next_chunk_bytes.resize(obs.ladder_kbps.size());
  for (std::size_t i = 0; i < obs.ladder_kbps.size(); ++i) {
    obs.next_chunk_bytes[i] =
        obs.ladder_kbps[i] * 1000.0 / 8.0 * 4.0 * rng.uniform(0.7, 1.3);
  }
  obs.buffer_s = rng.uniform(0.0, 60.0);
  obs.total_chunks = 48.0;
  obs.chunks_remaining = rng.uniform(0.0, obs.total_chunks);
  obs.last_bitrate_kbps =
      obs.ladder_kbps[static_cast<std::size_t>(rng.uniform_int(0, 5))];
  obs.chunk_len_s = 4.0;
  return obs;
}

namespace {

class AbrBindingCatalog final : public dsl::BindingCatalog {
 public:
  [[nodiscard]] const std::string& domain() const override {
    static const std::string kDomain = "abr";
    return kDomain;
  }
  [[nodiscard]] const std::vector<dsl::InputVariable>& variables()
      const override {
    return input_variables();
  }
  [[nodiscard]] dsl::Bindings canned() const override {
    return bindings_from_observation(canned_observation());
  }
  [[nodiscard]] dsl::Bindings fuzz(util::Rng& rng) const override {
    return bindings_from_observation(fuzz_observation(rng));
  }
};

class AbrEpisode final : public Episode {
 public:
  AbrEpisode(const trace::Trace& trace, const video::Video& video,
             Fidelity fidelity, util::Rng& rng)
      : env_(trace, video, fidelity, rng) {}

  dsl::Bindings reset() override {
    return bindings_from_observation(env_.reset());
  }

  DomainStep step(std::size_t action) override {
    StepResult sr = env_.step(action);
    return DomainStep{bindings_from_observation(sr.observation), sr.reward,
                      sr.done};
  }

  [[nodiscard]] bool done() const override { return env_.done(); }

 private:
  AbrEnv env_;
};

}  // namespace

const dsl::BindingCatalog& abr_catalog() {
  static const AbrBindingCatalog kCatalog;
  return kCatalog;
}

AbrDomain::AbrDomain(const trace::Dataset& dataset, const video::Video& video)
    : dataset_(&dataset), video_(&video) {
  if (dataset_->train.empty() || dataset_->test.empty()) {
    throw std::invalid_argument("AbrDomain: dataset has an empty split");
  }
}

const std::string& AbrDomain::name() const {
  static const std::string kName = "abr";
  return kName;
}

const dsl::BindingCatalog& AbrDomain::catalog() const { return abr_catalog(); }

std::size_t AbrDomain::num_actions() const {
  return video_->ladder().levels();
}

std::size_t AbrDomain::episode_length() const {
  return video_->num_chunks();
}

double AbrDomain::reward_scale_hint() const {
  // QoE_lin's magnitude tracks the ladder's top bitrate in Mbps (the 53
  // Mbps YouTube ladder scores ~12x Pensieve's).
  return video_->ladder().max_kbps() / 1000.0;
}

const std::string& AbrDomain::baseline_state_source() const {
  return dsl::pensieve_state_source();
}

std::unique_ptr<Episode> AbrDomain::start_train_episode(
    Fidelity fidelity, util::Rng& rng) const {
  const trace::Trace& tr = rng.choice(dataset_->train);
  return std::make_unique<AbrEpisode>(tr, *video_, fidelity, rng);
}

std::size_t AbrDomain::num_eval_units() const { return dataset_->test.size(); }

std::unique_ptr<Episode> AbrDomain::start_eval_episode(
    std::size_t unit, Fidelity fidelity, util::Rng& rng) const {
  return std::make_unique<AbrEpisode>(dataset_->test.at(unit), *video_,
                                      fidelity, rng);
}

std::string AbrDomain::scope_env() const {
  // The pre-domain pipeline used the bare trace-environment name; keeping
  // it means every journal written before this refactor stays in scope.
  return trace::environment_name(dataset_->spec.env);
}

void AbrDomain::append_scope_spec(std::ostream& out) const {
  // Results are only reusable against the same traces and video: two
  // datasets of the same environment (different scale or build seed) must
  // not alias in the store.
  const auto fold = [](std::uint64_t h, std::string_view text) {
    return util::mix64(h ^ util::fnv1a64(text));
  };
  out << ";train_traces=" << trace::traces_digest(dataset_->train)
      << ";test_traces=" << trace::traces_digest(dataset_->test);
  std::uint64_t vh = fold(video_->num_chunks(), video_->name());
  vh = fold(vh, util::shortest_double(video_->chunk_len_s()));
  for (double kbps : video_->ladder().all_kbps()) {
    vh = fold(vh, util::shortest_double(kbps));
  }
  for (std::size_t c = 0; c < video_->num_chunks(); ++c) {
    for (double bytes : video_->chunk_bytes_all_levels(c)) {
      vh = fold(vh, util::shortest_double(bytes));
    }
  }
  out << ";video=" << vh;
}

}  // namespace nada::env

// The ABR streaming stack as a TaskDomain — the funnel's first domain.
//
// This module owns the ABR side of the domain abstraction: the mapping
// from env::Observation to DSL bindings (the "semantically meaningful
// names" the paper's prompting strategy introduces, §2.1), the ABR binding
// catalog (canned + fuzz observations for the pre-checks), and AbrDomain,
// which adapts (trace::Dataset, video::Video) episodes to the generic
// funnel. The bindings, canned values, and fuzz draw sequence are the
// exact ones the pre-domain code used, so fingerprints, check verdicts,
// and reward curves are unchanged by the abstraction.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dsl/binding_catalog.h"
#include "env/abr_env.h"
#include "env/domain.h"
#include "trace/generator.h"
#include "util/rng.h"
#include "video/video.h"

namespace nada::env {

/// Converts an observation into the interpreter's input bindings.
[[nodiscard]] dsl::Bindings bindings_from_observation(const Observation& obs);

/// Names of all ABR observation variables exposed to programs.
[[nodiscard]] const std::vector<dsl::InputVariable>& input_variables();

/// A synthetic observation with plausible mid-stream values; used as the
/// canned input for trial runs (the compilation check).
[[nodiscard]] Observation canned_observation();

/// A randomized observation for the normalization fuzz check. Values are
/// drawn from wide but physically meaningful ranges (throughput up to
/// hundreds of Mbps, chunk sizes up to tens of MB).
[[nodiscard]] Observation fuzz_observation(util::Rng& rng);

/// The ABR binding catalog (vocabulary + canned/fuzz inputs, as bindings).
[[nodiscard]] const dsl::BindingCatalog& abr_catalog();

/// One video streamed over one trace dataset, funnel-facing. Episodes are
/// AbrEnv runs: training episodes draw a uniform train-trace choice from
/// the caller's RNG, eval unit i is test trace i, and both draw their
/// start offset in reset() — the same draws, in the same order, as the
/// pre-domain Trainer code path.
class AbrDomain final : public TaskDomain {
 public:
  /// Throws std::invalid_argument when either dataset split is empty.
  AbrDomain(const trace::Dataset& dataset, const video::Video& video);

  [[nodiscard]] const std::string& name() const override;
  [[nodiscard]] const dsl::BindingCatalog& catalog() const override;
  [[nodiscard]] std::size_t num_actions() const override;
  [[nodiscard]] std::size_t episode_length() const override;
  [[nodiscard]] double reward_scale_hint() const override;
  [[nodiscard]] const std::string& baseline_state_source() const override;
  [[nodiscard]] std::unique_ptr<Episode> start_train_episode(
      Fidelity fidelity, util::Rng& rng) const override;
  [[nodiscard]] std::size_t num_eval_units() const override;
  [[nodiscard]] std::unique_ptr<Episode> start_eval_episode(
      std::size_t unit, Fidelity fidelity, util::Rng& rng) const override;
  [[nodiscard]] std::string scope_env() const override;
  void append_scope_spec(std::ostream& out) const override;

  [[nodiscard]] const trace::Dataset& dataset() const { return *dataset_; }
  [[nodiscard]] const video::Video& video() const { return *video_; }

 private:
  const trace::Dataset* dataset_;
  const video::Video* video_;
};

}  // namespace nada::env

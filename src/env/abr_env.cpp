#include "env/abr_env.h"

#include <algorithm>
#include <stdexcept>

namespace nada::env {

AbrEnv::AbrEnv(const trace::Trace& trace, const video::Video& video,
               Fidelity fidelity, util::Rng& rng)
    : trace_(&trace),
      video_(&video),
      fidelity_(fidelity),
      rng_(&rng),
      qoe_(video.ladder()) {
  reset();
}

Observation AbrEnv::reset() {
  // Random offset so different episodes see different trace regions; leave
  // at least a second of slack inside the trace.
  const double offset =
      rng_->uniform(0.0, std::max(trace_->duration_s() - 1.0, 0.0));
  if (fidelity_ == Fidelity::kSimulation) {
    session_ = std::make_unique<StreamingSession>(*trace_, *video_,
                                                  SimConfig{}, offset);
  } else {
    session_ =
        std::make_unique<EmuSession>(*trace_, *video_, *rng_, EmuConfig{},
                                     offset);
  }
  throughput_hist_.assign(kHistoryLen, 0.0);
  download_hist_.assign(kHistoryLen, 0.0);
  buffer_hist_.assign(kHistoryLen, 0.0);
  last_level_ = 0;  // Pensieve starts at the lowest quality
  return make_observation();
}

void AbrEnv::push_history(std::vector<double>& hist, double value) {
  hist.erase(hist.begin());
  hist.push_back(value);
}

StepResult AbrEnv::step(std::size_t level) {
  if (done()) throw std::logic_error("AbrEnv::step after episode end");
  const DownloadResult dl = session_->download_chunk(level);

  push_history(throughput_hist_, dl.throughput_mbps);
  push_history(download_hist_, dl.download_time_s);
  push_history(buffer_hist_, dl.buffer_s);

  StepResult result;
  result.reward = qoe_.chunk_reward(level, last_level_, dl.rebuffer_s);
  result.rebuffer_s = dl.rebuffer_s;
  result.download_time_s = dl.download_time_s;
  result.done = dl.video_finished;
  last_level_ = level;
  result.observation = make_observation();
  return result;
}

bool AbrEnv::done() const { return session_->finished(); }

Observation AbrEnv::make_observation() const {
  Observation obs;
  obs.throughput_mbps = throughput_hist_;
  obs.download_time_s = download_hist_;
  obs.buffer_s_history = buffer_hist_;
  obs.buffer_s = session_->buffer_s();
  obs.chunks_remaining = static_cast<double>(session_->chunks_remaining());
  obs.total_chunks = static_cast<double>(video_->num_chunks());
  obs.last_bitrate_kbps = video_->ladder().kbps(last_level_);
  obs.chunk_len_s = video_->chunk_len_s();
  const auto ladder = video_->ladder().all_kbps();
  obs.ladder_kbps.assign(ladder.begin(), ladder.end());
  if (!session_->finished()) {
    obs.next_chunk_bytes =
        video_->chunk_bytes_all_levels(session_->next_chunk_index());
  } else {
    obs.next_chunk_bytes.assign(video_->ladder().levels(), 0.0);
  }
  return obs;
}

}  // namespace nada::env

#include "env/abr_env.h"

#include <algorithm>
#include <stdexcept>

namespace nada::env {

AbrEnv::AbrEnv(const trace::Trace& trace, const video::Video& video,
               Fidelity fidelity, util::Rng& rng)
    : trace_(&trace),
      video_(&video),
      fidelity_(fidelity),
      rng_(&rng),
      qoe_(video.ladder()) {}

Observation AbrEnv::reset() {
  // Random offset so different episodes see different trace regions; leave
  // at least a second of slack inside the trace.
  const double offset =
      rng_->uniform(0.0, std::max(trace_->duration_s() - 1.0, 0.0));
  if (fidelity_ == Fidelity::kSimulation) {
    session_ = std::make_unique<StreamingSession>(*trace_, *video_,
                                                  SimConfig{}, offset);
  } else {
    session_ =
        std::make_unique<EmuSession>(*trace_, *video_, *rng_, EmuConfig{},
                                     offset);
  }
  throughput_hist_.assign(kHistoryLen, 0.0);
  download_hist_.assign(kHistoryLen, 0.0);
  buffer_hist_.assign(kHistoryLen, 0.0);
  hist_head_ = 0;
  last_level_ = 0;  // Pensieve starts at the lowest quality
  return make_observation();
}

void AbrEnv::push_history(std::vector<double>& hist, double value) {
  // The slot at hist_head_ holds the oldest sample; overwrite it in place.
  // hist_head_ itself advances once per step, in step().
  hist[hist_head_] = value;
}

std::vector<double> AbrEnv::history_in_order(
    const std::vector<double>& hist) const {
  std::vector<double> ordered(kHistoryLen);
  for (std::size_t i = 0; i < kHistoryLen; ++i) {
    ordered[i] = hist[(hist_head_ + i) % kHistoryLen];
  }
  return ordered;
}

void AbrEnv::require_session() const {
  if (session_ == nullptr) {
    throw std::logic_error("AbrEnv: reset() must be called before use");
  }
}

StepResult AbrEnv::step(std::size_t level) {
  require_session();
  if (done()) throw std::logic_error("AbrEnv::step after episode end");
  const DownloadResult dl = session_->download_chunk(level);

  push_history(throughput_hist_, dl.throughput_mbps);
  push_history(download_hist_, dl.download_time_s);
  push_history(buffer_hist_, dl.buffer_s);
  hist_head_ = (hist_head_ + 1) % kHistoryLen;

  StepResult result;
  result.reward = qoe_.chunk_reward(level, last_level_, dl.rebuffer_s);
  result.truncated = dl.truncated;
  if (dl.truncated) {
    // The transfer died at the stall deadline: whatever the QoE terms say,
    // a dead download must never score positively.
    result.reward = std::min(result.reward, 0.0);
  }
  result.rebuffer_s = dl.rebuffer_s;
  result.download_time_s = dl.download_time_s;
  result.done = dl.video_finished;
  last_level_ = level;
  result.observation = make_observation();
  return result;
}

bool AbrEnv::done() const {
  require_session();
  return session_->finished();
}

Observation AbrEnv::make_observation() const {
  Observation obs;
  obs.throughput_mbps = history_in_order(throughput_hist_);
  obs.download_time_s = history_in_order(download_hist_);
  obs.buffer_s_history = history_in_order(buffer_hist_);
  obs.buffer_s = session_->buffer_s();
  obs.chunks_remaining = static_cast<double>(session_->chunks_remaining());
  obs.total_chunks = static_cast<double>(video_->num_chunks());
  obs.last_bitrate_kbps = video_->ladder().kbps(last_level_);
  obs.chunk_len_s = video_->chunk_len_s();
  const auto ladder = video_->ladder().all_kbps();
  obs.ladder_kbps.assign(ladder.begin(), ladder.end());
  if (!session_->finished()) {
    obs.next_chunk_bytes =
        video_->chunk_bytes_all_levels(session_->next_chunk_index());
  } else {
    obs.next_chunk_bytes.assign(video_->ladder().levels(), 0.0);
  }
  return obs;
}

}  // namespace nada::env

// RL-facing ABR environment.
//
// AbrEnv runs a StreamingSession (or EmuSession) and exposes the *raw*
// observation quantities Pensieve's state function consumes: throughput and
// download-time histories, next-chunk sizes per bitrate, buffer level,
// chunks remaining, and the last selected bitrate. It also tracks a buffer
// history — unused by the original design, but exactly the signal the
// paper reports LLM-generated states exploiting (§4).
//
// The mapping from Observation to the network's input tensor is the *state
// function* — the component NADA searches over — and lives in src/dsl.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "env/domain.h"
#include "env/session.h"
#include "trace/trace.h"
#include "util/rng.h"
#include "video/video.h"

namespace nada::env {

/// Number of past samples kept for every history (Pensieve's S_LEN).
inline constexpr std::size_t kHistoryLen = 8;

/// Raw inputs available to a state function. Histories are oldest-first and
/// zero-padded until enough chunks have been downloaded.
struct Observation {
  std::vector<double> throughput_mbps;   ///< last kHistoryLen measurements
  std::vector<double> download_time_s;   ///< last kHistoryLen download times
  std::vector<double> buffer_s_history;  ///< last kHistoryLen buffer levels
  std::vector<double> next_chunk_bytes;  ///< next chunk's size per level
  double buffer_s = 0.0;                 ///< current playback buffer
  double chunks_remaining = 0.0;
  double total_chunks = 0.0;
  double last_bitrate_kbps = 0.0;
  double chunk_len_s = 4.0;
  std::vector<double> ladder_kbps;       ///< the bitrate ladder
};

/// Step outcome.
struct StepResult {
  Observation observation;
  double reward = 0.0;       ///< QoE_lin for the downloaded chunk
  double rebuffer_s = 0.0;
  double download_time_s = 0.0;
  /// The chunk's transfer hit the session's stall deadline before the last
  /// byte arrived; the reward is capped at zero and the reported throughput
  /// reflects only the bytes actually delivered.
  bool truncated = false;
  bool done = false;
};

// Fidelity (kSimulation: paper Tables 3/5, Figures 3/4; kEmulation: paper
// Table 4) lives in env/domain.h so every domain shares the enum.

/// One episode = one video streamed over one trace. The session starts at a
/// random offset into the trace, as in Pensieve's training setup.
///
/// Construction consumes no randomness: the RNG is only drawn when reset()
/// starts an episode, so the caller's seed stream is a pure function of the
/// episodes it actually runs — the property the batched/serial probe
/// equivalence guarantee rests on. reset() must be called before step().
class AbrEnv {
 public:
  AbrEnv(const trace::Trace& trace, const video::Video& video,
         Fidelity fidelity, util::Rng& rng);

  /// Starts a fresh episode (new random trace offset); returns the initial
  /// observation. The first chunk has not been downloaded yet, so histories
  /// are zeros and last_bitrate is the lowest level, as in Pensieve.
  Observation reset();

  /// Downloads the next chunk at bitrate index `level`.
  StepResult step(std::size_t level);

  [[nodiscard]] bool done() const;
  [[nodiscard]] std::size_t num_levels() const {
    return video_->ladder().levels();
  }

 private:
  [[nodiscard]] Observation make_observation() const;
  void push_history(std::vector<double>& hist, double value);
  /// Unrolls a ring-buffer history into an oldest-first vector.
  [[nodiscard]] std::vector<double> history_in_order(
      const std::vector<double>& hist) const;
  void require_session() const;

  const trace::Trace* trace_;
  const video::Video* video_;
  Fidelity fidelity_;
  util::Rng* rng_;
  video::QoELin qoe_;
  std::unique_ptr<StreamingSession> session_;
  // Histories are fixed-size ring buffers indexed by head_: the oldest
  // sample lives at head_, so a push is O(1) instead of an O(n)
  // erase-from-front. They are materialized oldest-first only when an
  // observation is built.
  std::vector<double> throughput_hist_;
  std::vector<double> download_hist_;
  std::vector<double> buffer_hist_;
  std::size_t hist_head_ = 0;
  std::size_t last_level_ = 0;
};

}  // namespace nada::env

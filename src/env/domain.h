// TaskDomain: the environment abstraction the search funnel runs over.
//
// The funnel (generate -> pre-check -> batched probe -> early-stop -> full
// train -> rank) is domain-agnostic: rl::Trainer, rl::BatchProbeTrainer,
// and core::Pipeline only need episodes that step under a discrete action
// space, observations expressed as DSL bindings, and a handful of scalar
// hints. A TaskDomain packages those for one task — ABR streaming
// (env::AbrDomain) and congestion control (cc::CcDomain) today; a third
// domain is one subclass plus a binding catalog and a generator state
// space away.
//
// Determinism contract (the candidate store and the batched/serial probe
// equivalence both rest on it):
//   * constructing an Episode draws from `rng` exactly what the domain's
//     pre-abstraction code drew (ABR: one uniform trace choice for
//     training episodes, nothing for eval episodes),
//   * Episode::reset() draws the episode's stochastic start,
//   * step() draws only what the underlying simulator draws.
// Callers own the Rng; episodes keep a reference to it, so the Rng must
// outlive the episode.
#pragma once

#include <cstddef>
#include <memory>
#include <ostream>
#include <string>

#include "dsl/binding_catalog.h"
#include "util/rng.h"

namespace nada::env {

/// Simulator fidelity. Domains without an emulation model treat both
/// values identically (see start_*_episode implementations).
enum class Fidelity {
  kSimulation,  ///< chunk-level / interval-level simulator
  kEmulation,   ///< ABR: slow-start + HTTP overhead model (paper Table 4)
};

/// One step's outcome, observation already lowered to DSL bindings.
struct DomainStep {
  dsl::Bindings observation;
  double reward = 0.0;
  bool done = false;
};

/// One running episode. reset() must be called before step().
class Episode {
 public:
  virtual ~Episode() = default;

  /// Starts the episode (drawing its stochastic start from the Rng the
  /// episode was created with) and returns the initial observation.
  [[nodiscard]] virtual dsl::Bindings reset() = 0;

  /// Applies a discrete action and advances one step.
  [[nodiscard]] virtual DomainStep step(std::size_t action) = 0;

  [[nodiscard]] virtual bool done() const = 0;
};

class TaskDomain {
 public:
  virtual ~TaskDomain() = default;

  /// Short domain token ("abr", "cc") naming the binding vocabulary.
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// The vocabulary programs for this domain are generated from and
  /// checked against.
  [[nodiscard]] virtual const dsl::BindingCatalog& catalog() const = 0;

  /// Discrete action count (ABR: ladder levels; CC: rate multipliers).
  [[nodiscard]] virtual std::size_t num_actions() const = 0;

  /// Steps per episode. Both current domains run fixed-length episodes;
  /// the batched probe trainer sizes its capture caches from this and
  /// enforces it after each rollout.
  [[nodiscard]] virtual std::size_t episode_length() const = 0;

  /// Resolves rl::TrainConfig::reward_scale == 0 ("auto"): a deterministic
  /// estimate of the per-step reward magnitude so policy/value gradients
  /// stay comparable across domains and configurations.
  [[nodiscard]] virtual double reward_scale_hint() const = 0;

  /// The domain's original hand-designed state function — the baseline the
  /// funnel trains for comparison (ABR: Pensieve's state).
  [[nodiscard]] virtual const std::string& baseline_state_source() const = 0;

  /// Starts a training episode, drawing the episode's environment choice
  /// (ABR: which train trace) from `rng`. `rng` must outlive the episode.
  [[nodiscard]] virtual std::unique_ptr<Episode> start_train_episode(
      Fidelity fidelity, util::Rng& rng) const = 0;

  /// Size of the held-out evaluation split (ABR: test traces).
  [[nodiscard]] virtual std::size_t num_eval_units() const = 0;

  /// Starts the eval episode for one unit of the held-out split. Draws
  /// nothing from `rng` at construction (reset() draws the start offset,
  /// keeping checkpoint evaluations comparable under a fixed eval seed).
  [[nodiscard]] virtual std::unique_ptr<Episode> start_eval_episode(
      std::size_t unit, Fidelity fidelity, util::Rng& rng) const = 0;

  /// Store-scope environment token. Distinct per domain so ABR and CC
  /// journals coexist in one store directory without aliasing ("starlink"
  /// vs "cc-starlink").
  [[nodiscard]] virtual std::string scope_env() const = 0;

  /// Appends the identity of the domain's data (traces, video, simulator
  /// parameters) to the pipeline's config-digest spec: two domains whose
  /// per-candidate results could differ must never digest equal.
  virtual void append_scope_spec(std::ostream& out) const = 0;
};

}  // namespace nada::env

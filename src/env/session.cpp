#include "env/session.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nada::env {
namespace {

struct IntegrateResult {
  double elapsed_s = 0.0;
  double delivered_wire_bytes = 0.0;
  bool completed = true;
};

// Integrates `wire_bytes` over the trace's piecewise-constant bandwidth
// starting at absolute time `start_s`. Gives up at the stall deadline and
// reports how many bytes made it, rather than pretending completion.
IntegrateResult integrate_transfer(const trace::Trace& tr, double wire_bytes,
                                   double start_s) {
  if (wire_bytes <= 0.0) return {};
  const double duration = tr.duration_s();
  if (duration <= 0.0) {
    throw std::invalid_argument("integrate_transfer: degenerate trace");
  }
  double remaining = wire_bytes;
  double t = start_s;
  const double deadline = start_s + StreamingSession::kStallDeadlineS;
  while (remaining > 0.0 && t < deadline) {
    const std::size_t idx = tr.index_at(t);
    const auto& points = tr.points();
    // Segments are clamped at the deadline so a single long trace segment
    // cannot deliver bytes (or declare completion) past it.
    const double seg_end_abs = [&] {
      double wrapped = std::fmod(t, duration);
      if (wrapped < 0.0) wrapped += duration;
      const double seg_end_wrapped = (idx + 1 < points.size())
                                         ? points[idx + 1].time_s
                                         : duration;
      return std::min(t + (seg_end_wrapped - wrapped), deadline);
    }();
    const double bytes_per_s =
        std::max(points[idx].bandwidth_kbps, 1.0) * 1000.0 / 8.0;
    const double seg_time = std::max(seg_end_abs - t, 1e-9);
    const double seg_capacity = bytes_per_s * seg_time;
    if (seg_capacity >= remaining) {
      t += remaining / bytes_per_s;
      remaining = 0.0;
    } else {
      remaining -= seg_capacity;
      t = seg_end_abs;
    }
  }
  IntegrateResult result;
  result.elapsed_s = t - start_s;
  result.delivered_wire_bytes = wire_bytes - std::max(remaining, 0.0);
  result.completed = remaining <= 0.0;
  return result;
}

}  // namespace

StreamingSession::StreamingSession(const trace::Trace& trace,
                                   const video::Video& video, SimConfig config,
                                   double start_offset_s)
    : trace_(&trace),
      video_(&video),
      config_(config),
      clock_s_(start_offset_s) {
  if (config_.packet_payload_ratio <= 0.0 ||
      config_.packet_payload_ratio > 1.0) {
    throw std::invalid_argument("SimConfig: bad packet_payload_ratio");
  }
}

std::size_t StreamingSession::chunks_remaining() const {
  return video_->num_chunks() - next_chunk_;
}

DownloadResult StreamingSession::download_chunk(std::size_t level) {
  if (finished()) {
    throw std::logic_error("download_chunk: video already finished");
  }
  if (level >= video_->ladder().levels()) {
    throw std::out_of_range("download_chunk: bitrate level out of range");
  }
  DownloadResult result;
  result.chunk_bytes = video_->chunk_bytes(next_chunk_, level);

  const TransferResult tr = transfer(result.chunk_bytes, clock_s_);
  const double dt = tr.elapsed_s;
  clock_s_ += dt;
  result.download_time_s = dt;
  result.truncated = !tr.completed;
  result.delivered_bytes = tr.delivered_bytes;
  // Throughput reflects what actually arrived: a transfer that hit the
  // stall deadline must not report the full chunk as having crossed the
  // link in `dt` seconds.
  result.throughput_mbps =
      result.delivered_bytes * 8.0 / 1e6 / std::max(dt, 1e-9);

  // Buffer drains while downloading; stall if it empties.
  result.rebuffer_s = std::max(dt - buffer_s_, 0.0);
  buffer_s_ = std::max(buffer_s_ - dt, 0.0);
  buffer_s_ += video_->chunk_len_s();

  // Client pauses requests while the buffer is above the cap (Pensieve
  // drains in fixed quanta while wall-clock time advances).
  if (buffer_s_ > config_.buffer_cap_s) {
    const double excess = buffer_s_ - config_.buffer_cap_s;
    const double quanta =
        std::ceil(excess / config_.drain_quantum_s) * config_.drain_quantum_s;
    result.sleep_s = quanta;
    buffer_s_ -= quanta;
    clock_s_ += quanta;
  }

  result.buffer_s = buffer_s_;
  ++next_chunk_;
  result.video_finished = finished();
  return result;
}

StreamingSession::TransferResult StreamingSession::transfer(double bytes,
                                                            double start_s) {
  const double wire_bytes = bytes / config_.packet_payload_ratio;
  const IntegrateResult integrated =
      integrate_transfer(*trace_, wire_bytes, start_s);
  TransferResult result;
  result.elapsed_s = config_.link_rtt_s + integrated.elapsed_s;
  result.completed = integrated.completed;
  // Report exact chunk bytes on completion so the payload round-trip through
  // the wire ratio cannot drift by a rounding error.
  result.delivered_bytes =
      integrated.completed
          ? bytes
          : integrated.delivered_wire_bytes * config_.packet_payload_ratio;
  return result;
}

EmuSession::EmuSession(const trace::Trace& trace, const video::Video& video,
                       util::Rng& rng, EmuConfig config, double start_offset_s)
    : StreamingSession(trace, video,
                       SimConfig{config.base_rtt_s, 1.0, config.buffer_cap_s,
                                 config.drain_quantum_s},
                       start_offset_s),
      emu_config_(config),
      rng_(&rng) {}

StreamingSession::TransferResult EmuSession::transfer(double bytes,
                                                      double start_s) {
  // Per-request overhead: request RTT with jitter plus server think time.
  const double rtt =
      emu_config_.base_rtt_s + rng_->uniform(0.0, emu_config_.rtt_jitter_s);
  double t = start_s + rtt + emu_config_.server_delay_s;

  // TCP slow start: the connection's allowed rate doubles every RTT from an
  // initial window until it reaches the trace's available bandwidth. We
  // integrate in small steps, applying min(cwnd rate, link rate).
  const double total_wire_bytes = bytes / emu_config_.header_overhead_ratio;
  double wire_bytes = total_wire_bytes;
  double window_bytes = emu_config_.slow_start_init_bytes;
  const double step = std::max(rtt / 4.0, 0.005);
  const double deadline = t + kStallDeadlineS;
  while (wire_bytes > 0.0 && t < deadline) {
    const double link_bytes_per_s =
        std::max(trace_->bandwidth_kbps_at(t), 1.0) * 1000.0 / 8.0;
    const double cwnd_bytes_per_s = window_bytes / rtt;
    const double rate = std::min(link_bytes_per_s, cwnd_bytes_per_s);
    const double sent = rate * step;
    if (sent >= wire_bytes) {
      t += wire_bytes / rate;
      wire_bytes = 0.0;
    } else {
      wire_bytes -= sent;
      t += step;
      // Exponential growth until the congestion window stops being the
      // bottleneck (we do not model loss-based back-off: mahimahi's default
      // drop-tail queue rarely forces it at these chunk sizes).
      if (cwnd_bytes_per_s < link_bytes_per_s) {
        window_bytes *= std::pow(2.0, step / rtt);
      }
    }
  }
  TransferResult result;
  result.elapsed_s = t - start_s;
  result.completed = wire_bytes <= 0.0;
  result.delivered_bytes =
      result.completed ? bytes
                       : (total_wire_bytes - wire_bytes) *
                             emu_config_.header_overhead_ratio;
  return result;
}

}  // namespace nada::env

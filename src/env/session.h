// Chunk-level streaming session mechanics.
//
// StreamingSession reproduces Pensieve's trace-driven simulator: chunk
// download time is the integral of the trace bandwidth, plus a link RTT per
// request; the playback buffer drains during downloads, rebuffers when it
// hits zero, and the client sleeps when the buffer exceeds a cap.
//
// EmuSession is the "dash.js over Mahimahi" stand-in for Table 4: the same
// trace drives a higher-fidelity transfer model with TCP slow-start ramping,
// an HTTP request/response overhead per chunk, and RTT jitter. Absolute
// scores shift (small chunks pay proportionally more overhead, exactly the
// effect that separates the paper's Table 4 from Table 3) while design
// orderings are preserved.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/trace.h"
#include "util/rng.h"
#include "video/video.h"

namespace nada::env {

/// Result of downloading one chunk.
struct DownloadResult {
  double download_time_s = 0.0;  ///< request start to last byte
  double rebuffer_s = 0.0;       ///< stall incurred while downloading
  double sleep_s = 0.0;          ///< idle wait because the buffer was full
  double buffer_s = 0.0;         ///< buffer level after appending the chunk
  double chunk_bytes = 0.0;      ///< nominal encoded size of the chunk
  double delivered_bytes = 0.0;  ///< payload bytes that actually arrived
  double throughput_mbps = 0.0;  ///< delivered bytes over download time
  /// True when the transfer hit its stall deadline before the last byte:
  /// `delivered_bytes < chunk_bytes` and the download is effectively dead
  /// air. Callers must not treat the chunk as cleanly fetched.
  bool truncated = false;
  bool video_finished = false;   ///< this was the last chunk
};

struct SimConfig {
  double link_rtt_s = 0.08;        ///< per-request latency
  double packet_payload_ratio = 0.95;  ///< header overhead on the wire
  double buffer_cap_s = 60.0;      ///< client pauses above this level
  double drain_quantum_s = 0.5;    ///< sleep granularity when buffer full
};

/// Pensieve-style simulator session over one trace and one video.
class StreamingSession {
 public:
  StreamingSession(const trace::Trace& trace, const video::Video& video,
                   SimConfig config = {}, double start_offset_s = 0.0);

  /// Downloads the next chunk at `level`; advances simulated time.
  DownloadResult download_chunk(std::size_t level);

  [[nodiscard]] std::size_t next_chunk_index() const { return next_chunk_; }
  [[nodiscard]] std::size_t chunks_remaining() const;
  [[nodiscard]] double buffer_s() const { return buffer_s_; }
  [[nodiscard]] double clock_s() const { return clock_s_; }
  [[nodiscard]] bool finished() const {
    return next_chunk_ >= video_->num_chunks();
  }
  [[nodiscard]] const video::Video& video() const { return *video_; }

  virtual ~StreamingSession() = default;

  /// Transfers give up after this much wall-clock time; a chunk that has
  /// not finished by then is reported truncated rather than complete.
  static constexpr double kStallDeadlineS = 3600.0;

 protected:
  /// Outcome of moving payload bytes across the link.
  struct TransferResult {
    double elapsed_s = 0.0;        ///< request start to last byte (or deadline)
    double delivered_bytes = 0.0;  ///< payload bytes that made it across
    bool completed = true;         ///< false when the stall deadline hit
  };

  /// Moves `bytes` across the link starting at `start_s`. Overridden by
  /// EmuSession with the higher-fidelity transfer model. Implementations
  /// stop at kStallDeadlineS and report how much actually arrived instead
  /// of pretending the transfer finished.
  [[nodiscard]] virtual TransferResult transfer(double bytes, double start_s);

  const trace::Trace* trace_;
  const video::Video* video_;
  SimConfig config_;

 private:
  std::size_t next_chunk_ = 0;
  double buffer_s_ = 0.0;
  double clock_s_ = 0.0;
};

struct EmuConfig {
  double base_rtt_s = 0.08;
  double rtt_jitter_s = 0.02;      ///< uniform jitter added per request
  double server_delay_s = 0.05;    ///< HTTP request processing time
  double slow_start_init_bytes = 14600.0;  ///< IW10 (10 x 1460B)
  double header_overhead_ratio = 0.92;     ///< TCP/IP+TLS framing efficiency
  double buffer_cap_s = 60.0;
  double drain_quantum_s = 0.5;
};

/// Emulation-fidelity session. Each chunk is fetched over a fresh
/// HTTP request whose effective rate ramps with TCP slow start before
/// tracking the trace bandwidth; per-request overheads and RTT jitter give
/// it systematically different absolute scores than StreamingSession.
class EmuSession : public StreamingSession {
 public:
  EmuSession(const trace::Trace& trace, const video::Video& video,
             util::Rng& rng, EmuConfig config = {},
             double start_offset_s = 0.0);

 protected:
  [[nodiscard]] TransferResult transfer(double bytes, double start_s) override;

 private:
  EmuConfig emu_config_;
  util::Rng* rng_;
};

}  // namespace nada::env

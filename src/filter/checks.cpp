#include "filter/checks.h"

#include <cmath>

#include "dsl/vm.h"
#include "util/rng.h"

namespace nada::filter {

CheckResult compilation_check(const std::string& source,
                              const dsl::BindingCatalog& catalog,
                              std::optional<dsl::StateProgram>* out) {
  try {
    dsl::StateProgram program =
        dsl::StateProgram::compile(source, &catalog);

    // Trial run (the paper's execution check).
    const dsl::StateMatrix matrix = program.run(catalog.canned());
    if (!matrix.all_finite()) {
      return CheckResult::fail("trial run produced non-finite values");
    }

    // A state function must produce a stable shape: the network is built
    // once for a fixed signature, so a program whose row lengths change
    // between observations cannot be trained. Compare against a second,
    // different observation.
    util::Rng rng(0x70b1a5ULL);
    const dsl::StateMatrix second = program.run(catalog.fuzz(rng));
    if (matrix.row_lengths() != second.row_lengths()) {
      return CheckResult::fail("state shape varies across observations");
    }

    // The trial run just computed the network input signature; cache it on
    // the program so agent construction (rl::derive_signature) never has
    // to execute the program again.
    program.prime_signature(catalog, matrix.row_lengths());

    if (out != nullptr) *out = std::move(program);
    return CheckResult::ok();
  } catch (const dsl::BudgetError& e) {
    CheckResult result = CheckResult::fail(e.what());
    result.exceeded_budget = dsl::instruction_budget();
    return result;
  } catch (const std::exception& e) {
    return CheckResult::fail(e.what());
  }
}

CheckResult normalization_check(const dsl::StateProgram& program,
                                const dsl::BindingCatalog& catalog,
                                double threshold, std::size_t runs,
                                std::uint64_t seed) {
  if (threshold <= 0.0) {
    return CheckResult::fail("invalid threshold");
  }
  util::Rng rng(seed);
  try {
    for (std::size_t i = 0; i < runs; ++i) {
      const dsl::StateMatrix matrix = program.run(catalog.fuzz(rng));
      if (!matrix.all_finite()) {
        return CheckResult::fail("non-finite feature under fuzzing");
      }
      for (const auto& row : matrix.rows) {
        for (double v : row.values) {
          if (std::abs(v) > threshold) {
            return CheckResult::fail(
                "feature '" + row.name + "' reached " + std::to_string(v) +
                " (threshold " + std::to_string(threshold) + ")");
          }
        }
      }
    }
  } catch (const dsl::BudgetError& e) {
    CheckResult result =
        CheckResult::fail(std::string("fuzz run raised: ") + e.what());
    result.exceeded_budget = dsl::instruction_budget();
    return result;
  } catch (const std::exception& e) {
    // A runtime error on fuzz inputs means the program is fragile; the
    // paper's pipeline would hit the same exception during training, so
    // reject it here.
    return CheckResult::fail(std::string("fuzz run raised: ") + e.what());
  }
  return CheckResult::ok();
}

CheckResult arch_compilation_check(const nn::ArchSpec& spec,
                                   const nn::StateSignature& signature,
                                   std::size_t num_actions) {
  try {
    util::Rng rng(0xa2c4e6ULL);
    nn::ActorCriticNet net(spec, signature, num_actions, rng);
    // Smoke-test a forward pass with zeros of the right shape.
    std::vector<nn::Vec> rows;
    rows.reserve(signature.rows());
    for (std::size_t len : signature.row_lengths) {
      rows.emplace_back(std::max<std::size_t>(len, 1), 0.0);
    }
    const auto output = net.forward(rows);
    for (double p : output.probs) {
      if (!std::isfinite(p)) {
        return CheckResult::fail("forward pass produced non-finite output");
      }
    }
    return CheckResult::ok();
  } catch (const std::exception& e) {
    return CheckResult::fail(e.what());
  }
}

}  // namespace nada::filter

// NADA's pre-checks (§2.2), per-domain.
//
// Compilation check: a trial run of the candidate code — parse it, execute
// it on the domain catalog's canned observation, and require finite
// outputs and a stable state shape. Any exception rejects the candidate,
// mirroring the paper's "any code that triggers an exception is
// immediately excluded". Because the trial runs against the catalog of the
// domain the program was generated for, a program referencing another
// domain's vocabulary fails here.
//
// Normalization check: fuzz the state function with randomized
// observations drawn from the same catalog and reject it if any emitted
// feature's magnitude exceeds the threshold T (=100 in the paper). Applied
// to state functions only, not architectures.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "dsl/binding_catalog.h"
#include "dsl/state_program.h"
#include "nn/arch.h"

namespace nada::filter {

struct CheckResult {
  bool passed = false;
  std::string reason;  ///< empty when passed
  /// Nonzero when the failure was the VM's execution budget (the run
  /// exceeded this many cost units; see dsl::instruction_budget and
  /// docs/DSL.md). Diagnostic only — not journaled.
  std::uint64_t exceeded_budget = 0;

  [[nodiscard]] static CheckResult ok() { return {true, "", 0}; }
  [[nodiscard]] static CheckResult fail(std::string why) {
    return {false, std::move(why), 0};
  }
};

/// Default fuzz threshold from the paper.
inline constexpr double kNormalizationThreshold = 100.0;

/// Parses and trial-runs a state program against `catalog`'s observations.
/// On success returns the compiled program through `out` (if non-null).
CheckResult compilation_check(const std::string& source,
                              const dsl::BindingCatalog& catalog,
                              std::optional<dsl::StateProgram>* out = nullptr);

/// Fuzzes a compiled state program with `runs` randomized observations
/// from `catalog`.
CheckResult normalization_check(const dsl::StateProgram& program,
                                const dsl::BindingCatalog& catalog,
                                double threshold = kNormalizationThreshold,
                                std::size_t runs = 16,
                                std::uint64_t seed = 0x5eed);

/// Architecture "compilation" check: validates the spec against the state
/// signature, instantiates the network, and smoke-tests a forward pass.
CheckResult arch_compilation_check(const nn::ArchSpec& spec,
                                   const nn::StateSignature& signature,
                                   std::size_t num_actions = 6);

}  // namespace nada::filter

#include "filter/earlystop.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "nn/mat.h"
#include "util/rng.h"
#include "util/strings.h"

namespace nada::filter {

const char* early_stop_method_name(EarlyStopMethod m) {
  switch (m) {
    case EarlyStopMethod::kRewardOnly: return "Reward Only";
    case EarlyStopMethod::kTextOnly: return "Text Only";
    case EarlyStopMethod::kTextReward: return "Text + Reward";
    case EarlyStopMethod::kHeuristicMax: return "Heuristic Max";
    case EarlyStopMethod::kHeuristicLast: return "Heuristic Last";
  }
  return "?";
}

const std::vector<EarlyStopMethod>& all_early_stop_methods() {
  static const std::vector<EarlyStopMethod> kAll = {
      EarlyStopMethod::kRewardOnly, EarlyStopMethod::kTextOnly,
      EarlyStopMethod::kTextReward, EarlyStopMethod::kHeuristicMax,
      EarlyStopMethod::kHeuristicLast};
  return kAll;
}

nn::Vec embed_text(const std::string& text, std::size_t dim) {
  if (dim == 0) throw std::invalid_argument("embed_text: zero dim");
  nn::Vec embedding(dim, 0.0);
  if (text.size() >= 3) {
    for (std::size_t i = 0; i + 3 <= text.size(); ++i) {
      const std::uint64_t h = util::fnv1a64(text.substr(i, 3));
      const std::size_t bucket = h % dim;
      // Sign hashing keeps the expectation of collisions at zero.
      const double sign = ((h >> 32) & 1) != 0 ? 1.0 : -1.0;
      embedding[bucket] += sign;
    }
  }
  const double norm = nn::l2_norm(embedding);
  if (norm > 0.0) {
    for (double& v : embedding) v /= norm;
  }
  return embedding;
}

EarlyStopModel::EarlyStopModel(EarlyStopMethod method, EarlyStopConfig config,
                               std::uint64_t seed)
    : method_(method), config_(std::move(config)), seed_(seed) {
  if (config_.top_fraction <= 0.0 || config_.top_fraction > 1.0) {
    throw std::invalid_argument("EarlyStopModel: bad top_fraction");
  }
  if (config_.smooth_fraction < config_.top_fraction ||
      config_.smooth_fraction > 1.0) {
    throw std::invalid_argument("EarlyStopModel: bad smooth_fraction");
  }
}

nn::Vec EarlyStopModel::features(const DesignRecord& record) const {
  auto curve = [&] {
    nn::Vec c = nn::resample_linear(record.early_rewards, config_.curve_len);
    for (double& v : c) v = std::clamp(v, -10.0, 10.0);
    return c;
  };
  switch (method_) {
    case EarlyStopMethod::kRewardOnly:
      return curve();
    case EarlyStopMethod::kTextOnly:
      return embed_text(record.source_text, config_.embed_dim);
    case EarlyStopMethod::kTextReward: {
      nn::Vec f = curve();
      const nn::Vec e = embed_text(record.source_text, config_.embed_dim);
      f.insert(f.end(), e.begin(), e.end());
      return f;
    }
    case EarlyStopMethod::kHeuristicMax:
    case EarlyStopMethod::kHeuristicLast:
      return {};
  }
  return {};
}

namespace {

double heuristic_score(EarlyStopMethod method, const DesignRecord& record) {
  if (record.early_rewards.empty()) return -1e9;
  if (method == EarlyStopMethod::kHeuristicMax) {
    return *std::max_element(record.early_rewards.begin(),
                             record.early_rewards.end());
  }
  return record.early_rewards.back();
}

/// Indices of `records` sorted by descending final score.
std::vector<std::size_t> rank_by_final(
    const std::vector<DesignRecord>& records) {
  std::vector<std::size_t> order(records.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&records](std::size_t a,
                                                   std::size_t b) {
    return records[a].final_score > records[b].final_score;
  });
  return order;
}

std::size_t top_count(std::size_t n, double fraction) {
  const auto k = static_cast<std::size_t>(
      std::ceil(static_cast<double>(n) * fraction));
  return std::clamp<std::size_t>(k, 1, n);
}

}  // namespace

void EarlyStopModel::fit(const std::vector<DesignRecord>& records) {
  if (records.size() < 5) {
    throw std::invalid_argument("EarlyStopModel::fit: corpus too small");
  }
  const std::vector<std::size_t> order = rank_by_final(records);

  const bool is_classifier = method_ == EarlyStopMethod::kRewardOnly ||
                             method_ == EarlyStopMethod::kTextOnly ||
                             method_ == EarlyStopMethod::kTextReward;
  if (is_classifier) {
    // Label-smoothing variant: train against the widened positive band.
    const double band = config_.use_label_smoothing ? config_.smooth_fraction
                                                    : config_.top_fraction;
    const std::size_t positives = top_count(records.size(), band);
    std::vector<double> labels(records.size(), 0.0);
    for (std::size_t r = 0; r < positives; ++r) labels[order[r]] = 1.0;

    std::vector<nn::Vec> xs;
    xs.reserve(records.size());
    for (const auto& rec : records) xs.push_back(features(rec));

    util::Rng rng(seed_);
    if (method_ == EarlyStopMethod::kRewardOnly) {
      classifier_ = std::make_unique<nn::Conv1DClassifier>(
          config_.curve_len, config_.cnn_filters, config_.cnn_kernel,
          config_.hidden, rng);
    } else {
      classifier_ = std::make_unique<nn::MlpClassifier>(
          xs.front().size(), std::vector<std::size_t>{config_.hidden}, rng);
    }
    classifier_->train(xs, labels, config_.train);
  }

  // Threshold tuning: revert to the true top-1% labels and push the
  // threshold as high as possible while keeping every true positive
  // (0% FNR on the training set), then back off by the safety margin.
  const std::size_t true_positives =
      top_count(records.size(), config_.top_fraction);
  double min_positive_score = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < true_positives; ++r) {
    min_positive_score = std::min(min_positive_score, score(records[order[r]]));
  }
  threshold_ = min_positive_score - config_.threshold_margin;
}

double EarlyStopModel::score(const DesignRecord& record) const {
  if (method_ == EarlyStopMethod::kHeuristicMax ||
      method_ == EarlyStopMethod::kHeuristicLast) {
    return heuristic_score(method_, record);
  }
  if (classifier_ == nullptr) {
    throw std::logic_error("EarlyStopModel::score before fit");
  }
  return classifier_->predict(features(record));
}

bool EarlyStopModel::keep(const DesignRecord& record) const {
  return score(record) >= threshold_;
}

std::vector<bool> label_top_fraction(const std::vector<DesignRecord>& records,
                                     double top_fraction) {
  std::vector<bool> labels(records.size(), false);
  if (records.empty()) return labels;
  const auto order = rank_by_final(records);
  const std::size_t k = top_count(records.size(), top_fraction);
  for (std::size_t r = 0; r < k; ++r) labels[order[r]] = true;
  return labels;
}

EarlyStopMetrics evaluate_early_stop(const EarlyStopModel& model,
                                     const std::vector<DesignRecord>& records,
                                     const std::vector<bool>& is_top) {
  if (records.size() != is_top.size()) {
    throw std::invalid_argument("evaluate_early_stop: size mismatch");
  }
  EarlyStopMetrics m;
  std::size_t false_negatives = 0;
  std::size_t true_negatives = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const bool kept = model.keep(records[i]);
    if (is_top[i]) {
      ++m.positives;
      if (!kept) ++false_negatives;
    } else {
      ++m.negatives;
      if (!kept) ++true_negatives;
    }
  }
  m.false_negative_rate =
      m.positives > 0
          ? static_cast<double>(false_negatives) /
                static_cast<double>(m.positives)
          : 0.0;
  m.true_negative_rate =
      m.negatives > 0
          ? static_cast<double>(true_negatives) /
                static_cast<double>(m.negatives)
          : 0.0;
  return m;
}

std::vector<EarlyStopMetrics> cross_validate(
    EarlyStopMethod method, const EarlyStopConfig& config,
    const std::vector<DesignRecord>& records, std::size_t folds,
    std::uint64_t seed) {
  if (folds < 2 || records.size() < folds * 5) {
    throw std::invalid_argument("cross_validate: corpus too small");
  }
  // Ground-truth labels come from the full corpus.
  const std::vector<bool> global_labels =
      label_top_fraction(records, config.top_fraction);

  util::Rng rng(seed);
  std::vector<std::size_t> order(records.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  std::vector<EarlyStopMetrics> per_fold;
  per_fold.reserve(folds);
  for (std::size_t f = 0; f < folds; ++f) {
    // The paper's inverted protocol: train on one fold (~20%), validate on
    // the remaining designs.
    std::vector<DesignRecord> train_set;
    std::vector<DesignRecord> test_set;
    std::vector<bool> test_labels;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (i % folds == f) {
        train_set.push_back(records[order[i]]);
      } else {
        test_set.push_back(records[order[i]]);
        test_labels.push_back(global_labels[order[i]]);
      }
    }
    EarlyStopModel model(method, config, seed + f * 1000003ULL);
    model.fit(train_set);
    per_fold.push_back(evaluate_early_stop(model, test_set, test_labels));
  }
  return per_fold;
}

}  // namespace nada::filter

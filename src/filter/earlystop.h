// Early-stopping models (§2.2, §3.4).
//
// After the pre-checks, NADA trains surviving candidates and watches the
// first K epochs of training rewards. A predictive model decides whether a
// design is likely to rank among the top performers; if not, training is
// stopped early. The paper compares five methods:
//
//   Reward Only    — 1D-CNN over the early reward curve (the winner)
//   Text Only      — classifier over a code embedding
//   Text + Reward  — both feature sets concatenated
//   Heuristic Max  — threshold on the max early reward
//   Heuristic Last — threshold on the final early reward
//
// Training uses the label-smoothing variant: although the target class is
// the top 1% of designs, the classifier is trained with the top 20%
// labelled positive (reducing class skew), after which the decision
// threshold is tuned on the training split to maximize the true negative
// rate subject to a 0% false negative rate on the true top-1% designs.
//
// Substitution note: the paper embeds code with OpenAI's
// text-embedding-ada-002; offline we use an L2-normalized hashed character
// n-gram embedding, which preserves the property the method needs (similar
// code maps to nearby vectors).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/classifier.h"

namespace nada::filter {

/// One candidate design's training history, as seen by the early-stop
/// filter. `early_rewards` should be comparable across environments; the
/// corpus builder normalizes rewards relative to the environment's original
/// design before storing them here.
struct DesignRecord {
  std::string id;
  std::string source_text;           ///< code text ("" for architectures)
  std::vector<double> early_rewards; ///< first-K-epoch training rewards
  double final_score = 0.0;          ///< ground-truth end-of-training score
};

enum class EarlyStopMethod {
  kRewardOnly,
  kTextOnly,
  kTextReward,
  kHeuristicMax,
  kHeuristicLast,
};

[[nodiscard]] const char* early_stop_method_name(EarlyStopMethod m);
[[nodiscard]] const std::vector<EarlyStopMethod>& all_early_stop_methods();

struct EarlyStopConfig {
  std::size_t curve_len = 32;     ///< early curve resampled to this length
  double top_fraction = 0.01;     ///< the class that must never be rejected
  double smooth_fraction = 0.20;  ///< label-smoothing positive band
  bool use_label_smoothing = true;  ///< ablation hook
  std::size_t cnn_filters = 16;
  std::size_t cnn_kernel = 5;
  std::size_t hidden = 24;
  std::size_t embed_dim = 64;     ///< hashed n-gram embedding width
  nn::ClassifierTrainOptions train;
  /// Safety margin subtracted from the tuned threshold so borderline
  /// positives on unseen data are kept (the paper biases the same way).
  double threshold_margin = 0.02;
};

/// Hashed character-trigram embedding of code text (ada-002 stand-in).
[[nodiscard]] nn::Vec embed_text(const std::string& text,
                                 std::size_t dim);

class EarlyStopModel {
 public:
  EarlyStopModel(EarlyStopMethod method, EarlyStopConfig config,
                 std::uint64_t seed);

  /// Trains on the given records (fit + threshold tuning).
  void fit(const std::vector<DesignRecord>& records);

  /// Raw model score (higher = more promising).
  [[nodiscard]] double score(const DesignRecord& record) const;

  /// True when training should CONTINUE (predicted promising).
  [[nodiscard]] bool keep(const DesignRecord& record) const;

  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] EarlyStopMethod method() const { return method_; }

 private:
  [[nodiscard]] nn::Vec features(const DesignRecord& record) const;

  EarlyStopMethod method_;
  EarlyStopConfig config_;
  std::uint64_t seed_;
  std::unique_ptr<nn::BinaryClassifier> classifier_;
  double threshold_ = 0.5;
};

struct EarlyStopMetrics {
  double false_negative_rate = 0.0;  ///< top designs incorrectly stopped
  double true_negative_rate = 0.0;   ///< suboptimal designs correctly stopped
  std::size_t positives = 0;
  std::size_t negatives = 0;
};

/// Evaluates a fitted model against ground-truth labels (`is_top` flags
/// aligned with `records`).
[[nodiscard]] EarlyStopMetrics evaluate_early_stop(
    const EarlyStopModel& model, const std::vector<DesignRecord>& records,
    const std::vector<bool>& is_top);

/// Labels the top `top_fraction` of records by final_score.
[[nodiscard]] std::vector<bool> label_top_fraction(
    const std::vector<DesignRecord>& records, double top_fraction);

/// The paper's five-fold protocol: each fold trains on 20% of the corpus
/// and validates on the remaining 80%; returns per-fold metrics.
[[nodiscard]] std::vector<EarlyStopMetrics> cross_validate(
    EarlyStopMethod method, const EarlyStopConfig& config,
    const std::vector<DesignRecord>& records, std::size_t folds,
    std::uint64_t seed);

}  // namespace nada::filter

#include "gen/arch_gen.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace nada::gen {
namespace {

constexpr std::size_t kWidths[] = {32, 64, 96, 128, 192, 256};
constexpr std::size_t kKernels[] = {2, 3, 4, 5, 6};
constexpr nn::Activation kActivations[] = {
    nn::Activation::kRelu, nn::Activation::kLeakyRelu, nn::Activation::kTanh,
    nn::Activation::kElu};
constexpr nn::TemporalUnit kUnits[] = {
    nn::TemporalUnit::kConv1D, nn::TemporalUnit::kRnn, nn::TemporalUnit::kLstm,
    nn::TemporalUnit::kDense};

template <typename T, std::size_t N>
const T& pick(util::Rng& rng, const T (&table)[N]) {
  return table[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(N) - 1))];
}

}  // namespace

ArchGenerator::ArchGenerator(const LlmProfile& profile,
                             const PromptStrategy& strategy,
                             std::uint64_t seed, double width_scale)
    : profile_(profile.with_strategy(strategy)), seed_(seed), rng_(seed),
      width_scale_(width_scale) {
  if (width_scale_ <= 0.0 || width_scale_ > 1.0) {
    throw std::invalid_argument("ArchGenerator: width_scale outside (0, 1]");
  }
  id_prefix_ = util::to_lower(profile_.name);
  std::erase_if(id_prefix_, [](char c) { return c == '.' || c == ' '; });
}

void ArchGenerator::reset() {
  rng_.reseed(seed_);
  counter_ = 0;
}

std::size_t ArchGenerator::scaled_width(std::size_t w) const {
  return std::max<std::size_t>(
      static_cast<std::size_t>(std::lround(static_cast<double>(w) *
                                           width_scale_)),
      8);
}

nn::ArchSpec ArchGenerator::sample_valid_spec() {
  nn::ArchSpec spec = nn::ArchSpec::pensieve();
  spec.conv_filters = scaled_width(spec.conv_filters);
  spec.rnn_hidden = scaled_width(spec.rnn_hidden);
  spec.scalar_hidden = scaled_width(spec.scalar_hidden);
  spec.merge_hidden = scaled_width(spec.merge_hidden);
  const double mutate = 0.3 + 0.5 * profile_.creativity;

  if (rng_.bernoulli(mutate)) spec.temporal = pick(rng_, kUnits);
  if (rng_.bernoulli(mutate)) spec.activation = pick(rng_, kActivations);
  if (rng_.bernoulli(mutate * 0.8)) {
    spec.merge_hidden = scaled_width(pick(rng_, kWidths));
  }
  if (rng_.bernoulli(mutate * 0.6)) {
    spec.scalar_hidden = scaled_width(pick(rng_, kWidths));
  }
  if (rng_.bernoulli(mutate * 0.5)) {
    spec.merge_layers = static_cast<std::size_t>(rng_.uniform_int(1, 3));
  }
  if (rng_.bernoulli(mutate * 0.4)) spec.shared_trunk = true;
  switch (spec.temporal) {
    case nn::TemporalUnit::kConv1D:
      if (rng_.bernoulli(mutate * 0.7)) {
        spec.conv_filters = scaled_width(pick(rng_, kWidths));
      }
      if (rng_.bernoulli(mutate * 0.5)) spec.conv_kernel = pick(rng_, kKernels);
      break;
    case nn::TemporalUnit::kRnn:
    case nn::TemporalUnit::kLstm:
      if (rng_.bernoulli(mutate * 0.7)) {
        spec.rnn_hidden = scaled_width(pick(rng_, kWidths));
      }
      break;
    case nn::TemporalUnit::kDense:
      break;
  }
  return spec;
}

void ArchGenerator::make_invalid(nn::ArchSpec& spec) {
  // The flavours of broken architecture code the paper's compilation check
  // rejects: dimension mismatches, degenerate widths, runaway depth/width.
  switch (rng_.uniform_int(0, 4)) {
    case 0:  // kernel longer than the shortest history row
      spec.temporal = nn::TemporalUnit::kConv1D;
      spec.conv_kernel =
          static_cast<std::size_t>(rng_.uniform_int(7, 16));
      break;
    case 1:  // zero-width layer
      if (rng_.bernoulli(0.5)) {
        spec.merge_hidden = 0;
      } else {
        spec.temporal = nn::TemporalUnit::kConv1D;
        spec.conv_filters = 0;
      }
      break;
    case 2:  // absurd width (exceeds instantiation cap)
      spec.merge_hidden =
          static_cast<std::size_t>(rng_.uniform_int(2048, 1 << 16));
      break;
    case 3:  // runaway merge depth
      spec.merge_layers = static_cast<std::size_t>(rng_.uniform_int(4, 12));
      break;
    default:  // zero-width recurrent state
      spec.temporal = rng_.bernoulli(0.5) ? nn::TemporalUnit::kRnn
                                          : nn::TemporalUnit::kLstm;
      spec.rnn_hidden = 0;
      break;
  }
}

ArchCandidate ArchGenerator::generate() {
  ArchCandidate cand;
  {
    std::ostringstream id;
    id << id_prefix_ << "-arch-" << counter_++;
    cand.id = id.str();
  }
  cand.spec = sample_valid_spec();
  if (rng_.bernoulli(profile_.p_arch_invalid)) {
    cand.intended_invalid = true;
    make_invalid(cand.spec);
  }
  cand.description = cand.spec.describe();
  return cand;
}

std::vector<ArchCandidate> ArchGenerator::generate_batch(std::size_t n) {
  std::vector<ArchCandidate> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(generate());
  return out;
}

}  // namespace nada::gen

// Neural-network architecture candidate generator (§3.3's LLM stand-in).
//
// Samples ArchSpec mutations around Pensieve's original actor-critic
// network: hidden sizes, activation swaps (Leaky ReLU for FCC), temporal
// unit replacement (RNN for Starlink, LSTM for 4G), and a shared
// actor/critic trunk (5G) — the exact families §4 reports. Invalid specs
// (kernels longer than the history, zero/oversized widths, too-deep merge
// stacks) are produced at a profile-calibrated rate; they fail when the
// filter tries to instantiate them, which is the architecture version of
// the compilation check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/profile.h"
#include "nn/arch.h"
#include "util/rng.h"

namespace nada::gen {

struct ArchCandidate {
  std::string id;
  nn::ArchSpec spec;
  bool intended_invalid = false;  ///< ground truth for tests only
  std::string description;
};

class ArchGenerator {
 public:
  /// `width_scale` shrinks the sampled layer widths (benchmarks use ~0.25
  /// so paper-shaped searches finish quickly); 1.0 reproduces the paper's
  /// 32-256 unit range. Validity rates are unaffected.
  ArchGenerator(const LlmProfile& profile, const PromptStrategy& strategy,
                std::uint64_t seed, double width_scale = 1.0);

  [[nodiscard]] ArchCandidate generate();
  /// Pulls the next n candidates; window-size invariant like
  /// StateGenerator::generate_batch (chunked pulls replay the one-call
  /// stream exactly).
  [[nodiscard]] std::vector<ArchCandidate> generate_batch(std::size_t n);

  /// Rewinds the candidate stream to its start (exact replay of ids and
  /// specs); see StateGenerator::reset.
  void reset();

  /// Stream position of the next candidate; see StateGenerator::position.
  [[nodiscard]] std::uint64_t position() const { return counter_; }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  [[nodiscard]] nn::ArchSpec sample_valid_spec();
  void make_invalid(nn::ArchSpec& spec);

  LlmProfile profile_;
  std::uint64_t seed_ = 0;
  util::Rng rng_;
  std::uint64_t counter_ = 0;
  std::string id_prefix_;
  double width_scale_ = 1.0;

  [[nodiscard]] std::size_t scaled_width(std::size_t w) const;
};

}  // namespace nada::gen

#include "gen/profile.h"

#include <algorithm>

namespace nada::gen {

const char* injected_flaw_name(InjectedFlaw flaw) {
  switch (flaw) {
    case InjectedFlaw::kNone: return "none";
    case InjectedFlaw::kSyntax: return "syntax";
    case InjectedFlaw::kRuntime: return "runtime";
    case InjectedFlaw::kUnnormalized: return "unnormalized";
  }
  return "?";
}

LlmProfile LlmProfile::with_strategy(const PromptStrategy& s) const {
  LlmProfile p = *this;
  // §2.1: semantic renaming + code comments help the model reference the
  // right quantities — without them, semantic mistakes rise steeply.
  if (!s.semantic_names) {
    p.p_runtime_error = std::min(1.0, p.p_runtime_error * 2.5);
  }
  // Without the explicit normalization request, raw-unit features appear
  // far more often.
  if (!s.request_normalization) {
    p.p_unnormalized = std::min(1.0, p.p_unnormalized * 2.5);
  }
  // Chain-of-thought mainly buys diversity; without it designs cluster
  // near the original.
  if (!s.chain_of_thought) {
    p.creativity *= 0.4;
  }
  // Renormalize if the fates now exceed 1.
  const double total = p.p_syntax_error + p.p_runtime_error + p.p_unnormalized;
  if (total > 0.95) {
    const double scale = 0.95 / total;
    p.p_syntax_error *= scale;
    p.p_runtime_error *= scale;
    p.p_unnormalized *= scale;
  }
  return p;
}

LlmProfile gpt35_profile() {
  LlmProfile p;
  p.name = "GPT-3.5";
  // Table 2 row 1: 41.2% compilable => 58.8% compile failures, split
  // between syntax and semantic/runtime errors; 27.4% of all candidates
  // both compile and pass the normalization check, so 41.2% - 27.4% =
  // 13.8% compile but carry raw-unit features.
  p.p_syntax_error = 0.35;
  p.p_runtime_error = 0.238;
  p.p_unnormalized = 0.138;
  // §3.3: 760/3000 architectures compilable.
  p.p_arch_invalid = 0.747;
  p.creativity = 0.55;
  return p;
}

LlmProfile gpt4_profile() {
  LlmProfile p;
  p.name = "GPT-4";
  // Table 2 row 2: 68.6% compilable, 50.2% well-normalized.
  p.p_syntax_error = 0.19;
  p.p_runtime_error = 0.124;
  p.p_unnormalized = 0.184;
  // The paper does not report GPT-4 architecture statistics (budget
  // constraints, §3.3); we extrapolate the same relative improvement seen
  // on states.
  p.p_arch_invalid = 0.55;
  p.creativity = 0.8;
  return p;
}

}  // namespace nada::gen

// LLM generation profiles.
//
// The paper drives NADA with GPT-3.5 and GPT-4 and reports sharply
// different code-quality statistics (Table 2: 41.2% vs 68.6% of generated
// states compilable; 27.4% vs 50.2% well-normalized; §3.3: 25.3% of
// GPT-3.5 architectures compilable). No LLM is available offline, so this
// module substitutes a *calibrated stochastic generator*: candidates are
// genuine NadaScript programs / ArchSpecs assembled from a design space,
// with flaw-injection rates matched to the paper's measured statistics.
//
// The prompting strategies of §2.1 (chain-of-thought, semantic variable
// naming, explicit normalization requests) become multipliers on those
// rates: turning a strategy off degrades the corresponding statistic,
// which is what the prompt-ablation bench demonstrates.
#pragma once

#include <string>

namespace nada::gen {

/// Which flaw, if any, is injected into a candidate. Pipeline code must
/// never branch on this — the filters do the real detection work; the field
/// exists so tests can verify that checks catch what was planted.
enum class InjectedFlaw { kNone, kSyntax, kRuntime, kUnnormalized };

[[nodiscard]] const char* injected_flaw_name(InjectedFlaw flaw);

/// Prompting strategies from §2.1. All enabled reproduces the paper's
/// headline rates; disabling one degrades the relevant failure rate.
struct PromptStrategy {
  bool chain_of_thought = true;     ///< more diverse / creative designs
  bool semantic_names = true;       ///< fewer semantic (runtime) errors
  bool request_normalization = true;  ///< fewer unnormalized states
};

/// Flaw-injection rates for state-function generation. The three
/// probabilities are sampled as mutually exclusive "fates"; the remainder
/// is a clean candidate.
struct LlmProfile {
  std::string name;
  double p_syntax_error = 0.0;
  double p_runtime_error = 0.0;
  double p_unnormalized = 0.0;
  /// Architecture generation: probability of an invalid ArchSpec.
  double p_arch_invalid = 0.0;
  /// Richness of the design space explored (0..1): higher profiles sample
  /// advanced features and bolder mutations more often.
  double creativity = 0.5;

  /// Applies prompt-strategy multipliers and returns the effective profile.
  [[nodiscard]] LlmProfile with_strategy(const PromptStrategy& s) const;
};

/// Calibrated to Table 2: 41.2% compilable, 27.4% well-normalized, and
/// §3.3's 760/3000 compilable architectures.
[[nodiscard]] LlmProfile gpt35_profile();

/// Calibrated to Table 2: 68.6% compilable, 50.2% well-normalized.
[[nodiscard]] LlmProfile gpt4_profile();

}  // namespace nada::gen

#include "gen/state_gen.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace nada::gen {
namespace {

// ---- ABR design space -------------------------------------------------------
// Every entry here is a complete, well-normalized expression: under the ABR
// fuzz observation ranges (throughput up to 400 Mbps, chunk sizes up to
// ~35 MB, buffers up to 60 s) all values stay well below the normalization
// threshold T=100. The tables, order, and probabilities are the historical
// ABR generator's: candidate streams for a given seed are bit-identical to
// the pre-StateSpace implementation (the store's journaled fingerprints
// depend on it).

const StateSpace& build_abr_space() {
  static const StateSpace kSpace = [] {
    StateSpace s;
    s.domain = "abr";
    // -- core rows (Pensieve's six), variant 0 is the original design
    s.core = {
        {"last_quality",
         0.5,
         {{"last_bitrate_kbps / max_bitrate_kbps", "orig"},
          {"2.0 * (last_bitrate_kbps / max_bitrate_kbps) - 1.0", "range_pm1"},
          {"log1p(last_bitrate_kbps) / log1p(max_bitrate_kbps)",
           "log_quality"}}},
        {"buffer_s",
         0.5,
         {{"buffer_size_s / 10.0", "orig"},
          {"buffer_size_s / 60.0", "norm60"},
          {"buffer_size_s / 30.0 - 1.0", "range_pm1"},
          {"clip(buffer_size_s / 10.0, 0.0, 4.0)", "clipped"}}},
        {"throughput",
         1.0,
         {{"throughput_mbps / 8.0", "orig"},
          {"throughput_mbps / (max_bitrate_kbps / 1000.0)", "ladder_rel"},
          {"throughput_mbps / 4.0 - 1.0", "range_pm1"},
          {"smooth(throughput_mbps, 3) / 8.0", "smoothed"},
          {"smooth(throughput_mbps, 3) / (max_bitrate_kbps / 1000.0)",
           "smoothed_ladder_rel"},
          {"log1p(throughput_mbps) / 4.0", "log"},
          {"ema(throughput_mbps, 0.5) / 8.0", "ema"}}},
        {"download_time",
         0.6,
         {{"download_time_s / 10.0", "orig"},
          {"download_time_s / (chunk_length_s * 10.0)", "chunk_rel"},
          {"smooth(download_time_s, 3) / 10.0", "smoothed"},
          {"clip(download_time_s / 10.0, 0.0, 4.0)", "clipped"}}},
        {"next_sizes",
         0.8,
         {{"next_chunk_sizes_bytes / 1000000.0", "orig"},
          {"next_chunk_sizes_bytes * 8.0 / (max_bitrate_kbps * 1000.0 * "
           "chunk_length_s)",
           "ladder_rel"},
          {"log1p(next_chunk_sizes_bytes) / 20.0", "log"}}},
        {"chunks_left",
         0.3,
         {{"chunks_remaining / total_chunks", "orig"},
          {"2.0 * (chunks_remaining / total_chunks) - 1.0", "range_pm1"}}},
    };
    // Feature removal (the paper's Starlink insight: drop download times
    // and next-chunk sizes to fight overfitting on small datasets).
    s.removable = {"download_time", "next_sizes", "chunks_left"};
    // -- additional engineered features (§4's discoveries)
    s.advanced = {
        {"ema_last(throughput_mbps, 0.4) / 8.0", "tput_ema_last"},
        {"std(throughput_mbps / 8.0)", "tput_std"},
        {"trend(throughput_mbps) / 8.0", "tput_trend"},
        {"linreg_predict(throughput_mbps) / 8.0", "tput_pred"},
        {"linreg_predict(throughput_mbps) / (max_bitrate_kbps / 1000.0)",
         "tput_pred_ladder"},
        {"linreg_predict(download_time_s) / 10.0", "dl_pred"},
        {"trend(download_time_s) / 10.0", "dl_trend"},
        {"buffer_size_s_history / 60.0", "buf_history"},
        {"trend(buffer_size_s_history) / chunk_length_s", "buf_trend"},
        {"diff(buffer_size_s_history) / 10.0", "buf_diff"},
        {"savgol(buffer_size_s_history) / 60.0", "buf_savgol"},
        {"std(buffer_size_s_history / 10.0)", "buf_std"},
        {"(buffer_size_s_history[-1] - buffer_size_s_history[-2]) / "
         "chunk_length_s",
         "buf_last_diff"},
        {"where(buffer_size_s > 15.0, 1.0, 0.0)", "buf_headroom_flag"},
        {"min(throughput_mbps / 8.0, vec(8, 1.0))", "tput_capped"},
    };
    // -- raw-unit variants (planted normalization failures)
    s.unnormalized = {
        {"throughput_mbps * 1000.0", "raw_tput_kbps"},
        {"next_chunk_sizes_bytes", "raw_sizes_bytes"},
        {"download_time_s * 1000.0", "raw_dl_ms"},
        {"last_bitrate_kbps", "raw_last_kbps"},
        {"next_chunk_sizes_bytes / 1000.0", "sizes_kb"},
    };
    // -- semantic bugs (planted compile/trial-run failures): each reliably
    // throws during a trial run — undefined names, bad arity, bad indices,
    // type errors. These mimic the Python exceptions the paper's
    // compilation check catches.
    s.runtime_bugs = {
        {"throghput_mbps / 8.0", "typo_variable"},
        {"moving_average(throughput_mbps, 3)", "unknown_function"},
        {"ema(throughput_mbps)", "bad_arity"},
        {"throughput_mbps[12]", "index_out_of_range"},
        {"diff(buffer_size_s)", "diff_of_scalar"},
        {"slice(throughput_mbps, 5, 3)", "bad_slice"},
        {"sqrt(trend(throughput_mbps) - 100.0)", "sqrt_negative"},
        {"normalize_minmax(vec(8, 1.0))", "constant_minmax"},
        {"throughput_mbps / (buffer_size_s - buffer_size_s)", "div_by_zero"},
        {"log(trend(download_time_s) - 50.0)", "log_negative"},
    };
    s.ideas = {
        "re-balance normalization ranges so features share scale",
        "expose short-term throughput dynamics to the policy",
        "let the policy see how the playback buffer has been evolving",
        "predict upcoming network conditions instead of only reacting",
        "simplify the state to reduce overfitting on small trace sets",
        "make normalization ladder-aware so high-bitrate regimes stay "
        "bounded",
        "smooth noisy measurements before they reach the network",
    };
    s.keyword_typos = {
        {"emit \"throughput\"", "emti \"throughput\""},
        {"emit \"buffer_s\"", "emitt \"buffer_s\""},
    };
    s.truncation_tail =
        "emit \"extra_feature\" = clip(throughput_mbps / (\n";
    return s;
  }();
  return kSpace;
}

// ---- CC design space --------------------------------------------------------
// The same structure over the congestion-control vocabulary
// (cc::cc_input_variables). Normalization calibration assumes the CC fuzz
// ranges (rates up to 500 Mbps, base RTT 5-200 ms plus up to ~400 ms of
// queueing, loss in [0, 1]); every clean expression stays below T=100.

const StateSpace& build_cc_space() {
  static const StateSpace kSpace = [] {
    StateSpace s;
    s.domain = "cc";
    s.core = {
        {"rate",
         0.5,
         {{"log1p(current_rate_mbps) / 6.0", "orig"},
          {"current_rate_mbps / 100.0", "linear100"},
          {"log1p(current_rate_mbps) / log1p(500.0)", "log_cap_rel"}}},
        {"ack_rate",
         1.0,
         {{"log1p(ack_rate_mbps) / 6.0", "orig"},
          {"ack_rate_mbps / 100.0", "linear100"},
          {"smooth(ack_rate_mbps, 3) / 100.0", "smoothed"},
          {"ema(ack_rate_mbps, 0.5) / 100.0", "ema"},
          {"log1p(ack_rate_mbps) / log1p(500.0)", "log_cap_rel"}}},
        {"utilization",
         0.6,
         {{"min(ack_rate_mbps / max(send_rate_mbps, vec(8, 0.001)), "
           "vec(8, 2.0))",
           "orig"},
          {"clip(ack_rate_mbps / max(send_rate_mbps, vec(8, 0.1)), 0.0, "
           "2.0)",
           "clipped"}}},
        {"rtt_inflation",
         1.0,
         {{"rtt_ms / min_rtt_ms / 10.0", "orig"},
          {"(rtt_ms - min_rtt_ms) / 100.0", "queue_delay_100ms"},
          {"log1p(rtt_ms) / 8.0", "log"},
          {"clip(rtt_ms / min_rtt_ms / 10.0, 0.0, 10.0)", "clipped"}}},
        {"loss",
         0.4,
         {{"loss_fraction", "orig"},
          {"smooth(loss_fraction, 3)", "smoothed"},
          {"ema(loss_fraction, 0.5)", "ema"}}},
        {"rtt_trend",
         0.8,
         {{"trend(rtt_ms) / min_rtt_ms", "orig"},
          {"trend(rtt_ms) / 100.0", "trend_100ms"},
          {"diff(rtt_ms) / 100.0", "diff_100ms"}}},
    };
    s.removable = {"rtt_trend", "utilization", "rtt_inflation"};
    s.advanced = {
        {"trend(ack_rate_mbps) / 100.0", "ack_trend"},
        {"linreg_predict(ack_rate_mbps) / 100.0", "ack_pred"},
        {"std(ack_rate_mbps / 100.0)", "ack_std"},
        {"savgol(ack_rate_mbps) / 100.0", "ack_savgol"},
        {"ema(send_rate_mbps, 0.4) / 100.0", "send_ema"},
        {"(rtt_ms - min_rtt_ms) / 200.0", "queue_delay"},
        {"std(rtt_ms / 100.0)", "rtt_std"},
        {"trend(loss_fraction)", "loss_trend"},
        {"min_rtt_ms / 200.0", "min_rtt_norm"},
        {"where(current_rate_mbps > ack_rate_mbps[-1], 1.0, 0.0)",
         "probing_flag"},
        {"diff(ack_rate_mbps) / 100.0", "ack_diff"},
        {"(send_rate_mbps[-1] - ack_rate_mbps[-1]) / 100.0",
         "rate_mismatch"},
    };
    s.unnormalized = {
        {"send_rate_mbps * 1000.0", "raw_send_kbps"},
        {"ack_rate_mbps * 1000.0", "raw_ack_kbps"},
        {"rtt_ms * 100.0", "raw_rtt_x100"},
        {"rtt_ms", "raw_rtt_ms"},
    };
    s.runtime_bugs = {
        {"ack_rate_mbp / 100.0", "typo_variable"},
        {"moving_average(ack_rate_mbps, 3)", "unknown_function"},
        {"ema(rtt_ms)", "bad_arity"},
        {"rtt_ms[12]", "index_out_of_range"},
        {"diff(current_rate_mbps)", "diff_of_scalar"},
        {"slice(ack_rate_mbps, 5, 3)", "bad_slice"},
        {"sqrt(0.0 - current_rate_mbps)", "sqrt_negative"},
        {"normalize_minmax(vec(8, 1.0))", "constant_minmax"},
        {"loss_fraction / (min_rtt_ms - min_rtt_ms)", "div_by_zero"},
        {"log(0.0 - current_rate_mbps)", "log_negative"},
    };
    s.ideas = {
        "keep the queue shallow while tracking the bottleneck rate",
        "expose delivery-rate dynamics so the policy can probe safely",
        "let the policy see RTT inflation building before loss appears",
        "predict achievable throughput instead of only reacting to loss",
        "simplify the state to the signals AIMD itself reacts to",
        "normalize against the path's own minimum RTT",
        "smooth noisy per-interval measurements before the network",
    };
    s.keyword_typos = {
        {"emit \"ack_rate\"", "emti \"ack_rate\""},
        {"emit \"loss\"", "emitt \"loss\""},
    };
    s.truncation_tail = "emit \"extra_feature\" = clip(ack_rate_mbps / (\n";
    return s;
  }();
  return kSpace;
}

const StateVariant& pick(util::Rng& rng,
                         const std::vector<StateVariant>& table) {
  return table[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(table.size()) - 1))];
}

const StateVariant& pick_mutated(util::Rng& rng,
                                 const std::vector<StateVariant>& table,
                                 double mutate_prob) {
  if (table.size() > 1 && rng.bernoulli(mutate_prob)) {
    // Pick any non-original variant.
    return table[static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(table.size()) - 1))];
  }
  return table[0];
}

}  // namespace

const StateSpace& abr_state_space() { return build_abr_space(); }

const StateSpace& cc_state_space() { return build_cc_space(); }

StateGenerator::StateGenerator(const StateSpace& space,
                               const LlmProfile& profile,
                               const PromptStrategy& strategy,
                               std::uint64_t seed)
    : space_(&space), profile_(profile.with_strategy(strategy)), seed_(seed),
      rng_(seed) {
  std::string prefix = util::to_lower(profile_.name);
  std::erase_if(prefix, [](char c) { return c == '.' || c == ' '; });
  // ABR keeps its historical "<profile>-state-<n>" ids (journaled records
  // carry them); other domains name themselves.
  id_stem_ = space_->domain == "abr"
                 ? prefix + "-state-"
                 : prefix + "-" + space_->domain + "-state-";
}

StateGenerator::StateGenerator(const LlmProfile& profile,
                               const PromptStrategy& strategy,
                               std::uint64_t seed)
    : StateGenerator(abr_state_space(), profile, strategy, seed) {}

void StateGenerator::reset() {
  rng_.reseed(seed_);
  counter_ = 0;
}

std::vector<StateGenerator::RowChoice> StateGenerator::sample_clean_rows() {
  const double mutate = 0.25 + 0.5 * profile_.creativity;
  std::vector<RowChoice> rows;

  for (const StateRowFamily& family : space_->core) {
    const StateVariant& v =
        pick_mutated(rng_, family.variants, mutate * family.mutate_scale);
    rows.push_back(RowChoice{family.row_name, v.expr, v.tag});
  }

  // Feature removal (overfitting countermeasure; which rows are fair game
  // is the domain's call).
  if (rng_.bernoulli(0.25 * profile_.creativity)) {
    const std::size_t n_remove = rng_.bernoulli(0.4) ? 2 : 1;
    for (std::size_t r = 0; r < n_remove; ++r) {
      const std::string& target = space_->removable[static_cast<std::size_t>(
          rng_.uniform_int(0,
                           static_cast<std::int64_t>(
                               space_->removable.size()) -
                               1))];
      std::erase_if(rows, [&target](const RowChoice& rc) {
        return rc.name == target;
      });
    }
  }

  // Additional engineered features.
  std::size_t extras = 0;
  double p_extra = 0.3 + 0.5 * profile_.creativity;
  while (extras < 3 && rng_.bernoulli(p_extra)) {
    const StateVariant& v = pick(rng_, space_->advanced);
    const std::string& name = v.tag;
    // Avoid duplicate rows.
    const bool duplicate =
        std::any_of(rows.begin(), rows.end(), [&name](const RowChoice& rc) {
          return rc.name == name;
        });
    if (!duplicate) {
      rows.push_back(RowChoice{name, v.expr, v.tag});
      ++extras;
    }
    p_extra *= 0.6;
  }
  return rows;
}

void StateGenerator::force_unnormalized(std::vector<RowChoice>& rows) {
  const StateVariant& v = pick(rng_, space_->unnormalized);
  // Replace a random row's expression with the raw-unit one.
  const auto idx = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(rows.size()) - 1));
  rows[idx].expr = v.expr;
  rows[idx].tag = v.tag;
}

void StateGenerator::inject_runtime_error(std::vector<RowChoice>& rows) {
  const StateVariant& v = pick(rng_, space_->runtime_bugs);
  const auto idx = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(rows.size()) - 1));
  rows[idx].expr = v.expr;
  rows[idx].tag = v.tag;
}

std::string StateGenerator::render(const std::vector<RowChoice>& rows,
                                   const std::string& idea_comment) {
  std::ostringstream out;
  out << "# Idea: " << idea_comment << "\n";
  for (const auto& row : rows) {
    out << "emit \"" << row.name << "\" = " << row.expr << ";\n";
  }
  return out.str();
}

std::string StateGenerator::corrupt_syntax(std::string source) {
  const std::string original = source;
  switch (rng_.uniform_int(0, 4)) {
    case 0:
      break;  // handled by the fallback below (drop a semicolon)
    case 1: {  // unbalanced parenthesis
      const auto pos = source.find('(');
      if (pos != std::string::npos) source.erase(pos, 1);
      break;
    }
    case 2:  // misspelled keyword
      for (const auto& [pattern, replacement] : space_->keyword_typos) {
        source = util::replace_all(std::move(source), pattern, replacement);
      }
      break;
    case 3:  // the model ran out of tokens mid-expression
      source += space_->truncation_tail;
      break;
    default:  // duplicated operator
      source = util::replace_all(std::move(source), " / ", " / / ");
      break;
  }
  if (source == original) {
    // Chosen corruption did not apply to this program; fall back to
    // deleting the first semicolon, which every program has.
    const auto pos = source.find(';');
    if (pos != std::string::npos) source.erase(pos, 1);
  }
  return source;
}

StateCandidate StateGenerator::generate() {
  StateCandidate cand;
  {
    std::ostringstream id;
    id << id_stem_ << counter_++;
    cand.id = id.str();
  }

  // Sample the candidate's fate. Mutually exclusive flaw classes keep the
  // aggregate rates directly interpretable against Table 2.
  const double roll = rng_.uniform();
  InjectedFlaw fate = InjectedFlaw::kNone;
  if (roll < profile_.p_syntax_error) {
    fate = InjectedFlaw::kSyntax;
  } else if (roll < profile_.p_syntax_error + profile_.p_runtime_error) {
    fate = InjectedFlaw::kRuntime;
  } else if (roll < profile_.p_syntax_error + profile_.p_runtime_error +
                        profile_.p_unnormalized) {
    fate = InjectedFlaw::kUnnormalized;
  }

  std::vector<RowChoice> rows = sample_clean_rows();
  if (fate == InjectedFlaw::kUnnormalized) force_unnormalized(rows);
  if (fate == InjectedFlaw::kRuntime) inject_runtime_error(rows);

  const std::string& idea = space_->ideas[static_cast<std::size_t>(
      rng_.uniform_int(0,
                       static_cast<std::int64_t>(space_->ideas.size()) - 1))];
  std::string source = render(rows, idea);
  if (fate == InjectedFlaw::kSyntax) source = corrupt_syntax(std::move(source));

  cand.source = std::move(source);
  cand.flaw = fate;
  for (const auto& row : rows) cand.feature_tags.push_back(row.tag);
  return cand;
}

std::vector<StateCandidate> StateGenerator::generate_batch(std::size_t n) {
  std::vector<StateCandidate> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(generate());
  return out;
}

}  // namespace nada::gen

#include "gen/state_gen.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace nada::gen {
namespace {

// Variant tables. Every entry here is a complete, well-normalized
// expression: under the fuzz observation ranges (throughput up to 400 Mbps,
// chunk sizes up to ~35 MB, buffers up to 60 s) all values stay well below
// the normalization threshold T=100.

struct Variant {
  const char* expr;
  const char* tag;
};

// -- core rows (Pensieve's six), index 0 is the original design
constexpr Variant kLastQuality[] = {
    {"last_bitrate_kbps / max_bitrate_kbps", "orig"},
    {"2.0 * (last_bitrate_kbps / max_bitrate_kbps) - 1.0", "range_pm1"},
    {"log1p(last_bitrate_kbps) / log1p(max_bitrate_kbps)", "log_quality"},
};

constexpr Variant kBuffer[] = {
    {"buffer_size_s / 10.0", "orig"},
    {"buffer_size_s / 60.0", "norm60"},
    {"buffer_size_s / 30.0 - 1.0", "range_pm1"},
    {"clip(buffer_size_s / 10.0, 0.0, 4.0)", "clipped"},
};

constexpr Variant kThroughput[] = {
    {"throughput_mbps / 8.0", "orig"},
    {"throughput_mbps / (max_bitrate_kbps / 1000.0)", "ladder_rel"},
    {"throughput_mbps / 4.0 - 1.0", "range_pm1"},
    {"smooth(throughput_mbps, 3) / 8.0", "smoothed"},
    {"smooth(throughput_mbps, 3) / (max_bitrate_kbps / 1000.0)",
     "smoothed_ladder_rel"},
    {"log1p(throughput_mbps) / 4.0", "log"},
    {"ema(throughput_mbps, 0.5) / 8.0", "ema"},
};

constexpr Variant kDownloadTime[] = {
    {"download_time_s / 10.0", "orig"},
    {"download_time_s / (chunk_length_s * 10.0)", "chunk_rel"},
    {"smooth(download_time_s, 3) / 10.0", "smoothed"},
    {"clip(download_time_s / 10.0, 0.0, 4.0)", "clipped"},
};

constexpr Variant kNextSizes[] = {
    {"next_chunk_sizes_bytes / 1000000.0", "orig"},
    {"next_chunk_sizes_bytes * 8.0 / (max_bitrate_kbps * 1000.0 * "
     "chunk_length_s)",
     "ladder_rel"},
    {"log1p(next_chunk_sizes_bytes) / 20.0", "log"},
};

constexpr Variant kChunksLeft[] = {
    {"chunks_remaining / total_chunks", "orig"},
    {"2.0 * (chunks_remaining / total_chunks) - 1.0", "range_pm1"},
};

// -- additional engineered features (§4's discoveries)
constexpr Variant kAdvanced[] = {
    {"ema_last(throughput_mbps, 0.4) / 8.0", "tput_ema_last"},
    {"std(throughput_mbps / 8.0)", "tput_std"},
    {"trend(throughput_mbps) / 8.0", "tput_trend"},
    {"linreg_predict(throughput_mbps) / 8.0", "tput_pred"},
    {"linreg_predict(throughput_mbps) / (max_bitrate_kbps / 1000.0)",
     "tput_pred_ladder"},
    {"linreg_predict(download_time_s) / 10.0", "dl_pred"},
    {"trend(download_time_s) / 10.0", "dl_trend"},
    {"buffer_size_s_history / 60.0", "buf_history"},
    {"trend(buffer_size_s_history) / chunk_length_s", "buf_trend"},
    {"diff(buffer_size_s_history) / 10.0", "buf_diff"},
    {"savgol(buffer_size_s_history) / 60.0", "buf_savgol"},
    {"std(buffer_size_s_history / 10.0)", "buf_std"},
    {"(buffer_size_s_history[-1] - buffer_size_s_history[-2]) / "
     "chunk_length_s",
     "buf_last_diff"},
    {"where(buffer_size_s > 15.0, 1.0, 0.0)", "buf_headroom_flag"},
    {"min(throughput_mbps / 8.0, vec(8, 1.0))", "tput_capped"},
};

// -- raw-unit variants (planted normalization failures): magnitudes exceed
// T=100 under the fuzz ranges with near-certainty.
constexpr Variant kUnnormalized[] = {
    {"throughput_mbps * 1000.0", "raw_tput_kbps"},
    {"next_chunk_sizes_bytes", "raw_sizes_bytes"},
    {"download_time_s * 1000.0", "raw_dl_ms"},
    {"last_bitrate_kbps", "raw_last_kbps"},
    {"next_chunk_sizes_bytes / 1000.0", "sizes_kb"},
};

// -- semantic bugs (planted compile/trial-run failures): each reliably
// throws during a trial run — undefined names, bad arity, bad indices,
// type errors. These mimic the Python exceptions the paper's compilation
// check catches.
constexpr Variant kRuntimeBugs[] = {
    {"throghput_mbps / 8.0", "typo_variable"},
    {"moving_average(throughput_mbps, 3)", "unknown_function"},
    {"ema(throughput_mbps)", "bad_arity"},
    {"throughput_mbps[12]", "index_out_of_range"},
    {"diff(buffer_size_s)", "diff_of_scalar"},
    {"slice(throughput_mbps, 5, 3)", "bad_slice"},
    {"sqrt(trend(throughput_mbps) - 100.0)", "sqrt_negative"},
    {"normalize_minmax(vec(8, 1.0))", "constant_minmax"},
    {"throughput_mbps / (buffer_size_s - buffer_size_s)", "div_by_zero"},
    {"log(trend(download_time_s) - 50.0)", "log_negative"},
};

const char* kIdeas[] = {
    "re-balance normalization ranges so features share scale",
    "expose short-term throughput dynamics to the policy",
    "let the policy see how the playback buffer has been evolving",
    "predict upcoming network conditions instead of only reacting",
    "simplify the state to reduce overfitting on small trace sets",
    "make normalization ladder-aware so high-bitrate regimes stay bounded",
    "smooth noisy measurements before they reach the network",
};

template <std::size_t N>
const Variant& pick(util::Rng& rng, const Variant (&table)[N]) {
  return table[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(N) - 1))];
}

template <std::size_t N>
const Variant& pick_mutated(util::Rng& rng, const Variant (&table)[N],
                            double mutate_prob) {
  if (N > 1 && rng.bernoulli(mutate_prob)) {
    // Pick any non-original variant.
    return table[static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(N) - 1))];
  }
  return table[0];
}

}  // namespace

StateGenerator::StateGenerator(const LlmProfile& profile,
                               const PromptStrategy& strategy,
                               std::uint64_t seed)
    : profile_(profile.with_strategy(strategy)), seed_(seed), rng_(seed) {
  id_prefix_ = util::to_lower(profile_.name);
  std::erase_if(id_prefix_, [](char c) { return c == '.' || c == ' '; });
}

void StateGenerator::reset() {
  rng_.reseed(seed_);
  counter_ = 0;
}

std::vector<StateGenerator::RowChoice> StateGenerator::sample_clean_rows() {
  const double mutate = 0.25 + 0.5 * profile_.creativity;
  std::vector<RowChoice> rows;

  auto add = [&rows](const std::string& name, const Variant& v) {
    rows.push_back(RowChoice{name, v.expr, v.tag});
  };

  add("last_quality", pick_mutated(rng_, kLastQuality, mutate * 0.5));
  add("buffer_s", pick_mutated(rng_, kBuffer, mutate * 0.5));
  add("throughput", pick_mutated(rng_, kThroughput, mutate));
  add("download_time", pick_mutated(rng_, kDownloadTime, mutate * 0.6));
  add("next_sizes", pick_mutated(rng_, kNextSizes, mutate * 0.8));
  add("chunks_left", pick_mutated(rng_, kChunksLeft, mutate * 0.3));

  // Feature removal (the paper's Starlink insight: drop download times and
  // next-chunk sizes to fight overfitting on small datasets).
  if (rng_.bernoulli(0.25 * profile_.creativity)) {
    static constexpr const char* kRemovable[] = {"download_time",
                                                 "next_sizes", "chunks_left"};
    const std::size_t n_remove =
        rng_.bernoulli(0.4) ? 2 : 1;
    for (std::size_t r = 0; r < n_remove; ++r) {
      const char* target =
          kRemovable[rng_.uniform_int(0, 2)];
      std::erase_if(rows, [target](const RowChoice& rc) {
        return rc.name == target;
      });
    }
  }

  // Additional engineered features.
  std::size_t extras = 0;
  double p_extra = 0.3 + 0.5 * profile_.creativity;
  while (extras < 3 && rng_.bernoulli(p_extra)) {
    const Variant& v = pick(rng_, kAdvanced);
    const std::string name = v.tag;
    // Avoid duplicate rows.
    const bool duplicate =
        std::any_of(rows.begin(), rows.end(), [&name](const RowChoice& rc) {
          return rc.name == name;
        });
    if (!duplicate) {
      rows.push_back(RowChoice{name, v.expr, v.tag});
      ++extras;
    }
    p_extra *= 0.6;
  }
  return rows;
}

void StateGenerator::force_unnormalized(std::vector<RowChoice>& rows) {
  const Variant& v = pick(rng_, kUnnormalized);
  // Replace a random row's expression with the raw-unit one.
  const auto idx = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(rows.size()) - 1));
  rows[idx].expr = v.expr;
  rows[idx].tag = v.tag;
}

void StateGenerator::inject_runtime_error(std::vector<RowChoice>& rows) {
  const Variant& v = pick(rng_, kRuntimeBugs);
  const auto idx = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(rows.size()) - 1));
  rows[idx].expr = v.expr;
  rows[idx].tag = v.tag;
}

std::string StateGenerator::render(const std::vector<RowChoice>& rows,
                                   const std::string& idea_comment) {
  std::ostringstream out;
  out << "# Idea: " << idea_comment << "\n";
  for (const auto& row : rows) {
    out << "emit \"" << row.name << "\" = " << row.expr << ";\n";
  }
  return out.str();
}

std::string StateGenerator::corrupt_syntax(std::string source) {
  const std::string original = source;
  switch (rng_.uniform_int(0, 4)) {
    case 0:
      break;  // handled by the fallback below (drop a semicolon)
    case 1: {  // unbalanced parenthesis
      const auto pos = source.find('(');
      if (pos != std::string::npos) source.erase(pos, 1);
      break;
    }
    case 2:  // misspelled keyword
      source = util::replace_all(std::move(source), "emit \"throughput\"",
                                 "emti \"throughput\"");
      source = util::replace_all(std::move(source), "emit \"buffer_s\"",
                                 "emitt \"buffer_s\"");
      break;
    case 3:  // the model ran out of tokens mid-expression
      source += "emit \"extra_feature\" = clip(throughput_mbps / (\n";
      break;
    default:  // duplicated operator
      source = util::replace_all(std::move(source), " / ", " / / ");
      break;
  }
  if (source == original) {
    // Chosen corruption did not apply to this program; fall back to
    // deleting the first semicolon, which every program has.
    const auto pos = source.find(';');
    if (pos != std::string::npos) source.erase(pos, 1);
  }
  return source;
}

StateCandidate StateGenerator::generate() {
  StateCandidate cand;
  {
    std::ostringstream id;
    id << id_prefix_ << "-state-" << counter_++;
    cand.id = id.str();
  }

  // Sample the candidate's fate. Mutually exclusive flaw classes keep the
  // aggregate rates directly interpretable against Table 2.
  const double roll = rng_.uniform();
  InjectedFlaw fate = InjectedFlaw::kNone;
  if (roll < profile_.p_syntax_error) {
    fate = InjectedFlaw::kSyntax;
  } else if (roll < profile_.p_syntax_error + profile_.p_runtime_error) {
    fate = InjectedFlaw::kRuntime;
  } else if (roll < profile_.p_syntax_error + profile_.p_runtime_error +
                        profile_.p_unnormalized) {
    fate = InjectedFlaw::kUnnormalized;
  }

  std::vector<RowChoice> rows = sample_clean_rows();
  if (fate == InjectedFlaw::kUnnormalized) force_unnormalized(rows);
  if (fate == InjectedFlaw::kRuntime) inject_runtime_error(rows);

  const char* idea =
      kIdeas[rng_.uniform_int(0, std::size(kIdeas) - 1)];
  std::string source = render(rows, idea);
  if (fate == InjectedFlaw::kSyntax) source = corrupt_syntax(std::move(source));

  cand.source = std::move(source);
  cand.flaw = fate;
  for (const auto& row : rows) cand.feature_tags.push_back(row.tag);
  return cand;
}

std::vector<StateCandidate> StateGenerator::generate_batch(std::size_t n) {
  std::vector<StateCandidate> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(generate());
  return out;
}

}  // namespace nada::gen

// State-function candidate generator (the LLM stand-in for §2.1).
//
// Generates NadaScript programs by sampling a structured design space
// around a domain's original state function: per-row normalization
// variants (range remaps, factor changes, scale-aware remixes), feature
// removal, and additional engineered features (EMA/smoothed signals,
// variance, trends, linear-regression prediction, Savitzky-Golay
// smoothing) — the exact families of changes §4 reports the LLMs
// discovering. Flaws (syntax errors, semantic/runtime errors, raw-unit
// features) are injected at profile-calibrated rates; the downstream
// filters must detect them the hard way.
//
// The design space is data: a StateSpace bundles one domain's variant
// tables over that domain's binding vocabulary. abr_state_space() is the
// historical ABR space (sampling streams are bit-identical to the
// pre-StateSpace generator); cc_state_space() spans the congestion-control
// vocabulary (src/cc), so the same generator machinery produces CC
// candidates for the same funnel.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gen/profile.h"
#include "util/rng.h"

namespace nada::gen {

/// One candidate expression for a row, tagged for test/bench attribution.
struct StateVariant {
  std::string expr;
  std::string tag;
};

/// One core row of the domain's original design plus its well-normalized
/// mutations. variants[0] is the original expression.
struct StateRowFamily {
  std::string row_name;
  /// Multiplier on the profile's mutation probability for this row (rows
  /// central to the design mutate more).
  double mutate_scale = 1.0;
  std::vector<StateVariant> variants;
};

/// A domain's full candidate design space.
struct StateSpace {
  std::string domain;  ///< binding-vocabulary token ("abr", "cc")
  std::vector<StateRowFamily> core;
  /// Row names eligible for feature removal.
  std::vector<std::string> removable;
  /// Additional engineered features (row name = tag).
  std::vector<StateVariant> advanced;
  /// Raw-unit variants (planted normalization failures): magnitudes exceed
  /// T=100 under the domain's fuzz ranges with near-certainty.
  std::vector<StateVariant> unnormalized;
  /// Semantic bugs (planted compile/trial-run failures): each reliably
  /// throws during a trial run.
  std::vector<StateVariant> runtime_bugs;
  /// Idea comments prepended to generated programs.
  std::vector<std::string> ideas;
  /// Keyword misspellings applied by the syntax corruptor (pattern ->
  /// replacement over the rendered source).
  std::vector<std::pair<std::string, std::string>> keyword_typos;
  /// Appended when the "model ran out of tokens mid-expression".
  std::string truncation_tail;
};

/// The ABR design space around Pensieve's original state.
[[nodiscard]] const StateSpace& abr_state_space();

/// The congestion-control design space around default_cc_state_source().
[[nodiscard]] const StateSpace& cc_state_space();

struct StateCandidate {
  std::string id;       ///< e.g. "gpt4-state-00042" / "gpt4-cc-state-7"
  std::string source;   ///< NadaScript program text
  InjectedFlaw flaw = InjectedFlaw::kNone;  ///< ground truth for tests only
  std::vector<std::string> feature_tags;    ///< which templates were used
};

class StateGenerator {
 public:
  /// Samples from `space`. The space must outlive the generator.
  StateGenerator(const StateSpace& space, const LlmProfile& profile,
                 const PromptStrategy& strategy, std::uint64_t seed);

  /// ABR convenience: samples from abr_state_space().
  StateGenerator(const LlmProfile& profile, const PromptStrategy& strategy,
                 std::uint64_t seed);

  [[nodiscard]] StateCandidate generate();
  /// Pulls the next n candidates of the stream. The stream is windowed:
  /// consecutive calls continue where the last left off, and pulling it
  /// in any window sizes yields the identical candidate sequence — five
  /// generate_batch(7) calls produce byte-for-byte the ids and sources of
  /// one generate_batch(35) (tests/gen_test.cpp pins this; the streaming
  /// funnel's rolling windows rely on it).
  [[nodiscard]] std::vector<StateCandidate> generate_batch(std::size_t n);

  /// Rewinds the candidate stream to its start: after reset() the
  /// generator replays exactly the ids and sources it produced from
  /// construction. Resumed runs use this to re-derive the stream whose
  /// fingerprints the candidate store already journaled.
  void reset();

  /// Candidates generated since construction/reset() — the stream
  /// position of the next candidate (streaming jobs report window
  /// progress with it).
  [[nodiscard]] std::uint64_t position() const { return counter_; }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  [[nodiscard]] const LlmProfile& effective_profile() const {
    return profile_;
  }

  [[nodiscard]] const StateSpace& space() const { return *space_; }

 private:
  struct RowChoice {
    std::string name;
    std::string expr;
    std::string tag;
  };

  [[nodiscard]] std::vector<RowChoice> sample_clean_rows();
  void force_unnormalized(std::vector<RowChoice>& rows);
  void inject_runtime_error(std::vector<RowChoice>& rows);
  [[nodiscard]] static std::string render(
      const std::vector<RowChoice>& rows, const std::string& idea_comment);
  [[nodiscard]] std::string corrupt_syntax(std::string source);

  const StateSpace* space_;
  LlmProfile profile_;  // effective (strategy applied)
  std::uint64_t seed_ = 0;
  util::Rng rng_;
  std::uint64_t counter_ = 0;
  std::string id_stem_;
};

}  // namespace nada::gen

// State-function candidate generator (the LLM stand-in for §2.1).
//
// Generates NadaScript programs by sampling a structured design space
// around Pensieve's original state: per-row normalization variants (range
// remaps, factor changes, ladder-relative scaling), feature removal, and
// additional engineered features (EMA/smoothed throughput, variance,
// trends, linear-regression prediction, Savitzky-Golay buffer smoothing,
// buffer differences) — the exact families of changes §4 reports the LLMs
// discovering. Flaws (syntax errors, semantic/runtime errors, raw-unit
// features) are injected at profile-calibrated rates; the downstream
// filters must detect them the hard way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/profile.h"
#include "util/rng.h"

namespace nada::gen {

struct StateCandidate {
  std::string id;       ///< e.g. "gpt4-state-00042"
  std::string source;   ///< NadaScript program text
  InjectedFlaw flaw = InjectedFlaw::kNone;  ///< ground truth for tests only
  std::vector<std::string> feature_tags;    ///< which templates were used
};

class StateGenerator {
 public:
  StateGenerator(const LlmProfile& profile, const PromptStrategy& strategy,
                 std::uint64_t seed);

  [[nodiscard]] StateCandidate generate();
  [[nodiscard]] std::vector<StateCandidate> generate_batch(std::size_t n);

  /// Rewinds the candidate stream to its start: after reset() the
  /// generator replays exactly the ids and sources it produced from
  /// construction. Resumed runs use this to re-derive the stream whose
  /// fingerprints the candidate store already journaled.
  void reset();

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  [[nodiscard]] const LlmProfile& effective_profile() const {
    return profile_;
  }

 private:
  struct RowChoice {
    std::string name;
    std::string expr;
    std::string tag;
  };

  [[nodiscard]] std::vector<RowChoice> sample_clean_rows();
  void force_unnormalized(std::vector<RowChoice>& rows);
  void inject_runtime_error(std::vector<RowChoice>& rows);
  [[nodiscard]] static std::string render(
      const std::vector<RowChoice>& rows, const std::string& idea_comment);
  [[nodiscard]] std::string corrupt_syntax(std::string source);

  LlmProfile profile_;  // effective (strategy applied)
  std::uint64_t seed_ = 0;
  util::Rng rng_;
  std::uint64_t counter_ = 0;
  std::string id_prefix_;
};

}  // namespace nada::gen

#include "nn/arch.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace nada::nn {

const char* temporal_unit_name(TemporalUnit u) {
  switch (u) {
    case TemporalUnit::kConv1D: return "conv1d";
    case TemporalUnit::kRnn: return "rnn";
    case TemporalUnit::kLstm: return "lstm";
    case TemporalUnit::kDense: return "dense";
  }
  return "?";
}

std::string ArchSpec::describe() const {
  std::ostringstream out;
  out << "arch{" << temporal_unit_name(temporal);
  if (temporal == TemporalUnit::kConv1D) {
    out << "(f=" << conv_filters << ",k=" << conv_kernel << ")";
  } else if (temporal != TemporalUnit::kDense) {
    out << "(h=" << rnn_hidden << ")";
  }
  out << ", scalar=" << scalar_hidden << ", merge=" << merge_hidden << "x"
      << merge_layers << ", act=" << activation_name(activation)
      << (shared_trunk ? ", shared" : ", separate") << "}";
  return out.str();
}

ArchSpec ArchSpec::pensieve() { return ArchSpec{}; }

void validate_spec(const ArchSpec& spec, const StateSignature& sig) {
  if (sig.rows() == 0) throw ArchError("state signature has no rows");
  constexpr std::size_t kMaxWidth = 1024;
  auto check_width = [](std::size_t w, const char* what) {
    if (w == 0) throw ArchError(std::string(what) + " is zero");
    if (w > kMaxWidth) {
      throw ArchError(std::string(what) + " exceeds " +
                      std::to_string(kMaxWidth));
    }
  };
  check_width(spec.scalar_hidden, "scalar_hidden");
  check_width(spec.merge_hidden, "merge_hidden");
  if (spec.merge_layers == 0 || spec.merge_layers > 3) {
    throw ArchError("merge_layers must be in [1, 3]");
  }
  switch (spec.temporal) {
    case TemporalUnit::kConv1D: {
      check_width(spec.conv_filters, "conv_filters");
      if (spec.conv_kernel == 0) throw ArchError("conv_kernel is zero");
      const auto min_vec = [&sig] {
        std::size_t m = std::numeric_limits<std::size_t>::max();
        for (std::size_t len : sig.row_lengths) {
          if (len > 1) m = std::min(m, len);
        }
        return m;
      }();
      if (min_vec != std::numeric_limits<std::size_t>::max() &&
          spec.conv_kernel > min_vec) {
        throw ArchError("conv_kernel " + std::to_string(spec.conv_kernel) +
                        " larger than shortest vector row " +
                        std::to_string(min_vec));
      }
      break;
    }
    case TemporalUnit::kRnn:
    case TemporalUnit::kLstm:
      check_width(spec.rnn_hidden, "rnn_hidden");
      break;
    case TemporalUnit::kDense:
      break;
  }
}

// ---- Tower -----------------------------------------------------------------

Vec ActorCriticNet::Tower::forward(const std::vector<Vec>& rows) {
  if (rows.size() != branches.size()) {
    throw std::invalid_argument("Tower::forward: row count mismatch");
  }
  branch_offsets.assign(branches.size(), 0);
  concat_cache.clear();
  for (std::size_t i = 0; i < branches.size(); ++i) {
    branch_offsets[i] = concat_cache.size();
    const Vec out = branches[i]->forward(rows[i]);
    concat_cache.insert(concat_cache.end(), out.begin(), out.end());
  }
  Vec h = concat_cache;
  for (auto& layer : merge) h = layer->forward(h);
  if (head) h = head->forward(h);
  return h;
}

void ActorCriticNet::Tower::backward(const Vec& dhead) {
  Vec dh = dhead;
  if (head) dh = head->backward(dh);
  for (auto it = merge.rbegin(); it != merge.rend(); ++it) {
    dh = (*it)->backward(dh);
  }
  // Split the concat gradient back into branches (input grads discarded:
  // upstream is the observation, not a trainable tensor).
  for (std::size_t i = 0; i < branches.size(); ++i) {
    const std::size_t begin = branch_offsets[i];
    const std::size_t end = i + 1 < branches.size() ? branch_offsets[i + 1]
                                                    : dh.size();
    const Vec slice(dh.begin() + static_cast<std::ptrdiff_t>(begin),
                    dh.begin() + static_cast<std::ptrdiff_t>(end));
    branches[i]->backward(slice);
  }
}

Mat ActorCriticNet::Tower::forward_batch(const std::vector<Mat>& rows) {
  if (rows.size() != branches.size()) {
    throw std::invalid_argument("Tower::forward_batch: row count mismatch");
  }
  const std::size_t batch = rows.empty() ? 0 : rows.front().rows();
  branch_offsets_batch.assign(branches.size(), 0);
  std::vector<Mat> outs;
  outs.reserve(branches.size());
  std::size_t concat_dim = 0;
  for (std::size_t i = 0; i < branches.size(); ++i) {
    branch_offsets_batch[i] = concat_dim;
    outs.push_back(branches[i]->forward_batch(rows[i]));
    concat_dim += outs.back().cols();
  }
  concat_cols_batch = concat_dim;
  Mat h(batch, concat_dim);
  for (std::size_t i = 0; i < outs.size(); ++i) {
    for (std::size_t b = 0; b < batch; ++b) {
      std::copy(outs[i].row(b).begin(), outs[i].row(b).end(),
                h.row(b).begin() +
                    static_cast<std::ptrdiff_t>(branch_offsets_batch[i]));
    }
  }
  for (auto& layer : merge) h = layer->forward_batch(h);
  if (head) h = head->forward_batch(h);
  return h;
}

void ActorCriticNet::Tower::backward_batch(const Mat& dhead) {
  Mat dh = dhead;
  if (head) dh = head->backward_batch(dh);
  for (auto it = merge.rbegin(); it != merge.rend(); ++it) {
    dh = (*it)->backward_batch(dh);
  }
  // Split the concat gradient back into branches (input grads discarded:
  // upstream is the observation, not a trainable tensor).
  for (std::size_t i = 0; i < branches.size(); ++i) {
    const std::size_t begin = branch_offsets_batch[i];
    const std::size_t end = i + 1 < branches.size()
                                ? branch_offsets_batch[i + 1]
                                : concat_cols_batch;
    Mat slice(dh.rows(), end - begin);
    for (std::size_t b = 0; b < dh.rows(); ++b) {
      const auto src = dh.row(b);
      std::copy(src.begin() + static_cast<std::ptrdiff_t>(begin),
                src.begin() + static_cast<std::ptrdiff_t>(end),
                slice.row(b).begin());
    }
    branches[i]->backward_batch(slice);
  }
}

Vec ActorCriticNet::Tower::infer(const std::vector<Vec>& rows) const {
  if (rows.size() != branches.size()) {
    throw std::invalid_argument("Tower::infer: row count mismatch");
  }
  Vec h;
  for (std::size_t i = 0; i < branches.size(); ++i) {
    const Vec out = branches[i]->infer(rows[i]);
    h.insert(h.end(), out.begin(), out.end());
  }
  for (const auto& layer : merge) h = layer->infer(h);
  if (head) h = head->infer(h);
  return h;
}

void ActorCriticNet::Tower::sync_inference_cache() {
  for (auto& b : branches) b->sync_inference_cache();
  for (auto& m : merge) m->sync_inference_cache();
  if (head) head->sync_inference_cache();
}

void ActorCriticNet::Tower::begin_capture(std::size_t batch) {
  branch_offsets_batch.assign(branches.size(), 0);
  std::size_t concat_dim = 0;
  for (std::size_t i = 0; i < branches.size(); ++i) {
    branch_offsets_batch[i] = concat_dim;
    branches[i]->begin_capture(batch);
    concat_dim += branches[i]->out_dim();
  }
  concat_cols_batch = concat_dim;
  for (auto& m : merge) m->begin_capture(batch);
  if (head) head->begin_capture(batch);
}

Vec ActorCriticNet::Tower::forward_capture(const std::vector<Vec>& rows,
                                           std::size_t row) {
  if (rows.size() != branches.size()) {
    throw std::invalid_argument("Tower::forward_capture: row count mismatch");
  }
  Vec h;
  h.reserve(concat_cols_batch);
  for (std::size_t i = 0; i < branches.size(); ++i) {
    const Vec out = branches[i]->forward_capture(rows[i], row);
    h.insert(h.end(), out.begin(), out.end());
  }
  for (auto& layer : merge) h = layer->forward_capture(h, row);
  if (head) h = head->forward_capture(h, row);
  return h;
}

void ActorCriticNet::Tower::collect_params(std::vector<ParamRef>& out) {
  for (auto& b : branches) {
    for (auto p : b->params()) out.push_back(p);
  }
  for (auto& m : merge) {
    for (auto p : m->params()) out.push_back(p);
  }
  if (head) {
    for (auto p : head->params()) out.push_back(p);
  }
}

// ---- ActorCriticNet ---------------------------------------------------------

ActorCriticNet::Tower ActorCriticNet::build_tower(const StateSignature& sig,
                                                  std::size_t head_dim,
                                                  util::Rng& rng) const {
  Tower tower;
  std::size_t concat_dim = 0;
  for (std::size_t len : sig.row_lengths) {
    std::unique_ptr<Layer> branch;
    if (len <= 1) {
      branch = std::make_unique<Dense>(1, spec_.scalar_hidden,
                                       spec_.activation, rng);
    } else {
      switch (spec_.temporal) {
        case TemporalUnit::kConv1D:
          branch = std::make_unique<Conv1D>(len, spec_.conv_filters,
                                            spec_.conv_kernel,
                                            spec_.activation, rng);
          break;
        case TemporalUnit::kRnn:
          branch = std::make_unique<SimpleRnn>(len, spec_.rnn_hidden, rng);
          break;
        case TemporalUnit::kLstm:
          branch = std::make_unique<Lstm>(len, spec_.rnn_hidden, rng);
          break;
        case TemporalUnit::kDense:
          branch = std::make_unique<Dense>(len, spec_.scalar_hidden,
                                           spec_.activation, rng);
          break;
      }
    }
    concat_dim += branch->out_dim();
    tower.branches.push_back(std::move(branch));
  }
  std::size_t in_dim = concat_dim;
  for (std::size_t i = 0; i < spec_.merge_layers; ++i) {
    tower.merge.push_back(std::make_unique<Dense>(in_dim, spec_.merge_hidden,
                                                  spec_.activation, rng));
    in_dim = spec_.merge_hidden;
  }
  if (head_dim > 0) {
    tower.head =
        std::make_unique<Dense>(in_dim, head_dim, Activation::kLinear, rng);
  }
  return tower;
}

ActorCriticNet::ActorCriticNet(const ArchSpec& spec, const StateSignature& sig,
                               std::size_t num_actions, util::Rng& rng)
    : spec_(spec), sig_(sig), num_actions_(num_actions),
      shared_(spec.shared_trunk) {
  if (num_actions_ < 2) throw ArchError("need at least two actions");
  validate_spec(spec_, sig_);
  if (shared_) {
    trunk_ = build_tower(sig_, 0, rng);
    actor_head_ = std::make_unique<Dense>(spec_.merge_hidden, num_actions_,
                                          Activation::kLinear, rng);
    critic_head_ =
        std::make_unique<Dense>(spec_.merge_hidden, 1, Activation::kLinear,
                                rng);
  } else {
    actor_ = build_tower(sig_, num_actions_, rng);
    critic_ = build_tower(sig_, 1, rng);
  }
}

ActorCriticNet::Output ActorCriticNet::forward(
    const std::vector<Vec>& state_rows) {
  if (state_rows.size() != sig_.rows()) {
    throw std::invalid_argument("ActorCriticNet::forward: row count " +
                                std::to_string(state_rows.size()) +
                                " != signature " + std::to_string(sig_.rows()));
  }
  for (std::size_t i = 0; i < state_rows.size(); ++i) {
    const std::size_t expect = std::max<std::size_t>(sig_.row_lengths[i], 1);
    if (state_rows[i].size() != expect) {
      throw std::invalid_argument("ActorCriticNet::forward: row " +
                                  std::to_string(i) + " length mismatch");
    }
  }
  Output out;
  if (shared_) {
    trunk_out_cache_ = trunk_.forward(state_rows);
    out.logits = actor_head_->forward(trunk_out_cache_);
    out.value = critic_head_->forward(trunk_out_cache_)[0];
  } else {
    out.logits = actor_.forward(state_rows);
    out.value = critic_.forward(state_rows)[0];
  }
  out.probs = softmax(out.logits);
  return out;
}

void ActorCriticNet::backward(const Vec& dlogits, double dvalue) {
  if (dlogits.size() != num_actions_) {
    throw std::invalid_argument("ActorCriticNet::backward: dlogits size");
  }
  const Vec dvalue_vec{dvalue};
  if (shared_) {
    Vec dtrunk = actor_head_->backward(dlogits);
    const Vec dtrunk_v = critic_head_->backward(dvalue_vec);
    vec_add_inplace(dtrunk, dtrunk_v);
    trunk_.backward(dtrunk);
  } else {
    actor_.backward(dlogits);
    critic_.backward(dvalue_vec);
  }
}

ActorCriticNet::Output ActorCriticNet::forward_inference(
    const std::vector<Vec>& state_rows) const {
  if (state_rows.size() != sig_.rows()) {
    throw std::invalid_argument(
        "ActorCriticNet::forward_inference: row count " +
        std::to_string(state_rows.size()) + " != signature " +
        std::to_string(sig_.rows()));
  }
  for (std::size_t i = 0; i < state_rows.size(); ++i) {
    const std::size_t expect = std::max<std::size_t>(sig_.row_lengths[i], 1);
    if (state_rows[i].size() != expect) {
      throw std::invalid_argument("ActorCriticNet::forward_inference: row " +
                                  std::to_string(i) + " length mismatch");
    }
  }
  Output out;
  if (shared_) {
    const Vec trunk_out = trunk_.infer(state_rows);
    out.logits = actor_head_->infer(trunk_out);
    out.value = critic_head_->infer(trunk_out)[0];
  } else {
    out.logits = actor_.infer(state_rows);
    out.value = critic_.infer(state_rows)[0];
  }
  out.probs = softmax(out.logits);
  return out;
}

void ActorCriticNet::sync_inference_cache() {
  if (shared_) {
    trunk_.sync_inference_cache();
    actor_head_->sync_inference_cache();
    critic_head_->sync_inference_cache();
  } else {
    actor_.sync_inference_cache();
    critic_.sync_inference_cache();
  }
}

void ActorCriticNet::begin_batch_capture(std::size_t batch) {
  if (batch == 0) {
    throw std::invalid_argument("ActorCriticNet::begin_batch_capture: 0");
  }
  if (shared_) {
    trunk_.begin_capture(batch);
    actor_head_->begin_capture(batch);
    critic_head_->begin_capture(batch);
  } else {
    actor_.begin_capture(batch);
    critic_.begin_capture(batch);
  }
}

ActorCriticNet::Output ActorCriticNet::forward_capture(
    const std::vector<Vec>& state_rows, std::size_t row) {
  if (state_rows.size() != sig_.rows()) {
    throw std::invalid_argument("ActorCriticNet::forward_capture: row count " +
                                std::to_string(state_rows.size()) +
                                " != signature " +
                                std::to_string(sig_.rows()));
  }
  for (std::size_t i = 0; i < state_rows.size(); ++i) {
    const std::size_t expect = std::max<std::size_t>(sig_.row_lengths[i], 1);
    if (state_rows[i].size() != expect) {
      throw std::invalid_argument("ActorCriticNet::forward_capture: row " +
                                  std::to_string(i) + " length mismatch");
    }
  }
  Output out;
  if (shared_) {
    const Vec trunk_out = trunk_.forward_capture(state_rows, row);
    out.logits = actor_head_->forward_capture(trunk_out, row);
    out.value = critic_head_->forward_capture(trunk_out, row)[0];
  } else {
    out.logits = actor_.forward_capture(state_rows, row);
    out.value = critic_.forward_capture(state_rows, row)[0];
  }
  out.probs = softmax(out.logits);
  return out;
}

ActorCriticNet::BatchOutput ActorCriticNet::forward_batch(
    const std::vector<std::vector<Vec>>& state_rows) {
  const std::size_t batch = state_rows.size();
  if (batch == 0) {
    throw std::invalid_argument("ActorCriticNet::forward_batch: empty batch");
  }
  for (const auto& sample : state_rows) {
    if (sample.size() != sig_.rows()) {
      throw std::invalid_argument(
          "ActorCriticNet::forward_batch: row count " +
          std::to_string(sample.size()) + " != signature " +
          std::to_string(sig_.rows()));
    }
    for (std::size_t i = 0; i < sample.size(); ++i) {
      const std::size_t expect = std::max<std::size_t>(sig_.row_lengths[i], 1);
      if (sample[i].size() != expect) {
        throw std::invalid_argument("ActorCriticNet::forward_batch: row " +
                                    std::to_string(i) + " length mismatch");
      }
    }
  }
  // One input Mat per state row, shared by every tower that consumes it.
  std::vector<Mat> inputs;
  inputs.reserve(sig_.rows());
  for (std::size_t i = 0; i < sig_.rows(); ++i) {
    const std::size_t len = std::max<std::size_t>(sig_.row_lengths[i], 1);
    Mat x(batch, len);
    for (std::size_t b = 0; b < batch; ++b) {
      std::copy(state_rows[b][i].begin(), state_rows[b][i].end(),
                x.row(b).begin());
    }
    inputs.push_back(std::move(x));
  }

  BatchOutput out;
  out.values.resize(batch);
  if (shared_) {
    trunk_batch_cache_ = trunk_.forward_batch(inputs);
    out.logits = actor_head_->forward_batch(trunk_batch_cache_);
    const Mat values = critic_head_->forward_batch(trunk_batch_cache_);
    for (std::size_t b = 0; b < batch; ++b) out.values[b] = values(b, 0);
  } else {
    out.logits = actor_.forward_batch(inputs);
    const Mat values = critic_.forward_batch(inputs);
    for (std::size_t b = 0; b < batch; ++b) out.values[b] = values(b, 0);
  }
  out.probs.reserve(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    out.probs.push_back(softmax(out.logits.row(b)));
  }
  return out;
}

void ActorCriticNet::backward_batch(const Mat& dlogits, const Vec& dvalues) {
  if (dlogits.cols() != num_actions_ || dlogits.rows() != dvalues.size()) {
    throw std::invalid_argument("ActorCriticNet::backward_batch: shape");
  }
  Mat dvalue_col(dvalues.size(), 1);
  for (std::size_t b = 0; b < dvalues.size(); ++b) {
    dvalue_col(b, 0) = dvalues[b];
  }
  if (shared_) {
    Mat dtrunk = actor_head_->backward_batch(dlogits);
    const Mat dtrunk_v = critic_head_->backward_batch(dvalue_col);
    for (std::size_t j = 0; j < dtrunk.size(); ++j) {
      dtrunk.data()[j] += dtrunk_v.data()[j];
    }
    trunk_.backward_batch(dtrunk);
  } else {
    actor_.backward_batch(dlogits);
    critic_.backward_batch(dvalue_col);
  }
}

std::vector<ParamRef> ActorCriticNet::params() {
  std::vector<ParamRef> out;
  if (shared_) {
    trunk_.collect_params(out);
    for (auto p : actor_head_->params()) out.push_back(p);
    for (auto p : critic_head_->params()) out.push_back(p);
  } else {
    actor_.collect_params(out);
    critic_.collect_params(out);
  }
  return out;
}

void ActorCriticNet::zero_grad() {
  for (auto& p : params()) p.grad->zero();
}

Vec ActorCriticNet::get_weights() const {
  Vec flat;
  auto* self = const_cast<ActorCriticNet*>(this);
  for (const auto& p : self->params()) {
    const auto& d = p.value->data();
    flat.insert(flat.end(), d.begin(), d.end());
  }
  return flat;
}

void ActorCriticNet::set_weights(const Vec& weights) {
  std::size_t offset = 0;
  for (auto& p : params()) {
    auto& d = p.value->data();
    if (offset + d.size() > weights.size()) {
      throw std::invalid_argument("set_weights: vector too short");
    }
    std::copy(weights.begin() + static_cast<std::ptrdiff_t>(offset),
              weights.begin() + static_cast<std::ptrdiff_t>(offset + d.size()),
              d.begin());
    offset += d.size();
  }
  if (offset != weights.size()) {
    throw std::invalid_argument("set_weights: vector too long");
  }
}

std::size_t ActorCriticNet::num_params() const {
  auto* self = const_cast<ActorCriticNet*>(this);
  std::size_t total = 0;
  for (const auto& p : self->params()) total += p.value->size();
  return total;
}

}  // namespace nada::nn

// Actor-critic network architectures as data.
//
// NADA searches over neural network architectures expressed as code blocks;
// here the searchable space is ArchSpec — a declarative description covering
// Pensieve's original design and every architecture variant §4 of the paper
// reports the LLMs discovering: larger hidden layers, Leaky ReLU, RNN or
// LSTM replacing the 1D-CNN, and actor/critic sharing the hidden trunk.
//
// Instantiating an ActorCriticNet from a spec validates it; invalid specs
// throw ArchError — which is precisely what NADA's compilation check
// catches for architecture candidates.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "util/rng.h"

namespace nada::nn {

/// How vector-valued state rows (throughput history, etc.) are summarized.
enum class TemporalUnit { kConv1D, kRnn, kLstm, kDense };

[[nodiscard]] const char* temporal_unit_name(TemporalUnit u);

struct ArchSpec {
  TemporalUnit temporal = TemporalUnit::kConv1D;
  std::size_t conv_filters = 128;
  std::size_t conv_kernel = 4;
  std::size_t rnn_hidden = 128;
  std::size_t scalar_hidden = 128;  ///< dense units for scalar rows
  std::size_t merge_hidden = 128;   ///< width of post-concat dense layers
  std::size_t merge_layers = 1;     ///< how many post-concat dense layers
  Activation activation = Activation::kRelu;
  bool shared_trunk = false;  ///< actor & critic share branches + merge

  /// Human-readable single-line description (report/debug output).
  [[nodiscard]] std::string describe() const;

  /// Pensieve's original architecture.
  [[nodiscard]] static ArchSpec pensieve();
};

/// The shape of a state matrix: one entry per row; length 1 means scalar.
struct StateSignature {
  std::vector<std::size_t> row_lengths;

  [[nodiscard]] std::size_t rows() const { return row_lengths.size(); }
};

/// Thrown when a spec cannot be instantiated (the arch "compilation" error).
class ArchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Validates a spec against a signature; throws ArchError explaining the
/// first problem found.
void validate_spec(const ArchSpec& spec, const StateSignature& sig);

/// Actor-critic network instantiated from an ArchSpec.
///
/// forward() consumes the state rows; backward() takes the gradient of the
/// loss with respect to the actor logits and the critic value and
/// accumulates parameter gradients.
class ActorCriticNet {
 public:
  ActorCriticNet(const ArchSpec& spec, const StateSignature& sig,
                 std::size_t num_actions, util::Rng& rng);

  struct Output {
    Vec logits;
    Vec probs;      ///< softmax(logits)
    double value = 0.0;
  };

  Output forward(const std::vector<Vec>& state_rows);
  void backward(const Vec& dlogits, double dvalue);

  /// Inference-only forward: bit-identical outputs to forward(), but
  /// touches no layer caches (safe to interleave with a pending batched
  /// backward) and uses the layers' fast inference paths when
  /// sync_inference_cache() has been called since the last weight change.
  /// AbrAgent::decide — i.e. every greedy evaluation rollout — runs on
  /// this; training rollouts use forward_capture instead so the batch
  /// caches fill as a side effect.
  [[nodiscard]] Output forward_inference(
      const std::vector<Vec>& state_rows) const;

  /// Refreshes every layer's derived inference state (transposed weights).
  /// Call after construction and after each optimizer step when using
  /// forward_inference on the fast path.
  void sync_inference_cache();

  /// Batched actor-critic pass over many states at once (the probe
  /// trainer's per-epoch update path). Row b of every output is
  /// bit-identical to forward(state_rows[b]).
  struct BatchOutput {
    Mat logits;              ///< batch x num_actions
    std::vector<Vec> probs;  ///< per-sample softmax(logits row)
    Vec values;              ///< per-sample critic value
  };

  BatchOutput forward_batch(const std::vector<std::vector<Vec>>& state_rows);

  /// Batched gradient accumulation for the last forward_batch() or
  /// completed capture sequence. Parameter gradients accumulate in
  /// ascending sample order, bit-identical to a loop of single-sample
  /// forward()+backward() calls.
  void backward_batch(const Mat& dlogits, const Vec& dvalues);

  /// Row-at-a-time batched forward for rollouts: begin_batch_capture sizes
  /// every layer's batch caches for `batch` samples; each forward_capture
  /// computes one sample (bit-identical to forward(), on the fast
  /// inference path when synced) and fills that sample's cache row, so a
  /// full episode can go straight to backward_batch with no second
  /// forward pass.
  void begin_batch_capture(std::size_t batch);
  Output forward_capture(const std::vector<Vec>& state_rows,
                         std::size_t row);

  std::vector<ParamRef> params();
  void zero_grad();

  /// Flat weight vector (checkpointing / cloning across seeds).
  [[nodiscard]] Vec get_weights() const;
  void set_weights(const Vec& weights);
  [[nodiscard]] std::size_t num_params() const;

  [[nodiscard]] const ArchSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t num_actions() const { return num_actions_; }

 private:
  /// One branch-per-row + merge stack + linear head.
  struct Tower {
    std::vector<std::unique_ptr<Layer>> branches;
    std::vector<std::unique_ptr<Dense>> merge;
    std::unique_ptr<Dense> head;
    // forward caches
    std::vector<std::size_t> branch_offsets;
    Vec concat_cache;
    // batched forward caches (separate so rollout-time single-sample
    // forwards and the per-epoch batched update never clobber each other)
    std::vector<std::size_t> branch_offsets_batch;
    std::size_t concat_cols_batch = 0;

    Vec forward(const std::vector<Vec>& rows);
    /// Returns nothing useful upstream (inputs are the observation).
    void backward(const Vec& dhead);
    /// Batched twins: one Mat per branch, rows are samples.
    Mat forward_batch(const std::vector<Mat>& rows);
    void backward_batch(const Mat& dhead);
    /// Cache-free forward (same math, no state mutated).
    [[nodiscard]] Vec infer(const std::vector<Vec>& rows) const;
    void sync_inference_cache();
    /// Row-at-a-time capture twins of forward_batch/backward_batch.
    void begin_capture(std::size_t batch);
    Vec forward_capture(const std::vector<Vec>& rows, std::size_t row);
    void collect_params(std::vector<ParamRef>& out);
  };

  Tower build_tower(const StateSignature& sig, std::size_t head_dim,
                    util::Rng& rng) const;

  ArchSpec spec_;
  StateSignature sig_;
  std::size_t num_actions_;

  // Non-shared: actor_ and critic_ are full towers. Shared: trunk_ feeds
  // both linear heads.
  bool shared_;
  Tower actor_;
  Tower critic_;
  Tower trunk_;
  std::unique_ptr<Dense> actor_head_;
  std::unique_ptr<Dense> critic_head_;
  Vec trunk_out_cache_;
  Mat trunk_batch_cache_;
};

}  // namespace nada::nn

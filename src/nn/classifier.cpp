#include "nn/classifier.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nada::nn {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

namespace detail {

void train_bce(const std::vector<Vec>& features,
               const std::vector<double>& labels,
               const ClassifierTrainOptions& options,
               const std::function<double(const Vec&)>& forward,
               const std::function<void(double)>& backward,
               const std::function<std::vector<ParamRef>()>& params,
               util::Rng& rng) {
  if (features.size() != labels.size()) {
    throw std::invalid_argument("train_bce: features/labels size mismatch");
  }
  if (features.empty()) {
    throw std::invalid_argument("train_bce: empty training set");
  }
  for (double y : labels) {
    if (y < 0.0 || y > 1.0) {
      throw std::invalid_argument("train_bce: label outside [0, 1]");
    }
  }
  Adam optimizer(options.learning_rate);
  std::vector<std::size_t> order(features.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.shuffle(order);
    std::size_t in_batch = 0;
    for (std::size_t idx : order) {
      const double logit = forward(features[idx]);
      const double p = sigmoid(logit);
      // d(BCE)/d(logit) = p - y, averaged over the batch at step time.
      backward((p - labels[idx]) /
               static_cast<double>(options.batch_size));
      if (++in_batch == options.batch_size) {
        auto ps = params();
        if (options.l2 > 0.0) {
          for (auto& pr : ps) {
            const auto& w = pr.value->data();
            auto& g = pr.grad->data();
            for (std::size_t j = 0; j < w.size(); ++j) {
              g[j] += options.l2 * w[j];
            }
          }
        }
        Optimizer::clip_global_norm(ps, 5.0);
        optimizer.step(ps);
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      auto ps = params();
      Optimizer::clip_global_norm(ps, 5.0);
      optimizer.step(ps);
    }
  }
}

}  // namespace detail

// ---- Conv1DClassifier -------------------------------------------------------

Conv1DClassifier::Conv1DClassifier(std::size_t seq_len, std::size_t filters,
                                   std::size_t kernel, std::size_t hidden,
                                   util::Rng& rng)
    : seq_len_(seq_len),
      filters_(filters),
      out_len_(seq_len - kernel + 1),
      conv_(seq_len, filters, kernel, Activation::kRelu, rng),
      fc1_(filters, hidden, Activation::kRelu, rng),
      fc2_(hidden, 1, Activation::kLinear, rng),
      rng_(rng.fork()) {
  if (kernel > seq_len) {
    throw std::invalid_argument("Conv1DClassifier: kernel > seq_len");
  }
}

double Conv1DClassifier::forward_logit(const Vec& x) {
  if (x.size() != seq_len_) {
    throw std::invalid_argument("Conv1DClassifier: input size mismatch");
  }
  conv_out_cache_ = conv_.forward(x);
  // Global average pool over time (conv output is time-major).
  pooled_cache_.assign(filters_, 0.0);
  for (std::size_t t = 0; t < out_len_; ++t) {
    for (std::size_t f = 0; f < filters_; ++f) {
      pooled_cache_[f] += conv_out_cache_[t * filters_ + f];
    }
  }
  for (double& v : pooled_cache_) v /= static_cast<double>(out_len_);
  const Vec h = fc1_.forward(pooled_cache_);
  return fc2_.forward(h)[0];
}

void Conv1DClassifier::backward_logit(double dlogit) {
  const Vec dh = fc2_.backward(Vec{dlogit});
  const Vec dpool = fc1_.backward(dh);
  Vec dconv(out_len_ * filters_, 0.0);
  for (std::size_t t = 0; t < out_len_; ++t) {
    for (std::size_t f = 0; f < filters_; ++f) {
      dconv[t * filters_ + f] = dpool[f] / static_cast<double>(out_len_);
    }
  }
  conv_.backward(dconv);
}

double Conv1DClassifier::predict(const Vec& features) const {
  if (features.size() != seq_len_) {
    throw std::invalid_argument("Conv1DClassifier: input size mismatch");
  }
  // Cache-free inference path, so predict() is const and thread-safe on a
  // fitted model.
  const Vec conv_out = conv_.infer(features);
  Vec pooled(filters_, 0.0);
  for (std::size_t t = 0; t < out_len_; ++t) {
    for (std::size_t f = 0; f < filters_; ++f) {
      pooled[f] += conv_out[t * filters_ + f];
    }
  }
  for (double& v : pooled) v /= static_cast<double>(out_len_);
  return sigmoid(fc2_.infer(fc1_.infer(pooled))[0]);
}

void Conv1DClassifier::train(const std::vector<Vec>& features,
                             const std::vector<double>& labels,
                             const ClassifierTrainOptions& options) {
  detail::train_bce(
      features, labels, options,
      [this](const Vec& x) { return forward_logit(x); },
      [this](double d) { backward_logit(d); },
      [this] {
        std::vector<ParamRef> ps;
        for (auto p : conv_.params()) ps.push_back(p);
        for (auto p : fc1_.params()) ps.push_back(p);
        for (auto p : fc2_.params()) ps.push_back(p);
        return ps;
      },
      rng_);
}

// ---- MlpClassifier ----------------------------------------------------------

MlpClassifier::MlpClassifier(std::size_t input_dim,
                             std::vector<std::size_t> hidden, util::Rng& rng)
    : input_dim_(input_dim), rng_(rng.fork()) {
  if (input_dim_ == 0) throw std::invalid_argument("MlpClassifier: dim 0");
  std::size_t in = input_dim_;
  for (std::size_t h : hidden) {
    layers_.push_back(std::make_unique<Dense>(in, h, Activation::kRelu, rng));
    in = h;
  }
  layers_.push_back(std::make_unique<Dense>(in, 1, Activation::kLinear, rng));
}

double MlpClassifier::forward_logit(const Vec& x) {
  if (x.size() != input_dim_) {
    throw std::invalid_argument("MlpClassifier: input size mismatch");
  }
  Vec h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  return h[0];
}

void MlpClassifier::backward_logit(double dlogit) {
  Vec d{dlogit};
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    d = (*it)->backward(d);
  }
}

double MlpClassifier::predict(const Vec& features) const {
  if (features.size() != input_dim_) {
    throw std::invalid_argument("MlpClassifier: input size mismatch");
  }
  Vec h = features;
  for (const auto& layer : layers_) h = layer->infer(h);
  return sigmoid(h[0]);
}

void MlpClassifier::train(const std::vector<Vec>& features,
                          const std::vector<double>& labels,
                          const ClassifierTrainOptions& options) {
  detail::train_bce(
      features, labels, options,
      [this](const Vec& x) { return forward_logit(x); },
      [this](double d) { backward_logit(d); },
      [this] {
        std::vector<ParamRef> ps;
        for (auto& layer : layers_) {
          for (auto p : layer->params()) ps.push_back(p);
        }
        return ps;
      },
      rng_);
}

}  // namespace nada::nn

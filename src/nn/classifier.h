// Binary classifiers used by NADA's early-stopping filter.
//
// The paper's "Reward Only" method trains a one-dimensional CNN on the
// training rewards from the first K epochs and predicts whether a design
// will rank among the top performers. "Text Only" embeds the candidate's
// code and feeds an MLP; "Text + Reward" concatenates both feature sets.
// Both network shapes live here; the filtering logic (label smoothing,
// threshold tuning) lives in src/filter.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace nada::nn {

struct ClassifierTrainOptions {
  std::size_t epochs = 60;
  std::size_t batch_size = 16;
  double learning_rate = 1e-3;
  double l2 = 1e-4;  ///< weight decay applied through the gradient
};

/// Interface: score in (0, 1), higher = more likely positive.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Inference only: implementations must not touch training caches, so a
  /// fitted classifier can be scored through a const reference (and shared
  /// across threads).
  [[nodiscard]] virtual double predict(const Vec& features) const = 0;

  /// Trains with binary cross-entropy. `labels` must be in [0, 1]
  /// (soft labels are allowed — NADA's label-smoothing variant uses them).
  virtual void train(const std::vector<Vec>& features,
                     const std::vector<double>& labels,
                     const ClassifierTrainOptions& options) = 0;

  [[nodiscard]] virtual std::size_t input_dim() const = 0;
};

/// 1D-CNN over a fixed-length series: Conv1D -> ReLU -> global average
/// pooling per filter -> Dense -> Dense(1) -> sigmoid.
class Conv1DClassifier : public BinaryClassifier {
 public:
  Conv1DClassifier(std::size_t seq_len, std::size_t filters,
                   std::size_t kernel, std::size_t hidden, util::Rng& rng);

  double predict(const Vec& features) const override;
  void train(const std::vector<Vec>& features,
             const std::vector<double>& labels,
             const ClassifierTrainOptions& options) override;
  [[nodiscard]] std::size_t input_dim() const override { return seq_len_; }

 private:
  double forward_logit(const Vec& x);
  void backward_logit(double dlogit);

  std::size_t seq_len_, filters_, out_len_;
  Conv1D conv_;
  Dense fc1_;
  Dense fc2_;
  Vec conv_out_cache_;
  Vec pooled_cache_;
  util::Rng rng_;
};

/// Plain MLP classifier for embedding-style inputs.
class MlpClassifier : public BinaryClassifier {
 public:
  MlpClassifier(std::size_t input_dim, std::vector<std::size_t> hidden,
                util::Rng& rng);

  double predict(const Vec& features) const override;
  void train(const std::vector<Vec>& features,
             const std::vector<double>& labels,
             const ClassifierTrainOptions& options) override;
  [[nodiscard]] std::size_t input_dim() const override { return input_dim_; }

 private:
  double forward_logit(const Vec& x);
  void backward_logit(double dlogit);

  std::size_t input_dim_;
  std::vector<std::unique_ptr<Dense>> layers_;
  util::Rng rng_;
};

/// Shared training loop: BCE loss, Adam, shuffled mini-batches.
/// `forward` returns the pre-sigmoid logit for one sample and must cache
/// what `backward` needs; `backward` consumes d(loss)/d(logit).
namespace detail {
void train_bce(const std::vector<Vec>& features,
               const std::vector<double>& labels,
               const ClassifierTrainOptions& options,
               const std::function<double(const Vec&)>& forward,
               const std::function<void(double)>& backward,
               const std::function<std::vector<ParamRef>()>& params,
               util::Rng& rng);
}  // namespace detail

/// Logistic transform.
[[nodiscard]] double sigmoid(double z);

}  // namespace nada::nn

#include "nn/layers.h"

#include <cmath>
#include <stdexcept>

#include "nn/mat_kernels.h"

namespace nada::nn {

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::kLinear: return "linear";
    case Activation::kRelu: return "relu";
    case Activation::kLeakyRelu: return "leaky_relu";
    case Activation::kTanh: return "tanh";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kElu: return "elu";
  }
  return "?";
}

double activate(Activation a, double z) {
  switch (a) {
    case Activation::kLinear: return z;
    case Activation::kRelu: return z > 0.0 ? z : 0.0;
    case Activation::kLeakyRelu: return z > 0.0 ? z : 0.01 * z;
    case Activation::kTanh: return std::tanh(z);
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-z));
    case Activation::kElu: return z > 0.0 ? z : std::expm1(z);
  }
  return z;
}

double activate_grad(Activation a, double z, double y) {
  switch (a) {
    case Activation::kLinear: return 1.0;
    case Activation::kRelu: return z > 0.0 ? 1.0 : 0.0;
    case Activation::kLeakyRelu: return z > 0.0 ? 1.0 : 0.01;
    case Activation::kTanh: return 1.0 - y * y;
    case Activation::kSigmoid: return y * (1.0 - y);
    case Activation::kElu: return z > 0.0 ? 1.0 : y + 1.0;
  }
  return 1.0;
}

void Layer::zero_grad() {
  for (auto& p : params()) p.grad->zero();
}

// ---- Dense ----------------------------------------------------------------

Dense::Dense(std::size_t in, std::size_t out, Activation act, util::Rng& rng)
    : w_(out, in), dw_(out, in), b_(out, 1), db_(out, 1), act_(act) {
  if (act == Activation::kTanh || act == Activation::kSigmoid) {
    w_.init_xavier(rng);
  } else {
    w_.init_he(rng);
  }
}

Vec Dense::forward(const Vec& x) {
  if (x.size() != w_.cols()) {
    throw std::invalid_argument("Dense::forward: input size mismatch");
  }
  x_cache_ = x;
  z_cache_ = w_.matvec(x);
  for (std::size_t i = 0; i < z_cache_.size(); ++i) z_cache_[i] += b_(i, 0);
  y_cache_.resize(z_cache_.size());
  for (std::size_t i = 0; i < z_cache_.size(); ++i) {
    y_cache_[i] = activate(act_, z_cache_[i]);
  }
  return y_cache_;
}

Vec Dense::backward(const Vec& dy) {
  if (dy.size() != w_.rows()) {
    throw std::invalid_argument("Dense::backward: grad size mismatch");
  }
  Vec dz(dy.size());
  for (std::size_t i = 0; i < dy.size(); ++i) {
    dz[i] = dy[i] * activate_grad(act_, z_cache_[i], y_cache_[i]);
  }
  dw_.add_outer(dz, x_cache_);
  for (std::size_t i = 0; i < dz.size(); ++i) db_(i, 0) += dz[i];
  return w_.matvec_transposed(dz);
}

Vec Dense::infer(const Vec& x) const {
  if (x.size() != w_.cols()) {
    throw std::invalid_argument("Dense::infer: input size mismatch");
  }
  Vec z;
  if (!wt_cache_.empty()) {
    // Fast path over W^T: z[j] accumulates the k-th product at sweep k —
    // the same k-ascending chain as matvec, with a contiguous inner loop
    // dispatched to the active kernel flavor.
    z.assign(w_.rows(), 0.0);
    active_kernels().wt_axpy(wt_cache_.ptr(), x.data(), z.data(), x.size(),
                             w_.rows());
  } else {
    z = w_.matvec(x);
  }
  for (std::size_t i = 0; i < z.size(); ++i) {
    z[i] = activate(act_, z[i] + b_(i, 0));
  }
  return z;
}

void Dense::sync_inference_cache() { wt_cache_ = w_.transposed(); }

void Dense::begin_capture(std::size_t batch) {
  // Rows are fully overwritten by forward_capture, so the caches are only
  // reallocated when the episode length changes.
  if (xb_cache_.rows() != batch || xb_cache_.cols() != w_.cols()) {
    xb_cache_ = Mat(batch, w_.cols());
    zb_cache_ = Mat(batch, w_.rows());
    yb_cache_ = Mat(batch, w_.rows());
  }
}

Vec Dense::forward_capture(const Vec& x, std::size_t row) {
  if (x.size() != w_.cols()) {
    throw std::invalid_argument("Dense::forward_capture: input mismatch");
  }
  std::copy(x.begin(), x.end(), xb_cache_.row(row).begin());
  const std::size_t out = w_.rows();
  const auto zr = zb_cache_.row(row);
  if (!wt_cache_.empty()) {
    std::fill(zr.begin(), zr.end(), 0.0);
    active_kernels().wt_axpy(wt_cache_.ptr(), x.data(), zr.data(), x.size(),
                             out);
  } else {
    const Vec z = w_.matvec(x);
    std::copy(z.begin(), z.end(), zr.begin());
  }
  Vec y(out);
  const auto yr = yb_cache_.row(row);
  for (std::size_t i = 0; i < out; ++i) {
    zr[i] += b_(i, 0);
    y[i] = activate(act_, zr[i]);
    yr[i] = y[i];
  }
  return y;
}

Mat Dense::forward_batch(const Mat& x) {
  if (x.cols() != w_.cols()) {
    throw std::invalid_argument("Dense::forward_batch: input size mismatch");
  }
  xb_cache_ = x;
  // Both kernels produce the same k-ascending accumulation per output
  // element as matvec (bit-identical); the synced transpose enables the
  // contiguous axpy form, the unsynced fallback is the register-tiled
  // dot-product form with no transpose copy.
  zb_cache_ = wt_cache_.empty() ? matmul_nt(x, w_) : matmul(x, wt_cache_);
  const std::size_t out = w_.rows();
  for (std::size_t n = 0; n < x.rows(); ++n) {
    for (std::size_t i = 0; i < out; ++i) zb_cache_(n, i) += b_(i, 0);
  }
  yb_cache_ = zb_cache_;
  for (double& v : yb_cache_.data()) v = activate(act_, v);
  return yb_cache_;
}

Mat Dense::backward_batch(const Mat& dy) {
  if (dy.rows() != zb_cache_.rows() || dy.cols() != w_.rows()) {
    throw std::invalid_argument("Dense::backward_batch: grad shape mismatch");
  }
  Mat dz(dy.rows(), dy.cols());
  for (std::size_t j = 0; j < dz.size(); ++j) {
    dz.data()[j] =
        dy.data()[j] * activate_grad(act_, zb_cache_.data()[j],
                                     yb_cache_.data()[j]);
  }
  add_matmul_tn(dw_, dz, xb_cache_);
  for (std::size_t i = 0; i < dy.cols(); ++i) {
    double acc = db_(i, 0);
    for (std::size_t n = 0; n < dy.rows(); ++n) acc += dz(n, i);
    db_(i, 0) = acc;
  }
  return matmul(dz, w_);
}

std::vector<ParamRef> Dense::params() {
  return {{&w_, &dw_}, {&b_, &db_}};
}

// ---- Conv1D ---------------------------------------------------------------

Conv1D::Conv1D(std::size_t seq_len, std::size_t filters, std::size_t kernel,
               Activation act, util::Rng& rng)
    : seq_len_(seq_len),
      filters_(filters),
      kernel_(kernel),
      out_len_(0),
      w_(filters, kernel),
      dw_(filters, kernel),
      b_(filters, 1),
      db_(filters, 1),
      act_(act) {
  if (kernel_ == 0 || kernel_ > seq_len_) {
    throw std::invalid_argument("Conv1D: kernel must be in [1, seq_len]");
  }
  out_len_ = seq_len_ - kernel_ + 1;
  if (act == Activation::kTanh || act == Activation::kSigmoid) {
    w_.init_xavier(rng);
  } else {
    w_.init_he(rng);
  }
}

void Conv1D::conv_one(const double* x, double* z) const {
  if (!wt_cache_.empty()) {
    // Vectorized form over W^T: initialize with the bias, then add the
    // kernel taps k-ascending — the identical per-element chain as the
    // f-major loops below, dispatched to the active kernel flavor.
    const KernelTable& kernels = active_kernels();
    for (std::size_t t = 0; t < out_len_; ++t) {
      double* zt = z + t * filters_;
      for (std::size_t f = 0; f < filters_; ++f) zt[f] = b_(f, 0);
      kernels.wt_axpy(wt_cache_.ptr(), x + t, zt, kernel_, filters_);
    }
    return;
  }
  for (std::size_t t = 0; t < out_len_; ++t) {
    for (std::size_t f = 0; f < filters_; ++f) {
      double acc = b_(f, 0);
      for (std::size_t k = 0; k < kernel_; ++k) {
        acc += w_(f, k) * x[t + k];
      }
      z[t * filters_ + f] = acc;
    }
  }
}

void Conv1D::sync_inference_cache() { wt_cache_ = w_.transposed(); }

void Conv1D::begin_capture(std::size_t batch) {
  if (xb_cache_.rows() != batch || xb_cache_.cols() != seq_len_) {
    xb_cache_ = Mat(batch, seq_len_);
    zb_cache_ = Mat(batch, out_len_ * filters_);
    yb_cache_ = Mat(batch, out_len_ * filters_);
  }
}

Vec Conv1D::forward_capture(const Vec& x, std::size_t row) {
  if (x.size() != seq_len_) {
    throw std::invalid_argument("Conv1D::forward_capture: input mismatch");
  }
  std::copy(x.begin(), x.end(), xb_cache_.row(row).begin());
  const auto zr = zb_cache_.row(row);
  conv_one(x.data(), zr.data());
  Vec y(out_len_ * filters_);
  const auto yr = yb_cache_.row(row);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = activate(act_, zr[i]);
    yr[i] = y[i];
  }
  return y;
}

Vec Conv1D::forward(const Vec& x) {
  if (x.size() != seq_len_) {
    throw std::invalid_argument("Conv1D::forward: input size mismatch");
  }
  x_cache_ = x;
  z_cache_.assign(out_len_ * filters_, 0.0);
  // Training forward always reads the live weights directly — never the
  // synced transpose — so plain forward/backward training loops stay
  // correct on a layer whose inference cache has gone stale.
  for (std::size_t t = 0; t < out_len_; ++t) {
    for (std::size_t f = 0; f < filters_; ++f) {
      double acc = b_(f, 0);
      for (std::size_t k = 0; k < kernel_; ++k) {
        acc += w_(f, k) * x[t + k];
      }
      z_cache_[t * filters_ + f] = acc;
    }
  }
  y_cache_.resize(z_cache_.size());
  for (std::size_t i = 0; i < z_cache_.size(); ++i) {
    y_cache_[i] = activate(act_, z_cache_[i]);
  }
  return y_cache_;
}

Vec Conv1D::backward(const Vec& dy) {
  if (dy.size() != out_len_ * filters_) {
    throw std::invalid_argument("Conv1D::backward: grad size mismatch");
  }
  Vec dx(seq_len_, 0.0);
  for (std::size_t t = 0; t < out_len_; ++t) {
    for (std::size_t f = 0; f < filters_; ++f) {
      const std::size_t idx = t * filters_ + f;
      const double dz = dy[idx] * activate_grad(act_, z_cache_[idx],
                                                y_cache_[idx]);
      db_(f, 0) += dz;
      for (std::size_t k = 0; k < kernel_; ++k) {
        dw_(f, k) += dz * x_cache_[t + k];
        dx[t + k] += dz * w_(f, k);
      }
    }
  }
  return dx;
}

Vec Conv1D::infer(const Vec& x) const {
  if (x.size() != seq_len_) {
    throw std::invalid_argument("Conv1D::infer: input size mismatch");
  }
  Vec y(out_len_ * filters_);
  conv_one(x.data(), y.data());
  for (double& v : y) v = activate(act_, v);
  return y;
}

Mat Conv1D::forward_batch(const Mat& x) {
  if (x.cols() != seq_len_) {
    throw std::invalid_argument("Conv1D::forward_batch: input size mismatch");
  }
  xb_cache_ = x;
  zb_cache_ = Mat(x.rows(), out_len_ * filters_);
  for (std::size_t n = 0; n < x.rows(); ++n) {
    conv_one(x.row(n).data(), zb_cache_.row(n).data());
  }
  yb_cache_ = zb_cache_;
  for (double& v : yb_cache_.data()) v = activate(act_, v);
  return yb_cache_;
}

Mat Conv1D::backward_batch(const Mat& dy) {
  if (dy.rows() != zb_cache_.rows() || dy.cols() != out_len_ * filters_) {
    throw std::invalid_argument("Conv1D::backward_batch: grad shape mismatch");
  }
  Mat dx(dy.rows(), seq_len_);
  for (std::size_t n = 0; n < dy.rows(); ++n) {
    const auto xr = xb_cache_.row(n);
    const auto dyr = dy.row(n);
    const auto zr = zb_cache_.row(n);
    const auto yr = yb_cache_.row(n);
    const auto dxr = dx.row(n);
    for (std::size_t t = 0; t < out_len_; ++t) {
      for (std::size_t f = 0; f < filters_; ++f) {
        const std::size_t idx = t * filters_ + f;
        const double dz = dyr[idx] * activate_grad(act_, zr[idx], yr[idx]);
        db_(f, 0) += dz;
        for (std::size_t k = 0; k < kernel_; ++k) {
          dw_(f, k) += dz * xr[t + k];
          dxr[t + k] += dz * w_(f, k);
        }
      }
    }
  }
  return dx;
}

std::vector<ParamRef> Conv1D::params() {
  return {{&w_, &dw_}, {&b_, &db_}};
}

// ---- SimpleRnn -------------------------------------------------------------

SimpleRnn::SimpleRnn(std::size_t seq_len, std::size_t hidden, util::Rng& rng)
    : seq_len_(seq_len),
      hidden_(hidden),
      wx_(hidden, 1),
      dwx_(hidden, 1),
      wh_(hidden, hidden),
      dwh_(hidden, hidden),
      b_(hidden, 1),
      db_(hidden, 1) {
  wx_.init_xavier(rng);
  wh_.init_xavier(rng);
}

Vec SimpleRnn::forward(const Vec& x) {
  if (x.size() != seq_len_) {
    throw std::invalid_argument("SimpleRnn::forward: input size mismatch");
  }
  x_cache_ = x;
  h_cache_.assign(seq_len_ + 1, Vec(hidden_, 0.0));
  for (std::size_t t = 0; t < seq_len_; ++t) {
    const Vec wh_h = wh_.matvec(h_cache_[t]);
    for (std::size_t i = 0; i < hidden_; ++i) {
      h_cache_[t + 1][i] =
          std::tanh(wx_(i, 0) * x[t] + wh_h[i] + b_(i, 0));
    }
  }
  return h_cache_.back();
}

Vec SimpleRnn::backward(const Vec& dy) {
  if (dy.size() != hidden_) {
    throw std::invalid_argument("SimpleRnn::backward: grad size mismatch");
  }
  Vec dx(seq_len_, 0.0);
  Vec dh = dy;  // gradient flowing into h_t
  for (std::size_t t = seq_len_; t-- > 0;) {
    const Vec& h_next = h_cache_[t + 1];
    Vec dz(hidden_);
    for (std::size_t i = 0; i < hidden_; ++i) {
      dz[i] = dh[i] * (1.0 - h_next[i] * h_next[i]);  // tanh'
    }
    for (std::size_t i = 0; i < hidden_; ++i) {
      dwx_(i, 0) += dz[i] * x_cache_[t];
      db_(i, 0) += dz[i];
      dx[t] += dz[i] * wx_(i, 0);
    }
    dwh_.add_outer(dz, h_cache_[t]);
    dh = wh_.matvec_transposed(dz);
  }
  return dx;
}

Vec SimpleRnn::infer(const Vec& x) const {
  if (x.size() != seq_len_) {
    throw std::invalid_argument("SimpleRnn::infer: input size mismatch");
  }
  Vec h(hidden_, 0.0);
  Vec h_next(hidden_);
  for (std::size_t t = 0; t < seq_len_; ++t) {
    const Vec wh_h = wh_.matvec(h);
    for (std::size_t i = 0; i < hidden_; ++i) {
      h_next[i] = std::tanh(wx_(i, 0) * x[t] + wh_h[i] + b_(i, 0));
    }
    std::swap(h, h_next);
  }
  return h;
}

Mat SimpleRnn::forward_batch(const Mat& x) {
  if (x.cols() != seq_len_) {
    throw std::invalid_argument("SimpleRnn::forward_batch: input mismatch");
  }
  xb_cache_ = x;
  hb_cache_.assign(x.rows(), {});
  Mat out(x.rows(), hidden_);
  for (std::size_t n = 0; n < x.rows(); ++n) {
    const auto xr = x.row(n);
    auto& h_cache = hb_cache_[n];
    h_cache.assign(seq_len_ + 1, Vec(hidden_, 0.0));
    for (std::size_t t = 0; t < seq_len_; ++t) {
      const Vec wh_h = wh_.matvec(h_cache[t]);
      for (std::size_t i = 0; i < hidden_; ++i) {
        h_cache[t + 1][i] =
            std::tanh(wx_(i, 0) * xr[t] + wh_h[i] + b_(i, 0));
      }
    }
    std::copy(h_cache.back().begin(), h_cache.back().end(),
              out.row(n).begin());
  }
  return out;
}

void SimpleRnn::begin_capture(std::size_t batch) {
  if (xb_cache_.rows() != batch || xb_cache_.cols() != seq_len_) {
    xb_cache_ = Mat(batch, seq_len_);
  }
  hb_cache_.resize(batch);  // per-row recurrences overwrite their slot
}

Vec SimpleRnn::forward_capture(const Vec& x, std::size_t row) {
  if (x.size() != seq_len_) {
    throw std::invalid_argument("SimpleRnn::forward_capture: input mismatch");
  }
  std::copy(x.begin(), x.end(), xb_cache_.row(row).begin());
  auto& h_cache = hb_cache_[row];
  h_cache.assign(seq_len_ + 1, Vec(hidden_, 0.0));
  for (std::size_t t = 0; t < seq_len_; ++t) {
    const Vec wh_h = wh_.matvec(h_cache[t]);
    for (std::size_t i = 0; i < hidden_; ++i) {
      h_cache[t + 1][i] = std::tanh(wx_(i, 0) * x[t] + wh_h[i] + b_(i, 0));
    }
  }
  return h_cache.back();
}

Mat SimpleRnn::backward_batch(const Mat& dy) {
  if (dy.rows() != xb_cache_.rows() || dy.cols() != hidden_) {
    throw std::invalid_argument("SimpleRnn::backward_batch: grad mismatch");
  }
  Mat dx(dy.rows(), seq_len_);
  for (std::size_t n = 0; n < dy.rows(); ++n) {
    const auto xr = xb_cache_.row(n);
    const auto dxr = dx.row(n);
    const auto& h_cache = hb_cache_[n];
    Vec dh(dy.row(n).begin(), dy.row(n).end());
    for (std::size_t t = seq_len_; t-- > 0;) {
      const Vec& h_next = h_cache[t + 1];
      Vec dz(hidden_);
      for (std::size_t i = 0; i < hidden_; ++i) {
        dz[i] = dh[i] * (1.0 - h_next[i] * h_next[i]);  // tanh'
      }
      for (std::size_t i = 0; i < hidden_; ++i) {
        dwx_(i, 0) += dz[i] * xr[t];
        db_(i, 0) += dz[i];
        dxr[t] += dz[i] * wx_(i, 0);
      }
      dwh_.add_outer(dz, h_cache[t]);
      dh = wh_.matvec_transposed(dz);
    }
  }
  return dx;
}

std::vector<ParamRef> SimpleRnn::params() {
  return {{&wx_, &dwx_}, {&wh_, &dwh_}, {&b_, &db_}};
}

// ---- Lstm -------------------------------------------------------------------

Lstm::Lstm(std::size_t seq_len, std::size_t hidden, util::Rng& rng)
    : seq_len_(seq_len),
      hidden_(hidden),
      w_(4 * hidden, 1 + hidden),
      dw_(4 * hidden, 1 + hidden),
      b_(4 * hidden, 1),
      db_(4 * hidden, 1) {
  w_.init_xavier(rng);
  // Forget-gate bias of 1.0, the standard trick for gradient flow early in
  // training.
  for (std::size_t i = 0; i < hidden_; ++i) b_(hidden_ + i, 0) = 1.0;
}

Vec Lstm::forward_one(std::span<const double> x,
                      std::vector<StepCache>& steps) const {
  steps.clear();
  steps.reserve(seq_len_);
  Vec h(hidden_, 0.0);
  Vec c(hidden_, 0.0);
  for (std::size_t t = 0; t < seq_len_; ++t) {
    // z = W [x_t; h_{t-1}] + b, split into i, f, g, o.
    Vec input(1 + hidden_);
    input[0] = x[t];
    for (std::size_t i = 0; i < hidden_; ++i) input[1 + i] = h[i];
    const Vec z = w_.matvec(input);
    StepCache sc;
    sc.i.resize(hidden_);
    sc.f.resize(hidden_);
    sc.g.resize(hidden_);
    sc.o.resize(hidden_);
    sc.c.resize(hidden_);
    sc.h.resize(hidden_);
    for (std::size_t i = 0; i < hidden_; ++i) {
      sc.i[i] = activate(Activation::kSigmoid, z[i] + b_(i, 0));
      sc.f[i] = activate(Activation::kSigmoid,
                         z[hidden_ + i] + b_(hidden_ + i, 0));
      sc.g[i] = std::tanh(z[2 * hidden_ + i] + b_(2 * hidden_ + i, 0));
      sc.o[i] = activate(Activation::kSigmoid,
                         z[3 * hidden_ + i] + b_(3 * hidden_ + i, 0));
      sc.c[i] = sc.f[i] * c[i] + sc.i[i] * sc.g[i];
      sc.h[i] = sc.o[i] * std::tanh(sc.c[i]);
    }
    h = sc.h;
    c = sc.c;
    steps.push_back(std::move(sc));
  }
  return h;
}

Vec Lstm::forward(const Vec& x) {
  if (x.size() != seq_len_) {
    throw std::invalid_argument("Lstm::forward: input size mismatch");
  }
  x_cache_ = x;
  return forward_one(x, steps_);
}

void Lstm::backward_one(std::span<const double> x,
                        const std::vector<StepCache>& steps, const Vec& dy,
                        std::span<double> dx) {
  Vec dh = dy;
  Vec dc(hidden_, 0.0);
  const Vec zeros(hidden_, 0.0);
  for (std::size_t t = seq_len_; t-- > 0;) {
    const StepCache& sc = steps[t];
    const Vec& c_prev = t > 0 ? steps[t - 1].c : zeros;
    const Vec& h_prev = t > 0 ? steps[t - 1].h : zeros;
    Vec dz(4 * hidden_);
    for (std::size_t i = 0; i < hidden_; ++i) {
      const double tanh_c = std::tanh(sc.c[i]);
      const double do_ = dh[i] * tanh_c;
      const double dct = dh[i] * sc.o[i] * (1.0 - tanh_c * tanh_c) + dc[i];
      const double di = dct * sc.g[i];
      const double df = dct * c_prev[i];
      const double dg = dct * sc.i[i];
      dz[i] = di * sc.i[i] * (1.0 - sc.i[i]);
      dz[hidden_ + i] = df * sc.f[i] * (1.0 - sc.f[i]);
      dz[2 * hidden_ + i] = dg * (1.0 - sc.g[i] * sc.g[i]);
      dz[3 * hidden_ + i] = do_ * sc.o[i] * (1.0 - sc.o[i]);
      dc[i] = dct * sc.f[i];
    }
    Vec input(1 + hidden_);
    input[0] = x[t];
    for (std::size_t i = 0; i < hidden_; ++i) input[1 + i] = h_prev[i];
    dw_.add_outer(dz, input);
    for (std::size_t i = 0; i < 4 * hidden_; ++i) db_(i, 0) += dz[i];
    const Vec dinput = w_.matvec_transposed(dz);
    dx[t] += dinput[0];
    dh.assign(dinput.begin() + 1, dinput.end());
  }
}

Vec Lstm::backward(const Vec& dy) {
  if (dy.size() != hidden_) {
    throw std::invalid_argument("Lstm::backward: grad size mismatch");
  }
  Vec dx(seq_len_, 0.0);
  backward_one(x_cache_, steps_, dy, dx);
  return dx;
}

Vec Lstm::infer(const Vec& x) const {
  if (x.size() != seq_len_) {
    throw std::invalid_argument("Lstm::infer: input size mismatch");
  }
  std::vector<StepCache> steps;
  return forward_one(x, steps);
}

Mat Lstm::forward_batch(const Mat& x) {
  if (x.cols() != seq_len_) {
    throw std::invalid_argument("Lstm::forward_batch: input size mismatch");
  }
  xb_cache_ = x;
  steps_batch_.assign(x.rows(), {});
  Mat out(x.rows(), hidden_);
  for (std::size_t n = 0; n < x.rows(); ++n) {
    const Vec h = forward_one(x.row(n), steps_batch_[n]);
    std::copy(h.begin(), h.end(), out.row(n).begin());
  }
  return out;
}

void Lstm::begin_capture(std::size_t batch) {
  if (xb_cache_.rows() != batch || xb_cache_.cols() != seq_len_) {
    xb_cache_ = Mat(batch, seq_len_);
  }
  steps_batch_.resize(batch);  // forward_one clears its slot per row
}

Vec Lstm::forward_capture(const Vec& x, std::size_t row) {
  if (x.size() != seq_len_) {
    throw std::invalid_argument("Lstm::forward_capture: input mismatch");
  }
  std::copy(x.begin(), x.end(), xb_cache_.row(row).begin());
  return forward_one(x, steps_batch_[row]);
}

Mat Lstm::backward_batch(const Mat& dy) {
  if (dy.rows() != xb_cache_.rows() || dy.cols() != hidden_) {
    throw std::invalid_argument("Lstm::backward_batch: grad shape mismatch");
  }
  Mat dx(dy.rows(), seq_len_);
  for (std::size_t n = 0; n < dy.rows(); ++n) {
    const Vec dyn(dy.row(n).begin(), dy.row(n).end());
    backward_one(xb_cache_.row(n), steps_batch_[n], dyn, dx.row(n));
  }
  return dx;
}

std::vector<ParamRef> Lstm::params() {
  return {{&w_, &dw_}, {&b_, &db_}};
}

}  // namespace nada::nn

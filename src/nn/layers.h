// Neural network layers with explicit forward/backward passes.
//
// Each layer caches its most recent forward inputs; backward() consumes the
// upstream gradient, accumulates parameter gradients (so multi-step A2C
// batches sum naturally), and returns the gradient with respect to the
// layer input. Networks are single-sample — ABR decisions are made one
// state at a time and batches are accumulated across rollout steps.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "nn/mat.h"
#include "util/rng.h"

namespace nada::nn {

enum class Activation { kLinear, kRelu, kLeakyRelu, kTanh, kSigmoid, kElu };

[[nodiscard]] const char* activation_name(Activation a);
[[nodiscard]] double activate(Activation a, double z);
/// Derivative with respect to pre-activation z, given z and y=activate(z).
[[nodiscard]] double activate_grad(Activation a, double z, double y);

/// A trainable parameter and its gradient accumulator.
struct ParamRef {
  Mat* value = nullptr;
  Mat* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output, caching what backward needs.
  virtual Vec forward(const Vec& x) = 0;

  /// Backpropagates dy (gradient of loss wrt output); accumulates parameter
  /// gradients and returns gradient wrt the input of the last forward().
  virtual Vec backward(const Vec& dy) = 0;

  virtual std::vector<ParamRef> params() = 0;

  [[nodiscard]] virtual std::size_t in_dim() const = 0;
  [[nodiscard]] virtual std::size_t out_dim() const = 0;

  void zero_grad();
};

/// Fully connected layer with optional activation: y = act(Wx + b).
class Dense : public Layer {
 public:
  Dense(std::size_t in, std::size_t out, Activation act, util::Rng& rng);

  Vec forward(const Vec& x) override;
  Vec backward(const Vec& dy) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::size_t in_dim() const override { return w_.cols(); }
  [[nodiscard]] std::size_t out_dim() const override { return w_.rows(); }

 private:
  Mat w_, dw_;
  Mat b_, db_;
  Activation act_;
  Vec x_cache_, z_cache_, y_cache_;
};

/// 1-D convolution over a scalar sequence (in_channels = 1, stride 1,
/// valid padding), followed by an activation; output is flattened
/// time-major: out[t * filters + f]. This is the temporal unit in
/// Pensieve's original architecture.
class Conv1D : public Layer {
 public:
  Conv1D(std::size_t seq_len, std::size_t filters, std::size_t kernel,
         Activation act, util::Rng& rng);

  Vec forward(const Vec& x) override;
  Vec backward(const Vec& dy) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::size_t in_dim() const override { return seq_len_; }
  [[nodiscard]] std::size_t out_dim() const override {
    return out_len_ * filters_;
  }
  [[nodiscard]] std::size_t out_len() const { return out_len_; }

 private:
  std::size_t seq_len_, filters_, kernel_, out_len_;
  Mat w_, dw_;  // filters x kernel
  Mat b_, db_;  // filters x 1
  Activation act_;
  Vec x_cache_, z_cache_, y_cache_;
};

/// Elman RNN over a scalar sequence; returns the final hidden state.
/// h_t = tanh(Wx * x_t + Wh * h_{t-1} + b). Used by the paper's best
/// Starlink architecture (RNN in place of the 1D-CNN).
class SimpleRnn : public Layer {
 public:
  SimpleRnn(std::size_t seq_len, std::size_t hidden, util::Rng& rng);

  Vec forward(const Vec& x) override;
  Vec backward(const Vec& dy) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::size_t in_dim() const override { return seq_len_; }
  [[nodiscard]] std::size_t out_dim() const override { return hidden_; }

 private:
  std::size_t seq_len_, hidden_;
  Mat wx_, dwx_;  // hidden x 1
  Mat wh_, dwh_;  // hidden x hidden
  Mat b_, db_;    // hidden x 1
  Vec x_cache_;
  std::vector<Vec> h_cache_;  // h_0..h_T (h_0 = zeros)
};

/// LSTM over a scalar sequence; returns the final hidden state. Used by the
/// paper's best 4G architecture (LSTM in place of the 1D-CNN).
class Lstm : public Layer {
 public:
  Lstm(std::size_t seq_len, std::size_t hidden, util::Rng& rng);

  Vec forward(const Vec& x) override;
  Vec backward(const Vec& dy) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::size_t in_dim() const override { return seq_len_; }
  [[nodiscard]] std::size_t out_dim() const override { return hidden_; }

 private:
  struct StepCache {
    Vec i, f, g, o;  // gate activations
    Vec c, h;        // post-step cell and hidden
  };

  std::size_t seq_len_, hidden_;
  // Gate weights stacked [i; f; g; o]: (4H x (1 + H)) over [x_t, h_{t-1}].
  Mat w_, dw_;
  Mat b_, db_;  // 4H x 1
  Vec x_cache_;
  std::vector<StepCache> steps_;
};

}  // namespace nada::nn

// Neural network layers with explicit forward/backward passes.
//
// Each layer caches its most recent forward inputs; backward() consumes the
// upstream gradient, accumulates parameter gradients (so multi-step A2C
// batches sum naturally), and returns the gradient with respect to the
// layer input. Networks are single-sample — ABR decisions are made one
// state at a time and batches are accumulated across rollout steps.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "nn/mat.h"
#include "util/rng.h"

namespace nada::nn {

enum class Activation { kLinear, kRelu, kLeakyRelu, kTanh, kSigmoid, kElu };

[[nodiscard]] const char* activation_name(Activation a);
[[nodiscard]] double activate(Activation a, double z);
/// Derivative with respect to pre-activation z, given z and y=activate(z).
[[nodiscard]] double activate_grad(Activation a, double z, double y);

/// A trainable parameter and its gradient accumulator.
struct ParamRef {
  Mat* value = nullptr;
  Mat* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output, caching what backward needs.
  virtual Vec forward(const Vec& x) = 0;

  /// Backpropagates dy (gradient of loss wrt output); accumulates parameter
  /// gradients and returns gradient wrt the input of the last forward().
  virtual Vec backward(const Vec& dy) = 0;

  /// Batched forward: each row of `x` is one sample. Row b of the result is
  /// bit-identical to forward(row b); caches (separately from the
  /// single-sample caches) what backward_batch needs.
  virtual Mat forward_batch(const Mat& x) = 0;

  /// Batched backward for the last forward_batch() (or a completed
  /// begin_capture()/forward_capture() sequence). Accumulates parameter
  /// gradients in ascending sample order — bit-identical to a loop of
  /// single-sample forward/backward calls — and returns per-row input
  /// gradients.
  virtual Mat backward_batch(const Mat& dy) = 0;

  /// Row-at-a-time batched forward, for callers that produce samples one
  /// step at a time (a policy rollout) but want the batch caches filled as
  /// they go so no second forward pass is needed before backward_batch.
  /// begin_capture sizes the caches; forward_capture computes one sample
  /// (bit-identical to forward()) and writes its caches into `row`.
  virtual void begin_capture(std::size_t batch) = 0;
  virtual Vec forward_capture(const Vec& x, std::size_t row) = 0;

  /// Allocation-light inference: same math as forward() but touches no
  /// training caches, so it is const and safe on a shared layer.
  [[nodiscard]] virtual Vec infer(const Vec& x) const = 0;

  /// Rebuilds derived read-only state the fast paths use (e.g. Dense's
  /// transposed weights, which turn the latency-bound matvec into a
  /// vectorizable sweep with the same per-element accumulation order).
  /// Contract: once a layer has been synced, it must be re-synced after
  /// every parameter change before the next infer(), forward_capture(),
  /// or forward_batch() — those paths read the cached transpose when one
  /// exists. forward()/backward() always read the live weights, so plain
  /// single-sample training never needs syncing; a layer that has never
  /// been synced uses its slow exact path everywhere.
  virtual void sync_inference_cache() {}

  virtual std::vector<ParamRef> params() = 0;

  [[nodiscard]] virtual std::size_t in_dim() const = 0;
  [[nodiscard]] virtual std::size_t out_dim() const = 0;

  void zero_grad();
};

/// Fully connected layer with optional activation: y = act(Wx + b).
class Dense : public Layer {
 public:
  Dense(std::size_t in, std::size_t out, Activation act, util::Rng& rng);

  Vec forward(const Vec& x) override;
  Vec backward(const Vec& dy) override;
  Mat forward_batch(const Mat& x) override;
  Mat backward_batch(const Mat& dy) override;
  void begin_capture(std::size_t batch) override;
  Vec forward_capture(const Vec& x, std::size_t row) override;
  [[nodiscard]] Vec infer(const Vec& x) const override;
  void sync_inference_cache() override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::size_t in_dim() const override { return w_.cols(); }
  [[nodiscard]] std::size_t out_dim() const override { return w_.rows(); }

 private:
  Mat w_, dw_;
  Mat b_, db_;
  Activation act_;
  Vec x_cache_, z_cache_, y_cache_;
  Mat xb_cache_, zb_cache_, yb_cache_;
  Mat wt_cache_;  ///< w_^T; empty until sync_inference_cache()
};

/// 1-D convolution over a scalar sequence (in_channels = 1, stride 1,
/// valid padding), followed by an activation; output is flattened
/// time-major: out[t * filters + f]. This is the temporal unit in
/// Pensieve's original architecture.
class Conv1D : public Layer {
 public:
  Conv1D(std::size_t seq_len, std::size_t filters, std::size_t kernel,
         Activation act, util::Rng& rng);

  Vec forward(const Vec& x) override;
  Vec backward(const Vec& dy) override;
  Mat forward_batch(const Mat& x) override;
  Mat backward_batch(const Mat& dy) override;
  void begin_capture(std::size_t batch) override;
  Vec forward_capture(const Vec& x, std::size_t row) override;
  [[nodiscard]] Vec infer(const Vec& x) const override;
  void sync_inference_cache() override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::size_t in_dim() const override { return seq_len_; }
  [[nodiscard]] std::size_t out_dim() const override {
    return out_len_ * filters_;
  }
  [[nodiscard]] std::size_t out_len() const { return out_len_; }

 private:
  /// z for one sample, written filter-major per t with the serial
  /// accumulation order (bias first, then kernel taps k-ascending).
  void conv_one(const double* x, double* z) const;

  std::size_t seq_len_, filters_, kernel_, out_len_;
  Mat w_, dw_;  // filters x kernel
  Mat b_, db_;  // filters x 1
  Activation act_;
  Vec x_cache_, z_cache_, y_cache_;
  Mat xb_cache_, zb_cache_, yb_cache_;
  Mat wt_cache_;  ///< w_^T (kernel x filters); empty until synced
};

/// Elman RNN over a scalar sequence; returns the final hidden state.
/// h_t = tanh(Wx * x_t + Wh * h_{t-1} + b). Used by the paper's best
/// Starlink architecture (RNN in place of the 1D-CNN).
class SimpleRnn : public Layer {
 public:
  SimpleRnn(std::size_t seq_len, std::size_t hidden, util::Rng& rng);

  Vec forward(const Vec& x) override;
  Vec backward(const Vec& dy) override;
  Mat forward_batch(const Mat& x) override;
  Mat backward_batch(const Mat& dy) override;
  void begin_capture(std::size_t batch) override;
  Vec forward_capture(const Vec& x, std::size_t row) override;
  [[nodiscard]] Vec infer(const Vec& x) const override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::size_t in_dim() const override { return seq_len_; }
  [[nodiscard]] std::size_t out_dim() const override { return hidden_; }

 private:
  std::size_t seq_len_, hidden_;
  Mat wx_, dwx_;  // hidden x 1
  Mat wh_, dwh_;  // hidden x hidden
  Mat b_, db_;    // hidden x 1
  Vec x_cache_;
  std::vector<Vec> h_cache_;  // h_0..h_T (h_0 = zeros)
  Mat xb_cache_;
  std::vector<std::vector<Vec>> hb_cache_;  // per sample: h_0..h_T
};

/// LSTM over a scalar sequence; returns the final hidden state. Used by the
/// paper's best 4G architecture (LSTM in place of the 1D-CNN).
class Lstm : public Layer {
 public:
  Lstm(std::size_t seq_len, std::size_t hidden, util::Rng& rng);

  Vec forward(const Vec& x) override;
  Vec backward(const Vec& dy) override;
  Mat forward_batch(const Mat& x) override;
  Mat backward_batch(const Mat& dy) override;
  void begin_capture(std::size_t batch) override;
  Vec forward_capture(const Vec& x, std::size_t row) override;
  [[nodiscard]] Vec infer(const Vec& x) const override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::size_t in_dim() const override { return seq_len_; }
  [[nodiscard]] std::size_t out_dim() const override { return hidden_; }

 private:
  struct StepCache {
    Vec i, f, g, o;  // gate activations
    Vec c, h;        // post-step cell and hidden
  };

  /// One sample's forward recurrence; appends per-step caches to `steps`.
  Vec forward_one(std::span<const double> x, std::vector<StepCache>& steps)
      const;
  /// One sample's BPTT; accumulates dw_/db_ and writes the input gradient.
  void backward_one(std::span<const double> x,
                    const std::vector<StepCache>& steps, const Vec& dy,
                    std::span<double> dx);

  std::size_t seq_len_, hidden_;
  // Gate weights stacked [i; f; g; o]: (4H x (1 + H)) over [x_t, h_{t-1}].
  Mat w_, dw_;
  Mat b_, db_;  // 4H x 1
  Vec x_cache_;
  std::vector<StepCache> steps_;
  Mat xb_cache_;
  std::vector<std::vector<StepCache>> steps_batch_;
};

}  // namespace nada::nn

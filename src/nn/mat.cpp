#include "nn/mat.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nada::nn {

Mat::Mat(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("Mat: zero dimension");
  }
}

double& Mat::operator()(std::size_t r, std::size_t c) {
  return data_[r * cols_ + c];
}

double Mat::operator()(std::size_t r, std::size_t c) const {
  return data_[r * cols_ + c];
}

void Mat::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Mat::init_xavier(util::Rng& rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
  for (double& w : data_) w = rng.uniform(-limit, limit);
}

void Mat::init_he(util::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(cols_));
  for (double& w : data_) w = rng.normal(0.0, stddev);
}

Vec Mat::matvec(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("matvec: size mismatch");
  Vec y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vec Mat::matvec_transposed(std::span<const double> x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument("matvec_transposed: size mismatch");
  }
  Vec y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

void Mat::add_outer(std::span<const double> a, std::span<const double> b,
                    double scale) {
  if (a.size() != rows_ || b.size() != cols_) {
    throw std::invalid_argument("add_outer: size mismatch");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const double ar = a[r] * scale;
    double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) row[c] += ar * b[c];
  }
}

void Mat::add_scaled(const Mat& other, double scale) {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    throw std::invalid_argument("add_scaled: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i] * scale;
  }
}

Mat Mat::transposed() const {
  Mat t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = row[c];
  }
  return t;
}

double Mat::frobenius_norm() const {
  double acc = 0.0;
  for (double w : data_) acc += w * w;
  return std::sqrt(acc);
}

// The batched kernels below are register-tiled: four samples (or four
// accumulation steps) advance together through independent accumulators.
// This breaks the single FMA dependency chain that makes matvec
// latency-bound and cuts the weight-matrix traffic by 4x — while each
// OUTPUT ELEMENT still accumulates its own products in exactly the serial
// order, so results stay bit-identical to the single-sample loops (pinned
// by tests/nn_test.cpp's bitwise comparisons).

Mat matmul_nt(const Mat& a, const Mat& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_nt: inner dimension mismatch");
  }
  Mat c(a.rows(), b.rows());
  const std::size_t k_dim = a.cols();
  const std::size_t m = b.rows();
  std::size_t i = 0;
  for (; i + 4 <= a.rows(); i += 4) {
    const double* a0 = a.data().data() + i * k_dim;
    const double* a1 = a0 + k_dim;
    const double* a2 = a1 + k_dim;
    const double* a3 = a2 + k_dim;
    double* c0 = c.data().data() + i * m;
    double* c1 = c0 + m;
    double* c2 = c1 + m;
    double* c3 = c2 + m;
    for (std::size_t j = 0; j < m; ++j) {
      const double* brow = b.data().data() + j * k_dim;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t k = 0; k < k_dim; ++k) {
        const double w = brow[k];
        s0 += w * a0[k];
        s1 += w * a1[k];
        s2 += w * a2[k];
        s3 += w * a3[k];
      }
      c0[j] = s0;
      c1[j] = s1;
      c2[j] = s2;
      c3[j] = s3;
    }
  }
  for (; i < a.rows(); ++i) {
    const double* arow = a.data().data() + i * k_dim;
    double* crow = c.data().data() + i * m;
    for (std::size_t j = 0; j < m; ++j) {
      const double* brow = b.data().data() + j * k_dim;
      double acc = 0.0;
      for (std::size_t k = 0; k < k_dim; ++k) acc += brow[k] * arow[k];
      crow[j] = acc;
    }
  }
  return c;
}

Mat matmul(const Mat& a, const Mat& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul: inner dimension mismatch");
  }
  Mat c(a.rows(), b.cols());
  const std::size_t r_dim = a.cols();
  const std::size_t m = b.cols();
  std::size_t i = 0;
  for (; i + 4 <= a.rows(); i += 4) {
    const double* a0 = a.data().data() + i * r_dim;
    const double* a1 = a0 + r_dim;
    const double* a2 = a1 + r_dim;
    const double* a3 = a2 + r_dim;
    double* c0 = c.data().data() + i * m;
    double* c1 = c0 + m;
    double* c2 = c1 + m;
    double* c3 = c2 + m;
    for (std::size_t r = 0; r < r_dim; ++r) {
      const double* brow = b.data().data() + r * m;
      const double x0 = a0[r], x1 = a1[r], x2 = a2[r], x3 = a3[r];
      for (std::size_t j = 0; j < m; ++j) {
        const double w = brow[j];
        c0[j] += w * x0;
        c1[j] += w * x1;
        c2[j] += w * x2;
        c3[j] += w * x3;
      }
    }
  }
  for (; i < a.rows(); ++i) {
    const double* arow = a.data().data() + i * r_dim;
    double* crow = c.data().data() + i * m;
    for (std::size_t r = 0; r < r_dim; ++r) {
      const double ar = arow[r];
      const double* brow = b.data().data() + r * m;
      for (std::size_t j = 0; j < m; ++j) crow[j] += brow[j] * ar;
    }
  }
  return c;
}

void add_matmul_tn(Mat& c, const Mat& a, const Mat& b) {
  if (a.rows() != b.rows() || c.rows() != a.cols() || c.cols() != b.cols()) {
    throw std::invalid_argument("add_matmul_tn: shape mismatch");
  }
  const std::size_t r_dim = c.rows();
  const std::size_t m = c.cols();
  // Four samples per sweep over C, accumulated IN SAMPLE ORDER per element:
  // (((c + p_n) + p_{n+1}) + p_{n+2}) + p_{n+3} is exactly the serial
  // add_outer chain, while C is streamed 4x less often.
  std::size_t n = 0;
  for (; n + 4 <= a.rows(); n += 4) {
    const double* a0 = a.data().data() + n * a.cols();
    const double* a1 = a0 + a.cols();
    const double* a2 = a1 + a.cols();
    const double* a3 = a2 + a.cols();
    const double* b0 = b.data().data() + n * m;
    const double* b1 = b0 + m;
    const double* b2 = b1 + m;
    const double* b3 = b2 + m;
    for (std::size_t r = 0; r < r_dim; ++r) {
      const double x0 = a0[r], x1 = a1[r], x2 = a2[r], x3 = a3[r];
      double* crow = c.data().data() + r * m;
      for (std::size_t j = 0; j < m; ++j) {
        double acc = crow[j];
        acc += x0 * b0[j];
        acc += x1 * b1[j];
        acc += x2 * b2[j];
        acc += x3 * b3[j];
        crow[j] = acc;
      }
    }
  }
  for (; n < a.rows(); ++n) {
    const double* arow = a.data().data() + n * a.cols();
    const double* brow = b.data().data() + n * m;
    for (std::size_t r = 0; r < r_dim; ++r) {
      const double ar = arow[r];
      double* crow = c.data().data() + r * m;
      for (std::size_t j = 0; j < m; ++j) crow[j] += ar * brow[j];
    }
  }
}

void vec_add_inplace(Vec& a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("vec_add_inplace: size mismatch");
  }
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void vec_scale_inplace(Vec& a, double s) {
  for (double& x : a) x *= s;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Vec softmax(std::span<const double> logits) {
  if (logits.empty()) throw std::invalid_argument("softmax: empty");
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  Vec probs(logits.size());
  double total = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp(logits[i] - max_logit);
    total += probs[i];
  }
  for (double& p : probs) p /= total;
  return probs;
}

double l2_norm(std::span<const double> a) {
  double acc = 0.0;
  for (double x : a) acc += x * x;
  return std::sqrt(acc);
}

double entropy(std::span<const double> probs) {
  double h = 0.0;
  for (double p : probs) {
    if (p > 1e-12) h -= p * std::log(p);
  }
  return h;
}

Vec resample_linear(std::span<const double> xs, std::size_t target_len) {
  if (target_len == 0) throw std::invalid_argument("resample_linear: len 0");
  Vec out(target_len, 0.0);
  if (xs.empty()) return out;
  if (xs.size() == 1) {
    std::fill(out.begin(), out.end(), xs[0]);
    return out;
  }
  for (std::size_t i = 0; i < target_len; ++i) {
    const double pos = target_len == 1
                           ? 0.0
                           : static_cast<double>(i) *
                                 static_cast<double>(xs.size() - 1) /
                                 static_cast<double>(target_len - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out[i] = xs[lo] * (1.0 - frac) + xs[hi] * frac;
  }
  return out;
}

}  // namespace nada::nn

#include "nn/mat.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/mat_kernels.h"

namespace nada::nn {

Mat::Mat(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("Mat: zero dimension");
  }
}

double& Mat::operator()(std::size_t r, std::size_t c) {
  return data_[r * cols_ + c];
}

double Mat::operator()(std::size_t r, std::size_t c) const {
  return data_[r * cols_ + c];
}

void Mat::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Mat::init_xavier(util::Rng& rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
  for (double& w : data_) w = rng.uniform(-limit, limit);
}

void Mat::init_he(util::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(cols_));
  for (double& w : data_) w = rng.normal(0.0, stddev);
}

Vec Mat::matvec(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("matvec: size mismatch");
  Vec y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vec Mat::matvec_transposed(std::span<const double> x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument("matvec_transposed: size mismatch");
  }
  Vec y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

void Mat::add_outer(std::span<const double> a, std::span<const double> b,
                    double scale) {
  if (a.size() != rows_ || b.size() != cols_) {
    throw std::invalid_argument("add_outer: size mismatch");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const double ar = a[r] * scale;
    double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) row[c] += ar * b[c];
  }
}

void Mat::add_scaled(const Mat& other, double scale) {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    throw std::invalid_argument("add_scaled: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i] * scale;
  }
}

Mat Mat::transposed() const {
  Mat t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = row[c];
  }
  return t;
}

double Mat::frobenius_norm() const {
  double acc = 0.0;
  for (double w : data_) acc += w * w;
  return std::sqrt(acc);
}

// The batched kernels are register-tiled: four samples (or four
// accumulation steps) advance together through independent accumulators,
// while each OUTPUT ELEMENT still accumulates its own products in exactly
// the serial order, so results stay bit-identical to the single-sample
// loops (pinned by tests/nn_test.cpp's bitwise comparisons). The loop
// bodies live in nn/mat_kernels.* in scalar/avx2/fma flavors; these
// wrappers shape-check, tally call volume for the nn.matmul.* metrics,
// and dispatch to the active flavor.

namespace {

inline void tally_matmul(std::size_t n, std::size_t inner, std::size_t m) {
  KernelCounters& counters = thread_kernel_counters();
  counters.matmul_calls += 1;
  counters.matmul_flops +=
      2 * static_cast<std::uint64_t>(n) * inner * m;
}

}  // namespace

Mat matmul_nt(const Mat& a, const Mat& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_nt: inner dimension mismatch");
  }
  Mat c(a.rows(), b.rows());
  tally_matmul(a.rows(), a.cols(), b.rows());
  active_kernels().matmul_nt(a.ptr(), b.ptr(), c.ptr(), a.rows(), a.cols(),
                             b.rows());
  return c;
}

Mat matmul(const Mat& a, const Mat& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul: inner dimension mismatch");
  }
  Mat c(a.rows(), b.cols());  // zero-filled; the kernel accumulates
  tally_matmul(a.rows(), a.cols(), b.cols());
  active_kernels().matmul(a.ptr(), b.ptr(), c.ptr(), a.rows(), a.cols(),
                          b.cols());
  return c;
}

void add_matmul_tn(Mat& c, const Mat& a, const Mat& b) {
  if (a.rows() != b.rows() || c.rows() != a.cols() || c.cols() != b.cols()) {
    throw std::invalid_argument("add_matmul_tn: shape mismatch");
  }
  tally_matmul(a.rows(), c.rows(), c.cols());
  active_kernels().add_matmul_tn(a.ptr(), b.ptr(), c.ptr(), a.rows(),
                                 c.rows(), c.cols());
}

void vec_add_inplace(Vec& a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("vec_add_inplace: size mismatch");
  }
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void vec_scale_inplace(Vec& a, double s) {
  for (double& x : a) x *= s;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Vec softmax(std::span<const double> logits) {
  if (logits.empty()) throw std::invalid_argument("softmax: empty");
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  Vec probs(logits.size());
  double total = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp(logits[i] - max_logit);
    total += probs[i];
  }
  for (double& p : probs) p /= total;
  return probs;
}

double l2_norm(std::span<const double> a) {
  double acc = 0.0;
  for (double x : a) acc += x * x;
  return std::sqrt(acc);
}

double entropy(std::span<const double> probs) {
  double h = 0.0;
  for (double p : probs) {
    if (p > 1e-12) h -= p * std::log(p);
  }
  return h;
}

Vec resample_linear(std::span<const double> xs, std::size_t target_len) {
  if (target_len == 0) throw std::invalid_argument("resample_linear: len 0");
  Vec out(target_len, 0.0);
  if (xs.empty()) return out;
  if (xs.size() == 1) {
    std::fill(out.begin(), out.end(), xs[0]);
    return out;
  }
  for (std::size_t i = 0; i < target_len; ++i) {
    const double pos = target_len == 1
                           ? 0.0
                           : static_cast<double>(i) *
                                 static_cast<double>(xs.size() - 1) /
                                 static_cast<double>(target_len - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out[i] = xs[lo] * (1.0 - frac) + xs[hi] * frac;
  }
  return out;
}

}  // namespace nada::nn

// Dense matrix/vector math for the from-scratch neural network library.
//
// Networks in this repository are small (histories of length 8, hidden
// sizes <= 256), so a simple row-major double matrix with straightforward
// loops is both fast enough and easy to verify. All layers build on Mat.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/aligned.h"
#include "util/rng.h"

namespace nada::nn {

using Vec = std::vector<double>;

/// Matrix element storage: 32-byte aligned so the SIMD kernel flavors (see
/// nn/mat_kernels.h) always see a register-aligned base pointer. Rows at an
/// arbitrary column count are not individually aligned — the kernels use
/// unaligned loads — but whole-matrix sweeps start on a vector boundary.
using AlignedVec = std::vector<double, util::AlignedAlloc<double, 32>>;

/// Row-major dense matrix.
class Mat {
 public:
  /// Storage alignment guarantee, in bytes (one AVX2 register of doubles).
  static constexpr std::size_t kAlignment = 32;

  Mat() = default;
  Mat(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  [[nodiscard]] AlignedVec& data() { return data_; }
  [[nodiscard]] const AlignedVec& data() const { return data_; }

  /// Aligned base pointer (32-byte; see kAlignment).
  [[nodiscard]] double* ptr() { return data_.data(); }
  [[nodiscard]] const double* ptr() const { return data_.data(); }

  /// View of one row (rows are contiguous in the row-major layout).
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  void fill(double value);
  void zero() { fill(0.0); }

  /// Xavier/Glorot uniform init (for tanh/sigmoid layers).
  void init_xavier(util::Rng& rng);
  /// He (Kaiming) normal init (for ReLU-family layers).
  void init_he(util::Rng& rng);

  /// y = this * x  (rows x cols) * (cols) -> (rows)
  [[nodiscard]] Vec matvec(std::span<const double> x) const;

  /// y = this^T * x  (cols) from (rows)
  [[nodiscard]] Vec matvec_transposed(std::span<const double> x) const;

  /// this += outer(a, b) * scale, where a has `rows` and b has `cols`.
  void add_outer(std::span<const double> a, std::span<const double> b,
                 double scale = 1.0);

  void add_scaled(const Mat& other, double scale);

  /// Transposed copy (cols x rows). The batched Dense forward multiplies
  /// against W^T so its inner loop runs over contiguous output columns —
  /// the vectorizable formulation of the same k-ascending dot product.
  [[nodiscard]] Mat transposed() const;

  [[nodiscard]] double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedVec data_;
};

// ---- Batched (matrix-matrix) kernels --------------------------------------
//
// These back the batched layer forward/backward passes. Each kernel's
// per-element accumulation order matches its single-sample counterpart
// exactly, so batched results are bit-identical to a loop of single-sample
// calls — the property the batched/serial probe equivalence test pins down.
//
// Since the SIMD flavors landed, these wrappers shape-check, account call
// volume, and dispatch to the active kernel flavor (nn/mat_kernels.h):
// scalar and avx2 are bit-identical by contract, fma is pinned-divergent
// and scoped out of scalar journals via the kernel=fma store-scope token.

/// C = A * B^T with A (n x k) and B (m x k) -> C (n x m). Row i of C is
/// bit-identical to B.matvec(row i of A): the k-dimension accumulates in
/// ascending order into a fresh accumulator per element.
[[nodiscard]] Mat matmul_nt(const Mat& a, const Mat& b);

/// C = A * B with A (n x r) and B (r x m) -> C (n x m). Row i of C is
/// bit-identical to B.matvec_transposed(row i of A): the r-dimension
/// accumulates in ascending order.
[[nodiscard]] Mat matmul(const Mat& a, const Mat& b);

/// C += A^T * B with A (n x r), B (n x c), C (r x c), accumulating the
/// n-dimension in ascending order — bit-identical to n successive
/// C.add_outer(row i of A, row i of B) calls.
void add_matmul_tn(Mat& c, const Mat& a, const Mat& b);

// ---- Vector helpers -------------------------------------------------------

void vec_add_inplace(Vec& a, std::span<const double> b);
void vec_scale_inplace(Vec& a, double s);
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);
[[nodiscard]] Vec softmax(std::span<const double> logits);
[[nodiscard]] double l2_norm(std::span<const double> a);

/// Numerically safe entropy of a probability vector.
[[nodiscard]] double entropy(std::span<const double> probs);

/// Resamples a series to `target_len` points by linear interpolation;
/// used to feed variable-length reward curves into fixed-size classifiers.
[[nodiscard]] Vec resample_linear(std::span<const double> xs,
                                  std::size_t target_len);

}  // namespace nada::nn

#include "nn/mat_kernels.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

// NADA_NN_HAVE_AVX2 / NADA_NN_HAVE_FMA are set on this translation unit by
// CMake exactly when the matching per-flavor object library is compiled in,
// so the dispatch table can only ever point at code that exists in the
// binary.

namespace nada::nn {

const char* kernel_flavor_name(KernelFlavor flavor) {
  switch (flavor) {
    case KernelFlavor::kScalar: return "scalar";
    case KernelFlavor::kAvx2: return "avx2";
    case KernelFlavor::kFma: return "fma";
  }
  return "?";
}

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool cpu_supports_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool built_with_avx2_kernels() {
#if defined(NADA_NN_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool built_with_fma_kernels() {
#if defined(NADA_NN_HAVE_FMA)
  return true;
#else
  return false;
#endif
}

KernelFlavor resolve_kernel_flavor(const char* value, bool built_avx2,
                                   bool built_fma, bool cpu_avx2,
                                   bool cpu_fma) {
  if (value == nullptr || *value == '\0') {
    // Default: the fastest BIT-IDENTICAL flavor available. fma is never a
    // default — it changes result bits and must be an explicit opt-in.
    return built_avx2 && cpu_avx2 ? KernelFlavor::kAvx2
                                  : KernelFlavor::kScalar;
  }
  const std::string v(value);
  if (v == "scalar") return KernelFlavor::kScalar;
  if (v == "avx2") {
    if (!built_avx2) {
      throw std::runtime_error(
          "NADA_NN_KERNEL=avx2 requested but this binary was built without "
          "the AVX2 kernel objects (non-x86 target or compiler lacking "
          "-mavx2)");
    }
    if (!cpu_avx2) {
      throw std::runtime_error(
          "NADA_NN_KERNEL=avx2 requested but this CPU does not report AVX2 "
          "support");
    }
    return KernelFlavor::kAvx2;
  }
  if (v == "fma") {
    if (!built_fma) {
      throw std::runtime_error(
          "NADA_NN_KERNEL=fma requested but this binary was built without "
          "the FMA kernel objects (non-x86 target or compiler lacking "
          "-mfma)");
    }
    if (!cpu_avx2 || !cpu_fma) {
      throw std::runtime_error(
          "NADA_NN_KERNEL=fma requested but this CPU does not report "
          "AVX2+FMA support");
    }
    return KernelFlavor::kFma;
  }
  throw std::runtime_error(
      "NADA_NN_KERNEL must be one of scalar|avx2|fma, got \"" + v + "\"");
}

namespace {

constexpr KernelTable kScalarTable = {
    detail::matmul_nt_scalar,
    detail::matmul_scalar,
    detail::add_matmul_tn_scalar,
    detail::wt_axpy_scalar,
};

#if defined(NADA_NN_HAVE_AVX2)
constexpr KernelTable kAvx2Table = {
    detail::avx2::matmul_nt,
    detail::avx2::matmul,
    detail::avx2::add_matmul_tn,
    detail::avx2::wt_axpy,
};
#endif

#if defined(NADA_NN_HAVE_FMA)
constexpr KernelTable kFmaTable = {
    detail::fma::matmul_nt,
    detail::fma::matmul,
    detail::fma::add_matmul_tn,
    detail::fma::wt_axpy,
};
#endif

const KernelTable& table_for(KernelFlavor flavor) {
  switch (flavor) {
    case KernelFlavor::kScalar: return kScalarTable;
    case KernelFlavor::kAvx2:
#if defined(NADA_NN_HAVE_AVX2)
      return kAvx2Table;
#else
      break;
#endif
    case KernelFlavor::kFma:
#if defined(NADA_NN_HAVE_FMA)
      return kFmaTable;
#else
      break;
#endif
  }
  throw std::logic_error(std::string("kernel flavor ") +
                         kernel_flavor_name(flavor) +
                         " is not compiled into this binary");
}

// The resolved table, published with release/acquire so a throwing resolve
// never publishes and every thread sees a fully initialized table.
std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<int> g_flavor{-1};

const KernelTable* resolve_and_publish() {
  const KernelFlavor flavor = resolve_kernel_flavor(
      std::getenv("NADA_NN_KERNEL"), built_with_avx2_kernels(),
      built_with_fma_kernels(), cpu_supports_avx2(), cpu_supports_fma());
  const KernelTable* table = &table_for(flavor);
  g_flavor.store(static_cast<int>(flavor), std::memory_order_relaxed);
  g_table.store(table, std::memory_order_release);
  return table;
}

}  // namespace

KernelFlavor kernel_flavor() {
  if (g_table.load(std::memory_order_acquire) == nullptr) {
    resolve_and_publish();
  }
  return static_cast<KernelFlavor>(g_flavor.load(std::memory_order_relaxed));
}

void set_kernel_flavor(KernelFlavor flavor) {
  const KernelTable* table = &table_for(flavor);  // throws if not built
  if (flavor == KernelFlavor::kAvx2 && !cpu_supports_avx2()) {
    throw std::runtime_error(
        "set_kernel_flavor(avx2): this CPU does not report AVX2 support");
  }
  if (flavor == KernelFlavor::kFma &&
      (!cpu_supports_avx2() || !cpu_supports_fma())) {
    throw std::runtime_error(
        "set_kernel_flavor(fma): this CPU does not report AVX2+FMA support");
  }
  g_flavor.store(static_cast<int>(flavor), std::memory_order_relaxed);
  g_table.store(table, std::memory_order_release);
}

const KernelTable& active_kernels() {
  const KernelTable* table = g_table.load(std::memory_order_acquire);
  if (table == nullptr) table = resolve_and_publish();
  return *table;
}

KernelCounters& thread_kernel_counters() {
  thread_local KernelCounters counters;
  return counters;
}

// ---- scalar flavor ---------------------------------------------------------
//
// The reference kernels: four samples (or four accumulation steps) advance
// together through independent accumulators. This breaks the single FMA
// dependency chain that makes matvec latency-bound and cuts weight-matrix
// traffic by 4x — while each OUTPUT ELEMENT still accumulates its own
// products in exactly the serial order, so results stay bit-identical to
// the single-sample loops (pinned by tests/nn_test.cpp's bitwise
// comparisons). The vector flavors map these same accumulators onto SIMD
// lanes; see mat_kernels_simd.inc.

namespace detail {

void matmul_nt_scalar(const double* a, const double* b, double* c,
                      std::size_t n, std::size_t k_dim, std::size_t m) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* a0 = a + i * k_dim;
    const double* a1 = a0 + k_dim;
    const double* a2 = a1 + k_dim;
    const double* a3 = a2 + k_dim;
    double* c0 = c + i * m;
    double* c1 = c0 + m;
    double* c2 = c1 + m;
    double* c3 = c2 + m;
    for (std::size_t j = 0; j < m; ++j) {
      const double* brow = b + j * k_dim;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t k = 0; k < k_dim; ++k) {
        const double w = brow[k];
        s0 += w * a0[k];
        s1 += w * a1[k];
        s2 += w * a2[k];
        s3 += w * a3[k];
      }
      c0[j] = s0;
      c1[j] = s1;
      c2[j] = s2;
      c3[j] = s3;
    }
  }
  for (; i < n; ++i) {
    const double* arow = a + i * k_dim;
    double* crow = c + i * m;
    for (std::size_t j = 0; j < m; ++j) {
      const double* brow = b + j * k_dim;
      double acc = 0.0;
      for (std::size_t k = 0; k < k_dim; ++k) acc += brow[k] * arow[k];
      crow[j] = acc;
    }
  }
}

void matmul_scalar(const double* a, const double* b, double* c, std::size_t n,
                   std::size_t r_dim, std::size_t m) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* a0 = a + i * r_dim;
    const double* a1 = a0 + r_dim;
    const double* a2 = a1 + r_dim;
    const double* a3 = a2 + r_dim;
    double* c0 = c + i * m;
    double* c1 = c0 + m;
    double* c2 = c1 + m;
    double* c3 = c2 + m;
    for (std::size_t r = 0; r < r_dim; ++r) {
      const double* brow = b + r * m;
      const double x0 = a0[r], x1 = a1[r], x2 = a2[r], x3 = a3[r];
      for (std::size_t j = 0; j < m; ++j) {
        const double w = brow[j];
        c0[j] += w * x0;
        c1[j] += w * x1;
        c2[j] += w * x2;
        c3[j] += w * x3;
      }
    }
  }
  for (; i < n; ++i) {
    const double* arow = a + i * r_dim;
    double* crow = c + i * m;
    for (std::size_t r = 0; r < r_dim; ++r) {
      const double ar = arow[r];
      const double* brow = b + r * m;
      for (std::size_t j = 0; j < m; ++j) crow[j] += brow[j] * ar;
    }
  }
}

void add_matmul_tn_scalar(const double* a, const double* b, double* c,
                          std::size_t n, std::size_t r_dim, std::size_t m) {
  // Four samples per sweep over C, accumulated IN SAMPLE ORDER per element:
  // (((c + p_n) + p_{n+1}) + p_{n+2}) + p_{n+3} is exactly the serial
  // add_outer chain, while C is streamed 4x less often.
  std::size_t sample = 0;
  for (; sample + 4 <= n; sample += 4) {
    const double* a0 = a + sample * r_dim;
    const double* a1 = a0 + r_dim;
    const double* a2 = a1 + r_dim;
    const double* a3 = a2 + r_dim;
    const double* b0 = b + sample * m;
    const double* b1 = b0 + m;
    const double* b2 = b1 + m;
    const double* b3 = b2 + m;
    for (std::size_t r = 0; r < r_dim; ++r) {
      const double x0 = a0[r], x1 = a1[r], x2 = a2[r], x3 = a3[r];
      double* crow = c + r * m;
      for (std::size_t j = 0; j < m; ++j) {
        double acc = crow[j];
        acc += x0 * b0[j];
        acc += x1 * b1[j];
        acc += x2 * b2[j];
        acc += x3 * b3[j];
        crow[j] = acc;
      }
    }
  }
  for (; sample < n; ++sample) {
    const double* arow = a + sample * r_dim;
    const double* brow = b + sample * m;
    for (std::size_t r = 0; r < r_dim; ++r) {
      const double ar = arow[r];
      double* crow = c + r * m;
      for (std::size_t j = 0; j < m; ++j) crow[j] += ar * brow[j];
    }
  }
}

void wt_axpy_scalar(const double* wt, const double* x, double* z,
                    std::size_t k_dim, std::size_t out) {
  for (std::size_t k = 0; k < k_dim; ++k) {
    const double xk = x[k];
    const double* wt_row = wt + k * out;
    for (std::size_t j = 0; j < out; ++j) z[j] += wt_row[j] * xk;
  }
}

}  // namespace detail

}  // namespace nada::nn

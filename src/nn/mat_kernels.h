// Runtime-dispatched kernel flavors for the batched `nn` hot path.
//
// The register-tiled double kernels behind matmul/matmul_nt/add_matmul_tn
// and the transposed-weight inference sweep exist in up to three flavors:
//
//   scalar  portable loops; the reference semantics on every platform
//   avx2    the same 4-sample accumulator tile mapped onto AVX2 lanes with
//           separate multiply and add per step — BIT-IDENTICAL to scalar
//           by contract (every output element accumulates its products in
//           exactly the serial order, and an unfused vector lane rounds
//           exactly like the scalar ALU)
//   fma     the avx2 tile with fused multiply-add — one rounding per
//           product-accumulate, so results are PINNED-DIVERGENT: faster
//           and usually slightly more accurate, but not the scalar bits.
//           Enabling it folds a `kernel=fma` token into store scopes (the
//           `sim_rev` convention) so FMA journals never alias scalar ones.
//
// The flavor is chosen once per process: `NADA_NN_KERNEL=scalar|avx2|fma`
// overrides, otherwise the best bit-identical flavor the build and the CPU
// support (avx2 when available, else scalar — fma is never a default
// because it changes result bits). An unknown value, or requesting a
// flavor the build lacks or the CPU cannot run, throws at first dispatch
// rather than silently falling back. docs/KERNELS.md is the full contract.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nada::nn {

enum class KernelFlavor : int { kScalar = 0, kAvx2 = 1, kFma = 2 };

[[nodiscard]] const char* kernel_flavor_name(KernelFlavor flavor);

/// CPUID feature probes (false on non-x86 builds).
[[nodiscard]] bool cpu_supports_avx2();
[[nodiscard]] bool cpu_supports_fma();

/// Whether this binary was compiled with the AVX2 / FMA kernel objects
/// (CMake builds them only when the toolchain targets x86 and accepts
/// -mavx2 / -mfma).
[[nodiscard]] bool built_with_avx2_kernels();
[[nodiscard]] bool built_with_fma_kernels();

/// The process-wide active flavor. Resolved from NADA_NN_KERNEL on first
/// call (strict: unknown values and unsatisfiable requests throw) and
/// cached; set_kernel_flavor overrides it thereafter (tests and benches).
[[nodiscard]] KernelFlavor kernel_flavor();
void set_kernel_flavor(KernelFlavor flavor);

/// Pure resolution logic, separated from CPUID/getenv so tests can drive
/// every branch: `value` is the NADA_NN_KERNEL string (nullptr/empty =
/// unset), the four booleans are the build and CPU capabilities.
[[nodiscard]] KernelFlavor resolve_kernel_flavor(const char* value,
                                                 bool built_avx2,
                                                 bool built_fma,
                                                 bool cpu_avx2,
                                                 bool cpu_fma);

// ---- kernel entry points ---------------------------------------------------
//
// Raw-pointer kernels; nn::Mat's wrappers do shape checking and volume
// accounting, then dispatch here. All matrices are row-major and dense.

struct KernelTable {
  /// C (n x m) = A (n x k) * B^T with B (m x k); fully writes c.
  void (*matmul_nt)(const double* a, const double* b, double* c,
                    std::size_t n, std::size_t k, std::size_t m);
  /// C (n x m) += A (n x r) * B with B (r x m); callers zero c first.
  void (*matmul)(const double* a, const double* b, double* c, std::size_t n,
                 std::size_t r, std::size_t m);
  /// C (r x m) += A^T * B with A (n x r), B (n x m), n ascending.
  void (*add_matmul_tn)(const double* a, const double* b, double* c,
                        std::size_t n, std::size_t r, std::size_t m);
  /// z[j] += wt[k * out + j] * x[k] for k ascending — the transposed-weight
  /// inference sweep behind Dense::infer / forward_capture and Conv1D taps.
  void (*wt_axpy)(const double* wt, const double* x, double* z,
                  std::size_t k, std::size_t out);
};

/// The table for the active flavor; resolves kernel_flavor() on first use.
[[nodiscard]] const KernelTable& active_kernels();

// ---- volume accounting -----------------------------------------------------

/// Per-thread tallies of batched kernel work, updated by the Mat wrappers.
/// BatchProbeTrainer snapshots the calling thread's tallies around each
/// block and publishes the delta as nn.matmul.calls / nn.matmul.flops
/// (a block runs entirely on one thread, so the delta is the block's own).
struct KernelCounters {
  std::uint64_t matmul_calls = 0;
  std::uint64_t matmul_flops = 0;  ///< 2 * n * m * inner per mat-mat call
};

[[nodiscard]] KernelCounters& thread_kernel_counters();

namespace detail {

// Scalar flavor (always built).
void matmul_nt_scalar(const double* a, const double* b, double* c,
                      std::size_t n, std::size_t k, std::size_t m);
void matmul_scalar(const double* a, const double* b, double* c, std::size_t n,
                   std::size_t r, std::size_t m);
void add_matmul_tn_scalar(const double* a, const double* b, double* c,
                          std::size_t n, std::size_t r, std::size_t m);
void wt_axpy_scalar(const double* wt, const double* x, double* z,
                    std::size_t k, std::size_t out);

// Vector flavors; definitions exist only when the matching object library
// is compiled in (see built_with_*_kernels). Declared unconditionally so
// the dispatch TU can reference them behind its build-capability macros.
namespace avx2 {
void matmul_nt(const double* a, const double* b, double* c, std::size_t n,
               std::size_t k, std::size_t m);
void matmul(const double* a, const double* b, double* c, std::size_t n,
            std::size_t r, std::size_t m);
void add_matmul_tn(const double* a, const double* b, double* c, std::size_t n,
                   std::size_t r, std::size_t m);
void wt_axpy(const double* wt, const double* x, double* z, std::size_t k,
             std::size_t out);
}  // namespace avx2

namespace fma {
void matmul_nt(const double* a, const double* b, double* c, std::size_t n,
               std::size_t k, std::size_t m);
void matmul(const double* a, const double* b, double* c, std::size_t n,
            std::size_t r, std::size_t m);
void add_matmul_tn(const double* a, const double* b, double* c, std::size_t n,
                   std::size_t r, std::size_t m);
void wt_axpy(const double* wt, const double* x, double* z, std::size_t k,
             std::size_t out);
}  // namespace fma

}  // namespace detail

}  // namespace nada::nn

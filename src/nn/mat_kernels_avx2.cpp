// AVX2 (unfused) kernel flavor. Compiled into its own object library with
// -mavx2 -mno-fma -ffp-contract=off: AVX2 lanes, but every
// multiply-accumulate stays a separate IEEE mul and add so results are
// bit-identical to the scalar kernels. See mat_kernels_simd.inc.
#define NADA_KERNEL_NS avx2
#define NADA_KERNEL_FUSED 0
#include "nn/mat_kernels_simd.inc"

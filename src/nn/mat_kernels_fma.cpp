// AVX2+FMA kernel flavor. Compiled into its own object library with
// -mavx2 -mfma: fused multiply-add rounds once per accumulate step, so
// results are PINNED-DIVERGENT from scalar/avx2 and runs under this flavor
// carry a kernel=fma store-scope token. See mat_kernels_simd.inc.
#define NADA_KERNEL_NS fma
#define NADA_KERNEL_FUSED 1
#include "nn/mat_kernels_simd.inc"

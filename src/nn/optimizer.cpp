#include "nn/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace nada::nn {

void Optimizer::clip_global_norm(const std::vector<ParamRef>& params,
                                 double max_norm) {
  if (max_norm <= 0.0) {
    throw std::invalid_argument("clip_global_norm: max_norm <= 0");
  }
  double total = 0.0;
  for (const auto& p : params) {
    for (double g : p.grad->data()) total += g * g;
  }
  total = std::sqrt(total);
  if (total <= max_norm) return;
  const double scale = max_norm / total;
  for (const auto& p : params) {
    for (double& g : p.grad->data()) g *= scale;
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::step(std::vector<ParamRef> params) {
  if (m_.empty()) {
    m_.resize(params.size());
    v_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      m_[i].assign(params[i].value->size(), 0.0);
      v_[i].assign(params[i].value->size(), 0.0);
    }
  }
  if (m_.size() != params.size()) {
    throw std::invalid_argument("Adam::step: parameter list changed");
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& value = params[i].value->data();
    auto& grad = params[i].grad->data();
    if (m_[i].size() != value.size()) {
      throw std::invalid_argument("Adam::step: parameter shape changed");
    }
    for (std::size_t j = 0; j < value.size(); ++j) {
      m_[i][j] = beta1_ * m_[i][j] + (1.0 - beta1_) * grad[j];
      v_[i][j] = beta2_ * v_[i][j] + (1.0 - beta2_) * grad[j] * grad[j];
      const double m_hat = m_[i][j] / bc1;
      const double v_hat = v_[i][j] / bc2;
      value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
      grad[j] = 0.0;
    }
  }
}

RmsProp::RmsProp(double lr, double decay, double eps)
    : lr_(lr), decay_(decay), eps_(eps) {}

void RmsProp::step(std::vector<ParamRef> params) {
  if (cache_.empty()) {
    cache_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      cache_[i].assign(params[i].value->size(), 0.0);
    }
  }
  if (cache_.size() != params.size()) {
    throw std::invalid_argument("RmsProp::step: parameter list changed");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& value = params[i].value->data();
    auto& grad = params[i].grad->data();
    for (std::size_t j = 0; j < value.size(); ++j) {
      cache_[i][j] = decay_ * cache_[i][j] + (1.0 - decay_) * grad[j] * grad[j];
      value[j] -= lr_ * grad[j] / (std::sqrt(cache_[i][j]) + eps_);
      grad[j] = 0.0;
    }
  }
}

}  // namespace nada::nn

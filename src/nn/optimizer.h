// First-order optimizers over a network's parameter list.
//
// Adam drives the actor-critic training (stable at the small batch sizes
// A2C produces); RMSProp matches Pensieve's original choice and is kept for
// fidelity experiments. Both operate on the ParamRef list a network
// exposes, keyed positionally, so the same optimizer instance must be used
// with the same network for its whole lifetime.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layers.h"

namespace nada::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies accumulated gradients and zeroes them.
  virtual void step(std::vector<ParamRef> params) = 0;

  /// Clips the global gradient norm to `max_norm` before stepping.
  static void clip_global_norm(const std::vector<ParamRef>& params,
                               double max_norm);
};

class Adam : public Optimizer {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);

  void step(std::vector<ParamRef> params) override;

  [[nodiscard]] double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 private:
  double lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<std::vector<double>> m_, v_;  // per-param moments
};

class RmsProp : public Optimizer {
 public:
  explicit RmsProp(double lr = 1e-3, double decay = 0.99, double eps = 1e-6);

  void step(std::vector<ParamRef> params) override;

 private:
  double lr_, decay_, eps_;
  std::vector<std::vector<double>> cache_;
};

}  // namespace nada::nn

#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

namespace nada::obs {
namespace {

/// Relaxed CAS fold for the min/max atomics; `better` picks the winner.
template <typename Better>
void fold_atomic(std::atomic<double>& slot, double value, Better better) {
  double current = slot.load(std::memory_order_relaxed);
  while (better(value, current) &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be ascending");
  }
}

void Histogram::observe(double value) {
  if (std::isnan(value)) return;  // a NaN duration carries no information
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  fold_atomic(min_, value, std::less<>{});
  fold_atomic(max_, value, std::greater<>{});
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::span<const double> duration_bounds() {
  static constexpr std::array<double, 14> kBounds = {
      0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1,
      0.3,    1.0,    3.0,   10.0,  30.0, 60.0, 300.0};
  return kBounds;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return *it->second;
}

util::JsonValue MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  util::JsonValue counters = util::JsonValue::object();
  for (const auto& [name, counter] : counters_) {
    counters.set(name, util::JsonValue::number(
                           static_cast<double>(counter->value())));
  }
  util::JsonValue gauges = util::JsonValue::object();
  for (const auto& [name, gauge] : gauges_) {
    gauges.set(name, util::JsonValue::number(gauge->value()));
  }
  util::JsonValue histograms = util::JsonValue::object();
  for (const auto& [name, hist] : histograms_) {
    util::JsonValue entry = util::JsonValue::object();
    const std::uint64_t count = hist->count();
    entry.set("count", util::JsonValue::number(static_cast<double>(count)));
    entry.set("sum", util::JsonValue::number(hist->sum()));
    if (count > 0) {
      entry.set("min", util::JsonValue::number(hist->min()));
      entry.set("max", util::JsonValue::number(hist->max()));
    }
    util::JsonValue buckets = util::JsonValue::array();
    const auto counts = hist->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      util::JsonValue bucket = util::JsonValue::object();
      if (i < hist->bounds().size()) {
        bucket.set("le", util::JsonValue::number(hist->bounds()[i]));
      } else {
        bucket.set("le", util::JsonValue::string("inf"));
      }
      bucket.set("count",
                 util::JsonValue::number(static_cast<double>(counts[i])));
      buckets.push_back(std::move(bucket));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }
  util::JsonValue out = util::JsonValue::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

}  // namespace nada::obs

// MetricsRegistry: named counters, gauges, and fixed-bucket histograms.
//
// The registry is the in-process metrics surface of a long search: hot
// paths hold a Counter/Gauge/Histogram handle (a stable pointer — the
// registry never moves an instrument once created) and update it with a
// single relaxed atomic operation; anything that wants a consistent view
// calls snapshot(), which serializes every instrument into one
// util::JsonValue object with deterministically ordered keys. Instruments
// are created on first use (`registry.counter("store.lookups")`) and live
// for the registry's lifetime.
//
// Everything here is observability-only by design: no instrument feeds any
// search decision, so a run with a registry attached everywhere is
// bit-identical (rankings, journal records) to a run with none — the
// invariant tests/obs_test.cpp and the metrics-smoke CI job pin.
//
// Thread-safety: instrument updates are lock-free atomics; instrument
// creation and snapshot() take one registry mutex. Histogram observations
// touch a handful of atomics (bucket, count, sum, min/max CAS) — cheap
// enough for per-store-lookup use, not meant for per-matrix-element use.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace nada::obs {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (rates, positions, ratios).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: cumulative-style buckets over caller-supplied
/// upper bounds plus an implicit +inf overflow bucket, with running
/// count/sum/min/max. Bounds are fixed at creation — no rebucketing, no
/// allocation on the observe path.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// +inf / -inf when nothing was observed yet.
  [[nodiscard]] double min() const {
    return min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; index bounds().size() is the +inf overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// The default histogram bounds: wall-clock seconds from 0.1 ms to 5 min,
/// roughly 1-3-10 spaced — wide enough for a store lookup and a full
/// training stage on one scale.
[[nodiscard]] std::span<const double> duration_bounds();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named instrument. Returned references stay valid
  /// (and stay the same instrument) for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies only when the histogram is created by this call;
  /// an existing histogram keeps its original buckets.
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds = duration_bounds());

  /// One consistent JSON object:
  ///   {"counters": {name: n, ...},
  ///    "gauges": {name: x, ...},
  ///    "histograms": {name: {"count": n, "sum": s, "min": m, "max": M,
  ///                          "buckets": [{"le": bound, "count": n}, ...,
  ///                                      {"le": "inf", "count": n}]}}}
  /// Keys are sorted (std::map), so two snapshots of equal state dump to
  /// equal bytes.
  [[nodiscard]] util::JsonValue snapshot() const;

 private:
  mutable std::mutex mutex_;
  // node-based maps: instrument addresses are stable across inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Null-tolerant handle helper: the hot paths carry an optional registry
/// and resolve instruments through these, so "metrics off" costs one
/// branch.
[[nodiscard]] inline Histogram* maybe_histogram(
    MetricsRegistry* registry, std::string_view name,
    std::span<const double> bounds = duration_bounds()) {
  return registry != nullptr ? &registry->histogram(name, bounds) : nullptr;
}
[[nodiscard]] inline Counter* maybe_counter(MetricsRegistry* registry,
                                            std::string_view name) {
  return registry != nullptr ? &registry->counter(name) : nullptr;
}

}  // namespace nada::obs

#include "obs/metrics_observer.h"

#include <algorithm>
#include <string>

namespace nada::obs {
namespace {

std::string stage_metric(search::StageKind stage, const char* suffix) {
  return std::string("search.stage.") + search::stage_label(stage) + suffix;
}

const char* candidate_metric(search::CandidateEventType type) {
  switch (type) {
    case search::CandidateEventType::kEntered:
      return "search.candidates.entered";
    case search::CandidateEventType::kOutOfShard:
      return "search.candidates.out_of_shard";
    case search::CandidateEventType::kCacheHit:
      return "search.candidates.cache_hits";
    case search::CandidateEventType::kFailed:
      return "search.candidates.failed";
    case search::CandidateEventType::kProbed:
      return "search.candidates.probed";
    case search::CandidateEventType::kEarlyStopped:
      return "search.candidates.early_stopped";
    case search::CandidateEventType::kTrained:
      return "search.candidates.trained";
  }
  return "search.candidates.unknown";
}

}  // namespace

MetricsObserver::MetricsObserver(MetricsRegistry& registry)
    : registry_(&registry), start_(std::chrono::steady_clock::now()) {}

void MetricsObserver::on_stage_start(search::StageKind stage) {
  registry_->counter(stage_metric(stage, ".runs")).add();
}

void MetricsObserver::on_stage_finish(const search::StageEvent& event) {
  registry_->histogram(stage_metric(event.stage, ".seconds"))
      .observe(event.seconds);
}

void MetricsObserver::on_candidate(const search::CandidateEvent& event) {
  registry_->counter(candidate_metric(event.type)).add();
  switch (event.type) {
    case search::CandidateEventType::kEntered: {
      entered_.fetch_add(1, std::memory_order_relaxed);
      // Stream position is 0-based; +1 makes the gauge "candidates pulled".
      std::uint64_t seen = max_stream_position_.load(std::memory_order_relaxed);
      const std::uint64_t position = event.index + 1;
      while (position > seen && !max_stream_position_.compare_exchange_weak(
                                    seen, position, std::memory_order_relaxed)) {
      }
      registry_->gauge("search.progress.stream_position")
          .set(static_cast<double>(
              max_stream_position_.load(std::memory_order_relaxed)));
      break;
    }
    case search::CandidateEventType::kOutOfShard:
      out_of_shard_.fetch_add(1, std::memory_order_relaxed);
      break;
    case search::CandidateEventType::kCacheHit:
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      break;
    case search::CandidateEventType::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case search::CandidateEventType::kEarlyStopped:
      early_stopped_.fetch_add(1, std::memory_order_relaxed);
      break;
    case search::CandidateEventType::kProbed:
    case search::CandidateEventType::kTrained:
      break;
  }
  update_rates();
}

void MetricsObserver::on_window_start(std::size_t /*index*/,
                                      std::size_t /*first*/) {
  registry_->counter("search.windows.started").add();
}

void MetricsObserver::on_window_finish(const search::WindowEvent& event) {
  registry_->counter("search.windows.completed").add();
  registry_->counter("search.windows.candidates").add(event.size);
  registry_->histogram("search.window.seconds").observe(event.seconds);
}

void MetricsObserver::update_rates() {
  const double entered =
      static_cast<double>(entered_.load(std::memory_order_relaxed));
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
  registry_->gauge("search.throughput.candidates_per_sec")
      .set(elapsed > 0 ? entered / elapsed : 0.0);
  const double in_shard =
      entered -
      static_cast<double>(out_of_shard_.load(std::memory_order_relaxed));
  if (in_shard > 0) {
    registry_->gauge("search.rate.cache_hit")
        .set(static_cast<double>(cache_hits_.load(std::memory_order_relaxed)) /
             in_shard);
    registry_->gauge("search.rate.failed")
        .set(static_cast<double>(failed_.load(std::memory_order_relaxed)) /
             in_shard);
    registry_->gauge("search.rate.early_stopped")
        .set(static_cast<double>(
                 early_stopped_.load(std::memory_order_relaxed)) /
             in_shard);
  }
}

}  // namespace nada::obs

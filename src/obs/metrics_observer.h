// MetricsObserver: folds the search::Observer event stream into a
// MetricsRegistry.
//
// Attach one to a SearchJob (or pass it through ShardRunner) and the
// registry accumulates, live:
//
//   counters    search.candidates.{entered,out_of_shard,cache_hits,failed,
//               probed,early_stopped,trained}
//               search.stage.<label>.runs      (stage executions — in
//               streaming mode generate/precheck/probe run once per window)
//               search.windows.completed, search.windows.candidates
//   histograms  search.stage.<label>.seconds   (per-execution wall-clock)
//               search.window.seconds
//   gauges      search.progress.stream_position   (candidates pulled)
//               search.throughput.candidates_per_sec
//               search.rate.cache_hit / search.rate.failed /
//               search.rate.early_stopped   (of in-shard entered candidates)
//
// Pure readout: the observer never feeds a search decision, so attaching
// it cannot change rankings or journal bytes. Counter updates are atomic
// and the derived-rate state is atomic too, so the observer tolerates
// events from several jobs (a multi-shard bench) concurrently; within one
// job the SearchJob already serializes dispatch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>

#include "obs/metrics.h"
#include "search/observer.h"

namespace nada::obs {

class MetricsObserver : public search::Observer {
 public:
  /// `registry` must outlive the observer. Throughput is measured from
  /// construction time.
  explicit MetricsObserver(MetricsRegistry& registry);

  void on_stage_start(search::StageKind stage) override;
  void on_stage_finish(const search::StageEvent& event) override;
  void on_candidate(const search::CandidateEvent& event) override;
  void on_window_start(std::size_t index, std::size_t first) override;
  void on_window_finish(const search::WindowEvent& event) override;

  [[nodiscard]] MetricsRegistry& registry() { return *registry_; }

 private:
  void update_rates();

  MetricsRegistry* registry_;
  std::chrono::steady_clock::time_point start_;
  // Running tallies behind the derived-rate gauges.
  std::atomic<std::uint64_t> entered_{0};
  std::atomic<std::uint64_t> out_of_shard_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> early_stopped_{0};
  std::atomic<std::uint64_t> max_stream_position_{0};
};

}  // namespace nada::obs

// ScopedTimer: RAII wall-clock profiling into a Histogram.
//
// The hooks for hot paths the search::Observer event stream cannot see
// from outside — probe-block training, store lookup/append, candidate
// generation and fingerprinting. Construction with a null histogram is the
// "metrics off" mode and costs one branch; with a histogram attached the
// destructor observes the elapsed seconds.
//
//   obs::ScopedTimer timer(obs::maybe_histogram(metrics, "store.lookup.seconds"));
//
// Timing is steady_clock; the timer never allocates and never throws.
#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace nada::obs {

class ScopedTimer {
 public:
  /// No-op when `histogram` is null.
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram),
        start_(histogram != nullptr ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{}) {
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Records the elapsed time now instead of at destruction; idempotent.
  /// Returns the observed seconds (0 when metrics are off).
  double stop() {
    if (histogram_ == nullptr) return 0.0;
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    histogram_->observe(seconds);
    histogram_ = nullptr;
    return seconds;
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nada::obs

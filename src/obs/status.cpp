#include "obs/status.h"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "util/fs.h"
#include "util/strings.h"

namespace nada::obs {
namespace {

const char* counter_key(search::CandidateEventType type) {
  switch (type) {
    case search::CandidateEventType::kEntered: return "entered";
    case search::CandidateEventType::kOutOfShard: return "out_of_shard";
    case search::CandidateEventType::kCacheHit: return "cache_hits";
    case search::CandidateEventType::kFailed: return "failed";
    case search::CandidateEventType::kProbed: return "probed";
    case search::CandidateEventType::kEarlyStopped: return "early_stopped";
    case search::CandidateEventType::kTrained: return "trained";
  }
  return "unknown";
}

}  // namespace

double unix_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

StatusWriter::StatusWriter(StatusConfig config)
    : config_(std::move(config)),
      start_(std::chrono::steady_clock::now()),
      started_unix_(unix_now()) {
  std::lock_guard lock(mutex_);
  write_locked(/*force=*/true);
}

StatusWriter::~StatusWriter() {
  try {
    finish();
  } catch (...) {
    // A failing final snapshot must not terminate (destructor context);
    // the periodic snapshots already on disk remain valid.
  }
}

std::uint64_t StatusWriter::writes() const {
  std::lock_guard lock(mutex_);
  return writes_;
}

void StatusWriter::finish() {
  std::lock_guard lock(mutex_);
  if (finished_) return;
  finished_ = true;
  state_ = "done";
  write_locked(/*force=*/true);
}

void StatusWriter::on_stage_start(search::StageKind stage) {
  std::lock_guard lock(mutex_);
  stage_ = search::stage_label(stage);
  ++stages_[stage_].runs;
  write_locked(/*force=*/true);
}

void StatusWriter::on_stage_finish(const search::StageEvent& event) {
  std::lock_guard lock(mutex_);
  stages_[search::stage_label(event.stage)].seconds += event.seconds;
  write_locked(/*force=*/true);
}

void StatusWriter::on_candidate(const search::CandidateEvent& event) {
  std::lock_guard lock(mutex_);
  ++counters_[counter_key(event.type)];
  if (event.type == search::CandidateEventType::kEntered) {
    stream_position_ = std::max(stream_position_, event.index + 1);
  }
  write_locked(/*force=*/false);
}

void StatusWriter::on_window_start(std::size_t index, std::size_t /*first*/) {
  std::lock_guard lock(mutex_);
  window_ = index;
  write_locked(/*force=*/true);
}

void StatusWriter::on_window_finish(const search::WindowEvent& event) {
  std::lock_guard lock(mutex_);
  window_ = event.index;
  ++counters_["windows"];
  write_locked(/*force=*/true);
}

void StatusWriter::write_locked(bool force) {
  const auto now = std::chrono::steady_clock::now();
  if (!force &&
      std::chrono::duration<double>(now - last_write_).count() <
          config_.min_interval_seconds) {
    return;
  }
  last_write_ = now;
  ++writes_;
  util::write_file_atomic(config_.path, snapshot_locked().dump() + "\n");
}

util::JsonValue StatusWriter::snapshot_locked() const {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("label", util::JsonValue::string(config_.label));
  doc.set("pid", util::JsonValue::number(static_cast<double>(::getpid())));
  doc.set("state", util::JsonValue::string(state_));
  doc.set("stage", util::JsonValue::string(stage_));
  doc.set("window", util::JsonValue::number(static_cast<double>(window_)));
  doc.set("stream_position",
          util::JsonValue::number(static_cast<double>(stream_position_)));
  doc.set("total_candidates",
          util::JsonValue::number(static_cast<double>(config_.total_candidates)));
  doc.set("started_unix", util::JsonValue::number(started_unix_));
  doc.set("heartbeat_unix", util::JsonValue::number(unix_now()));
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
  doc.set("elapsed_seconds", util::JsonValue::number(elapsed));
  doc.set("elapsed", util::JsonValue::string(util::format_duration(elapsed)));
  if (config_.total_candidates > 0 && stream_position_ > 0 &&
      state_ != "done") {
    const double remaining = static_cast<double>(config_.total_candidates) -
                             static_cast<double>(stream_position_);
    const double eta =
        elapsed * remaining / static_cast<double>(stream_position_);
    doc.set("eta_seconds", util::JsonValue::number(eta));
    doc.set("eta", util::JsonValue::string(util::format_duration(eta)));
  }
  util::JsonValue counters = util::JsonValue::object();
  for (const auto& [key, value] : counters_) {
    counters.set(key, util::JsonValue::number(static_cast<double>(value)));
  }
  doc.set("counters", std::move(counters));
  util::JsonValue stage_seconds = util::JsonValue::object();
  util::JsonValue stage_runs = util::JsonValue::object();
  for (const auto& [label, totals] : stages_) {
    stage_seconds.set(label, util::JsonValue::number(totals.seconds));
    stage_runs.set(label,
                   util::JsonValue::number(static_cast<double>(totals.runs)));
  }
  doc.set("stage_seconds", std::move(stage_seconds));
  doc.set("stage_runs", std::move(stage_runs));
  return doc;
}

StatusSnapshot decode_status(util::JsonValue document) {
  StatusSnapshot snapshot;
  snapshot.label = document.get("label").as_string();
  snapshot.state = document.get("state").as_string();
  snapshot.stage = document.get("stage").as_string();
  snapshot.window =
      static_cast<std::size_t>(document.get("window").as_number());
  snapshot.stream_position =
      static_cast<std::size_t>(document.get("stream_position").as_number());
  snapshot.total_candidates =
      static_cast<std::size_t>(document.get("total_candidates").as_number());
  snapshot.elapsed_seconds = document.get("elapsed_seconds").as_number();
  snapshot.started_unix = document.get("started_unix").as_number();
  snapshot.heartbeat_unix = document.get("heartbeat_unix").as_number();
  const util::JsonValue& counters = document.get("counters");
  if (counters.type() == util::JsonValue::Type::kObject) {
    for (const char* key : {"entered", "out_of_shard", "cache_hits", "failed",
                            "probed", "early_stopped", "trained", "windows"}) {
      if (counters.has(key)) {
        snapshot.counters[key] =
            static_cast<std::uint64_t>(counters.get(key).as_number());
      }
    }
  }
  snapshot.raw = std::move(document);
  return snapshot;
}

std::optional<StatusSnapshot> read_status(const std::string& path) {
  const auto content = util::read_file_if_exists(path);
  if (!content.has_value()) return std::nullopt;
  try {
    return decode_status(util::JsonValue::parse(*content));
  } catch (const std::exception&) {
    return std::nullopt;  // torn or foreign file: treat as not reporting
  }
}

const char* worker_health_name(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kOk: return "ok";
    case WorkerHealth::kStale: return "stale";
    case WorkerHealth::kMissing: return "missing";
  }
  return "unknown";
}

WorkerHealth classify_worker(const std::optional<StatusSnapshot>& worker,
                             double now_unix,
                             double staleness_threshold_seconds) {
  if (!worker.has_value()) return WorkerHealth::kMissing;
  if (worker->done()) return WorkerHealth::kOk;
  if (staleness_threshold_seconds <= 0.0) return WorkerHealth::kOk;
  const double age = now_unix - worker->heartbeat_unix;
  return age > staleness_threshold_seconds ? WorkerHealth::kStale
                                           : WorkerHealth::kOk;
}

util::JsonValue aggregate_status(
    const std::vector<std::optional<StatusSnapshot>>& workers,
    double now_unix, double staleness_threshold_seconds) {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("kind", util::JsonValue::string("aggregate"));
  doc.set("generated_unix", util::JsonValue::number(now_unix));
  doc.set("n_workers",
          util::JsonValue::number(static_cast<double>(workers.size())));
  std::size_t reporting = 0;
  std::size_t done = 0;
  std::size_t stream_total = 0;
  double heartbeat_age_max = 0.0;
  std::map<std::string, std::uint64_t> summed;
  std::map<WorkerHealth, std::size_t> health_counts;
  util::JsonValue list = util::JsonValue::array();
  util::JsonValue health_list = util::JsonValue::array();
  for (const auto& worker : workers) {
    const WorkerHealth health =
        classify_worker(worker, now_unix, staleness_threshold_seconds);
    ++health_counts[health];
    health_list.push_back(
        util::JsonValue::string(worker_health_name(health)));
    if (!worker.has_value()) {
      list.push_back(util::JsonValue::null());
      continue;
    }
    ++reporting;
    if (worker->done()) ++done;
    stream_total += worker->stream_position;
    heartbeat_age_max =
        std::max(heartbeat_age_max, now_unix - worker->heartbeat_unix);
    for (const auto& [key, value] : worker->counters) summed[key] += value;
    list.push_back(worker->raw);
  }
  doc.set("n_reporting",
          util::JsonValue::number(static_cast<double>(reporting)));
  doc.set("n_done", util::JsonValue::number(static_cast<double>(done)));
  doc.set("stream_position_total",
          util::JsonValue::number(static_cast<double>(stream_total)));
  if (reporting > 0) {
    doc.set("heartbeat_age_max_seconds",
            util::JsonValue::number(heartbeat_age_max));
  }
  doc.set("staleness_threshold_seconds",
          util::JsonValue::number(staleness_threshold_seconds));
  util::JsonValue health = util::JsonValue::object();
  for (const WorkerHealth h :
       {WorkerHealth::kOk, WorkerHealth::kStale, WorkerHealth::kMissing}) {
    health.set(worker_health_name(h),
               util::JsonValue::number(
                   static_cast<double>(health_counts[h])));
  }
  doc.set("health", std::move(health));
  doc.set("worker_health", std::move(health_list));
  util::JsonValue counters = util::JsonValue::object();
  for (const auto& [key, value] : summed) {
    counters.set(key, util::JsonValue::number(static_cast<double>(value)));
  }
  doc.set("counters", std::move(counters));
  doc.set("workers", std::move(list));
  return doc;
}

}  // namespace nada::obs

// StatusWriter: live, atomically-replaced JSON status snapshots for long
// searches.
//
// A days-long, multi-worker search is only operable if something cheap and
// crash-tolerant says where each worker is RIGHT NOW. StatusWriter is a
// search::Observer that maintains one small JSON file per job:
//
//   * rewritten at every stage and window boundary, and at most once per
//     `min_interval_seconds` on candidate events (so a million-candidate
//     probe stage still heartbeats without a million rewrites),
//   * written atomically (tmp + rename, util::write_file_atomic), so a
//     `watch cat status.json`, the ShardRunner driver, or a supervisor
//     polling worker liveness never reads a half-written snapshot,
//   * self-contained: current stage/window/stream position, per-event
//     counters, cumulative per-stage wall-clock totals, elapsed + ETA, and
//     start/heartbeat unix timestamps.
//
// Snapshot schema (all keys always present unless noted):
//
//   {"label":"worker-0/3","pid":4242,"state":"running"|"done",
//    "stage":"probe","window":3,"stream_position":64,
//    "total_candidates":1000,
//    "started_unix":...,"heartbeat_unix":...,
//    "elapsed_seconds":12.4,"elapsed":"12.40s",
//    "eta_seconds":181.0,"eta":"3m01s",          // once progress > 0
//    "counters":{"entered":64,"out_of_shard":40,"cache_hits":0,"failed":3,
//                "probed":18,"early_stopped":5,"trained":0,"windows":2},
//    "stage_seconds":{"generate":0.01,"precheck":1.2,"probe":10.9},
//    "stage_runs":{"generate":3,"precheck":3,"probe":3}}
//
// Pure readout: a job with a StatusWriter attached computes bit-identical
// results to one without. read_status / aggregate_status are the driver
// side: parse worker snapshots and merge them (heartbeat ages, summed
// counters, per-worker list) into one cluster-level status document.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "search/observer.h"
#include "util/json.h"

namespace nada::obs {

struct StatusConfig {
  std::string path;   ///< snapshot file (parent directory must exist)
  std::string label;  ///< e.g. "worker-0/3", "driver", "single"
  /// Stream length when known; 0 disables the ETA estimate.
  std::size_t total_candidates = 0;
  /// Floor between candidate-event-driven rewrites. Stage and window
  /// boundaries always rewrite.
  double min_interval_seconds = 1.0;
};

class StatusWriter : public search::Observer {
 public:
  /// Writes the initial "running" snapshot immediately; throws
  /// std::runtime_error when `config.path` is not writable.
  explicit StatusWriter(StatusConfig config);

  /// Final snapshot unless finish() already wrote it (never throws).
  ~StatusWriter() override;

  void on_stage_start(search::StageKind stage) override;
  void on_stage_finish(const search::StageEvent& event) override;
  void on_candidate(const search::CandidateEvent& event) override;
  void on_window_start(std::size_t index, std::size_t first) override;
  void on_window_finish(const search::WindowEvent& event) override;

  /// Writes the terminal snapshot (`"state": "done"`, heartbeat updated).
  /// Call when the job completes; idempotent.
  void finish();

  [[nodiscard]] const std::string& path() const { return config_.path; }
  /// Snapshots actually written (rate-limited candidate events excluded).
  [[nodiscard]] std::uint64_t writes() const;

 private:
  struct StageTotals {
    std::uint64_t runs = 0;
    double seconds = 0.0;
  };

  void write_locked(bool force);
  [[nodiscard]] util::JsonValue snapshot_locked() const;

  StatusConfig config_;
  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point start_;
  double started_unix_ = 0.0;
  std::chrono::steady_clock::time_point last_write_{};
  std::uint64_t writes_ = 0;
  bool finished_ = false;

  std::string state_ = "running";
  std::string stage_ = "";
  std::size_t window_ = 0;
  std::size_t stream_position_ = 0;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, StageTotals> stages_;
};

/// One parsed worker/driver snapshot, schema-tolerant (missing keys become
/// zeros/empties) so a newer driver can read an older worker's file.
struct StatusSnapshot {
  std::string label;
  std::string state;
  std::string stage;
  std::size_t window = 0;
  std::size_t stream_position = 0;
  std::size_t total_candidates = 0;
  double elapsed_seconds = 0.0;
  double started_unix = 0.0;
  double heartbeat_unix = 0.0;
  std::map<std::string, std::uint64_t> counters;
  util::JsonValue raw;  ///< the full document, for fields not lifted here

  [[nodiscard]] bool done() const { return state == "done"; }
  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

/// Parses a status file; nullopt when the file is missing or unparsable
/// (a worker that never started, or died before its first snapshot).
[[nodiscard]] std::optional<StatusSnapshot> read_status(
    const std::string& path);

/// Decodes an in-memory status document (exposed for aggregate payloads).
[[nodiscard]] StatusSnapshot decode_status(util::JsonValue document);

/// Liveness verdict for one worker slot, judged from its status snapshot
/// (the passive-telemetry signal the supervisor's restart/reassignment
/// decisions run on — see docs/SERVICE.md):
///   kMissing — no parsable snapshot (never started, or died pre-write),
///   kOk      — done, or heartbeat age within the staleness threshold,
///   kStale   — alive on paper but heartbeat older than the threshold.
enum class WorkerHealth { kOk, kStale, kMissing };

[[nodiscard]] const char* worker_health_name(WorkerHealth health);

/// Classifies one snapshot against `staleness_threshold_seconds`. A done
/// worker is never stale (it will not heartbeat again, by design); a
/// threshold <= 0 disables staleness entirely (every reporting worker is
/// kOk).
[[nodiscard]] WorkerHealth classify_worker(
    const std::optional<StatusSnapshot>& worker, double now_unix,
    double staleness_threshold_seconds);

/// The driver-side merge: all worker snapshots in one document —
///   {"kind":"aggregate","generated_unix":...,"n_workers":N,"n_reporting":r,
///    "n_done":d,"heartbeat_age_max_seconds":...,"stream_position_total":...,
///    "staleness_threshold_seconds":...,
///    "health":{"ok":...,"stale":...,"missing":...},
///    "worker_health":["ok"|"stale"|"missing" per slot],
///    "counters":{summed...},"workers":[per-worker docs, missing => null]}
/// `now_unix` feeds the heartbeat ages (pass the current wall clock);
/// `staleness_threshold_seconds` feeds the ok|stale|missing classification
/// (<= 0, the default, never marks a worker stale). Schema history in
/// docs/OBSERVABILITY.md.
[[nodiscard]] util::JsonValue aggregate_status(
    const std::vector<std::optional<StatusSnapshot>>& workers,
    double now_unix, double staleness_threshold_seconds = 0.0);

/// Current wall clock as unix seconds (the `now_unix` for aggregate_status
/// and the timestamp source every obs sink shares).
[[nodiscard]] double unix_now();

}  // namespace nada::obs

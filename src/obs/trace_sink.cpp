#include "obs/trace_sink.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace nada::obs {
namespace {

double now_unix() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

util::JsonValue event_line(const char* event) {
  util::JsonValue line = util::JsonValue::object();
  line.set("event", util::JsonValue::string(event));
  return line;
}

}  // namespace

TraceSink::TraceSink(std::string path) : path_(std::move(path)) {
  out_.open(path_, std::ios::app);
  if (!out_) {
    throw std::runtime_error("TraceSink: cannot open " + path_);
  }
}

std::uint64_t TraceSink::lines_written() const {
  std::lock_guard lock(mutex_);
  return seq_;
}

void TraceSink::append(util::JsonValue line) {
  std::lock_guard lock(mutex_);
  line.set("seq", util::JsonValue::number(static_cast<double>(seq_++)));
  line.set("ts_unix", util::JsonValue::number(now_unix()));
  out_ << line.dump() << '\n';
  out_.flush();
  if (!out_) {
    throw std::runtime_error("TraceSink: write failed for " + path_);
  }
}

void TraceSink::on_stage_start(search::StageKind stage) {
  util::JsonValue line = event_line("stage_start");
  line.set("stage", util::JsonValue::string(search::stage_label(stage)));
  append(std::move(line));
}

void TraceSink::on_stage_finish(const search::StageEvent& event) {
  util::JsonValue line = event_line("stage");
  line.set("stage", util::JsonValue::string(search::stage_label(event.stage)));
  line.set("seconds", util::JsonValue::number(event.seconds));
  append(std::move(line));
}

void TraceSink::on_candidate(const search::CandidateEvent& event) {
  util::JsonValue line = event_line("candidate");
  line.set("type", util::JsonValue::string(search::event_label(event.type)));
  line.set("stage", util::JsonValue::string(search::stage_label(event.stage)));
  line.set("index", util::JsonValue::number(static_cast<double>(event.index)));
  line.set("id", util::JsonValue::string(event.id));
  if (!event.detail.empty()) {
    line.set("detail", util::JsonValue::string(event.detail));
  }
  append(std::move(line));
}

void TraceSink::on_window_start(std::size_t index, std::size_t first) {
  util::JsonValue line = event_line("window_start");
  line.set("window", util::JsonValue::number(static_cast<double>(index)));
  line.set("first", util::JsonValue::number(static_cast<double>(first)));
  append(std::move(line));
}

void TraceSink::on_window_finish(const search::WindowEvent& event) {
  util::JsonValue line = event_line("window");
  line.set("window", util::JsonValue::number(static_cast<double>(event.index)));
  line.set("first", util::JsonValue::number(static_cast<double>(event.first)));
  line.set("size", util::JsonValue::number(static_cast<double>(event.size)));
  line.set("retained",
           util::JsonValue::number(static_cast<double>(event.retained)));
  line.set("seconds", util::JsonValue::number(event.seconds));
  append(std::move(line));
}

}  // namespace nada::obs

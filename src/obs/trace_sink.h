// TraceSink: the structured run record — every search event as one JSONL
// line.
//
// Where the candidate store journals a search's RESULTS, the trace journals
// its EXECUTION: one line per stage transition, candidate milestone, and
// window boundary, in dispatch order, each stamped with a monotone sequence
// number and a wall-clock timestamp. The file is a replayable record of
// what a run did and when — feed it to an analysis script, diff two runs'
// event shapes, or reconstruct where a crashed run was.
//
// Line schema (every line has "event", "seq", "ts_unix"):
//
//   {"event":"stage_start","stage":"probe",...}
//   {"event":"stage","stage":"probe","seconds":1.53,...}
//   {"event":"candidate","type":"probed","stage":"probe","index":12,
//    "id":"gpt4-state-12","detail":"",...}
//   {"event":"window_start","window":3,"first":15,...}
//   {"event":"window","window":3,"first":15,"size":5,"retained":3,
//    "seconds":2.1,...}
//
// Each line is appended and flushed before the event dispatch returns, so
// a crash loses at most the line being written — the same torn-tail
// tolerance the store journal has. Pure readout: attaching a trace changes
// no search result. Thread-safe (candidate events may arrive on pool
// threads when the job's own serialization is not in front of this sink).
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "search/observer.h"
#include "util/json.h"

namespace nada::obs {

class TraceSink : public search::Observer {
 public:
  /// Opens `path` for append (creating directories is the caller's job);
  /// throws std::runtime_error when the file cannot be opened.
  explicit TraceSink(std::string path);

  void on_stage_start(search::StageKind stage) override;
  void on_stage_finish(const search::StageEvent& event) override;
  void on_candidate(const search::CandidateEvent& event) override;
  void on_window_start(std::size_t index, std::size_t first) override;
  void on_window_finish(const search::WindowEvent& event) override;

  [[nodiscard]] const std::string& path() const { return path_; }
  /// Lines written by this sink (not lines pre-existing in the file).
  [[nodiscard]] std::uint64_t lines_written() const;

 private:
  /// Stamps seq/ts and appends one line under the mutex.
  void append(util::JsonValue line);

  std::string path_;
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::uint64_t seq_ = 0;
};

}  // namespace nada::obs

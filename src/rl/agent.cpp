#include "rl/agent.h"

namespace nada::rl {

nn::StateSignature derive_signature(const dsl::StateProgram& program,
                                    const dsl::BindingCatalog& catalog) {
  // Served from the compiled program's signature cache: compilation_check
  // primes it from the trial run, so the funnel derives every agent's
  // input signature without re-executing the program. A cold cache (e.g.
  // a program built outside the pre-checks) computes it once.
  nn::StateSignature sig;
  sig.row_lengths = program.signature_row_lengths(catalog);
  return sig;
}

nn::StateSignature derive_signature(const dsl::StateProgram& program) {
  return derive_signature(program, env::abr_catalog());
}

PolicyAgent::PolicyAgent(const dsl::StateProgram& program,
                         const nn::ArchSpec& spec, std::size_t num_actions,
                         const dsl::BindingCatalog& catalog, util::Rng& rng)
    : program_(&program), sig_(derive_signature(program, catalog)) {
  net_ = std::make_unique<nn::ActorCriticNet>(spec, sig_, num_actions, rng);
}

PolicyAgent::PolicyAgent(const dsl::StateProgram& program,
                         const nn::ArchSpec& spec, std::size_t num_actions,
                         util::Rng& rng)
    : PolicyAgent(program, spec, num_actions, env::abr_catalog(), rng) {}

const dsl::StateMatrix& PolicyAgent::eval_state(const dsl::Bindings& obs) {
  ++exec_runs_;
  if (dsl::exec_mode() == dsl::ExecMode::kTree) {
    tree_matrix_ = program_->run(obs);
    return tree_matrix_;
  }
  return vm_.run(program_->code(), obs);
}

const std::vector<nn::Vec>& PolicyAgent::network_rows(
    const dsl::StateMatrix& matrix) {
  row_cache_.resize(matrix.rows.size());
  for (std::size_t i = 0; i < matrix.rows.size(); ++i) {
    row_cache_[i].assign(matrix.rows[i].values.begin(),
                         matrix.rows[i].values.end());
  }
  return row_cache_;
}

PolicyAgent::Decision PolicyAgent::decide(const dsl::Bindings& obs,
                                          bool sample, util::Rng& rng) {
  const dsl::StateMatrix& matrix = eval_state(obs);
  if (!matrix.all_finite()) {
    throw dsl::RuntimeError("state program produced non-finite values");
  }
  // Inference-only forward: bit-identical to net().forward, leaves the
  // training caches alone, and rides the fast path on a synced net (the
  // batched probe trainer's checkpoint evaluations).
  const auto out = net_->forward_inference(network_rows(matrix));
  Decision d;
  d.probs = out.probs;
  d.value = out.value;
  if (sample) {
    d.action = rng.weighted_index(out.probs);
  } else {
    d.action = 0;
    for (std::size_t i = 1; i < out.probs.size(); ++i) {
      if (out.probs[i] > out.probs[d.action]) d.action = i;
    }
  }
  return d;
}

PolicyAgent::Decision PolicyAgent::decide(const env::Observation& obs,
                                          bool sample, util::Rng& rng) {
  return decide(env::bindings_from_observation(obs), sample, rng);
}

void PolicyAgent::forward_backward(const dsl::Bindings& obs,
                                   const nn::Vec& dlogits, double dvalue) {
  const dsl::StateMatrix& matrix = eval_state(obs);
  (void)net_->forward(network_rows(matrix));
  net_->backward(dlogits, dvalue);
}

}  // namespace nada::rl

#include "rl/agent.h"

namespace nada::rl {

nn::StateSignature derive_signature(const dsl::StateProgram& program) {
  const dsl::StateMatrix matrix = program.run(dsl::canned_observation());
  nn::StateSignature sig;
  sig.row_lengths = matrix.row_lengths();
  return sig;
}

AbrAgent::AbrAgent(const dsl::StateProgram& program, const nn::ArchSpec& spec,
                   std::size_t num_actions, util::Rng& rng)
    : program_(&program), sig_(derive_signature(program)) {
  net_ = std::make_unique<nn::ActorCriticNet>(spec, sig_, num_actions, rng);
}

AbrAgent::Decision AbrAgent::decide(const env::Observation& obs, bool sample,
                                    util::Rng& rng) {
  const dsl::StateMatrix matrix = program_->run(obs);
  if (!matrix.all_finite()) {
    throw dsl::RuntimeError("state program produced non-finite values");
  }
  // Inference-only forward: bit-identical to net().forward, leaves the
  // training caches alone, and rides the fast path on a synced net (the
  // batched probe trainer's checkpoint evaluations).
  const auto out = net_->forward_inference(matrix.to_network_rows());
  Decision d;
  d.probs = out.probs;
  d.value = out.value;
  if (sample) {
    d.action = rng.weighted_index(out.probs);
  } else {
    d.action = 0;
    for (std::size_t i = 1; i < out.probs.size(); ++i) {
      if (out.probs[i] > out.probs[d.action]) d.action = i;
    }
  }
  return d;
}

void AbrAgent::forward_backward(const env::Observation& obs,
                                const nn::Vec& dlogits, double dvalue) {
  const dsl::StateMatrix matrix = program_->run(obs);
  (void)net_->forward(matrix.to_network_rows());
  net_->backward(dlogits, dvalue);
}

}  // namespace nada::rl

// AbrAgent: a state program plus an actor-critic network.
//
// A NADA candidate design is the pair (state function, architecture); the
// agent binds the two together: it runs the state program on each raw
// observation and feeds the resulting matrix to the network. The network's
// input signature is derived from a trial run of the state program, so any
// state shape the DSL can produce gets a matching network.
#pragma once

#include <cstddef>
#include <memory>

#include "dsl/state_program.h"
#include "env/abr_env.h"
#include "nn/arch.h"
#include "util/rng.h"

namespace nada::rl {

class AbrAgent {
 public:
  /// Builds the network for `program`'s state shape. Throws
  /// dsl::RuntimeError if the program fails its trial run and nn::ArchError
  /// if the spec cannot be instantiated for the resulting signature.
  AbrAgent(const dsl::StateProgram& program, const nn::ArchSpec& spec,
           std::size_t num_actions, util::Rng& rng);

  struct Decision {
    std::size_t action = 0;
    nn::Vec probs;
    double value = 0.0;
  };

  /// Runs the state program and the network; samples the action from the
  /// policy when `sample` is true, otherwise picks the argmax.
  Decision decide(const env::Observation& obs, bool sample, util::Rng& rng);

  /// Re-runs the forward pass for `obs` (so layer caches are fresh) and
  /// backpropagates the combined policy/value gradient.
  void forward_backward(const env::Observation& obs, const nn::Vec& dlogits,
                        double dvalue);

  [[nodiscard]] nn::ActorCriticNet& net() { return *net_; }
  [[nodiscard]] const dsl::StateProgram& program() const { return *program_; }
  [[nodiscard]] const nn::StateSignature& signature() const { return sig_; }

 private:
  const dsl::StateProgram* program_;
  nn::StateSignature sig_;
  std::unique_ptr<nn::ActorCriticNet> net_;
};

/// Derives the network input signature from a trial run of the program on
/// the canned observation.
[[nodiscard]] nn::StateSignature derive_signature(
    const dsl::StateProgram& program);

}  // namespace nada::rl

// PolicyAgent: a state program plus an actor-critic network.
//
// A NADA candidate design is the pair (state function, architecture); the
// agent binds the two together: it runs the state program on each raw
// observation (expressed as DSL bindings, so any TaskDomain's observations
// fit) and feeds the resulting matrix to the network. The network's input
// signature is the program's row lengths under the domain catalog's canned
// observation, served from the signature cache on the compiled program
// (primed by filter::compilation_check's trial run), so constructing an
// agent does not execute the program.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "dsl/binding_catalog.h"
#include "dsl/state_program.h"
#include "dsl/vm.h"
#include "env/abr_domain.h"
#include "nn/arch.h"
#include "util/rng.h"

namespace nada::rl {

class PolicyAgent {
 public:
  /// Builds the network for `program`'s state shape under `catalog`'s
  /// canned observation. Throws dsl::RuntimeError if the program fails its
  /// trial run and nn::ArchError if the spec cannot be instantiated for
  /// the resulting signature.
  PolicyAgent(const dsl::StateProgram& program, const nn::ArchSpec& spec,
              std::size_t num_actions, const dsl::BindingCatalog& catalog,
              util::Rng& rng);

  /// ABR convenience: derives the signature via env::abr_catalog().
  PolicyAgent(const dsl::StateProgram& program, const nn::ArchSpec& spec,
              std::size_t num_actions, util::Rng& rng);

  struct Decision {
    std::size_t action = 0;
    nn::Vec probs;
    double value = 0.0;
  };

  /// Runs the state program and the network; samples the action from the
  /// policy when `sample` is true, otherwise picks the argmax.
  Decision decide(const dsl::Bindings& obs, bool sample, util::Rng& rng);

  /// ABR convenience overload.
  Decision decide(const env::Observation& obs, bool sample, util::Rng& rng);

  /// Re-runs the forward pass for `obs` (so layer caches are fresh) and
  /// backpropagates the combined policy/value gradient.
  void forward_backward(const dsl::Bindings& obs, const nn::Vec& dlogits,
                        double dvalue);

  /// Runs the state program on `obs` through the active engine (the
  /// agent-owned Vm by default, the tree-walk under NADA_DSL_EXEC=tree)
  /// and returns the agent-owned matrix, valid until the next eval_state
  /// call. This is the per-step inner loop: VM-mode scalar ops perform no
  /// heap allocation, and the matrix/row buffers are reused across steps.
  const dsl::StateMatrix& eval_state(const dsl::Bindings& obs);

  /// `matrix` flattened into the agent-owned network-row buffers
  /// (capacity-reusing equivalent of StateMatrix::to_network_rows).
  const std::vector<nn::Vec>& network_rows(const dsl::StateMatrix& matrix);

  /// Cumulative Vm counters (zero in tree mode); see obs `dsl.exec.*`.
  [[nodiscard]] const dsl::Vm::Stats& exec_stats() const {
    return vm_.stats();
  }
  /// State-program runs through eval_state, counted in both engines.
  [[nodiscard]] std::uint64_t exec_runs() const { return exec_runs_; }

  [[nodiscard]] nn::ActorCriticNet& net() { return *net_; }
  [[nodiscard]] const dsl::StateProgram& program() const { return *program_; }
  [[nodiscard]] const nn::StateSignature& signature() const { return sig_; }

 private:
  const dsl::StateProgram* program_;
  nn::StateSignature sig_;
  std::unique_ptr<nn::ActorCriticNet> net_;
  dsl::Vm vm_;                      ///< agent-owned: agents are thread-confined
  dsl::StateMatrix tree_matrix_;    ///< tree-mode scratch
  std::vector<nn::Vec> row_cache_;  ///< network_rows scratch
  std::uint64_t exec_runs_ = 0;
};

/// The historical name from when the agent was ABR-only.
using AbrAgent = PolicyAgent;

/// Derives the network input signature from a trial run of the program on
/// `catalog`'s canned observation.
[[nodiscard]] nn::StateSignature derive_signature(
    const dsl::StateProgram& program, const dsl::BindingCatalog& catalog);

/// ABR convenience: derive against env::abr_catalog().
[[nodiscard]] nn::StateSignature derive_signature(
    const dsl::StateProgram& program);

}  // namespace nada::rl

#include "rl/batch_probe.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "nn/mat_kernels.h"
#include "nn/optimizer.h"
#include "obs/scoped_timer.h"
#include "util/stats.h"

namespace nada::rl {

/// Everything one candidate carries through the lockstep loop. The RNG is
/// the candidate's private stream: it must see exactly the draws a serial
/// Trainer's would (episode choice, episode offset, action sampling, and —
/// under emulation fidelity — the session's jitter), in the same order.
struct BatchProbeTrainer::Candidate {
  const ProbeJob* job = nullptr;
  TrainResult* result = nullptr;
  util::Rng rng;
  std::unique_ptr<PolicyAgent> agent;
  std::unique_ptr<nn::Adam> optimizer;
  std::unique_ptr<env::Episode> episode;
  dsl::Bindings obs;
  bool failed = false;
  bool episode_done = false;
  // Current episode's trajectory. The rollout's forward_capture fills the
  // network's batch caches row by row and its outputs are recorded here,
  // so the fused update needs NO forward pass at all — the serial path
  // pays three per step (act, value estimate, gradient) plus a second
  // state-program run.
  std::vector<nn::Vec> step_probs;
  nn::Vec step_values;
  std::vector<std::size_t> actions;
  std::vector<double> rewards;

  Candidate(const ProbeJob& j, TrainResult& r)
      : job(&j), result(&r), rng(j.seed) {}

  void fail(const std::exception& e) {
    failed = true;
    result->failed = true;
    result->error = e.what();
    result->final_score = -1e9;
  }
};

BatchProbeTrainer::BatchProbeTrainer(
    std::shared_ptr<const env::TaskDomain> domain, BatchProbeConfig config)
    : owned_domain_(std::move(domain)), domain_(owned_domain_.get()),
      config_(std::move(config)) {
  if (config_.train.epochs == 0) {
    throw std::invalid_argument("BatchProbeTrainer: zero epochs");
  }
  if (config_.train.test_interval == 0) {
    throw std::invalid_argument("BatchProbeTrainer: zero test interval");
  }
  if (config_.block_size == 0) config_.block_size = 1;
  eval_indices_ = eval_trace_indices(domain_->num_eval_units(),
                                     config_.train.max_eval_traces);
}

BatchProbeTrainer::BatchProbeTrainer(const env::TaskDomain& domain,
                                     BatchProbeConfig config)
    : BatchProbeTrainer(std::shared_ptr<const env::TaskDomain>(
                            std::shared_ptr<void>{}, &domain),
                        std::move(config)) {}

BatchProbeTrainer::BatchProbeTrainer(const trace::Dataset& dataset,
                                     const video::Video& video,
                                     BatchProbeConfig config)
    : BatchProbeTrainer(std::make_shared<env::AbrDomain>(dataset, video),
                        std::move(config)) {}

std::vector<TrainResult> BatchProbeTrainer::train(
    std::span<const ProbeJob> jobs, util::ThreadPool* pool) const {
  for (const auto& job : jobs) {
    if (job.program == nullptr || job.spec == nullptr) {
      throw std::invalid_argument("BatchProbeTrainer: null job member");
    }
  }
  std::vector<TrainResult> results(jobs.size());
  if (jobs.empty()) return results;
  const std::size_t block = config_.block_size;
  const std::size_t num_blocks = (jobs.size() + block - 1) / block;
  auto run_block = [&](std::size_t bi) {
    const std::size_t begin = bi * block;
    const std::size_t count = std::min(block, jobs.size() - begin);
    train_block(jobs.subspan(begin, count),
                std::span<TrainResult>(results).subspan(begin, count));
  };
  if (pool != nullptr && num_blocks > 1) {
    pool->parallel_for(num_blocks, run_block);
  } else {
    for (std::size_t bi = 0; bi < num_blocks; ++bi) run_block(bi);
  }
  return results;
}

void BatchProbeTrainer::step_candidate(Candidate& c) const {
  // Mirrors PolicyAgent::decide(obs, sample=true, rng) followed by
  // episode->step(), but keeps the state rows for the fused update instead
  // of discarding them.
  const dsl::StateMatrix& matrix = c.agent->eval_state(c.obs);
  if (!matrix.all_finite()) {
    throw dsl::RuntimeError("state program produced non-finite values");
  }
  // Capture forward: bit-identical to net().forward, runs on the synced
  // fast inference path, and writes this step's row of the batch caches so
  // the epoch update can go straight to backward_batch.
  auto out = c.agent->net().forward_capture(c.agent->network_rows(matrix),
                                            c.actions.size());
  const std::size_t action = c.rng.weighted_index(out.probs);
  env::DomainStep sr = c.episode->step(action);
  c.step_probs.push_back(std::move(out.probs));
  c.step_values.push_back(out.value);
  c.actions.push_back(action);
  c.rewards.push_back(sr.reward);
  c.obs = std::move(sr.observation);
  c.episode_done = sr.done;
}

void BatchProbeTrainer::update_candidate(Candidate& c,
                                         double entropy_weight) const {
  const std::size_t steps = c.actions.size();
  const auto& train = config_.train;

  const double reward_scale = resolve_reward_scale(train, *domain_);
  const std::vector<double> returns =
      discounted_returns(c.rewards, reward_scale, train.gamma);

  // The rollout's capture pass already computed every activation this
  // update needs (the weights do not move within an epoch): probs and
  // values were recorded per step, and the layers' batch caches hold the
  // rows backward_batch reads. Episodes always span the domain's full
  // fixed length, so the capture must have filled every row.
  if (steps != domain_->episode_length()) {
    throw std::logic_error("BatchProbeTrainer: episode/capture length skew");
  }
  std::vector<double> advantages(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    advantages[t] = returns[t] - c.step_values[t];
  }
  condition_advantages(train, advantages);

  c.agent->net().zero_grad();
  const double scale = 1.0 / static_cast<double>(steps);
  const std::size_t num_actions = c.agent->net().num_actions();
  double reward_sum = 0.0;
  nn::Mat dlogits(steps, num_actions);
  nn::Vec dvalues(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    reward_sum += c.rewards[t];
    dvalues[t] = a2c_step_gradient(train, c.step_probs[t], c.actions[t],
                                   advantages[t], returns[t],
                                   c.step_values[t], entropy_weight, scale,
                                   dlogits.row(t));
  }
  c.agent->net().backward_batch(dlogits, dvalues);
  auto params = c.agent->net().params();
  nn::Optimizer::clip_global_norm(params, train.grad_clip);
  c.optimizer->step(params);
  // Weights moved: refresh the transposed caches the next rollout's
  // forward_capture (and any checkpoint evaluation's forward_inference)
  // reads.
  c.agent->net().sync_inference_cache();

  c.result->train_rewards.push_back(reward_sum /
                                    static_cast<double>(steps));
}

void BatchProbeTrainer::finalize_candidate(Candidate& c) const {
  const auto& train = config_.train;
  TrainResult& result = *c.result;
  if (train.evaluate_checkpoints && result.test_scores.empty()) {
    // Budget smaller than the checkpoint interval: evaluate once at end.
    const double score =
        evaluate_agent(*c.agent, *domain_, eval_indices_, train.fidelity,
                       c.job->seed ^ 0x5eedf00d);
    result.test_epochs.push_back(static_cast<double>(train.epochs));
    result.test_scores.push_back(score);
  }
  result.final_score = train.evaluate_checkpoints
                           ? util::tail_mean(result.test_scores, 10)
                           : util::tail_mean(result.train_rewards, 10);
  if (train.emulation_final_eval) {
    result.emulation_score =
        evaluate_agent(*c.agent, *domain_, env::Fidelity::kEmulation,
                       c.job->seed ^ 0xe111u);
  }
}

void BatchProbeTrainer::train_block(std::span<const ProbeJob> jobs,
                                    std::span<TrainResult> results) const {
  obs::ScopedTimer timer(
      obs::maybe_histogram(config_.metrics, "rl.probe_block.seconds"));
  // A block runs entirely on one thread, so the delta of this thread's
  // kernel tallies across the block is exactly the block's own mat-mat
  // volume (published below alongside the dsl.exec.* aggregates).
  const nn::KernelCounters kernels_before = nn::thread_kernel_counters();
  if (config_.metrics != nullptr) {
    config_.metrics->counter("rl.probe_blocks").add();
    config_.metrics->counter("rl.probe_block_candidates").add(jobs.size());
    config_.metrics->gauge("nn.kernel.flavor")
        .set(static_cast<double>(static_cast<int>(nn::kernel_flavor())));
  }
  const auto& train = config_.train;
  std::vector<Candidate> block;
  block.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    block.emplace_back(jobs[i], results[i]);
  }

  // Agent construction mirrors Trainer::train's init exactly (same derived
  // init seed, same failure capture).
  for (Candidate& c : block) {
    try {
      util::Rng init_rng(c.job->seed ^ 0xabcdef1234567890ULL);
      c.agent = std::make_unique<PolicyAgent>(*c.job->program, *c.job->spec,
                                              domain_->num_actions(),
                                              domain_->catalog(), init_rng);
      c.agent->net().sync_inference_cache();
      c.optimizer = std::make_unique<nn::Adam>(train.learning_rate);
    } catch (const std::exception& e) {
      c.fail(e);
    }
  }

  for (std::size_t epoch = 0; epoch < train.epochs; ++epoch) {
    bool any_live = false;
    for (const Candidate& c : block) any_live |= !c.failed;
    if (!any_live) break;

    const double progress =
        train.epochs > 1 ? static_cast<double>(epoch) /
                               static_cast<double>(train.epochs - 1)
                         : 1.0;
    const double entropy_weight =
        train.entropy_start +
        (train.entropy_end - train.entropy_start) * progress;

    // Episode starts: per-candidate environment choice and offset, drawn
    // from the candidate's own stream in the serial order (choice, then
    // reset).
    for (Candidate& c : block) {
      if (c.failed) continue;
      try {
        c.episode = domain_->start_train_episode(train.fidelity, c.rng);
        c.obs = c.episode->reset();
        c.agent->net().begin_batch_capture(domain_->episode_length());
        c.step_probs.clear();
        c.step_values.clear();
        c.actions.clear();
        c.rewards.clear();
        c.episode_done = false;
      } catch (const std::exception& e) {
        c.fail(e);
      }
    }

    // Lockstep rollout: one env step per live candidate per sweep, until
    // every episode in the block has finished.
    bool active = true;
    while (active) {
      active = false;
      for (Candidate& c : block) {
        if (c.failed || c.episode_done) continue;
        try {
          step_candidate(c);
        } catch (const std::exception& e) {
          c.fail(e);
          continue;
        }
        active |= !c.episode_done;
      }
    }

    // Fused per-candidate update over the full episode.
    for (Candidate& c : block) {
      if (c.failed) continue;
      try {
        update_candidate(c, entropy_weight);
      } catch (const std::exception& e) {
        c.fail(e);
      }
    }

    if (train.evaluate_checkpoints &&
        (epoch + 1) % train.test_interval == 0) {
      for (Candidate& c : block) {
        if (c.failed) continue;
        try {
          const double score =
              evaluate_agent(*c.agent, *domain_, eval_indices_,
                             train.fidelity, c.job->seed ^ 0x5eedf00d);
          c.result->test_epochs.push_back(static_cast<double>(epoch + 1));
          c.result->test_scores.push_back(score);
        } catch (const std::exception& e) {
          c.fail(e);
        }
      }
    }
  }

  for (Candidate& c : block) {
    if (c.failed) continue;
    try {
      finalize_candidate(c);
    } catch (const std::exception& e) {
      c.fail(e);
    }
  }

  // DSL execution volume, aggregated once per block rather than per step
  // (the counters are atomics; per-step adds would serialize the pool).
  if (config_.metrics != nullptr) {
    std::uint64_t runs = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cost_units = 0;
    for (const Candidate& c : block) {
      if (c.agent == nullptr) continue;
      runs += c.agent->exec_runs();
      instructions += c.agent->exec_stats().instructions;
      cost_units += c.agent->exec_stats().cost_units;
    }
    config_.metrics->counter("dsl.exec.runs").add(runs);
    config_.metrics->counter("dsl.exec.instructions").add(instructions);
    config_.metrics->counter("dsl.exec.cost_units").add(cost_units);
    const nn::KernelCounters& kernels_after = nn::thread_kernel_counters();
    config_.metrics->counter("nn.matmul.calls")
        .add(kernels_after.matmul_calls - kernels_before.matmul_calls);
    config_.metrics->counter("nn.matmul.flops")
        .add(kernels_after.matmul_flops - kernels_before.matmul_flops);
  }
}

}  // namespace nada::rl

// Batched probe training: many candidate designs trained in lockstep.
//
// The funnel's early-probe stage trains thousands of candidates for a
// short budget whose only output is the training-reward curve. Run one
// Trainer per candidate and almost all the time goes to single-sample
// network passes, per-step allocations, and running the state program
// twice per step. BatchProbeTrainer trains a *block* of candidates in
// lockstep instead: every candidate keeps its own RNG stream, episode,
// and trajectory, but each candidate's per-epoch policy/value update is
// fused into matrix-matrix passes over the whole episode
// (nn::Layer::forward_batch / backward_batch), the state program runs
// once per step instead of twice, and the thread pool schedules blocks
// of candidates instead of one task per candidate.
//
// The trainer is domain-generic (it probes whatever env::TaskDomain it is
// given — ABR and CC use the identical code path); fixed-length episodes
// are required so the capture caches can be sized up front, and both
// domains provide them.
//
// The contract that makes this safe to switch on by default: given the
// same per-candidate seeds, results are BIT-IDENTICAL to a fresh
// rl::Trainer per candidate — same reward curves, same failure captures,
// same checkpoint scores. The batched kernels preserve the serial
// accumulation order (see nn/mat.h), and candidates never share a random
// draw. tests/batch_probe_test.cpp (ABR) and tests/cc_funnel_test.cpp
// (CC) pin the guarantee down.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "env/domain.h"
#include "obs/metrics.h"
#include "rl/trainer.h"
#include "util/thread_pool.h"

namespace nada::rl {

/// One probe candidate: a design plus the seed its Trainer would get.
struct ProbeJob {
  const dsl::StateProgram* program = nullptr;
  const nn::ArchSpec* spec = nullptr;
  std::uint64_t seed = 0;  ///< equals the serial Trainer's constructor seed
};

struct BatchProbeConfig {
  TrainConfig train;  ///< probe budget (the pipeline passes early_epochs)
  /// Candidates trained in lockstep per scheduled block. Each candidate
  /// carries a few MB of weights, optimizer state, and capture caches, so
  /// very large blocks thrash L2 during the round-robin rollout; 4 keeps
  /// the lockstep structure (shared scheduling, shared trace table walk)
  /// while staying cache-resident on small cores.
  std::size_t block_size = 4;
  /// Optional profiling registry (pure readout): per-block wall clock in
  /// rl.probe_block.seconds, volumes in rl.probe_blocks /
  /// rl.probe_block_candidates, DSL execution volume in dsl.exec.*, and
  /// batched mat-mat kernel volume in nn.matmul.calls / nn.matmul.flops
  /// plus the active flavor in the nn.kernel.flavor gauge
  /// (0=scalar, 1=avx2, 2=fma). Must outlive the trainer.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Trains each job exactly as `Trainer(domain, config.train,
/// job.seed).train(*job.program, *job.spec)` would, but in lockstep blocks
/// with fused per-epoch updates. Results are bit-identical to the serial
/// path; failures are captured per candidate without disturbing the rest
/// of the block.
class BatchProbeTrainer {
 public:
  /// Domain-generic; `domain` must outlive the trainer.
  BatchProbeTrainer(const env::TaskDomain& domain, BatchProbeConfig config);

  /// ABR convenience: wraps (dataset, video) in an owned env::AbrDomain.
  BatchProbeTrainer(const trace::Dataset& dataset, const video::Video& video,
                    BatchProbeConfig config);

  /// Trains all jobs; blocks are scheduled on `pool` when non-null.
  [[nodiscard]] std::vector<TrainResult> train(std::span<const ProbeJob> jobs,
                                               util::ThreadPool* pool =
                                                   nullptr) const;

 private:
  struct Candidate;

  BatchProbeTrainer(std::shared_ptr<const env::TaskDomain> domain,
                    BatchProbeConfig config);

  void train_block(std::span<const ProbeJob> jobs,
                   std::span<TrainResult> results) const;
  void step_candidate(Candidate& c) const;
  void update_candidate(Candidate& c, double entropy_weight) const;
  void finalize_candidate(Candidate& c) const;

  std::shared_ptr<const env::TaskDomain> owned_domain_;
  const env::TaskDomain* domain_;
  BatchProbeConfig config_;
  std::vector<std::size_t> eval_indices_;
};

}  // namespace nada::rl

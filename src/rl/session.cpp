#include "rl/session.h"

#include <algorithm>

#include "util/stats.h"

namespace nada::rl {

SessionResult aggregate_sessions(std::vector<TrainResult> sessions,
                                 bool emulation_eval) {
  SessionResult result;
  result.sessions = std::move(sessions);

  // Median of per-session final scores over the sessions that ran.
  std::vector<double> finals;
  for (const auto& s : result.sessions) {
    if (!s.failed) finals.push_back(s.final_score);
  }
  if (finals.empty()) {
    result.failed = true;
    result.test_score = -1e9;
    return result;
  }
  result.test_score = util::median(finals);
  if (emulation_eval) {
    std::vector<double> emu_finals;
    for (const auto& s : result.sessions) {
      if (!s.failed) emu_finals.push_back(s.emulation_score);
    }
    result.emulation_score = util::median(emu_finals);
  }

  // Median curve: align checkpoints by index (sessions share the cadence).
  std::size_t num_checkpoints = 0;
  for (const auto& s : result.sessions) {
    if (!s.failed) {
      num_checkpoints = std::max(num_checkpoints, s.test_scores.size());
    }
  }
  for (std::size_t c = 0; c < num_checkpoints; ++c) {
    std::vector<double> at_c;
    for (const auto& s : result.sessions) {
      if (!s.failed && c < s.test_scores.size()) {
        at_c.push_back(s.test_scores[c]);
      }
    }
    if (!at_c.empty()) {
      result.median_curve.push_back(util::median(at_c));
      for (const auto& s : result.sessions) {
        if (!s.failed && c < s.test_epochs.size()) {
          if (result.curve_epochs.size() <= c) {
            result.curve_epochs.push_back(s.test_epochs[c]);
          }
          break;
        }
      }
    }
  }
  return result;
}

SessionResult run_sessions(const env::TaskDomain& domain,
                           const dsl::StateProgram& program,
                           const nn::ArchSpec& spec,
                           const SessionConfig& config,
                           std::uint64_t base_seed, util::ThreadPool* pool) {
  if (config.seeds == 0) {
    throw std::invalid_argument("run_sessions: zero seeds");
  }
  std::vector<TrainResult> sessions(config.seeds);
  auto run_one = [&](std::size_t i) {
    Trainer trainer(domain, config.train,
                    base_seed + 0x9e3779b9ULL * (i + 1));
    sessions[i] = trainer.train(program, spec);
  };
  if (pool != nullptr && config.seeds > 1) {
    pool->parallel_for(config.seeds, run_one);
  } else {
    for (std::size_t i = 0; i < config.seeds; ++i) run_one(i);
  }
  return aggregate_sessions(std::move(sessions),
                            config.train.emulation_final_eval);
}

SessionResult run_sessions(const trace::Dataset& dataset,
                           const video::Video& video,
                           const dsl::StateProgram& program,
                           const nn::ArchSpec& spec,
                           const SessionConfig& config,
                           std::uint64_t base_seed, util::ThreadPool* pool) {
  const env::AbrDomain domain(dataset, video);
  return run_sessions(domain, program, spec, config, base_seed, pool);
}

std::vector<SessionResult> run_session_batch(const env::TaskDomain& domain,
                                             const std::vector<SessionJob>& jobs,
                                             const SessionConfig& config,
                                             util::ThreadPool* pool) {
  if (config.seeds == 0) {
    throw std::invalid_argument("run_session_batch: zero seeds");
  }
  for (const auto& job : jobs) {
    if (job.program == nullptr || job.spec == nullptr) {
      throw std::invalid_argument("run_session_batch: null job member");
    }
  }
  // Flatten (job, seed) into one task list.
  std::vector<std::vector<TrainResult>> per_job(jobs.size());
  for (auto& v : per_job) v.resize(config.seeds);
  const std::size_t total = jobs.size() * config.seeds;
  auto run_one = [&](std::size_t flat) {
    const std::size_t j = flat / config.seeds;
    const std::size_t s = flat % config.seeds;
    Trainer trainer(domain, config.train,
                    jobs[j].base_seed + 0x9e3779b9ULL * (s + 1));
    per_job[j][s] = trainer.train(*jobs[j].program, *jobs[j].spec);
  };
  if (pool != nullptr && total > 1) {
    pool->parallel_for(total, run_one);
  } else {
    for (std::size_t i = 0; i < total; ++i) run_one(i);
  }
  std::vector<SessionResult> results;
  results.reserve(jobs.size());
  for (auto& sessions : per_job) {
    results.push_back(aggregate_sessions(std::move(sessions),
                                         config.train.emulation_final_eval));
  }
  return results;
}

std::vector<SessionResult> run_session_batch(
    const trace::Dataset& dataset, const video::Video& video,
    const std::vector<SessionJob>& jobs, const SessionConfig& config,
    util::ThreadPool* pool) {
  const env::AbrDomain domain(dataset, video);
  return run_session_batch(domain, jobs, config, pool);
}

}  // namespace nada::rl

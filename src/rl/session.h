// Multi-seed training sessions and the paper's "test score".
//
// §3.1: each design is trained five times with different random seeds; each
// session's score is the average test reward over its last 10 checkpoints,
// and the reported score is the median across sessions. run_sessions
// implements exactly that protocol (seed count is configurable) and also
// returns the per-checkpoint median curve used by Figures 3 and 4.
// Sessions are domain-generic; the (dataset, video) overloads are the ABR
// convenience form.
#pragma once

#include <cstdint>
#include <vector>

#include "env/domain.h"
#include "rl/trainer.h"
#include "util/thread_pool.h"

namespace nada::rl {

struct SessionConfig {
  std::size_t seeds = 5;
  TrainConfig train;
};

struct SessionResult {
  double test_score = 0.0;  ///< median across seeds of per-session scores
  /// Median emulation score across seeds (populated when the train config
  /// requested emulation_final_eval).
  double emulation_score = 0.0;
  std::vector<TrainResult> sessions;
  /// Median test score across seeds at each checkpoint (Figure 3/4 series);
  /// paired with `curve_epochs`.
  std::vector<double> median_curve;
  std::vector<double> curve_epochs;
  bool failed = false;  ///< true when every session failed
};

/// Trains `program`+`spec` across `config.seeds` independent sessions over
/// `domain`. Sessions run in parallel when `pool` is non-null.
[[nodiscard]] SessionResult run_sessions(const env::TaskDomain& domain,
                                         const dsl::StateProgram& program,
                                         const nn::ArchSpec& spec,
                                         const SessionConfig& config,
                                         std::uint64_t base_seed,
                                         util::ThreadPool* pool = nullptr);

/// ABR convenience overload.
[[nodiscard]] SessionResult run_sessions(const trace::Dataset& dataset,
                                         const video::Video& video,
                                         const dsl::StateProgram& program,
                                         const nn::ArchSpec& spec,
                                         const SessionConfig& config,
                                         std::uint64_t base_seed,
                                         util::ThreadPool* pool = nullptr);

/// Aggregates already-run per-seed results into a SessionResult (the same
/// median/curve logic run_sessions applies).
[[nodiscard]] SessionResult aggregate_sessions(
    std::vector<TrainResult> sessions, bool emulation_eval);

/// One design to train across seeds.
struct SessionJob {
  const dsl::StateProgram* program = nullptr;
  const nn::ArchSpec* spec = nullptr;
  std::uint64_t base_seed = 0;
};

/// Trains many designs, flattening every (design, seed) pair into one
/// parallel work list — keeps all pool threads busy even when designs
/// outnumber seeds or vice versa.
[[nodiscard]] std::vector<SessionResult> run_session_batch(
    const env::TaskDomain& domain, const std::vector<SessionJob>& jobs,
    const SessionConfig& config, util::ThreadPool* pool);

/// ABR convenience overload.
[[nodiscard]] std::vector<SessionResult> run_session_batch(
    const trace::Dataset& dataset, const video::Video& video,
    const std::vector<SessionJob>& jobs, const SessionConfig& config,
    util::ThreadPool* pool);

}  // namespace nada::rl

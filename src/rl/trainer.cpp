#include "rl/trainer.h"

#include <algorithm>
#include <cmath>

#include "env/abr_env.h"
#include "nn/optimizer.h"
#include "util/stats.h"

namespace nada::rl {

double evaluate_agent(PolicyAgent& agent, const env::TaskDomain& domain,
                      std::span<const std::size_t> indices,
                      env::Fidelity fidelity, std::uint64_t eval_seed) {
  util::Rng eval_rng(eval_seed);
  util::RunningStats step_rewards;
  for (std::size_t idx : indices) {
    const auto episode = domain.start_eval_episode(idx, fidelity, eval_rng);
    dsl::Bindings obs = episode->reset();
    while (!episode->done()) {
      const auto decision = agent.decide(obs, /*sample=*/false, eval_rng);
      env::DomainStep step = episode->step(decision.action);
      step_rewards.add(step.reward);
      obs = std::move(step.observation);
    }
  }
  return step_rewards.mean();
}

double evaluate_agent(PolicyAgent& agent, const env::TaskDomain& domain,
                      env::Fidelity fidelity, std::uint64_t eval_seed) {
  return evaluate_agent(agent, domain,
                        eval_trace_indices(domain.num_eval_units(), 0),
                        fidelity, eval_seed);
}

double evaluate_agent(PolicyAgent& agent,
                      std::span<const trace::Trace> test_traces,
                      std::span<const std::size_t> indices,
                      const video::Video& video, env::Fidelity fidelity,
                      std::uint64_t eval_seed) {
  util::Rng eval_rng(eval_seed);
  util::RunningStats chunk_rewards;
  for (std::size_t idx : indices) {
    env::AbrEnv env(test_traces[idx], video, fidelity, eval_rng);
    env::Observation obs = env.reset();
    while (!env.done()) {
      const auto decision = agent.decide(obs, /*sample=*/false, eval_rng);
      const env::StepResult step = env.step(decision.action);
      chunk_rewards.add(step.reward);
      obs = step.observation;
    }
  }
  return chunk_rewards.mean();
}

double evaluate_agent(PolicyAgent& agent,
                      std::span<const trace::Trace> test_traces,
                      const video::Video& video, env::Fidelity fidelity,
                      std::uint64_t eval_seed) {
  return evaluate_agent(agent, test_traces,
                        eval_trace_indices(test_traces.size(), 0), video,
                        fidelity, eval_seed);
}

std::vector<std::size_t> eval_trace_indices(std::size_t num_traces,
                                            std::size_t cap) {
  if (cap == 0 || cap >= num_traces) {
    std::vector<std::size_t> all(num_traces);
    for (std::size_t i = 0; i < num_traces; ++i) all[i] = i;
    return all;
  }
  // Even stride across the whole split: index j -> floor(j * n / cap).
  // Indices are strictly increasing (cap < n), so no trace repeats.
  std::vector<std::size_t> picked(cap);
  for (std::size_t j = 0; j < cap; ++j) {
    picked[j] = j * num_traces / cap;
  }
  return picked;
}

double resolve_reward_scale(const TrainConfig& config,
                            const env::TaskDomain& domain) {
  return config.reward_scale > 0.0 ? config.reward_scale
                                   : domain.reward_scale_hint();
}

std::vector<double> discounted_returns(std::span<const double> rewards,
                                       double reward_scale, double gamma) {
  std::vector<double> returns(rewards.size());
  double running = 0.0;
  for (std::size_t t = rewards.size(); t-- > 0;) {
    running = rewards[t] / reward_scale + gamma * running;
    returns[t] = running;
  }
  return returns;
}

void condition_advantages(const TrainConfig& config,
                          std::vector<double>& advantages) {
  if (config.normalize_advantages && advantages.size() > 1) {
    const double mean_adv = util::mean(advantages);
    const double sd = std::max(util::stddev(advantages), 1e-6);
    for (double& a : advantages) a = (a - mean_adv) / sd;
  }
  if (config.advantage_clip > 0.0) {
    for (double& a : advantages) {
      a = std::clamp(a, -config.advantage_clip, config.advantage_clip);
    }
  }
}

double a2c_step_gradient(const TrainConfig& config, const nn::Vec& probs,
                         std::size_t action, double advantage,
                         double step_return, double value,
                         double entropy_weight, double scale,
                         std::span<double> dlogits) {
  const double ent = nn::entropy(probs);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const double onehot = i == action ? 1.0 : 0.0;
    const double policy_grad = advantage * (probs[i] - onehot);
    const double entropy_grad =
        entropy_weight * probs[i] *
        (std::log(std::max(probs[i], 1e-12)) + ent);
    dlogits[i] = (policy_grad + entropy_grad) * scale;
  }
  // Huber (smooth-L1) critic: bounded gradient so early catastrophic
  // returns cannot dominate the update.
  const double value_error =
      std::clamp(value - step_return, -config.huber_delta,
                 config.huber_delta);
  return 2.0 * config.critic_weight * value_error * scale;
}

Trainer::Trainer(std::shared_ptr<const env::TaskDomain> domain,
                 TrainConfig config, std::uint64_t seed)
    : owned_domain_(std::move(domain)), domain_(owned_domain_.get()),
      config_(config), seed_(seed), rng_(seed) {
  if (config_.epochs == 0) {
    throw std::invalid_argument("Trainer: zero epochs");
  }
  if (config_.test_interval == 0) {
    throw std::invalid_argument("Trainer: zero test interval");
  }
  eval_indices_ =
      eval_trace_indices(domain_->num_eval_units(), config_.max_eval_traces);
}

Trainer::Trainer(const env::TaskDomain& domain, TrainConfig config,
                 std::uint64_t seed)
    : Trainer(std::shared_ptr<const env::TaskDomain>(
                  std::shared_ptr<void>{}, &domain),
              config, seed) {}

Trainer::Trainer(const trace::Dataset& dataset, const video::Video& video,
                 TrainConfig config, std::uint64_t seed)
    : Trainer(std::make_shared<env::AbrDomain>(dataset, video), config,
              seed) {}

double Trainer::checkpoint_eval(PolicyAgent& agent) const {
  return evaluate_agent(agent, *domain_, eval_indices_, config_.fidelity,
                        seed_ ^ 0x5eedf00d);
}

void Trainer::run_epoch(PolicyAgent& agent, nn::Adam& optimizer,
                        double entropy_weight, TrainResult& result) {
  const auto episode =
      domain_->start_train_episode(config_.fidelity, rng_);

  struct Step {
    dsl::Bindings obs;
    std::size_t action = 0;
    double reward = 0.0;
    double value = 0.0;
  };
  std::vector<Step> steps;
  steps.reserve(domain_->episode_length());

  dsl::Bindings obs = episode->reset();
  while (!episode->done()) {
    const auto decision = agent.decide(obs, /*sample=*/true, rng_);
    env::DomainStep sr = episode->step(decision.action);
    steps.push_back(
        Step{std::move(obs), decision.action, sr.reward, decision.value});
    obs = std::move(sr.observation);
  }

  // Discounted returns over scaled rewards (see TrainConfig::reward_scale).
  const double reward_scale = resolve_reward_scale(config_, *domain_);
  std::vector<double> rewards(steps.size());
  for (std::size_t t = 0; t < steps.size(); ++t) rewards[t] = steps[t].reward;
  const std::vector<double> returns =
      discounted_returns(rewards, reward_scale, config_.gamma);

  // First pass: fresh values for the advantage estimates.
  std::vector<double> advantages(steps.size());
  std::vector<dsl::StateMatrix> matrices;
  matrices.reserve(steps.size());
  for (std::size_t t = 0; t < steps.size(); ++t) {
    matrices.push_back(agent.eval_state(steps[t].obs));
    const auto out = agent.net().forward(agent.network_rows(matrices[t]));
    advantages[t] = returns[t] - out.value;
  }
  condition_advantages(config_, advantages);

  // Accumulate policy + value gradients over the episode.
  agent.net().zero_grad();
  const double scale = 1.0 / static_cast<double>(steps.size());
  const std::size_t num_actions = agent.net().num_actions();
  double reward_sum = 0.0;
  for (std::size_t t = 0; t < steps.size(); ++t) {
    reward_sum += steps[t].reward;
    const auto out = agent.net().forward(agent.network_rows(matrices[t]));
    nn::Vec dlogits(num_actions);
    const double dvalue =
        a2c_step_gradient(config_, out.probs, steps[t].action, advantages[t],
                          returns[t], out.value, entropy_weight, scale,
                          dlogits);
    agent.net().backward(dlogits, dvalue);
  }
  auto params = agent.net().params();
  nn::Optimizer::clip_global_norm(params, config_.grad_clip);
  optimizer.step(params);

  result.train_rewards.push_back(reward_sum /
                                 static_cast<double>(steps.size()));
}

TrainResult Trainer::train(const dsl::StateProgram& program,
                           const nn::ArchSpec& spec) {
  TrainResult result;
  try {
    util::Rng init_rng(seed_ ^ 0xabcdef1234567890ULL);
    PolicyAgent agent(program, spec, domain_->num_actions(),
                      domain_->catalog(), init_rng);
    nn::Adam optimizer(config_.learning_rate);

    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
      const double progress =
          config_.epochs > 1
              ? static_cast<double>(epoch) /
                    static_cast<double>(config_.epochs - 1)
              : 1.0;
      const double entropy_weight =
          config_.entropy_start +
          (config_.entropy_end - config_.entropy_start) * progress;
      run_epoch(agent, optimizer, entropy_weight, result);

      if (config_.evaluate_checkpoints &&
          (epoch + 1) % config_.test_interval == 0) {
        const double score = checkpoint_eval(agent);
        result.test_epochs.push_back(static_cast<double>(epoch + 1));
        result.test_scores.push_back(score);
      }
    }
    if (config_.evaluate_checkpoints && result.test_scores.empty()) {
      // Budget smaller than the checkpoint interval: evaluate once at end.
      const double score = checkpoint_eval(agent);
      result.test_epochs.push_back(static_cast<double>(config_.epochs));
      result.test_scores.push_back(score);
    }
    result.final_score = config_.evaluate_checkpoints
                             ? util::tail_mean(result.test_scores, 10)
                             : util::tail_mean(result.train_rewards, 10);
    if (config_.emulation_final_eval) {
      result.emulation_score =
          evaluate_agent(agent, *domain_, env::Fidelity::kEmulation,
                         seed_ ^ 0xe111u);
    }
  } catch (const std::exception& e) {
    result.failed = true;
    result.error = e.what();
    result.final_score = -1e9;
  }
  return result;
}

}  // namespace nada::rl

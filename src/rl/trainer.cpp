#include "rl/trainer.h"

#include <algorithm>
#include <cmath>

#include "nn/optimizer.h"
#include "util/stats.h"

namespace nada::rl {

double evaluate_agent(AbrAgent& agent,
                      std::span<const trace::Trace> test_traces,
                      const video::Video& video, env::Fidelity fidelity,
                      std::uint64_t eval_seed) {
  util::Rng eval_rng(eval_seed);
  util::RunningStats chunk_rewards;
  for (const auto& tr : test_traces) {
    env::AbrEnv env(tr, video, fidelity, eval_rng);
    env::Observation obs = env.reset();
    while (!env.done()) {
      const auto decision = agent.decide(obs, /*sample=*/false, eval_rng);
      const env::StepResult step = env.step(decision.action);
      chunk_rewards.add(step.reward);
      obs = step.observation;
    }
  }
  return chunk_rewards.mean();
}

std::span<const trace::Trace> Trainer::eval_traces() const {
  const auto& test = dataset_->test;
  if (config_.max_eval_traces == 0 || test.size() <= config_.max_eval_traces) {
    return test;
  }
  return std::span<const trace::Trace>(test.data(), config_.max_eval_traces);
}

Trainer::Trainer(const trace::Dataset& dataset, const video::Video& video,
                 TrainConfig config, std::uint64_t seed)
    : dataset_(&dataset), video_(&video), config_(config), seed_(seed),
      rng_(seed) {
  if (dataset_->train.empty() || dataset_->test.empty()) {
    throw std::invalid_argument("Trainer: dataset has an empty split");
  }
  if (config_.epochs == 0) {
    throw std::invalid_argument("Trainer: zero epochs");
  }
  if (config_.test_interval == 0) {
    throw std::invalid_argument("Trainer: zero test interval");
  }
}

void Trainer::run_epoch(AbrAgent& agent, nn::Adam& optimizer,
                        double entropy_weight, TrainResult& result) {
  const trace::Trace& tr = rng_.choice(dataset_->train);
  env::AbrEnv env(tr, *video_, config_.fidelity, rng_);

  struct Step {
    env::Observation obs;
    std::size_t action = 0;
    double reward = 0.0;
    double value = 0.0;
  };
  std::vector<Step> steps;
  steps.reserve(video_->num_chunks());

  env::Observation obs = env.reset();
  while (!env.done()) {
    const auto decision = agent.decide(obs, /*sample=*/true, rng_);
    const env::StepResult sr = env.step(decision.action);
    steps.push_back(Step{obs, decision.action, sr.reward, decision.value});
    obs = sr.observation;
  }

  // Discounted returns over scaled rewards (see TrainConfig::reward_scale).
  const double reward_scale =
      config_.reward_scale > 0.0
          ? config_.reward_scale
          : video_->ladder().max_kbps() / 1000.0;
  std::vector<double> returns(steps.size());
  double running = 0.0;
  for (std::size_t t = steps.size(); t-- > 0;) {
    running = steps[t].reward / reward_scale + config_.gamma * running;
    returns[t] = running;
  }

  // First pass: fresh values for the advantage estimates.
  std::vector<double> advantages(steps.size());
  std::vector<dsl::StateMatrix> matrices;
  matrices.reserve(steps.size());
  for (std::size_t t = 0; t < steps.size(); ++t) {
    matrices.push_back(agent.program().run(steps[t].obs));
    const auto out = agent.net().forward(matrices[t].to_network_rows());
    advantages[t] = returns[t] - out.value;
  }
  if (config_.normalize_advantages && steps.size() > 1) {
    const double mean_adv = util::mean(advantages);
    const double sd = std::max(util::stddev(advantages), 1e-6);
    for (double& a : advantages) a = (a - mean_adv) / sd;
  }
  if (config_.advantage_clip > 0.0) {
    for (double& a : advantages) {
      a = std::clamp(a, -config_.advantage_clip, config_.advantage_clip);
    }
  }

  // Accumulate policy + value gradients over the episode.
  agent.net().zero_grad();
  const double scale = 1.0 / static_cast<double>(steps.size());
  const std::size_t num_actions = agent.net().num_actions();
  double reward_sum = 0.0;
  for (std::size_t t = 0; t < steps.size(); ++t) {
    reward_sum += steps[t].reward;
    const auto out = agent.net().forward(matrices[t].to_network_rows());
    const double advantage = advantages[t];
    const double ent = nn::entropy(out.probs);
    nn::Vec dlogits(num_actions);
    for (std::size_t i = 0; i < num_actions; ++i) {
      const double onehot = i == steps[t].action ? 1.0 : 0.0;
      const double policy_grad = advantage * (out.probs[i] - onehot);
      const double entropy_grad =
          entropy_weight * out.probs[i] *
          (std::log(std::max(out.probs[i], 1e-12)) + ent);
      dlogits[i] = (policy_grad + entropy_grad) * scale;
    }
    // Huber (smooth-L1) critic: bounded gradient so early catastrophic
    // returns cannot dominate the update.
    const double value_error =
        std::clamp(out.value - returns[t], -config_.huber_delta,
                   config_.huber_delta);
    const double dvalue = 2.0 * config_.critic_weight * value_error * scale;
    agent.net().backward(dlogits, dvalue);
  }
  auto params = agent.net().params();
  nn::Optimizer::clip_global_norm(params, config_.grad_clip);
  optimizer.step(params);

  result.train_rewards.push_back(reward_sum /
                                 static_cast<double>(steps.size()));
}

TrainResult Trainer::train(const dsl::StateProgram& program,
                           const nn::ArchSpec& spec) {
  TrainResult result;
  try {
    util::Rng init_rng(seed_ ^ 0xabcdef1234567890ULL);
    AbrAgent agent(program, spec, video_->ladder().levels(), init_rng);
    nn::Adam optimizer(config_.learning_rate);

    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
      const double progress =
          config_.epochs > 1
              ? static_cast<double>(epoch) /
                    static_cast<double>(config_.epochs - 1)
              : 1.0;
      const double entropy_weight =
          config_.entropy_start +
          (config_.entropy_end - config_.entropy_start) * progress;
      run_epoch(agent, optimizer, entropy_weight, result);

      if (config_.evaluate_checkpoints &&
          (epoch + 1) % config_.test_interval == 0) {
        const double score =
            evaluate_agent(agent, eval_traces(), *video_, config_.fidelity,
                           seed_ ^ 0x5eedf00d);
        result.test_epochs.push_back(static_cast<double>(epoch + 1));
        result.test_scores.push_back(score);
      }
    }
    if (config_.evaluate_checkpoints && result.test_scores.empty()) {
      // Budget smaller than the checkpoint interval: evaluate once at end.
      const double score = evaluate_agent(
          agent, eval_traces(), *video_, config_.fidelity, seed_ ^ 0x5eedf00d);
      result.test_epochs.push_back(static_cast<double>(config_.epochs));
      result.test_scores.push_back(score);
    }
    result.final_score = config_.evaluate_checkpoints
                             ? util::tail_mean(result.test_scores, 10)
                             : util::tail_mean(result.train_rewards, 10);
    if (config_.emulation_final_eval) {
      result.emulation_score =
          evaluate_agent(agent, dataset_->test, *video_,
                         env::Fidelity::kEmulation, seed_ ^ 0xe111u);
    }
  } catch (const std::exception& e) {
    result.failed = true;
    result.error = e.what();
    result.final_score = -1e9;
  }
  return result;
}

}  // namespace nada::rl

// Advantage actor-critic training over any TaskDomain, following
// Pensieve's training protocol: each epoch rolls one full episode in an
// environment randomly chosen from the train split, the discounted-return
// advantage drives the policy gradient (with entropy regularization), and
// model checkpoints are periodically evaluated on the held-out eval split.
//
// The trainer is domain-generic: ABR and congestion control train through
// the same loop, differing only in the env::TaskDomain they are given.
// ABR-shaped convenience overloads (dataset + video) construct an
// env::AbrDomain internally and are bit-identical to the historical
// ABR-only implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dsl/state_program.h"
#include "env/abr_domain.h"
#include "env/domain.h"
#include "nn/arch.h"
#include "nn/optimizer.h"
#include "rl/agent.h"
#include "trace/generator.h"
#include "video/video.h"

namespace nada::rl {

struct TrainConfig {
  std::size_t epochs = 400;
  std::size_t test_interval = 10;  ///< evaluate a checkpoint every N epochs
  double gamma = 0.99;
  double learning_rate = 1e-3;
  double entropy_start = 1.0;  ///< entropy weight, annealed linearly
  double entropy_end = 0.05;
  double critic_weight = 0.5;
  double grad_clip = 5.0;
  /// Rewards are divided by this for gradient computation so policy/value
  /// gradients have comparable magnitudes across reward regimes (QoE_lin
  /// on the 53 Mbps YouTube ladder is ~12x Pensieve's). 0 = auto: use the
  /// domain's reward_scale_hint (ABR: the ladder's top bitrate in Mbps).
  /// Reported test scores are unscaled.
  double reward_scale = 0.0;
  /// Standardize advantages within each episode (zero mean, unit variance)
  /// before the policy-gradient step. Off by default: with QoE_lin's
  /// skewed rewards, episodes that are uniformly bad would have half their
  /// actions pushed up after standardization.
  bool normalize_advantages = false;
  /// Symmetric clip on the (scaled) advantage; bounds the gradient of any
  /// single catastrophic stall. 0 disables.
  double advantage_clip = 0.0;
  /// Huber transition point for the critic loss (scaled-return units).
  double huber_delta = 1.0;
  env::Fidelity fidelity = env::Fidelity::kSimulation;
  /// When false, skips test-set evaluation entirely (early probes only need
  /// the training-reward curve); final_score falls back to the tail of the
  /// training rewards.
  bool evaluate_checkpoints = true;
  /// Caps how many eval units each checkpoint evaluation streams
  /// (0 = all). Scaled-down runs use this to keep evaluation from
  /// dominating training cost.
  std::size_t max_eval_traces = 0;
  /// After training completes, additionally evaluate the final policy on
  /// the eval split under emulation fidelity (paper Table 4: sim-trained
  /// designs validated in emulation). Domains without an emulation model
  /// evaluate under their only simulator.
  bool emulation_final_eval = false;
};

/// Everything one training session produces. Reward curves feed the
/// early-stopping classifier; test curves feed Figures 3 and 4.
struct TrainResult {
  std::vector<double> train_rewards;  ///< per-epoch mean step reward
  std::vector<double> test_epochs;    ///< checkpoint positions
  std::vector<double> test_scores;    ///< checkpoint test scores
  double final_score = 0.0;  ///< mean of the last <=10 checkpoint scores
  /// Final policy's test score under emulation fidelity (only populated
  /// when TrainConfig::emulation_final_eval is set).
  double emulation_score = 0.0;
  bool failed = false;       ///< state program or architecture blew up
  std::string error;
};

/// Mean per-step reward of a greedy rollout over the eval units in
/// `indices` (ascending). `eval_seed` fixes the episode start offsets so
/// successive checkpoint evaluations are comparable.
[[nodiscard]] double evaluate_agent(PolicyAgent& agent,
                                    const env::TaskDomain& domain,
                                    std::span<const std::size_t> indices,
                                    env::Fidelity fidelity,
                                    std::uint64_t eval_seed);

/// As above over the domain's whole eval split.
[[nodiscard]] double evaluate_agent(PolicyAgent& agent,
                                    const env::TaskDomain& domain,
                                    env::Fidelity fidelity,
                                    std::uint64_t eval_seed);

/// ABR convenience: greedy rollout over every trace in `test_traces`.
[[nodiscard]] double evaluate_agent(PolicyAgent& agent,
                                    std::span<const trace::Trace> test_traces,
                                    const video::Video& video,
                                    env::Fidelity fidelity,
                                    std::uint64_t eval_seed);

/// ABR convenience over the subset `test_traces[i]` for i in `indices`.
[[nodiscard]] double evaluate_agent(PolicyAgent& agent,
                                    std::span<const trace::Trace> test_traces,
                                    std::span<const std::size_t> indices,
                                    const video::Video& video,
                                    env::Fidelity fidelity,
                                    std::uint64_t eval_seed);

/// Deterministic evaluation subset: `cap` indices strided evenly across
/// [0, num_traces) (all indices when cap is 0 or >= num_traces). A strided
/// pick keeps the subset representative of the whole split — evaluating a
/// prefix would bias every checkpoint score toward whatever traces happen
/// to sort first.
[[nodiscard]] std::vector<std::size_t> eval_trace_indices(
    std::size_t num_traces, std::size_t cap);

// ---- A2C loss arithmetic, shared by Trainer and BatchProbeTrainer -----------
// One definition of the per-epoch math keeps the serial and batched probe
// paths structurally incapable of drifting apart (their bit-identity is the
// batched engine's core guarantee).

/// TrainConfig::reward_scale with its 0 = "domain hint" default resolved.
[[nodiscard]] double resolve_reward_scale(const TrainConfig& config,
                                          const env::TaskDomain& domain);

/// Discounted returns over scaled rewards, newest-to-oldest accumulation.
[[nodiscard]] std::vector<double> discounted_returns(
    std::span<const double> rewards, double reward_scale, double gamma);

/// In-place advantage standardization and clipping per TrainConfig.
void condition_advantages(const TrainConfig& config,
                          std::vector<double>& advantages);

/// One step's policy gradient (entropy-regularized, written into `dlogits`)
/// and Huber critic gradient (returned).
double a2c_step_gradient(const TrainConfig& config, const nn::Vec& probs,
                         std::size_t action, double advantage,
                         double step_return, double value,
                         double entropy_weight, double scale,
                         std::span<double> dlogits);

class Trainer {
 public:
  /// Domain-generic trainer; `domain` must outlive the trainer.
  Trainer(const env::TaskDomain& domain, TrainConfig config,
          std::uint64_t seed);

  /// ABR convenience: wraps (dataset, video) in an owned env::AbrDomain.
  Trainer(const trace::Dataset& dataset, const video::Video& video,
          TrainConfig config, std::uint64_t seed);

  /// Trains one candidate design (state program + architecture) from
  /// scratch. Failures (runtime errors in the state program, invalid
  /// architectures, non-finite values) are captured in the result rather
  /// than thrown: NADA treats them as filtered-out designs.
  [[nodiscard]] TrainResult train(const dsl::StateProgram& program,
                                  const nn::ArchSpec& spec);

 private:
  /// All public constructors funnel here; a non-owning aliasing pointer
  /// carries borrowed domains.
  Trainer(std::shared_ptr<const env::TaskDomain> domain, TrainConfig config,
          std::uint64_t seed);

  void run_epoch(PolicyAgent& agent, nn::Adam& optimizer,
                 double entropy_weight, TrainResult& result);
  [[nodiscard]] double checkpoint_eval(PolicyAgent& agent) const;

  std::shared_ptr<const env::TaskDomain> owned_domain_;
  const env::TaskDomain* domain_;
  TrainConfig config_;
  std::uint64_t seed_;
  util::Rng rng_;
  std::vector<std::size_t> eval_indices_;
};

}  // namespace nada::rl

#include "search/candidate.h"

#include <algorithm>
#include <stdexcept>

namespace nada::search {

CandidateSpec CandidateSpec::state_program(std::string id,
                                           std::string source) {
  CandidateSpec spec;
  spec.kind = CandidateKind::kStateProgram;
  spec.id = std::move(id);
  spec.source = std::move(source);
  return spec;
}

CandidateSpec CandidateSpec::architecture(std::string id, nn::ArchSpec arch,
                                          std::string description) {
  CandidateSpec spec;
  spec.kind = CandidateKind::kArchitecture;
  spec.id = std::move(id);
  spec.source = std::move(description);
  spec.arch = std::move(arch);
  return spec;
}

store::Fingerprint fingerprint_of(const CandidateSpec& spec,
                                  const FixedDesign& fixed) {
  switch (spec.kind) {
    case CandidateKind::kStateProgram:
      if (fixed.arch == nullptr) {
        throw std::invalid_argument(
            "fingerprint_of: state-program candidate '" + spec.id +
            "' needs FixedDesign::arch");
      }
      return store::combine(store::fingerprint_state_source(spec.source),
                            store::fingerprint_arch(*fixed.arch));
    case CandidateKind::kArchitecture:
      if (fixed.state == nullptr) {
        throw std::invalid_argument(
            "fingerprint_of: architecture candidate '" + spec.id +
            "' needs FixedDesign::state");
      }
      return store::combine(
          store::fingerprint_arch(*spec.arch),
          store::fingerprint_state_source(fixed.state->source()));
  }
  throw std::logic_error("fingerprint_of: unknown candidate kind");
}

std::uint64_t probe_seed(const CandidateSpec& spec, std::uint64_t job_seed,
                         const store::Fingerprint& fp) {
  // The kind-specific salts are the historical per-path constants; keeping
  // them distinct means a state program and an architecture whose combined
  // fingerprints ever collided would still train on different streams.
  return spec.kind == CandidateKind::kStateProgram
             ? job_seed ^ (0xb10b << 8) ^ fp.lo
             : job_seed ^ (0xa10b << 8) ^ fp.lo;
}

std::uint64_t full_train_seed(const CandidateSpec& spec,
                              std::uint64_t job_seed,
                              const store::Fingerprint& fp) {
  return spec.kind == CandidateKind::kStateProgram
             ? job_seed ^ (0xf111 << 4) ^ fp.lo
             : job_seed ^ (0xf222 << 4) ^ fp.lo;
}

std::vector<CandidateSpec> StateCandidateSource::generate(std::size_t n) {
  std::vector<CandidateSpec> specs;
  specs.reserve(n);
  for (auto& candidate : generator_->generate_batch(n)) {
    specs.push_back(CandidateSpec::state_program(std::move(candidate.id),
                                                 std::move(candidate.source)));
  }
  return specs;
}

std::vector<CandidateSpec> ArchCandidateSource::generate(std::size_t n) {
  std::vector<CandidateSpec> specs;
  specs.reserve(n);
  for (auto& candidate : generator_->generate_batch(n)) {
    specs.push_back(CandidateSpec::architecture(
        std::move(candidate.id), std::move(candidate.spec),
        std::move(candidate.description)));
  }
  return specs;
}

std::vector<CandidateSpec> VectorCandidateSource::generate(std::size_t n) {
  std::vector<CandidateSpec> out;
  const std::size_t end = std::min(specs_.size(), next_ + n);
  out.reserve(end - next_);
  for (; next_ < end; ++next_) out.push_back(specs_[next_]);
  return out;
}

}  // namespace nada::search

// CandidateSpec: the unified candidate variant of the search API.
//
// The funnel searches over two kinds of designs — state programs trained
// on a fixed architecture, and architectures driving a fixed state
// program. Historically each kind had its own ~200-line code path
// (Pipeline::search_states / search_archs); CandidateSpec collapses them
// into one stream the single SearchJob funnel consumes, with the kind
// deciding only the genuinely kind-specific leaves:
//
//   * the content fingerprint (state: combine(state_fp, fixed_arch_fp);
//     arch: combine(arch_fp, fixed_state_fp) — the historical store keys,
//     preserved exactly so PR-1..3 journals keep serving),
//   * the pre-check (state: compile + normalization trial runs; arch: spec
//     instantiation + forward smoke test, no normalization per §2.2),
//   * the fingerprint-salted probe / full-train seeds.
//
// A CandidateSource adapts a generator into the stream; jobs may mix kinds
// freely (each candidate pairs with the FixedDesign half it lacks).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dsl/state_program.h"
#include "gen/arch_gen.h"
#include "gen/state_gen.h"
#include "nn/arch.h"
#include "store/fingerprint.h"

namespace nada::search {

enum class CandidateKind {
  kStateProgram,   ///< candidate carries NadaScript source
  kArchitecture,   ///< candidate carries an nn::ArchSpec
};

struct CandidateSpec {
  CandidateKind kind = CandidateKind::kStateProgram;
  std::string id;
  /// kStateProgram: the program text. kArchitecture: a human-readable
  /// description (lands in CandidateOutcome::source, as before).
  std::string source;
  std::optional<nn::ArchSpec> arch;  ///< kArchitecture only

  [[nodiscard]] static CandidateSpec state_program(std::string id,
                                                   std::string source);
  [[nodiscard]] static CandidateSpec architecture(std::string id,
                                                  nn::ArchSpec arch,
                                                  std::string description);
};

/// The half of the (state, arch) design a candidate does not supply.
/// `arch` is required while state-program candidates are in the stream;
/// `state` while architecture candidates are. Pointees must outlive the
/// job.
struct FixedDesign {
  const dsl::StateProgram* state = nullptr;
  const nn::ArchSpec* arch = nullptr;
};

/// Content address of `spec` completed by `fixed` — byte-for-byte the
/// historical store keys, so existing journals keep serving.
[[nodiscard]] store::Fingerprint fingerprint_of(const CandidateSpec& spec,
                                                const FixedDesign& fixed);

/// Fingerprint-derived training seeds (kind-salted, identical to the
/// historical per-path constants): identical content always trains
/// identically, which is what makes cached results transplantable across
/// runs and shards.
[[nodiscard]] std::uint64_t probe_seed(const CandidateSpec& spec,
                                       std::uint64_t job_seed,
                                       const store::Fingerprint& fp);
[[nodiscard]] std::uint64_t full_train_seed(const CandidateSpec& spec,
                                            std::uint64_t job_seed,
                                            const store::Fingerprint& fp);

/// A replayable stream of candidates. generate() advances the stream;
/// reset() rewinds it to the start for an exact replay (resume support).
class CandidateSource {
 public:
  virtual ~CandidateSource() = default;
  [[nodiscard]] virtual std::vector<CandidateSpec> generate(
      std::size_t n) = 0;
  virtual void reset() = 0;
};

/// gen::StateGenerator as a candidate stream. The generator must outlive
/// the source.
class StateCandidateSource final : public CandidateSource {
 public:
  explicit StateCandidateSource(gen::StateGenerator& generator)
      : generator_(&generator) {}
  [[nodiscard]] std::vector<CandidateSpec> generate(std::size_t n) override;
  void reset() override { generator_->reset(); }

 private:
  gen::StateGenerator* generator_;
};

/// gen::ArchGenerator as a candidate stream.
class ArchCandidateSource final : public CandidateSource {
 public:
  explicit ArchCandidateSource(gen::ArchGenerator& generator)
      : generator_(&generator) {}
  [[nodiscard]] std::vector<CandidateSpec> generate(std::size_t n) override;
  void reset() override { generator_->reset(); }

 private:
  gen::ArchGenerator* generator_;
};

/// A fixed list of candidates (tests, replayed streams, mixed-kind jobs).
class VectorCandidateSource final : public CandidateSource {
 public:
  explicit VectorCandidateSource(std::vector<CandidateSpec> specs)
      : specs_(std::move(specs)) {}
  [[nodiscard]] std::vector<CandidateSpec> generate(std::size_t n) override;
  void reset() override { next_ = 0; }

 private:
  std::vector<CandidateSpec> specs_;
  std::size_t next_ = 0;
};

}  // namespace nada::search

// Streaming stage events for the search funnel.
//
// A SearchJob fires an event for every stage transition (with wall-clock
// timing) and for every candidate milestone — entered the stream, served
// from the store cache, failed a check or blew up in training, probed,
// early-stopped, fully trained, or skipped as out-of-shard. Observers get
// live progress where the monolithic Pipeline entry points were silent
// until the final result: CLIs print funnel lines as they happen, tests
// assert stage coverage, services will export counters.
//
// Threading: candidate events are serialized (the job guards dispatch with
// a mutex), but when the probe stage runs serial per-candidate trainers on
// a thread pool (SearchConfig::probe_batch == false) they may arrive on
// pool threads. Stage start/finish events always fire on the stepping
// thread.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/strings.h"

namespace nada::search {

/// The funnel's stages, in execution order. kGenerate pulls the candidate
/// stream and computes content fingerprints; kPrecheck runs compile /
/// normalization trial runs; kProbe early-trains the survivors; kBaseline
/// trains the domain's original design; kSelect applies early stopping and
/// takes the full-training slots; kFullTrain trains the selected designs
/// across seeds; kRank computes the final ordering. kDone is the terminal
/// marker (never executed).
enum class StageKind {
  kGenerate = 0,
  kPrecheck,
  kProbe,
  kBaseline,
  kSelect,
  kFullTrain,
  kRank,
  kDone,
};

[[nodiscard]] constexpr const char* stage_label(StageKind stage) {
  switch (stage) {
    case StageKind::kGenerate: return "generate";
    case StageKind::kPrecheck: return "precheck";
    case StageKind::kProbe: return "probe";
    case StageKind::kBaseline: return "baseline";
    case StageKind::kSelect: return "select";
    case StageKind::kFullTrain: return "full-train";
    case StageKind::kRank: return "rank";
    case StageKind::kDone: return "done";
  }
  return "?";
}

enum class CandidateEventType {
  kEntered,       ///< joined the stream (kGenerate)
  kOutOfShard,    ///< outside this job's ShardSlice; skipped entirely
  kCacheHit,      ///< stage result served from the candidate store
  kFailed,        ///< failed a pre-check, or blew up during the probe
  kProbed,        ///< early-training probe completed
  kEarlyStopped,  ///< probed but filtered out before full training
  kTrained,       ///< full-scale training completed
};

[[nodiscard]] constexpr const char* event_label(CandidateEventType type) {
  switch (type) {
    case CandidateEventType::kEntered: return "entered";
    case CandidateEventType::kOutOfShard: return "out-of-shard";
    case CandidateEventType::kCacheHit: return "cache-hit";
    case CandidateEventType::kFailed: return "failed";
    case CandidateEventType::kProbed: return "probed";
    case CandidateEventType::kEarlyStopped: return "early-stopped";
    case CandidateEventType::kTrained: return "trained";
  }
  return "?";
}

struct CandidateEvent {
  CandidateEventType type = CandidateEventType::kEntered;
  StageKind stage = StageKind::kGenerate;  ///< stage that produced the event
  std::size_t index = 0;                   ///< stream position
  std::string id;
  std::string detail;  ///< failure reason / score summary, may be empty
};

struct StageEvent {
  StageKind stage = StageKind::kGenerate;
  double seconds = 0.0;  ///< wall-clock spent in the stage
};

/// One rolling window's trip through generate -> precheck -> probe -> fold
/// (streaming jobs only; batch jobs never fire window events). `retained`
/// is the running-selection size after the fold — how many candidates
/// survive in memory across windows.
struct WindowEvent {
  std::size_t index = 0;     ///< 0-based window number
  std::size_t first = 0;     ///< stream position of the window's first candidate
  std::size_t size = 0;      ///< candidates pulled into the window
  std::size_t retained = 0;  ///< running-selection size after the fold
  double seconds = 0.0;      ///< wall-clock from window generate to fold
};

class Observer {
 public:
  virtual ~Observer() = default;
  virtual void on_stage_start(StageKind /*stage*/) {}
  virtual void on_stage_finish(const StageEvent& /*event*/) {}
  virtual void on_candidate(const CandidateEvent& /*event*/) {}
  /// Streaming jobs only: fired when a window's first candidate is about
  /// to be pulled / after the window's state has been folded and retired.
  virtual void on_window_start(std::size_t /*index*/, std::size_t /*first*/) {}
  virtual void on_window_finish(const WindowEvent& /*event*/) {}
};

/// Prints one line per event — live funnel progress for CLIs and examples.
class StreamObserver : public Observer {
 public:
  /// `candidate_events` false keeps only the per-stage lines (quiet mode).
  explicit StreamObserver(std::ostream& out, bool candidate_events = true)
      : out_(&out), candidate_events_(candidate_events) {}

  void on_stage_start(StageKind stage) override {
    *out_ << "[search] stage " << stage_label(stage) << "...\n";
  }
  void on_stage_finish(const StageEvent& event) override {
    // util::format_duration, not raw doubles: a fast stage used to print
    // as "done in 1.2e-05s". The same formatter feeds the obs layer's
    // status snapshots, so every human-read duration matches.
    *out_ << "[search] stage " << stage_label(event.stage) << " done in "
          << util::format_duration(event.seconds) << "\n";
  }
  void on_candidate(const CandidateEvent& event) override {
    if (!candidate_events_) return;
    *out_ << "[search]   " << event.id << " " << event_label(event.type);
    if (!event.detail.empty()) *out_ << ": " << event.detail;
    *out_ << "\n";
  }
  void on_window_start(std::size_t index, std::size_t first) override {
    *out_ << "[search] window " << index << " (from candidate " << first
          << ")...\n";
  }
  void on_window_finish(const WindowEvent& event) override {
    *out_ << "[search] window " << event.index << " done: " << event.size
          << " candidates in " << util::format_duration(event.seconds) << ", "
          << event.retained << " retained\n";
  }

 private:
  std::ostream* out_;
  bool candidate_events_;
};

/// Records every event in order — the coverage-assertion observer the test
/// suite uses to pin that no stage or candidate milestone goes silent.
class RecordingObserver : public Observer {
 public:
  void on_stage_start(StageKind stage) override { started.push_back(stage); }
  void on_stage_finish(const StageEvent& event) override {
    finished.push_back(event);
  }
  void on_candidate(const CandidateEvent& event) override {
    candidates.push_back(event);
  }
  void on_window_start(std::size_t index, std::size_t first) override {
    window_starts.push_back({index, first});
  }
  void on_window_finish(const WindowEvent& event) override {
    windows.push_back(event);
  }

  [[nodiscard]] std::size_t count(CandidateEventType type) const {
    std::size_t n = 0;
    for (const auto& e : candidates) {
      if (e.type == type) ++n;
    }
    return n;
  }

  std::vector<StageKind> started;
  std::vector<StageEvent> finished;
  std::vector<CandidateEvent> candidates;
  std::vector<std::pair<std::size_t, std::size_t>> window_starts;
  std::vector<WindowEvent> windows;
};

}  // namespace nada::search

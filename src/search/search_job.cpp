#include "search/search_job.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "filter/checks.h"
#include "nn/mat_kernels.h"
#include "obs/scoped_timer.h"
#include "rl/agent.h"
#include "rl/batch_probe.h"
#include "util/stats.h"

namespace nada::search {
namespace {

/// Probe curves are compared via their tail: the mean of the last quarter
/// of the early-training rewards.
double probe_score(const std::vector<double>& early_rewards) {
  if (early_rewards.empty()) return -1e9;
  const double score = util::tail_mean(
      early_rewards, std::max<std::size_t>(early_rewards.size() / 4, 4));
  // A diverged probe can leave NaN in the curve; NaN in the ranking
  // comparator would break std::sort's strict weak ordering.
  return std::isnan(score) ? -1e9 : score;
}

filter::DesignRecord make_record(const CandidateOutcome& outcome,
                                 double normalizer) {
  filter::DesignRecord record;
  record.id = outcome.id;
  record.source_text = outcome.source;
  record.early_rewards = outcome.early_rewards;
  const double denom = std::max(std::abs(normalizer), 0.1);
  for (double& r : record.early_rewards) r /= denom;
  record.final_score = probe_score(outcome.early_rewards) / denom;
  return record;
}

/// Snapshot of a candidate's work products for the persistent store.
store::OutcomeRecord to_store_record(const CandidateOutcome& outcome,
                                     const store::Fingerprint& fp,
                                     store::Stage stage) {
  store::OutcomeRecord record;
  record.fingerprint = fp;
  record.stage = stage;
  record.id = outcome.id;
  record.source = outcome.source;
  record.arch = outcome.arch;
  record.compiled = outcome.compiled;
  record.compile_error = outcome.compile_error;
  record.normalized = outcome.normalized;
  record.normalization_error = outcome.normalization_error;
  record.early_probed = outcome.early_probed;
  record.early_rewards = outcome.early_rewards;
  record.fully_trained = outcome.fully_trained;
  record.test_score = outcome.test_score;
  record.emulation_score = outcome.emulation_score;
  record.curve_epochs = outcome.curve_epochs;
  record.median_curve = outcome.median_curve;
  return record;
}

/// Restores the store's work products onto a fresh outcome (everything but
/// the per-run selection verdict).
void apply_store_record(const store::OutcomeRecord& record,
                        CandidateOutcome& outcome) {
  outcome.compiled = record.compiled;
  outcome.compile_error = record.compile_error;
  outcome.normalized = record.normalized;
  outcome.normalization_error = record.normalization_error;
  if (record.stage >= store::Stage::kProbed) {
    outcome.early_probed = record.early_probed;
    outcome.early_rewards = record.early_rewards;
  }
}

/// Single point of truth for the full-training output fields: every path
/// that produces them (fresh session, store record, in-batch clone) funnels
/// through here, so a new field cannot be silently dropped on just one.
void set_full_train_fields(CandidateOutcome& outcome, bool fully_trained,
                           double test_score, double emulation_score,
                           std::vector<double> median_curve,
                           std::vector<double> curve_epochs) {
  outcome.fully_trained = fully_trained;
  outcome.test_score = test_score;
  outcome.emulation_score = emulation_score;
  outcome.median_curve = std::move(median_curve);
  outcome.curve_epochs = std::move(curve_epochs);
}

void apply_full_train_record(const store::OutcomeRecord& record,
                             CandidateOutcome& outcome) {
  set_full_train_fields(outcome, record.fully_trained, record.test_score,
                        record.emulation_score, record.median_curve,
                        record.curve_epochs);
}

/// In-batch dedup: index of the first candidate with each fingerprint.
/// Clones copy their leader's probe/training results instead of re-running
/// them (content-derived seeds make the results identical anyway).
std::vector<std::size_t> leaders_by_fingerprint(
    const std::vector<store::Fingerprint>& fps) {
  std::unordered_map<std::string, std::size_t> first_seen;
  std::vector<std::size_t> leader(fps.size());
  for (std::size_t i = 0; i < fps.size(); ++i) {
    leader[i] = first_seen.try_emplace(fps[i].hex(), i).first->second;
  }
  return leader;
}

void copy_probe_result(const CandidateOutcome& from, CandidateOutcome& to) {
  to.early_probed = from.early_probed;
  to.early_rewards = from.early_rewards;
  if (!from.early_probed) to.compile_error = from.compile_error;
}

void copy_full_train_result(const CandidateOutcome& from,
                            CandidateOutcome& to) {
  set_full_train_fields(to, from.fully_trained, from.test_score,
                        from.emulation_score, from.median_curve,
                        from.curve_epochs);
}

/// Runs the early-probe stage over `jobs` — batched lockstep blocks or one
/// serial Trainer per candidate (bit-identical either way) — and hands
/// each result to `apply(k, result)` with k indexing `jobs`.
void run_probe_stage(
    const env::TaskDomain& domain, util::ThreadPool* pool,
    const SearchConfig& config, const rl::TrainConfig& probe_config,
    const std::vector<rl::ProbeJob>& jobs,
    obs::MetricsRegistry* metrics,
    const std::function<void(std::size_t, const rl::TrainResult&)>& apply) {
  if (config.probe_batch) {
    const rl::BatchProbeTrainer batch_trainer(
        domain,
        rl::BatchProbeConfig{probe_config, config.probe_block, metrics});
    const auto results = batch_trainer.train(jobs, pool);
    for (std::size_t k = 0; k < jobs.size(); ++k) apply(k, results[k]);
    return;
  }
  auto probe = [&](std::size_t k) {
    rl::Trainer trainer(domain, probe_config, jobs[k].seed);
    apply(k, trainer.train(*jobs[k].program, *jobs[k].spec));
  };
  if (pool != nullptr && jobs.size() > 1) {
    pool->parallel_for(jobs.size(), probe);
  } else {
    for (std::size_t k = 0; k < jobs.size(); ++k) probe(k);
  }
}

void apply_session_results(std::vector<CandidateOutcome>& outcomes,
                           const std::vector<std::size_t>& selected,
                           const std::vector<rl::SessionResult>& sessions) {
  for (std::size_t k = 0; k < selected.size(); ++k) {
    const rl::SessionResult& session = sessions[k];
    set_full_train_fields(outcomes[selected[k]], !session.failed,
                          session.test_score, session.emulation_score,
                          session.median_curve, session.curve_epochs);
  }
}

}  // namespace

store::StoreScope store_scope(const env::TaskDomain& domain,
                              const SearchConfig& config,
                              std::uint64_t seed) {
  std::ostringstream spec;
  // Simulator-semantics revision: bumped whenever a code change alters the
  // per-candidate results produced for the same (fingerprint, config) —
  // e.g. rev 2 fixed AbrEnv's constructor RNG draw, the eval-prefix bias,
  // and the stall-deadline "completed" lie. Journals written under an
  // older revision are scoped out rather than silently mixed with
  // incomparable fresh results. Execution-only knobs (probe_batch,
  // probe_block) never feed the digest: batched and serial runs are
  // bit-identical and share journals. The NN kernel flavor is such a knob
  // for scalar and avx2 (bit-identical by contract) but NOT for fma, whose
  // fused rounding changes result bits — runs under the fma flavor carry a
  // kernel=fma token so their journals never alias scalar/avx2 ones.
  spec << "sim_rev=2;";
  if (nn::kernel_flavor() == nn::KernelFlavor::kFma) spec << "kernel=fma;";
  spec << store::canonical_train_config(config.train)
       << ";seeds=" << config.seeds
       << ";early_epochs=" << config.early_epochs
       << ";norm_threshold=" << config.normalization_threshold
       << ";norm_fuzz=" << config.normalization_fuzz_runs
       << ";pipeline_seed=" << seed;
  // The domain appends the identity of its data (traces, video, simulator
  // parameters): results are only reusable against the same inputs.
  domain.append_scope_spec(spec);
  store::StoreScope scope;
  scope.env = domain.scope_env();
  scope.config_digest = store::fingerprint_text(spec.str()).hex();
  return scope;
}

rl::SessionResult train_baseline(const env::TaskDomain& domain,
                                 const SearchConfig& config,
                                 std::uint64_t seed, util::ThreadPool* pool) {
  const dsl::StateProgram original_state =
      dsl::StateProgram::compile(domain.baseline_state_source());
  rl::SessionConfig sc;
  sc.seeds = config.seeds;
  sc.train = config.train;
  return rl::run_sessions(domain, original_state, config.baseline_arch, sc,
                          seed ^ 0x0817b05eULL, pool);
}

SearchJob::SearchJob(const env::TaskDomain& domain, SearchConfig config,
                     std::uint64_t seed, CandidateSource& source,
                     FixedDesign fixed, Options options)
    : domain_(&domain), config_(std::move(config)), seed_(seed),
      source_(&source), fixed_(fixed), options_(options) {
  validate_config(config_);
  if (options_.shard.has_value()) {
    plan_.emplace(options_.shard->num_shards);
    if (options_.shard->shard >= options_.shard->num_shards) {
      throw std::invalid_argument(
          "SearchJob: shard index " + std::to_string(options_.shard->shard) +
          " out of range for " + std::to_string(options_.shard->num_shards) +
          " shards");
    }
  }
  if (options_.range.has_value() &&
      options_.range->lo > options_.range->hi) {
    throw std::invalid_argument(
        "SearchJob: empty fingerprint range [" +
        std::to_string(options_.range->lo) + ", " +
        std::to_string(options_.range->hi) + "]");
  }
  if (options_.store != nullptr &&
      !(options_.store->scope() == scope())) {
    throw std::invalid_argument(
        "SearchJob: store scope (" + options_.store->scope().env + "/" +
        options_.store->scope().config_digest +
        ") does not match this job's scope (" + scope().env + "/" +
        scope().config_digest + ")");
  }
  // One registry covers the whole stack: wiring it into the attached store
  // here means callers pass JobOptions::metrics once and the store's
  // lookup/append timings land in the same snapshot.
  if (options_.metrics != nullptr && options_.store != nullptr) {
    options_.store->set_metrics(options_.metrics);
  }
}

void SearchJob::add_observer(Observer* observer) {
  if (observer != nullptr) observers_.push_back(observer);
}

store::StoreScope SearchJob::scope() const {
  return store_scope(*domain_, config_, seed_);
}

const rl::SessionResult& SearchJob::original_baseline() {
  auto* cache = options_.baseline_cache != nullptr ? options_.baseline_cache
                                                   : &local_baseline_;
  if (!cache->has_value()) {
    *cache = train_baseline(*domain_, config_, seed_, options_.pool);
  }
  return **cache;
}

StageKind SearchJob::next_stage_kind() const { return next_; }

bool SearchJob::done() const { return next_ == StageKind::kDone; }

bool SearchJob::next_stage() {
  if (done()) return false;
  const StageKind stage = next_;
  if (config_.streaming() && stage == StageKind::kGenerate) {
    window_start_time_ = std::chrono::steady_clock::now();
    notify_window_start(window_index_, generated_total_);
  }
  notify_stage_start(stage);
  const auto start = std::chrono::steady_clock::now();
  switch (stage) {
    case StageKind::kGenerate: stage_generate(); break;
    case StageKind::kPrecheck: stage_precheck(); break;
    case StageKind::kProbe: stage_probe(); break;
    case StageKind::kBaseline: stage_baseline(); break;
    case StageKind::kSelect: stage_select(); break;
    case StageKind::kFullTrain: stage_full_train(); break;
    case StageKind::kRank: stage_rank(); break;
    case StageKind::kDone: break;  // unreachable
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  next_ = stage_after(stage);
  notify_stage_finish(StageEvent{stage, seconds});
  return !done();
}

StageKind SearchJob::stage_after(StageKind stage) const {
  if (config_.streaming()) {
    if (stage == StageKind::kGenerate && specs_.empty()) {
      // The source ran dry at a window boundary: no per-candidate work
      // left, move straight to the cohort-global stages.
      return StageKind::kBaseline;
    }
    if (stage == StageKind::kProbe && !stream_exhausted_ &&
        generated_total_ < config_.num_candidates) {
      return StageKind::kGenerate;  // next rolling window
    }
  }
  return static_cast<StageKind>(static_cast<int>(stage) + 1);
}

const SearchResult& SearchJob::run_until(StageKind stop) {
  while (!done() && next_ != stop) next_stage();
  return result_;
}

SearchResult SearchJob::run_to_completion() {
  while (next_stage()) {
  }
  return std::move(result_);
}

SearchResult SearchJob::resume() {
  if (next_ != StageKind::kGenerate) {
    throw std::logic_error(
        "SearchJob::resume: job already started; resume() needs a fresh job");
  }
  if (options_.store == nullptr) {
    throw std::logic_error("SearchJob::resume: no store attached");
  }
  source_->reset();
  return run_to_completion();
}

bool SearchJob::in_shard(std::size_t i) const {
  if (plan_.has_value() &&
      plan_->shard_of(fps_[i]) != options_.shard->shard) {
    return false;
  }
  return !options_.range.has_value() || options_.range->contains(fps_[i]);
}

bool SearchJob::trainable(std::size_t i) const {
  return specs_[i].kind == CandidateKind::kArchitecture ||
         programs_[i].has_value();
}

void SearchJob::notify_stage_start(StageKind stage) {
  std::lock_guard lock(notify_mutex_);
  for (Observer* o : observers_) o->on_stage_start(stage);
}

void SearchJob::notify_stage_finish(const StageEvent& event) {
  std::lock_guard lock(notify_mutex_);
  for (Observer* o : observers_) o->on_stage_finish(event);
}

void SearchJob::notify_candidate(CandidateEvent event) {
  std::lock_guard lock(notify_mutex_);
  for (Observer* o : observers_) o->on_candidate(event);
}

void SearchJob::notify_window_start(std::size_t index, std::size_t first) {
  std::lock_guard lock(notify_mutex_);
  for (Observer* o : observers_) o->on_window_start(index, first);
}

void SearchJob::notify_window_finish(const WindowEvent& event) {
  std::lock_guard lock(notify_mutex_);
  for (Observer* o : observers_) o->on_window_finish(event);
}

void SearchJob::journal(std::size_t i, store::Stage stage) {
  if (options_.store != nullptr) {
    options_.store->put(to_store_record(outcomes_[i], fps_[i], stage));
  }
}

void SearchJob::stage_generate() {
  // Pull the next window from the source: the whole stream in batch mode,
  // window_size candidates in streaming mode. A short pull marks the
  // stream exhausted.
  window_base_ = generated_total_;
  const std::size_t ask =
      config_.streaming()
          ? std::min(config_.window_size,
                     config_.num_candidates - generated_total_)
          : config_.num_candidates;
  {
    obs::ScopedTimer timer(
        obs::maybe_histogram(options_.metrics, "search.generate.pull_seconds"));
    specs_ = source_->generate(ask);
  }
  if (specs_.size() < ask) stream_exhausted_ = true;
  generated_total_ += specs_.size();
  const std::size_t n = specs_.size();
  result_.n_total += n;
  if (config_.streaming() && n == 0) {
    // Empty window (the source ran dry exactly at a boundary): nothing to
    // check or probe — close the window here; stage_after() skips ahead.
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      window_start_time_)
            .count();
    notify_window_finish(WindowEvent{window_index_, window_base_, 0,
                                     retained_.size(), seconds});
    ++window_index_;
    return;
  }
  fps_.resize(n);
  {
    obs::ScopedTimer timer(obs::maybe_histogram(
        options_.metrics, "search.generate.fingerprint_seconds"));
    for (std::size_t i = 0; i < n; ++i) {
      fps_[i] = fingerprint_of(specs_[i], fixed_);
    }
  }
  leader_ = leaders_by_fingerprint(fps_);
  // clear-then-resize (not assign): resets the slots left from the
  // previous window without copying, which the move-only programs forbid.
  cached_.clear();
  cached_.resize(n);
  programs_.clear();
  programs_.resize(n);
  outcomes_.clear();
  outcomes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    outcomes_[i].id = specs_[i].id;
    outcomes_[i].stream_index = window_base_ + i;
    outcomes_[i].source = specs_[i].source;
    if (specs_[i].kind == CandidateKind::kArchitecture) {
      outcomes_[i].arch = specs_[i].arch;
    }
    if (!observers_.empty()) {
      notify_candidate(CandidateEvent{CandidateEventType::kEntered,
                                      StageKind::kGenerate, outcomes_[i].stream_index,
                                      specs_[i].id, ""});
    }
    if (!in_shard(i)) {
      ++result_.n_out_of_shard;
      if (!observers_.empty()) {
        notify_candidate(CandidateEvent{CandidateEventType::kOutOfShard,
                                        StageKind::kGenerate, outcomes_[i].stream_index,
                                        specs_[i].id, ""});
      }
    }
  }
}

void SearchJob::precheck_arch(std::size_t i,
                              const nn::StateSignature& signature) {
  CandidateOutcome& outcome = outcomes_[i];
  if (options_.store != nullptr) cached_[i] = options_.store->lookup(fps_[i]);
  if (cached_[i].has_value()) {
    apply_store_record(*cached_[i], outcome);
    return;
  }
  const auto check = filter::arch_compilation_check(*specs_[i].arch, signature,
                                                    domain_->num_actions());
  outcome.compiled = check.passed;
  outcome.compile_error = check.reason;
  // The normalization check does not apply to architectures (§2.2).
  outcome.normalized = check.passed;
  journal(i, store::Stage::kChecked);
}

void SearchJob::precheck_state(std::size_t i) {
  // NOTE: runs on pool threads; journaling happens on the stepping thread
  // afterwards (stage_precheck), in stream order, so the journal line for
  // a fingerprint shared by in-batch clones always carries the leader's id
  // regardless of thread timing.
  CandidateOutcome& outcome = outcomes_[i];
  if (cached_[i].has_value()) {
    bool record_usable = true;
    if (cached_[i]->compiled && cached_[i]->stage < store::Stage::kTrained) {
      try {
        programs_[i] = dsl::StateProgram::compile(specs_[i].source);
      } catch (const dsl::CompileError&) {
        // The record says this source compiles but it doesn't: a
        // fingerprint collision (or foreign journal). Fall through to a
        // genuine miss so the candidate is evaluated on its own merits.
        record_usable = false;
      }
    }
    if (record_usable) {
      apply_store_record(*cached_[i], outcome);
      return;
    }
    cached_[i].reset();
  }
  const auto compile = filter::compilation_check(
      specs_[i].source, domain_->catalog(), &programs_[i]);
  outcome.compiled = compile.passed;
  outcome.compile_error = compile.reason;
  if (compile.passed) {
    const auto norm = filter::normalization_check(
        *programs_[i], domain_->catalog(), config_.normalization_threshold,
        config_.normalization_fuzz_runs,
        seed_ ^ (fps_[i].lo * 0x9e3779b9ULL));
    outcome.normalized = norm.passed;
    outcome.normalization_error = norm.reason;
  }
}

void SearchJob::stage_precheck() {
  const std::size_t n = specs_.size();
  // Architecture candidates check serially in stream order with the store
  // lookup interleaved — a clone's lookup sees the record its leader just
  // journaled (the historical arch-path behaviour, preserved for
  // bit-identical journals and counters). The fixed program's input
  // signature is derived once, not per candidate.
  std::optional<nn::StateSignature> signature;
  for (std::size_t i = 0; i < n; ++i) {
    if (in_shard(i) && specs_[i].kind == CandidateKind::kArchitecture) {
      if (!signature.has_value()) {
        signature = rl::derive_signature(*fixed_.state, domain_->catalog());
      }
      precheck_arch(i, *signature);
    }
  }
  // State-program candidates look up first (all lookups precede any check,
  // so in-batch clones read as misses and dedup through the leader table),
  // then compile + fuzz in parallel — cheap and embarrassingly parallel.
  // Cache hits serve the recorded verdict; compiled sources are still
  // re-parsed (a cheap parse) so later stages have the program object.
  std::vector<std::size_t> state_idx;
  for (std::size_t i = 0; i < n; ++i) {
    if (!in_shard(i) || specs_[i].kind != CandidateKind::kStateProgram) {
      continue;
    }
    if (options_.store != nullptr) {
      cached_[i] = options_.store->lookup(fps_[i]);
    }
    state_idx.push_back(i);
  }
  auto check = [&](std::size_t k) { precheck_state(state_idx[k]); };
  if (options_.pool != nullptr) {
    options_.pool->parallel_for(state_idx.size(), check);
  } else {
    for (std::size_t k = 0; k < state_idx.size(); ++k) check(k);
  }
  // Journal the fresh state-candidate verdicts in stream order from this
  // thread: deterministic journal bytes whatever the pool's scheduling.
  for (std::size_t i : state_idx) {
    if (!cached_[i].has_value()) journal(i, store::Stage::kChecked);
  }
  // Accounting and events, on the stepping thread in stream order.
  for (std::size_t i = 0; i < n; ++i) {
    if (!in_shard(i)) continue;
    if (cached_[i].has_value()) {
      ++result_.n_precheck_cache_hits;
      if (!observers_.empty()) {
        notify_candidate(CandidateEvent{
            CandidateEventType::kCacheHit, StageKind::kPrecheck,
            outcomes_[i].stream_index, outcomes_[i].id,
            store::stage_name(cached_[i]->stage)});
      }
    } else if (!outcomes_[i].compiled) {
      if (!observers_.empty()) {
        notify_candidate(CandidateEvent{CandidateEventType::kFailed,
                                        StageKind::kPrecheck, outcomes_[i].stream_index,
                                        outcomes_[i].id,
                                        outcomes_[i].compile_error});
      }
    } else if (!outcomes_[i].normalized) {
      if (!observers_.empty()) {
        notify_candidate(CandidateEvent{CandidateEventType::kFailed,
                                        StageKind::kPrecheck, outcomes_[i].stream_index,
                                        outcomes_[i].id,
                                        outcomes_[i].normalization_error});
      }
    }
  }
}

void SearchJob::stage_probe() {
  const std::size_t n = outcomes_.size();
  probe_set_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (outcomes_[i].compiled) ++result_.n_compiled;
    if (!outcomes_[i].compiled || !outcomes_[i].normalized) continue;
    ++result_.n_normalized;
    if (cached_[i].has_value() &&
        cached_[i]->stage >= store::Stage::kProbed) {
      ++result_.n_probe_cache_hits;  // probe verdict already applied
      if (!observers_.empty()) {
        notify_candidate(CandidateEvent{CandidateEventType::kCacheHit,
                                        StageKind::kProbe, outcomes_[i].stream_index,
                                        outcomes_[i].id,
                                        store::stage_name(cached_[i]->stage)});
      }
    } else if (leader_[i] != i) {
      // In-batch clone: copies the leader's probe result after the stage.
    } else if (trainable(i)) {
      probe_set_.push_back(i);
    }
  }
  rl::TrainConfig probe_config = config_.train;
  probe_config.epochs = config_.early_epochs;
  probe_config.evaluate_checkpoints = false;
  std::vector<rl::ProbeJob> probe_jobs;
  probe_jobs.reserve(probe_set_.size());
  for (std::size_t i : probe_set_) {
    const bool is_state = specs_[i].kind == CandidateKind::kStateProgram;
    probe_jobs.push_back(
        rl::ProbeJob{is_state ? &*programs_[i] : fixed_.state,
                     is_state ? fixed_.arch : &*outcomes_[i].arch,
                     probe_seed(specs_[i], seed_, fps_[i])});
  }
  run_probe_stage(
      *domain_, options_.pool, config_, probe_config, probe_jobs,
      options_.metrics,
      [&](std::size_t k, const rl::TrainResult& probe_result) {
        const std::size_t i = probe_set_[k];
        if (!probe_result.failed) {
          outcomes_[i].early_probed = true;
          outcomes_[i].early_rewards = probe_result.train_rewards;
          if (!observers_.empty()) {
            notify_candidate(CandidateEvent{CandidateEventType::kProbed,
                                            StageKind::kProbe,
                                            outcomes_[i].stream_index,
                                            outcomes_[i].id, ""});
          }
        } else {
          // Blew up only under real training inputs; treat as
          // compile-stage failure discovered late.
          outcomes_[i].compile_error = probe_result.error;
          if (!observers_.empty()) {
            notify_candidate(CandidateEvent{CandidateEventType::kFailed,
                                            StageKind::kProbe,
                                            outcomes_[i].stream_index,
                                            outcomes_[i].id,
                                            probe_result.error});
          }
        }
        journal(i, store::Stage::kProbed);
      });
  result_.n_probes_run += probe_set_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (leader_[i] != i && outcomes_[i].compiled && outcomes_[i].normalized &&
        !outcomes_[i].early_probed) {
      copy_probe_result(outcomes_[leader_[i]], outcomes_[i]);
    }
  }
  if (config_.streaming()) fold_window();
}

void SearchJob::fold_window() {
  // Streaming end-of-window fold: this window's probes meet the running
  // selection, then every per-candidate array is retired. Selection here
  // is element-for-element what batch mode's select stage computes over
  // the whole cohort — insert by (probe score desc, stream position asc),
  // evict past full_train_top — so the final retained set is the batch
  // top-K exactly.
  const std::size_t n = specs_.size();
  const auto by_rank = [](const RetainedCandidate& a,
                          const RetainedCandidate& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.outcome.stream_index < b.outcome.stream_index;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (!outcomes_[i].early_probed) continue;
    bool keep = true;
    if (options_.early_stop_model != nullptr) {
      // The model normalizes probe curves by the baseline score, so the
      // baseline trains lazily at the first fold that needs it. Its seed
      // stream is independent of the candidates', so training it before
      // the kBaseline stage cannot change any result.
      const double normalizer = original_baseline().test_score;
      keep = options_.early_stop_model->keep(
          make_record(outcomes_[i], normalizer));
    }
    if (!keep) {
      ++result_.n_early_stopped;
      if (!observers_.empty()) {
        notify_candidate(CandidateEvent{CandidateEventType::kEarlyStopped,
                                        StageKind::kProbe, outcomes_[i].stream_index,
                                        outcomes_[i].id, ""});
      }
      continue;
    }
    RetainedCandidate cand;
    cand.spec = std::move(specs_[i]);
    cand.fp = fps_[i];
    cand.cached = std::move(cached_[i]);
    cand.program = std::move(programs_[i]);
    cand.outcome = std::move(outcomes_[i]);
    cand.score = probe_score(cand.outcome.early_rewards);
    retained_.insert(
        std::upper_bound(retained_.begin(), retained_.end(), cand, by_rank),
        std::move(cand));
    if (retained_.size() > config_.full_train_top) {
      const RetainedCandidate evicted = std::move(retained_.back());
      retained_.pop_back();
      ++result_.n_early_stopped;
      if (!observers_.empty()) {
        notify_candidate(CandidateEvent{
            CandidateEventType::kEarlyStopped, StageKind::kProbe,
            evicted.outcome.stream_index, evicted.outcome.id, ""});
      }
    }
  }
  // Retire the window. clear() keeps the capacity, so the arrays are
  // allocated once and reused: peak memory stays O(window_size).
  specs_.clear();
  fps_.clear();
  leader_.clear();
  cached_.clear();
  programs_.clear();
  outcomes_.clear();
  probe_set_.clear();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    window_start_time_)
          .count();
  notify_window_finish(
      WindowEvent{window_index_, window_base_, n, retained_.size(), seconds});
  ++window_index_;
}

void SearchJob::adopt_retained() {
  // Rebuild the per-candidate arrays from the running selection (already
  // in selection order) so the batch full-train and rank stages run on
  // them unchanged. Clone leaders recompute from the adopted fingerprints:
  // a retained clone always sorts after its leader (equal score, larger
  // stream position), so leaders precede clones here just as in a batch
  // cohort.
  const std::size_t k = retained_.size();
  specs_.clear();
  fps_.clear();
  cached_.clear();
  programs_.clear();
  outcomes_.clear();
  selected_.clear();
  for (std::size_t i = 0; i < k; ++i) {
    RetainedCandidate& cand = retained_[i];
    specs_.push_back(std::move(cand.spec));
    fps_.push_back(cand.fp);
    cached_.push_back(std::move(cand.cached));
    programs_.push_back(std::move(cand.program));
    outcomes_.push_back(std::move(cand.outcome));
    selected_.push_back(i);
  }
  leader_ = leaders_by_fingerprint(fps_);
  retained_.clear();
  retained_.shrink_to_fit();
}

void SearchJob::stage_baseline() {
  result_.original = original_baseline();
  result_.original_score = result_.original.test_score;
}

std::vector<std::size_t> SearchJob::select_survivors() {
  // Candidates eligible for selection: probed ones.
  std::vector<std::size_t> probed;
  for (std::size_t i = 0; i < outcomes_.size(); ++i) {
    if (outcomes_[i].early_probed) probed.push_back(i);
  }

  std::vector<std::size_t> kept;
  if (options_.early_stop_model != nullptr) {
    const double normalizer = result_.original_score;
    for (std::size_t i : probed) {
      const auto record = make_record(outcomes_[i], normalizer);
      if (options_.early_stop_model->keep(record)) {
        kept.push_back(i);
      } else {
        outcomes_[i].early_stopped = true;
      }
    }
  } else {
    kept = probed;
  }

  // Rank the kept probes by tail reward and take the full-training slots.
  // Ties break by stream position so reruns and resumed runs select
  // identically even when deduplicated candidates share a reward curve.
  const auto& outcomes = outcomes_;
  std::sort(kept.begin(), kept.end(), [&outcomes](std::size_t a,
                                                  std::size_t b) {
    const double score_a = probe_score(outcomes[a].early_rewards);
    const double score_b = probe_score(outcomes[b].early_rewards);
    if (score_a != score_b) return score_a > score_b;
    return a < b;
  });
  if (kept.size() > config_.full_train_top) {
    for (std::size_t r = config_.full_train_top; r < kept.size(); ++r) {
      outcomes_[kept[r]].early_stopped = true;
    }
    kept.resize(config_.full_train_top);
  }
  return kept;
}

void SearchJob::stage_select() {
  if (config_.streaming()) {
    // Selection already happened incrementally, window fold by window
    // fold; what is left is exactly the full-training cohort. Early-stop
    // verdicts and events fired at fold time (stage kProbe).
    adopt_retained();
    return;
  }
  selected_ = select_survivors();
  for (std::size_t i = 0; i < outcomes_.size(); ++i) {
    if (!outcomes_[i].early_stopped) continue;
    ++result_.n_early_stopped;
    if (!observers_.empty()) {
      notify_candidate(CandidateEvent{CandidateEventType::kEarlyStopped,
                                      StageKind::kSelect, i, outcomes_[i].id,
                                      ""});
    }
  }
}

void SearchJob::stage_full_train() {
  // Survivors whose full run is journaled reuse it outright; a selected
  // clone waits for its leader (equal probe score + index tie-break
  // guarantee the leader is selected whenever a clone is).
  std::vector<std::size_t> to_train;
  std::vector<std::size_t> clones;
  for (std::size_t i : selected_) {
    if (cached_[i].has_value() &&
        cached_[i]->stage >= store::Stage::kTrained) {
      apply_full_train_record(*cached_[i], outcomes_[i]);
      ++result_.n_full_cache_hits;
      if (!observers_.empty()) {
        notify_candidate(CandidateEvent{CandidateEventType::kCacheHit,
                                        StageKind::kFullTrain,
                                        outcomes_[i].stream_index, outcomes_[i].id,
                                        store::stage_name(cached_[i]->stage)});
      }
    } else if (leader_[i] != i) {
      clones.push_back(i);
    } else if (trainable(i)) {
      to_train.push_back(i);
    }
  }
  rl::SessionConfig session_config;
  session_config.seeds = config_.seeds;
  session_config.train = config_.train;
  std::vector<rl::SessionJob> jobs;
  jobs.reserve(to_train.size());
  for (std::size_t i : to_train) {
    const bool is_state = specs_[i].kind == CandidateKind::kStateProgram;
    jobs.push_back(
        rl::SessionJob{is_state ? &*programs_[i] : fixed_.state,
                       is_state ? fixed_.arch : &*outcomes_[i].arch,
                       full_train_seed(specs_[i], seed_, fps_[i])});
  }
  const auto sessions =
      rl::run_session_batch(*domain_, jobs, session_config, options_.pool);
  apply_session_results(outcomes_, to_train, sessions);
  result_.n_full_trains_run = to_train.size();
  for (std::size_t i : clones) {
    copy_full_train_result(outcomes_[leader_[i]], outcomes_[i]);
  }
  for (std::size_t i : to_train) {
    journal(i, store::Stage::kTrained);
    if (!observers_.empty()) {
      notify_candidate(CandidateEvent{
          CandidateEventType::kTrained, StageKind::kFullTrain,
          outcomes_[i].stream_index, outcomes_[i].id,
          outcomes_[i].fully_trained
              ? "test_score=" + std::to_string(outcomes_[i].test_score)
              : "every session failed"});
    }
  }
}

void SearchJob::stage_rank() {
  // The best-candidate tie-break is by stream position, explicitly: in
  // batch mode the scan order makes the explicit clause a no-op, but in
  // streaming mode outcomes_ is in selection (probe-score) order, so the
  // clause is what keeps both modes picking the identical winner.
  std::size_t best_stream = SIZE_MAX;
  for (std::size_t i = 0; i < outcomes_.size(); ++i) {
    if (!outcomes_[i].fully_trained) continue;
    ++result_.n_fully_trained;
    const bool tie_earlier = result_.has_best() &&
                             outcomes_[i].test_score == result_.best_score &&
                             outcomes_[i].stream_index < best_stream;
    if (outcomes_[i].test_score > result_.best_score || tie_earlier) {
      result_.best_score = outcomes_[i].test_score;
      result_.best_index = i;
      best_stream = outcomes_[i].stream_index;
    }
  }
  result_.outcomes = std::move(outcomes_);
}

}  // namespace nada::search

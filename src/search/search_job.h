// SearchJob: the NADA funnel (Figure 1) as an incrementally steppable job.
//
// One job pulls one candidate stream through generate -> pre-check ->
// probe -> baseline -> select -> full-train -> rank. Unlike the monolithic
// Pipeline entry points it replaces underneath, a job
//
//   * is steppable: next_stage() executes exactly one stage, so callers
//     interleave their own work, stop early (shard workers run only
//     through the probe stage), or drive progress UIs,
//   * streams events: Observers see every stage transition (with timings),
//     every candidate milestone, and — in streaming mode — every rolling
//     window as it happens,
//   * is kind-unified: the stream may hold state-program and architecture
//     candidates in any mix (CandidateSpec), one funnel code path,
//   * folds resume in: resume() rewinds the source and re-runs against the
//     attached store, serving every journaled stage from the checkpoint.
//
// Candidates are PULLED from the CandidateSource, not materialized up
// front. SearchConfig::window_size picks between two execution modes:
//
//   batch (window_size == 0, the default): one window spans the whole
//   stream. Every candidate's outcome is kept and returned —
//   SearchResult::outcomes[i] is stream position i. Peak memory is
//   O(num_candidates). This mode is byte-for-byte the historical
//   generate_batch behaviour.
//
//   streaming (window_size >= 1): the per-candidate stages repeat in
//   rolling windows — the job pulls window_size candidates, pre-checks and
//   probes them, folds the window into a running selection (top
//   full_train_top probes by tail reward, candidate events and journal
//   writes included), and retires the window's specs, programs, and reward
//   curves before pulling the next. The stage sequence cycles
//   generate -> precheck -> probe until the stream is spent, then runs the
//   cohort-global stages once. Peak memory is O(window_size +
//   full_train_top); SearchResult::outcomes holds only the retained
//   candidates (stream positions travel in CandidateOutcome::stream_index).
//
// Bit-identity contract: batch mode matches the historical
// Pipeline::search_states / search_archs code paths exactly (fingerprints,
// seed salts, stage order over the store, and selection tie-breaks are all
// preserved; tests/search_test.cpp pins it). Streaming mode produces the
// same rankings and the same store journal records as batch mode for the
// same seeds — per-candidate seeds are fingerprint-derived, so where the
// work runs cannot change what it computes; only the journal's line ORDER
// differs (windows interleave check/probe records). tests/stream_test.cpp
// pins batch-vs-streaming equivalence for ABR and CC, serial and sharded.
// One caveat: without an attached store, a candidate whose duplicate
// appeared in an earlier (already retired) window is re-probed rather than
// copied — the results are identical either way, only n_probes_run grows;
// with a store the duplicate is served from the journal like any warm hit.
//
// A job is single-shot: once done() it cannot be restarted (build a new
// job for another pass; construction is cheap, the store carries the
// memory).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "env/domain.h"
#include "filter/earlystop.h"
#include "obs/metrics.h"
#include "search/candidate.h"
#include "search/observer.h"
#include "search/types.h"
#include "store/candidate_store.h"
#include "store/shard.h"
#include "util/thread_pool.h"

namespace nada::search {

/// The (environment, funnel-config digest) scope a search's results live
/// under in a candidate store. Everything that changes a stored
/// per-candidate result — training protocol, probe budget, seeds,
/// normalization check parameters, the job seed, the identity of the
/// domain's data, and the simulator-semantics revision — feeds the digest;
/// selection-only knobs (num_candidates, full_train_top) and execution
/// knobs (probe_batch, probe_block) do not.
[[nodiscard]] store::StoreScope store_scope(const env::TaskDomain& domain,
                                            const SearchConfig& config,
                                            std::uint64_t seed);

/// Trains the domain's original design (state + architecture) under the
/// funnel's protocol — the comparison baseline.
[[nodiscard]] rl::SessionResult train_baseline(const env::TaskDomain& domain,
                                               const SearchConfig& config,
                                               std::uint64_t seed,
                                               util::ThreadPool* pool);

/// Cross-cutting knobs of one job. (Namespace-scope rather than nested so
/// it can default-construct in SearchJob's own signatures.)
struct JobOptions {
  /// Probe-based early stopping; null ranks probes by tail reward alone.
  const filter::EarlyStopModel* early_stop_model = nullptr;
  /// Persistent checkpoint store. Must match store_scope(domain, config,
  /// seed) (std::invalid_argument otherwise) and outlive the job.
  store::CandidateStore* store = nullptr;
  util::ThreadPool* pool = nullptr;
  /// Shared baseline slot: lets several jobs (or a wrapping Pipeline)
  /// train the original design once. Must outlive the job.
  std::optional<rl::SessionResult>* baseline_cache = nullptr;
  /// Restrict execution to one shard of the fingerprint space (worker
  /// mode): candidates outside the slice are skipped and counted in
  /// SearchResult::n_out_of_shard.
  std::optional<ShardSlice> shard;
  /// Restrict execution to an explicit fingerprint sub-range (lease mode,
  /// inclusive bounds on Fingerprint::hi): candidates outside the range are
  /// skipped and counted in SearchResult::n_out_of_shard. The supervisor
  /// grants these sub-range leases (src/svc/); because membership is by
  /// content hash and per-candidate seeds are fingerprint-derived, any
  /// partition of the space into ranges computes the same records as a
  /// single unrestricted run. Composes with `shard` (both filters apply),
  /// though supervised runs use `range` alone.
  std::optional<store::ShardPlan::Range> range;
  /// Profiling registry for the hot paths the Observer event stream cannot
  /// see from outside: candidate generation pulls and fingerprinting
  /// (search.generate.pull_seconds / search.generate.fingerprint_seconds),
  /// probe-block training (rl.probe_block.seconds), and — when a store is
  /// attached — store lookup/append (store.*; the job wires the registry
  /// into the store on construction). Pure readout: attaching a registry
  /// never changes rankings or journal bytes. Pair it with an
  /// obs::MetricsObserver on the same registry for the event-stream
  /// counters. Must outlive the job (and the store, which keeps the
  /// pointer).
  obs::MetricsRegistry* metrics = nullptr;
};

class SearchJob {
 public:
  using Options = JobOptions;

  /// `domain`, `source`, `fixed`'s pointees, and everything in `options`
  /// must outlive the job. Throws std::invalid_argument on a degenerate
  /// config or a store whose scope does not match.
  SearchJob(const env::TaskDomain& domain, SearchConfig config,
            std::uint64_t seed, CandidateSource& source, FixedDesign fixed,
            Options options = {});

  /// Observers receive events from the stages run after registration.
  void add_observer(Observer* observer);

  /// The stage the next next_stage() call will execute (kDone when the job
  /// is complete). In streaming mode the per-candidate stages cycle:
  /// after kProbe this is kGenerate again until the stream is spent.
  [[nodiscard]] StageKind next_stage_kind() const;
  [[nodiscard]] bool done() const;

  /// Executes exactly one stage. Returns false once the job is complete
  /// (and on every later call).
  bool next_stage();

  /// Steps until `stop` would be next (or the job completes). Shard
  /// workers use run_until(StageKind::kBaseline) to execute only the
  /// per-candidate stages — in streaming mode that is every remaining
  /// window. Returns the (possibly partial) result.
  const SearchResult& run_until(StageKind stop);

  /// Steps every remaining stage and moves the final result out. The job
  /// is spent afterwards.
  [[nodiscard]] SearchResult run_to_completion();

  /// Continues an interrupted search: rewinds the source to the start of
  /// its stream and runs the whole funnel against the attached store, so
  /// every stage journaled before the interruption is served from the
  /// checkpoint and only the remaining work executes. Requires an attached
  /// store (std::logic_error otherwise) and a fresh job (std::logic_error
  /// after stepping began).
  [[nodiscard]] SearchResult resume();

  /// Result so far: counters and outcomes of completed stages only. The
  /// full result is moved out by run_to_completion().
  [[nodiscard]] const SearchResult& result() const { return result_; }

  [[nodiscard]] store::StoreScope scope() const;

  /// The trained baseline (computing it now if the baseline stage has not
  /// run yet); cached in Options::baseline_cache when provided.
  const rl::SessionResult& original_baseline();

 private:
  /// One candidate carried across window boundaries by the streaming
  /// running selection: everything full training and ranking need once the
  /// window that produced it has been retired.
  struct RetainedCandidate {
    CandidateSpec spec;
    store::Fingerprint fp;
    std::optional<store::OutcomeRecord> cached;
    std::optional<dsl::StateProgram> program;
    CandidateOutcome outcome;
    double score = 0.0;  ///< probe tail score (the selection key)
  };

  void stage_generate();
  void stage_precheck();
  void stage_probe();
  void stage_baseline();
  void stage_select();
  void stage_full_train();
  void stage_rank();

  /// Streaming only: end-of-window fold. Applies the early-stop verdicts
  /// to the window's probes, merges the keepers into the running
  /// top-full_train_top selection (evictions become early-stopped), and
  /// retires the window's per-candidate arrays.
  void fold_window();
  /// Streaming only (select stage): rebuilds the per-candidate arrays from
  /// the retained selection so the batch full-train/rank code runs on them
  /// unchanged.
  void adopt_retained();
  /// The stage following `stage`: linear in batch mode; in streaming mode
  /// kProbe loops back to kGenerate while the stream has candidates left.
  [[nodiscard]] StageKind stage_after(StageKind stage) const;

  void precheck_state(std::size_t i);
  void precheck_arch(std::size_t i, const nn::StateSignature& signature);
  [[nodiscard]] bool in_shard(std::size_t i) const;
  /// Candidate i's program half is available for training (state-kind:
  /// parsed program; arch-kind: always, the fixed program serves).
  [[nodiscard]] bool trainable(std::size_t i) const;
  [[nodiscard]] std::vector<std::size_t> select_survivors();
  void notify_stage_start(StageKind stage);
  void notify_stage_finish(const StageEvent& event);
  void notify_candidate(CandidateEvent event);
  void notify_window_start(std::size_t index, std::size_t first);
  void notify_window_finish(const WindowEvent& event);
  void journal(std::size_t i, store::Stage stage);

  const env::TaskDomain* domain_;
  SearchConfig config_;
  std::uint64_t seed_;
  CandidateSource* source_;
  FixedDesign fixed_;
  Options options_;
  std::optional<store::ShardPlan> plan_;
  std::vector<Observer*> observers_;
  std::mutex notify_mutex_;

  StageKind next_ = StageKind::kGenerate;
  SearchResult result_;
  std::optional<rl::SessionResult> local_baseline_;

  // Per-candidate working state of the CURRENT window, indexed by window
  // position (batch mode: one window spanning the whole stream, so window
  // position == stream position). A window candidate's stream position
  // lives in outcomes_[i].stream_index.
  std::vector<CandidateSpec> specs_;
  std::vector<store::Fingerprint> fps_;
  std::vector<std::size_t> leader_;
  std::vector<std::optional<store::OutcomeRecord>> cached_;
  std::vector<std::optional<dsl::StateProgram>> programs_;
  std::vector<CandidateOutcome> outcomes_;
  std::vector<std::size_t> probe_set_;
  std::vector<std::size_t> selected_;

  // Streaming state: stream/window progress and the running selection
  // (sorted by score desc, stream position asc; never larger than
  // full_train_top).
  std::size_t generated_total_ = 0;
  bool stream_exhausted_ = false;
  std::size_t window_index_ = 0;
  std::size_t window_base_ = 0;
  std::chrono::steady_clock::time_point window_start_time_{};
  std::vector<RetainedCandidate> retained_;
};

}  // namespace nada::search

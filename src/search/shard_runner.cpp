#include "search/shard_runner.h"

#include <memory>
#include <stdexcept>
#include <vector>

#include "store/shard.h"
#include "util/fs.h"

namespace nada::search {

ShardRunner::ShardRunner(const env::TaskDomain& domain, SearchConfig config,
                         std::uint64_t seed, ShardRunnerConfig shards,
                         util::ThreadPool* pool)
    : domain_(&domain), config_(std::move(config)), seed_(seed),
      shards_(std::move(shards)), pool_(pool),
      scope_(store_scope(domain, config_, seed)) {
  validate_config(config_);
  if (shards_.num_shards == 0) {
    throw std::invalid_argument("ShardRunner: zero shards");
  }
}

std::string ShardRunner::shard_store_path(std::size_t shard) const {
  if (shard >= shards_.num_shards) {
    throw std::out_of_range("ShardRunner::shard_store_path: shard " +
                            std::to_string(shard) + " out of range");
  }
  return shards_.store_dir + "/" + scope_.env + "-" +
         scope_.config_digest.substr(0, 12) + "-shard-" +
         std::to_string(shard) + "-of-" +
         std::to_string(shards_.num_shards) +
         store::journal_extension(store::store_format_from_env());
}

std::string ShardRunner::merged_store_path() const {
  return shards_.store_dir + "/" + scope_.env + "-" +
         scope_.config_digest.substr(0, 12) + "-merged-" +
         std::to_string(shards_.num_shards) +
         store::journal_extension(store::store_format_from_env());
}

std::string ShardRunner::worker_status_path(std::size_t shard) const {
  return shard_store_path(shard) + ".status.json";
}

std::string ShardRunner::merged_status_path() const {
  return merged_store_path() + ".status.json";
}

std::string ShardRunner::aggregate_status_path() const {
  return merged_store_path() + ".cluster.json";
}

SearchResult ShardRunner::run_worker(std::size_t shard,
                                     CandidateSource& source,
                                     const FixedDesign& fixed,
                                     const std::vector<Observer*>& observers) {
  util::ensure_directories(shards_.store_dir);
  // Every worker replays the same stream from the start; rewinding here
  // lets one in-process generator drive several shards in a loop.
  source.reset();
  store::CandidateStore store(shard_store_path(shard), scope_);
  SearchJob::Options options;
  options.store = &store;
  options.pool = pool_;
  options.shard = ShardSlice{shards_.num_shards, shard};
  options.metrics = shards_.metrics;
  SearchJob job(*domain_, config_, seed_, source, fixed, options);
  std::unique_ptr<obs::StatusWriter> status;
  if (shards_.worker_status) {
    status = std::make_unique<obs::StatusWriter>(obs::StatusConfig{
        worker_status_path(shard),
        "worker-" + std::to_string(shard) + "/" +
            std::to_string(shards_.num_shards),
        config_.num_candidates});
    job.add_observer(status.get());
  }
  for (Observer* observer : observers) job.add_observer(observer);
  // Per-candidate stages only: the baseline and everything after it need
  // the whole cohort, which is the driver's job.
  SearchResult result = job.run_until(StageKind::kBaseline);
  if (status != nullptr) status->finish();
  return result;
}

SearchResult ShardRunner::merge_and_rank(CandidateSource& source,
                                         const FixedDesign& fixed,
                                         const filter::EarlyStopModel* early_stop,
                                         const std::vector<Observer*>& observers) {
  util::ensure_directories(shards_.store_dir);
  source.reset();
  store::CandidateStore merged(merged_store_path(), scope_);
  std::vector<std::string> paths;
  paths.reserve(shards_.num_shards);
  for (std::size_t shard = 0; shard < shards_.num_shards; ++shard) {
    paths.push_back(shard_store_path(shard));
  }
  store::merge_shard_files(paths, merged);
  SearchJob::Options options;
  options.store = &merged;
  options.pool = pool_;
  options.early_stop_model = early_stop;
  options.metrics = shards_.metrics;
  SearchJob job(*domain_, config_, seed_, source, fixed, options);
  std::unique_ptr<obs::StatusWriter> status;
  if (shards_.worker_status) {
    status = std::make_unique<obs::StatusWriter>(obs::StatusConfig{
        merged_status_path(), "driver", config_.num_candidates});
    job.add_observer(status.get());
  }
  for (Observer* observer : observers) job.add_observer(observer);
  SearchResult result = job.run_to_completion();
  if (status != nullptr) status->finish();
  return result;
}

SearchResult ShardRunner::run_range(const store::ShardPlan::Range& range,
                                    const std::string& journal_path,
                                    CandidateSource& source,
                                    const FixedDesign& fixed,
                                    const std::vector<Observer*>& observers) {
  const std::string parent = util::parent_directory(journal_path);
  if (!parent.empty()) util::ensure_directories(parent);
  source.reset();
  store::CandidateStore store(journal_path, scope_);
  SearchJob::Options options;
  options.store = &store;
  options.pool = pool_;
  options.range = range;
  options.metrics = shards_.metrics;
  SearchJob job(*domain_, config_, seed_, source, fixed, options);
  std::unique_ptr<obs::StatusWriter> status;
  if (shards_.worker_status) {
    status = std::make_unique<obs::StatusWriter>(obs::StatusConfig{
        journal_path + ".status.json", "lease-" + std::to_string(range.lo),
        config_.num_candidates});
    job.add_observer(status.get());
  }
  for (Observer* observer : observers) job.add_observer(observer);
  SearchResult result = job.run_until(StageKind::kBaseline);
  if (status != nullptr) status->finish();
  return result;
}

SearchResult ShardRunner::merge_and_rank_paths(
    std::span<const std::string> journals, CandidateSource& source,
    const FixedDesign& fixed, const filter::EarlyStopModel* early_stop,
    const std::vector<Observer*>& observers) {
  util::ensure_directories(shards_.store_dir);
  source.reset();
  store::CandidateStore merged(merged_store_path(), scope_);
  store::merge_existing_shard_files(journals, merged);
  SearchJob::Options options;
  options.store = &merged;
  options.pool = pool_;
  options.early_stop_model = early_stop;
  options.metrics = shards_.metrics;
  SearchJob job(*domain_, config_, seed_, source, fixed, options);
  std::unique_ptr<obs::StatusWriter> status;
  if (shards_.worker_status) {
    status = std::make_unique<obs::StatusWriter>(obs::StatusConfig{
        merged_status_path(), "driver", config_.num_candidates});
    job.add_observer(status.get());
  }
  for (Observer* observer : observers) job.add_observer(observer);
  SearchResult result = job.run_to_completion();
  if (status != nullptr) status->finish();
  return result;
}

std::string ShardRunner::service_prefix() const {
  return scope_.env + "-" + scope_.config_digest.substr(0, 12) + "-svc-";
}

std::vector<std::optional<obs::StatusSnapshot>> ShardRunner::worker_statuses()
    const {
  std::vector<std::optional<obs::StatusSnapshot>> statuses;
  statuses.reserve(shards_.num_shards);
  for (std::size_t shard = 0; shard < shards_.num_shards; ++shard) {
    statuses.push_back(obs::read_status(worker_status_path(shard)));
  }
  return statuses;
}

util::JsonValue ShardRunner::write_merged_status(
    double staleness_threshold_seconds) const {
  util::ensure_directories(shards_.store_dir);
  util::JsonValue doc =
      obs::aggregate_status(worker_statuses(), obs::unix_now(),
                            staleness_threshold_seconds);
  util::write_file_atomic(aggregate_status_path(), doc.dump() + "\n");
  return doc;
}

}  // namespace nada::search

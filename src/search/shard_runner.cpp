#include "search/shard_runner.h"

#include <stdexcept>
#include <vector>

#include "store/shard.h"
#include "util/fs.h"

namespace nada::search {

ShardRunner::ShardRunner(const env::TaskDomain& domain, SearchConfig config,
                         std::uint64_t seed, ShardRunnerConfig shards,
                         util::ThreadPool* pool)
    : domain_(&domain), config_(std::move(config)), seed_(seed),
      shards_(std::move(shards)), pool_(pool),
      scope_(store_scope(domain, config_, seed)) {
  validate_config(config_);
  if (shards_.num_shards == 0) {
    throw std::invalid_argument("ShardRunner: zero shards");
  }
}

std::string ShardRunner::shard_store_path(std::size_t shard) const {
  if (shard >= shards_.num_shards) {
    throw std::out_of_range("ShardRunner::shard_store_path: shard " +
                            std::to_string(shard) + " out of range");
  }
  return shards_.store_dir + "/" + scope_.env + "-" +
         scope_.config_digest.substr(0, 12) + "-shard-" +
         std::to_string(shard) + "-of-" +
         std::to_string(shards_.num_shards) + ".jsonl";
}

std::string ShardRunner::merged_store_path() const {
  return shards_.store_dir + "/" + scope_.env + "-" +
         scope_.config_digest.substr(0, 12) + "-merged-" +
         std::to_string(shards_.num_shards) + ".jsonl";
}

SearchResult ShardRunner::run_worker(std::size_t shard,
                                     CandidateSource& source,
                                     const FixedDesign& fixed,
                                     Observer* observer) {
  util::ensure_directories(shards_.store_dir);
  // Every worker replays the same stream from the start; rewinding here
  // lets one in-process generator drive several shards in a loop.
  source.reset();
  store::CandidateStore store(shard_store_path(shard), scope_);
  SearchJob::Options options;
  options.store = &store;
  options.pool = pool_;
  options.shard = ShardSlice{shards_.num_shards, shard};
  SearchJob job(*domain_, config_, seed_, source, fixed, options);
  job.add_observer(observer);
  // Per-candidate stages only: the baseline and everything after it need
  // the whole cohort, which is the driver's job.
  return job.run_until(StageKind::kBaseline);
}

SearchResult ShardRunner::merge_and_rank(CandidateSource& source,
                                         const FixedDesign& fixed,
                                         const filter::EarlyStopModel* early_stop,
                                         Observer* observer) {
  util::ensure_directories(shards_.store_dir);
  source.reset();
  store::CandidateStore merged(merged_store_path(), scope_);
  std::vector<std::string> paths;
  paths.reserve(shards_.num_shards);
  for (std::size_t shard = 0; shard < shards_.num_shards; ++shard) {
    paths.push_back(shard_store_path(shard));
  }
  store::merge_shard_files(paths, merged);
  SearchJob::Options options;
  options.store = &merged;
  options.pool = pool_;
  options.early_stop_model = early_stop;
  SearchJob job(*domain_, config_, seed_, source, fixed, options);
  job.add_observer(observer);
  return job.run_to_completion();
}

}  // namespace nada::search

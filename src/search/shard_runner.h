// ShardRunner: the multi-worker driver over the sharded candidate store.
//
// A sharded search splits the per-candidate work (pre-checks + probes — the
// wide part of the funnel) across N workers, each owning one contiguous
// store::ShardPlan range of the fingerprint space:
//
//   worker i:  replay the SAME generator stream, execute only the
//              candidates whose fingerprint lands in range i, journal
//              into shard store i          (run_worker / shard_worker CLI)
//   driver:    merge_shard_files all N shard journals into one store,
//              then run the full funnel against it — every pre-check and
//              probe is served from the merged checkpoint, selection is
//              GLOBAL, and only the selected top-K full trainings execute
//                                          (merge_and_rank)
//
// Because shard assignment is by content hash and per-candidate seeds are
// fingerprint-derived, the merged run is bit-identical to a single-process
// run of the same stream: same rankings, same journal records
// (tests/search_test.cpp pins a 4-shard vs single-process run). Workers
// are plain processes — run them on one machine or many, the journals are
// the only coupling.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "env/domain.h"
#include "filter/earlystop.h"
#include "obs/status.h"
#include "search/search_job.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace nada::search {

struct ShardRunnerConfig {
  std::size_t num_shards = 1;
  /// Directory holding the per-shard and merged journals (and, when
  /// `worker_status` is on, the status snapshots).
  std::string store_dir = "nada_store";
  /// Maintain a live obs::StatusWriter snapshot per worker (and one for
  /// the driver's merge pass) at worker_status_path(shard) /
  /// merged_status_path(). On by default: the snapshots are tiny,
  /// atomically replaced, and give every sharded run heartbeat files the
  /// driver can aggregate. Pure readout — results are unaffected.
  bool worker_status = true;
  /// Optional profiling registry shared by every job this runner builds
  /// (wired into JobOptions::metrics, and from there into the stores and
  /// probe blocks). Must outlive the runner's calls.
  obs::MetricsRegistry* metrics = nullptr;
};

class ShardRunner {
 public:
  /// Throws std::invalid_argument on zero shards or a degenerate config.
  ShardRunner(const env::TaskDomain& domain, SearchConfig config,
              std::uint64_t seed, ShardRunnerConfig shards,
              util::ThreadPool* pool = nullptr);

  [[nodiscard]] const store::StoreScope& scope() const { return scope_; }
  [[nodiscard]] std::size_t num_shards() const { return shards_.num_shards; }

  /// Journal paths, derived from the scope so concurrent searches with
  /// different protocols never collide in one directory.
  [[nodiscard]] std::string shard_store_path(std::size_t shard) const;
  [[nodiscard]] std::string merged_store_path() const;

  /// Live status snapshot paths (written when
  /// ShardRunnerConfig::worker_status is on), next to the journals.
  [[nodiscard]] std::string worker_status_path(std::size_t shard) const;
  [[nodiscard]] std::string merged_status_path() const;
  /// Where write_merged_status() puts the cluster-level aggregate.
  [[nodiscard]] std::string aggregate_status_path() const;

  /// One worker's pass: pre-checks and probes the candidates of `shard`,
  /// journaling into shard_store_path(shard). Stops before the baseline /
  /// selection stages (those need global state). Safe to run concurrently
  /// with other shards' workers in other processes or threads. All
  /// `observers` (nullptrs are ignored) see the job's events.
  SearchResult run_worker(std::size_t shard, CandidateSource& source,
                          const FixedDesign& fixed,
                          const std::vector<Observer*>& observers = {});

  /// Supervised (lease) variant of run_worker: executes exactly the
  /// candidates whose fingerprint lands in `range`, journaling into the
  /// caller-provided `journal_path` (the lease journal the supervisor
  /// granted) with the heartbeat at journal_path + ".status.json". Ranges
  /// need not align with any static shard boundary — equivalence holds for
  /// ANY partition of the fingerprint space, which is what makes crash
  /// restart and straggler splitting safe (svc::Supervisor).
  SearchResult run_range(const store::ShardPlan::Range& range,
                         const std::string& journal_path,
                         CandidateSource& source, const FixedDesign& fixed,
                         const std::vector<Observer*>& observers = {});

  /// Supervised variant of merge_and_rank: merges the caller-provided
  /// journal list (typically svc::SupervisorReport::journal_paths — every
  /// journal any lease attempt ever owned, partials included) instead of
  /// the static shard layout. Missing journals are tolerated
  /// (store::merge_existing_shard_files): whatever the merge lacks, the
  /// funnel pass recomputes bit-identically.
  SearchResult merge_and_rank_paths(std::span<const std::string> journals,
                                    CandidateSource& source,
                                    const FixedDesign& fixed,
                                    const filter::EarlyStopModel* early_stop = nullptr,
                                    const std::vector<Observer*>& observers = {});

  /// Scope-derived file-name prefix for svc::SupervisorConfig::prefix, so
  /// concurrent supervised searches with different protocols never collide
  /// in one directory (same convention as shard_store_path).
  [[nodiscard]] std::string service_prefix() const;

  /// The driver's pass: merges every shard journal (throws
  /// std::runtime_error when a worker never reported, i.e. its journal is
  /// missing) into merged_store_path(), then runs the full funnel against
  /// the merged store — global selection, full training, final ranking.
  SearchResult merge_and_rank(CandidateSource& source,
                              const FixedDesign& fixed,
                              const filter::EarlyStopModel* early_stop = nullptr,
                              const std::vector<Observer*>& observers = {});

  /// Reads every worker's status snapshot (index == shard number; nullopt
  /// for a worker that has not written one yet).
  [[nodiscard]] std::vector<std::optional<obs::StatusSnapshot>>
  worker_statuses() const;

  /// Driver-side aggregation: merges the worker snapshots into one
  /// cluster-level document (obs::aggregate_status), atomically writes it
  /// to aggregate_status_path(), and returns it. A positive
  /// `staleness_threshold_seconds` feeds the ok|stale|missing worker
  /// health classification (0 never marks a worker stale).
  util::JsonValue write_merged_status(
      double staleness_threshold_seconds = 0.0) const;

 private:
  const env::TaskDomain* domain_;
  SearchConfig config_;
  std::uint64_t seed_;
  ShardRunnerConfig shards_;
  util::ThreadPool* pool_;
  store::StoreScope scope_;
};

}  // namespace nada::search

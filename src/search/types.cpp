#include "search/types.h"

#include <stdexcept>

namespace nada::search {

void validate_config(const SearchConfig& config) {
  if (config.num_candidates == 0) {
    throw std::invalid_argument(
        "SearchConfig: num_candidates must be >= 1 (got 0)");
  }
  if (config.full_train_top == 0) {
    throw std::invalid_argument(
        "SearchConfig: full_train_top must be >= 1 (got 0)");
  }
  if (config.full_train_top > config.num_candidates) {
    throw std::invalid_argument(
        "SearchConfig: full_train_top (" +
        std::to_string(config.full_train_top) +
        ") exceeds num_candidates (" +
        std::to_string(config.num_candidates) +
        "): cannot fully train more designs than the stream holds");
  }
  if (config.seeds == 0) {
    throw std::invalid_argument(
        "SearchConfig: seeds must be >= 1 (got 0); the paper's protocol "
        "trains each survivor across independent seeds");
  }
  if (config.probe_block == 0) {
    throw std::invalid_argument(
        "SearchConfig: probe_block must be >= 1 (got 0)");
  }
  if (config.early_epochs == 0) {
    throw std::invalid_argument(
        "SearchConfig: early_epochs must be >= 1 (got 0); the probe "
        "stage needs a non-empty reward window");
  }
}

}  // namespace nada::search

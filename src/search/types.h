// Shared value types of the search API: the funnel configuration, the
// per-candidate outcome, and the ranked result.
//
// These are the types the historical core::Pipeline surface exposed as
// PipelineConfig / CandidateOutcome / PipelineResult; core/pipeline.h
// aliases them, so the two surfaces cannot drift. New code should name
// them through nada::search.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "filter/checks.h"
#include "nn/arch.h"
#include "rl/session.h"
#include "rl/trainer.h"

namespace nada::search {

struct SearchConfig {
  std::size_t num_candidates = 150;
  /// Epochs for the early "batch training" probe (the paper's first-K
  /// reward window).
  std::size_t early_epochs = 60;
  /// How many ranked survivors get the full training budget.
  std::size_t full_train_top = 6;
  /// Sessions (seeds) for full-scale training.
  std::size_t seeds = 3;
  rl::TrainConfig train;  ///< full-scale budget; early probe reuses it with
                          ///< `early_epochs` epochs
  /// Architecture used for the baseline and for state-search candidates.
  nn::ArchSpec baseline_arch = nn::ArchSpec::pensieve();
  double normalization_threshold = filter::kNormalizationThreshold;
  std::size_t normalization_fuzz_runs = 16;
  /// Run the early-probe stage through rl::BatchProbeTrainer: candidates
  /// train in lockstep blocks with fused matrix-matrix updates instead of
  /// one serial Trainer each. Bit-identical per-candidate reward curves
  /// and store records either way (per-candidate seeds are fingerprint-
  /// derived and unaffected), so this is an execution knob, not a scope
  /// knob: it does not feed store_scope() and journals are shared freely
  /// between batched and serial runs of the same code revision.
  bool probe_batch = true;
  /// Candidates per lockstep block when probe_batch is on.
  std::size_t probe_block = 4;
  /// Rolling-window streaming. 0 (the default) materializes the whole
  /// candidate stream up front — the historical batch mode, byte-for-byte.
  /// >= 1 pulls, pre-checks, and probes the stream in windows of this many
  /// candidates, retiring each window's per-candidate state (specs,
  /// programs, reward curves — journaled to the store first when one is
  /// attached) before the next window is generated: peak memory is
  /// O(window_size + full_train_top) instead of O(num_candidates). The
  /// running selection keeps only the top full_train_top probes across
  /// windows, so SearchResult::outcomes holds just the retained candidates
  /// (see SearchResult). Rankings, journal records, and store keys are
  /// identical to batch mode for the same seeds; like probe_batch this is
  /// an execution knob and never feeds store_scope().
  std::size_t window_size = 0;

  [[nodiscard]] bool streaming() const { return window_size > 0; }
};

/// Up-front validation with descriptive errors: num_candidates >= 1,
/// 1 <= full_train_top <= num_candidates, seeds >= 1, probe_block >= 1,
/// early_epochs >= 1. Throws std::invalid_argument.
void validate_config(const SearchConfig& config);

/// One worker's slice of a sharded search: the job executes (and journals)
/// only the candidates store::ShardPlan(num_shards) assigns to `shard`;
/// the rest of the stream is counted but skipped.
struct ShardSlice {
  std::size_t num_shards = 1;
  std::size_t shard = 0;
};

/// Everything that happened to one candidate on its way through the funnel.
struct CandidateOutcome {
  std::string id;
  /// Position in the candidate stream. In batch mode this equals the
  /// outcome's index in SearchResult::outcomes; in streaming mode the
  /// result holds only the retained candidates, so the stream position
  /// must travel with the outcome.
  std::size_t stream_index = 0;
  std::string source;            ///< state candidates only
  std::optional<nn::ArchSpec> arch;  ///< architecture candidates only
  bool compiled = false;
  std::string compile_error;
  bool normalized = false;       ///< always true for architecture candidates
  std::string normalization_error;
  bool early_probed = false;
  std::vector<double> early_rewards;
  bool early_stopped = false;    ///< filtered out after the probe
  bool fully_trained = false;
  double test_score = -1e9;      ///< paper's test score (median over seeds)
  double emulation_score = 0.0;  ///< Table-4 style emulation score, if asked
  std::vector<double> curve_epochs;  ///< checkpoint curve of the full run
  std::vector<double> median_curve;
};

struct SearchResult {
  /// Batch mode: one outcome per stream position (outcomes[i].stream_index
  /// == i). Streaming mode: only the candidates the running selection
  /// retained — the full-training cohort, in selection order (probe score
  /// desc, stream position asc); everything else was journaled (when a
  /// store is attached) and retired window by window. The funnel counters
  /// below always cover the whole stream in both modes.
  std::vector<CandidateOutcome> outcomes;
  std::size_t n_total = 0;
  std::size_t n_compiled = 0;
  std::size_t n_normalized = 0;
  std::size_t n_early_stopped = 0;
  std::size_t n_fully_trained = 0;
  /// Candidates outside this job's ShardSlice (always 0 unsharded).
  std::size_t n_out_of_shard = 0;
  /// Stage results served from the attached candidate store instead of
  /// recomputed (always 0 without a store).
  std::size_t n_precheck_cache_hits = 0;
  std::size_t n_probe_cache_hits = 0;
  std::size_t n_full_cache_hits = 0;
  /// Work actually executed by this invocation (cache misses). A rerun
  /// over an unchanged stream reports n_probes_run == n_full_trains_run
  /// == 0: every result comes from the store.
  std::size_t n_probes_run = 0;
  std::size_t n_full_trains_run = 0;

  [[nodiscard]] std::size_t cache_hits() const {
    return n_precheck_cache_hits + n_probe_cache_hits + n_full_cache_hits;
  }
  /// Baseline: the original design trained with the same protocol.
  rl::SessionResult original;
  double original_score = 0.0;
  /// Index into `outcomes` of the best fully trained candidate, or npos.
  std::size_t best_index = SIZE_MAX;
  double best_score = -1e9;

  [[nodiscard]] bool has_best() const { return best_index != SIZE_MAX; }
  /// Relative improvement of the best candidate over the trained baseline:
  /// (best - original) / |original|. Degenerate baseline semantics: when
  /// original_score is exactly 0.0 the relative form is undefined (division
  /// by zero), so the method falls back to the absolute delta
  /// best_score - original_score == best_score — a valid best never reports
  /// zero improvement just because the baseline landed on 0. Without a best
  /// (has_best() == false) the improvement is 0.
  [[nodiscard]] double improvement() const {
    if (!has_best()) return 0.0;
    if (original_score == 0.0) return best_score - original_score;
    return (best_score - original_score) / std::abs(original_score);
  }
};

}  // namespace nada::search

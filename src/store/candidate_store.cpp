#include "store/candidate_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "obs/scoped_timer.h"
#include "store/record_codec.h"
#include "util/fs.h"
#include "util/json.h"
#include "util/strings.h"

namespace nada::store {
namespace {

constexpr std::uint64_t kMagicBytes = 8;

bool entry_less(const MmapIndex::Entry& a, const MmapIndex::Entry& b) {
  return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
}

void resize_journal(const std::string& path, std::uint64_t bytes) {
  std::error_code ec;
  std::filesystem::resize_file(path, bytes, ec);
  if (ec) {
    throw std::runtime_error("CandidateStore: cannot truncate torn tail of " +
                             path + ": " + ec.message());
  }
}

}  // namespace

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kChecked: return "checked";
    case Stage::kProbed: return "probed";
    case Stage::kTrained: return "trained";
  }
  return "?";
}

StoreFormat store_format_from_env() {
  const char* raw = std::getenv("NADA_STORE_FORMAT");
  if (raw == nullptr || *raw == '\0') return StoreFormat::kJsonl;
  const std::string value = util::to_lower(raw);
  if (value == "jsonl") return StoreFormat::kJsonl;
  if (value == "binary") return StoreFormat::kBinary;
  // A typo must not silently run a long search on the wrong format.
  throw std::runtime_error(
      "NADA_STORE_FORMAT must be 'jsonl' or 'binary', got '" +
      std::string(raw) + "'");
}

const char* journal_extension(StoreFormat format) {
  return format == StoreFormat::kBinary ? ".nsb" : ".jsonl";
}

StoreFormat format_for_path(std::string_view path) {
  return path.ends_with(".nsb") ? StoreFormat::kBinary : StoreFormat::kJsonl;
}

CandidateStore::CandidateStore(std::string path, StoreScope scope)
    : path_(std::move(path)), scope_(std::move(scope)),
      format_(format_for_path(path_)) {
  if (scope_.env.empty() || scope_.config_digest.empty()) {
    throw std::invalid_argument("CandidateStore: empty scope");
  }
  util::ensure_directories(util::parent_directory(path_));
  if (format_ == StoreFormat::kJsonl) {
    const bool torn_tail = load();
    out_.open(path_, std::ios::binary | std::ios::app);
    if (!out_) {
      throw std::runtime_error("CandidateStore: cannot open " + path_ +
                               " for append");
    }
    if (torn_tail) {
      // The journal ends mid-line (crash during an append). Terminate the
      // torn line so the next record starts clean; the fragment itself
      // stays behind as one skipped line.
      out_ << '\n';
      out_.flush();
    }
  } else {
    const bool fresh_index = load_binary();
    open_append_handle();
    if (fresh_index) {
      // Recovery scanned records the sidecar did not cover; persist so the
      // next open is O(index) again. Loud: an unwritable sidecar here
      // means every future open pays a full rescan.
      persist_index_locked();
    }
  }
}

CandidateStore::~CandidateStore() {
  if (format_ == StoreFormat::kBinary && index_dirty_) {
    // Best-effort: the sidecar is a cache, and a failed write here only
    // costs the next open a tail scan.
    try {
      std::lock_guard lock(mutex_);
      persist_index_locked();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }
}

std::uint64_t CandidateStore::scope_hash() const {
  return MmapIndex::scope_hash(scope_.env, scope_.config_digest);
}

void CandidateStore::open_append_handle() {
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("CandidateStore: cannot open " + path_ +
                             " for append");
  }
  if (append_offset_ < kMagicBytes) {
    // Brand-new journal (or one whose torn creation was truncated away):
    // the magic goes down before any record can.
    out_.write(kBinaryJournalMagic.data(),
               static_cast<std::streamsize>(kBinaryJournalMagic.size()));
    out_.flush();
    if (!out_) {
      throw std::runtime_error("CandidateStore: cannot initialize " + path_);
    }
    append_offset_ = kMagicBytes;
  }
  in_.open(path_, std::ios::binary);
  if (!in_) {
    throw std::runtime_error("CandidateStore: cannot open " + path_ +
                             " for reading");
  }
}

bool CandidateStore::load() {
  const auto content = util::read_file_if_exists(path_);
  if (!content.has_value()) return false;
  bool torn_tail = false;
  std::size_t start = 0;
  while (start < content->size()) {
    std::size_t end = content->find('\n', start);
    if (end == std::string::npos) {  // no trailing newline: torn append
      end = content->size();
      torn_tail = true;
    }
    const std::string line = content->substr(start, end - start);
    start = end + 1;
    if (util::trim(line).empty()) continue;
    auto record = decode_line(line, scope_);
    if (record.has_value()) {
      put_locked(*record);
    } else {
      // Torn final line after a crash, or foreign/corrupt data: recover by
      // skipping. Everything before a torn line is intact because appends
      // are single buffered writes followed by a flush.
      ++line_errors_;
    }
  }
  return torn_tail;
}

bool CandidateStore::load_binary() {
  std::error_code ec;
  const auto raw_size = std::filesystem::file_size(path_, ec);
  if (ec) return false;  // missing: open_append_handle creates it
  std::uint64_t file_size = raw_size;

  {
    std::ifstream probe(path_, std::ios::binary);
    char magic[kMagicBytes] = {};
    probe.read(magic, sizeof(magic));
    const auto got = static_cast<std::size_t>(probe.gcount());
    if (got < kMagicBytes) {
      if (std::memcmp(magic, kBinaryJournalMagic.data(), got) == 0) {
        // Crash during journal creation: nothing durable existed yet.
        resize_journal(path_, 0);
        return false;
      }
      throw std::runtime_error("CandidateStore: " + path_ +
                               " is not a binary store journal (short/bad "
                               "header)");
    }
    if (std::memcmp(magic, kBinaryJournalMagic.data(), kMagicBytes) != 0) {
      throw std::runtime_error(
          "CandidateStore: " + path_ +
          " is not a binary store journal (bad magic); was a JSONL journal "
          "renamed to .nsb? use tools/store_convert");
    }
  }
  append_offset_ = file_size;

  // Fast path: a sidecar that covers the journal exactly - O(index) open,
  // no record ever touched.
  if (base_.open(index_path(), scope_hash())) {
    if (base_.covered_bytes() == file_size) {
      distinct_ = base_.size();
      return false;
    }
    if (base_.covered_bytes() >= kMagicBytes &&
        base_.covered_bytes() < file_size) {
      // The journal grew past the sidecar (appends after the last clean
      // close, or a crash before the sidecar flush): scan only the tail.
      const std::uint64_t covered = base_.covered_bytes();
      std::string tail;
      {
        std::ifstream in(path_, std::ios::binary);
        in.seekg(static_cast<std::streamoff>(covered));
        tail.resize(static_cast<std::size_t>(file_size - covered));
        in.read(tail.data(), static_cast<std::streamsize>(tail.size()));
        if (static_cast<std::uint64_t>(in.gcount()) != tail.size()) {
          throw std::runtime_error("CandidateStore: short read of " + path_);
        }
      }
      distinct_ = base_.size();
      const ScanStats stats = scan_binary_journal(
          tail, [&](std::uint64_t offset, std::string_view frame) {
            auto record = decode_record(frame, scope_);
            if (!record.has_value()) {
              ++line_errors_;  // foreign scope or malformed body
              return;
            }
            ++decoded_frames_;
            const std::string key = record->fingerprint.hex();
            const auto it = delta_.find(key);
            std::optional<Stage> current;
            if (it != delta_.end()) {
              current = it->second.stage;
            } else if (const auto entry = base_.find(record->fingerprint)) {
              current = static_cast<Stage>(entry->stage);
            }
            if (!current.has_value()) ++distinct_;
            if (!current.has_value() || *current < record->stage) {
              delta_[key] = DeltaEntry{covered + offset, record->stage};
            }
          });
      line_errors_ += stats.corrupt_frames;
      if (stats.torn_tail) {
        ++line_errors_;
        file_size = covered + stats.clean_end;
        resize_journal(path_, file_size);
        append_offset_ = file_size;
      }
      return true;
    }
    // covered > file_size: the journal shrank under the sidecar (external
    // rewrite); the entries point past EOF. Rebuild from scratch.
    base_.close();
  }
  rebuild_index_locked();
  return false;  // rebuild_index_locked already persisted the sidecar
}

std::size_t CandidateStore::rebuild_index_locked() {
  std::string content = util::read_file_if_exists(path_).value_or("");
  if (content.size() < kMagicBytes) content.clear();
  std::unordered_map<std::string, MmapIndex::Entry> latest;
  line_errors_ = 0;
  const std::string_view frames_view =
      content.empty() ? std::string_view{}
                      : std::string_view(content).substr(kMagicBytes);
  const ScanStats stats = scan_binary_journal(
      frames_view, [&](std::uint64_t offset, std::string_view frame) {
        auto record = decode_record(frame, scope_);
        if (!record.has_value()) {
          ++line_errors_;
          return;
        }
        ++decoded_frames_;
        MmapIndex::Entry entry;
        entry.hi = record->fingerprint.hi;
        entry.lo = record->fingerprint.lo;
        entry.offset = kMagicBytes + offset;
        entry.stage = static_cast<std::uint32_t>(record->stage);
        auto [it, inserted] =
            latest.emplace(record->fingerprint.hex(), entry);
        if (!inserted && it->second.stage < entry.stage) it->second = entry;
      });
  line_errors_ += stats.corrupt_frames;
  std::uint64_t covered = content.empty() ? kMagicBytes
                                          : kMagicBytes + stats.clean_end;
  if (stats.torn_tail) {
    ++line_errors_;
    resize_journal(path_, covered);
  }
  append_offset_ = covered;

  std::vector<MmapIndex::Entry> entries;
  entries.reserve(latest.size());
  for (auto& [key, entry] : latest) entries.push_back(entry);
  std::sort(entries.begin(), entries.end(), entry_less);
  MmapIndex::write(index_path(), entries, covered, scope_hash());
  if (!base_.open(index_path(), scope_hash())) {
    throw std::runtime_error("CandidateStore: cannot map rebuilt index " +
                             index_path());
  }
  delta_.clear();
  distinct_ = base_.size();
  index_dirty_ = false;
  return distinct_;
}

std::size_t CandidateStore::rebuild_index() {
  if (format_ != StoreFormat::kBinary) return 0;
  std::lock_guard lock(mutex_);
  return rebuild_index_locked();
}

void CandidateStore::persist_index_locked() {
  std::vector<MmapIndex::Entry> fresh;
  fresh.reserve(delta_.size());
  for (const auto& [key, d] : delta_) {
    const auto fp = Fingerprint::from_hex(key);
    MmapIndex::Entry entry;
    entry.hi = fp->hi;
    entry.lo = fp->lo;
    entry.offset = d.offset;
    entry.stage = static_cast<std::uint32_t>(d.stage);
    fresh.push_back(entry);
  }
  std::sort(fresh.begin(), fresh.end(), entry_less);

  // Merge the sorted delta over the sorted base; delta wins on ties.
  std::vector<MmapIndex::Entry> merged;
  merged.reserve(base_.size() + fresh.size());
  const MmapIndex::Entry* b = base_.entries();
  const MmapIndex::Entry* b_end = b + base_.size();
  std::size_t f = 0;
  while (b != b_end || f < fresh.size()) {
    if (b == b_end) {
      merged.push_back(fresh[f++]);
    } else if (f == fresh.size()) {
      merged.push_back(*b++);
    } else if (entry_less(*b, fresh[f])) {
      merged.push_back(*b++);
    } else if (entry_less(fresh[f], *b)) {
      merged.push_back(fresh[f++]);
    } else {
      merged.push_back(fresh[f++]);
      ++b;
    }
  }
  MmapIndex::write(index_path(), merged, append_offset_, scope_hash());
  if (!base_.open(index_path(), scope_hash())) {
    throw std::runtime_error("CandidateStore: cannot map index " +
                             index_path());
  }
  delta_.clear();
  index_dirty_ = false;
}

void CandidateStore::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_.store(metrics, std::memory_order_release);
}

std::optional<CandidateStore::DeltaEntry> CandidateStore::binary_entry_locked(
    const Fingerprint& fp) const {
  const auto it = delta_.find(fp.hex());
  if (it != delta_.end()) return it->second;
  if (const auto entry = base_.find(fp)) {
    return DeltaEntry{entry->offset, static_cast<Stage>(entry->stage)};
  }
  return std::nullopt;
}

std::optional<OutcomeRecord> CandidateStore::read_frame_locked(
    std::uint64_t offset) const {
  if (!in_.is_open()) return std::nullopt;
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset));
  std::string header(kFrameHeaderBytes, '\0');
  in_.read(header.data(), static_cast<std::streamsize>(header.size()));
  if (static_cast<std::size_t>(in_.gcount()) != header.size()) {
    ++line_errors_;
    return std::nullopt;
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(header[i]))
           << (8 * i);
  }
  if (len > kMaxFrameBodyBytes ||
      offset + kFrameHeaderBytes + len > append_offset_) {
    ++line_errors_;
    return std::nullopt;
  }
  std::string frame = std::move(header);
  frame.resize(kFrameHeaderBytes + len);
  in_.read(frame.data() + kFrameHeaderBytes, static_cast<std::streamsize>(len));
  if (static_cast<std::size_t>(in_.gcount()) != len) {
    ++line_errors_;
    return std::nullopt;
  }
  auto record = decode_record(frame, scope_);
  if (!record.has_value()) {
    // The index pointed here but the bytes no longer decode (flipped bit,
    // partial overwrite): surface as a miss + recovery count, never as a
    // crash — the funnel recomputes the candidate instead.
    ++line_errors_;
    return std::nullopt;
  }
  ++decoded_frames_;
  return record;
}

std::optional<OutcomeRecord> CandidateStore::lookup(
    const Fingerprint& fp) const {
  obs::MetricsRegistry* metrics = metrics_.load(std::memory_order_acquire);
  obs::ScopedTimer timer(obs::maybe_histogram(metrics, "store.lookup.seconds"));
  std::lock_guard lock(mutex_);
  std::optional<OutcomeRecord> result;
  bool hit = false;
  if (format_ == StoreFormat::kJsonl) {
    const auto it = index_.find(fp.hex());
    hit = it != index_.end();
    if (hit) result = records_[it->second];
  } else {
    if (const auto entry = binary_entry_locked(fp)) {
      result = read_frame_locked(entry->offset);
      hit = result.has_value();
    }
  }
  if (metrics != nullptr) {
    metrics->counter("store.lookups").add();
    if (hit) metrics->counter("store.lookup_hits").add();
  }
  return result;
}

bool CandidateStore::put_locked(const OutcomeRecord& record) {
  const std::string key = record.fingerprint.hex();
  const auto it = index_.find(key);
  if (it == index_.end()) {
    index_.emplace(key, records_.size());
    records_.push_back(record);
    return true;
  }
  if (records_[it->second].stage >= record.stage) return false;
  records_[it->second] = record;
  return true;
}

bool CandidateStore::put(const OutcomeRecord& record) {
  if (record.fingerprint.is_zero()) {
    throw std::invalid_argument("CandidateStore::put: zero fingerprint");
  }
  obs::MetricsRegistry* metrics = metrics_.load(std::memory_order_acquire);
  obs::ScopedTimer timer(obs::maybe_histogram(metrics, "store.append.seconds"));
  if (metrics != nullptr) metrics->counter("store.appends").add();
  std::lock_guard lock(mutex_);
  if (format_ == StoreFormat::kJsonl) {
    if (!put_locked(record)) return false;
    if (metrics != nullptr) metrics->counter("store.appends_accepted").add();
    if (out_.is_open()) {
      const std::string line = encode_line(record, scope_) + "\n";
      out_.write(line.data(), static_cast<std::streamsize>(line.size()));
      out_.flush();
      if (!out_) {
        // Losing durability silently (e.g. ENOSPC) would let a run keep
        // "checkpointing" into the void; fail loudly instead.
        throw std::runtime_error("CandidateStore: append to " + path_ +
                                 " failed (disk full or I/O error)");
      }
    }
    return true;
  }

  const auto existing = binary_entry_locked(record.fingerprint);
  if (existing.has_value() && existing->stage >= record.stage) return false;
  if (metrics != nullptr) metrics->counter("store.appends_accepted").add();
  const std::string frame = encode_record(record, scope_);
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out_.flush();
  if (!out_) {
    throw std::runtime_error("CandidateStore: append to " + path_ +
                             " failed (disk full or I/O error)");
  }
  delta_[record.fingerprint.hex()] =
      DeltaEntry{append_offset_, record.stage};
  if (!existing.has_value()) ++distinct_;
  append_offset_ += frame.size();
  index_dirty_ = true;
  return true;
}

std::size_t CandidateStore::size() const {
  std::lock_guard lock(mutex_);
  return format_ == StoreFormat::kJsonl ? records_.size() : distinct_;
}

std::vector<OutcomeRecord> CandidateStore::scan_records_locked() const {
  std::vector<OutcomeRecord> out;
  const auto content = util::read_file_if_exists(path_);
  if (!content.has_value() || content->size() < kMagicBytes) return out;
  std::unordered_map<std::string, std::size_t> by_key;
  scan_binary_journal(
      std::string_view(*content).substr(kMagicBytes),
      [&](std::uint64_t, std::string_view frame) {
        auto record = decode_record(frame, scope_);
        if (!record.has_value()) return;  // snapshot: no error mutation
        ++decoded_frames_;
        const std::string key = record->fingerprint.hex();
        const auto it = by_key.find(key);
        if (it == by_key.end()) {
          by_key.emplace(key, out.size());
          out.push_back(std::move(*record));
        } else if (out[it->second].stage < record->stage) {
          out[it->second] = std::move(*record);
        }
      });
  return out;
}

std::vector<OutcomeRecord> CandidateStore::records() const {
  std::lock_guard lock(mutex_);
  if (format_ == StoreFormat::kJsonl) return records_;
  return scan_records_locked();
}

std::size_t CandidateStore::merge_from(const CandidateStore& other) {
  if (!(other.scope() == scope_)) {
    throw std::invalid_argument(
        "CandidateStore::merge_from: scope mismatch (" + other.scope().env +
        "/" + other.scope().config_digest + " vs " + scope_.env + "/" +
        scope_.config_digest + ")");
  }
  std::size_t accepted = 0;
  for (const auto& record : other.records()) {
    if (put(record)) ++accepted;
  }
  return accepted;
}

std::size_t CandidateStore::compact() {
  std::lock_guard lock(mutex_);
  if (format_ == StoreFormat::kBinary) {
    // Count live journal units (frames, corrupt frames, a torn fragment)
    // so the caller learns how much was reclaimed.
    std::size_t old_units = 0;
    std::vector<OutcomeRecord> keep;
    {
      const auto content = util::read_file_if_exists(path_);
      std::unordered_map<std::string, std::size_t> by_key;
      if (content.has_value() && content->size() >= kMagicBytes) {
        const ScanStats stats = scan_binary_journal(
            std::string_view(*content).substr(kMagicBytes),
            [&](std::uint64_t, std::string_view frame) {
              auto record = decode_record(frame, scope_);
              if (!record.has_value()) return;
              const std::string key = record->fingerprint.hex();
              const auto it = by_key.find(key);
              if (it == by_key.end()) {
                by_key.emplace(key, keep.size());
                keep.push_back(std::move(*record));
              } else if (keep[it->second].stage < record->stage) {
                keep[it->second] = std::move(*record);
              }
            });
        old_units =
            stats.frames + stats.corrupt_frames + (stats.torn_tail ? 1 : 0);
      }
    }

    const std::string tmp_path = path_ + ".compact.tmp";
    std::vector<MmapIndex::Entry> entries;
    entries.reserve(keep.size());
    std::uint64_t offset = kMagicBytes;
    {
      std::ofstream tmp(tmp_path, std::ios::binary | std::ios::trunc);
      if (!tmp) {
        throw std::runtime_error("CandidateStore::compact: cannot open " +
                                 tmp_path);
      }
      tmp.write(kBinaryJournalMagic.data(),
                static_cast<std::streamsize>(kBinaryJournalMagic.size()));
      for (const auto& record : keep) {
        const std::string frame = encode_record(record, scope_);
        tmp.write(frame.data(), static_cast<std::streamsize>(frame.size()));
        MmapIndex::Entry entry;
        entry.hi = record.fingerprint.hi;
        entry.lo = record.fingerprint.lo;
        entry.offset = offset;
        entry.stage = static_cast<std::uint32_t>(record.stage);
        entries.push_back(entry);
        offset += frame.size();
      }
      tmp.flush();
      if (!tmp) {
        throw std::runtime_error("CandidateStore::compact: write to " +
                                 tmp_path + " failed");
      }
    }
    out_.close();
    in_.close();
    if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
      out_.open(path_, std::ios::binary | std::ios::app);
      in_.open(path_, std::ios::binary);
      throw std::runtime_error("CandidateStore::compact: rename " + tmp_path +
                               " -> " + path_ + " failed");
    }
    append_offset_ = offset;
    out_.open(path_, std::ios::binary | std::ios::app);
    in_.open(path_, std::ios::binary);
    if (!out_ || !in_) {
      throw std::runtime_error("CandidateStore::compact: cannot reopen " +
                               path_);
    }
    std::sort(entries.begin(), entries.end(), entry_less);
    MmapIndex::write(index_path(), entries, append_offset_, scope_hash());
    if (!base_.open(index_path(), scope_hash())) {
      throw std::runtime_error("CandidateStore::compact: cannot map index " +
                               index_path());
    }
    delta_.clear();
    distinct_ = keep.size();
    index_dirty_ = false;
    line_errors_ = 0;
    return old_units > keep.size() ? old_units - keep.size() : 0;
  }

  // Count the live journal's lines (incl. blank/torn/foreign ones) so the
  // caller learns how much was reclaimed.
  std::size_t old_lines = 0;
  if (const auto content = util::read_file_if_exists(path_)) {
    std::size_t start = 0;
    while (start < content->size()) {
      std::size_t end = content->find('\n', start);
      if (end == std::string::npos) end = content->size();
      if (!util::trim(content->substr(start, end - start)).empty()) {
        ++old_lines;
      }
      start = end + 1;
    }
  }

  const std::string tmp_path = path_ + ".compact.tmp";
  {
    std::ofstream tmp(tmp_path, std::ios::binary | std::ios::trunc);
    if (!tmp) {
      throw std::runtime_error("CandidateStore::compact: cannot open " +
                               tmp_path);
    }
    for (const auto& record : records_) {
      tmp << encode_line(record, scope_) << '\n';
    }
    tmp.flush();
    if (!tmp) {
      throw std::runtime_error("CandidateStore::compact: write to " +
                               tmp_path + " failed");
    }
  }

  // Swap the compacted file in atomically. The append handle must be
  // re-opened either way: after a rename the old handle points at an
  // unlinked inode and further puts would checkpoint into the void.
  out_.close();
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    // Leave the original journal intact; reopen it for appends before
    // surfacing the failure.
    out_.open(path_, std::ios::binary | std::ios::app);
    throw std::runtime_error("CandidateStore::compact: rename " + tmp_path +
                             " -> " + path_ + " failed");
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("CandidateStore::compact: cannot reopen " +
                             path_ + " for append");
  }
  line_errors_ = 0;
  return old_lines > records_.size() ? old_lines - records_.size() : 0;
}

std::string CandidateStore::encode_line(const OutcomeRecord& record,
                                        const StoreScope& scope) {
  return encode_jsonl_line(record, scope);
}

std::optional<OutcomeRecord> CandidateStore::decode_line(
    const std::string& line, const StoreScope& scope) {
  return decode_jsonl_line(line, scope);
}

std::string default_store_path(const StoreScope& scope) {
  const char* dir = std::getenv("NADA_STORE_DIR");
  std::string base = (dir != nullptr && *dir != '\0') ? dir : "nada_store";
  return base + "/" + scope.env + "-" + scope.config_digest.substr(0, 16) +
         journal_extension(store_format_from_env());
}

}  // namespace nada::store

#include "store/candidate_store.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "obs/scoped_timer.h"
#include "util/fs.h"
#include "util/json.h"
#include "util/strings.h"

namespace nada::store {
namespace {

std::optional<nn::TemporalUnit> temporal_from_name(const std::string& name) {
  for (const auto u : {nn::TemporalUnit::kConv1D, nn::TemporalUnit::kRnn,
                       nn::TemporalUnit::kLstm, nn::TemporalUnit::kDense}) {
    if (name == nn::temporal_unit_name(u)) return u;
  }
  return std::nullopt;
}

std::optional<nn::Activation> activation_from_name(const std::string& name) {
  for (const auto a :
       {nn::Activation::kLinear, nn::Activation::kRelu,
        nn::Activation::kLeakyRelu, nn::Activation::kTanh,
        nn::Activation::kSigmoid, nn::Activation::kElu}) {
    if (name == nn::activation_name(a)) return a;
  }
  return std::nullopt;
}

util::JsonValue encode_arch(const nn::ArchSpec& spec) {
  util::JsonValue out = util::JsonValue::object();
  out.set("temporal",
          util::JsonValue::string(nn::temporal_unit_name(spec.temporal)));
  out.set("conv_filters",
          util::JsonValue::number(static_cast<double>(spec.conv_filters)));
  out.set("conv_kernel",
          util::JsonValue::number(static_cast<double>(spec.conv_kernel)));
  out.set("rnn_hidden",
          util::JsonValue::number(static_cast<double>(spec.rnn_hidden)));
  out.set("scalar_hidden",
          util::JsonValue::number(static_cast<double>(spec.scalar_hidden)));
  out.set("merge_hidden",
          util::JsonValue::number(static_cast<double>(spec.merge_hidden)));
  out.set("merge_layers",
          util::JsonValue::number(static_cast<double>(spec.merge_layers)));
  out.set("activation",
          util::JsonValue::string(nn::activation_name(spec.activation)));
  out.set("shared_trunk", util::JsonValue::boolean(spec.shared_trunk));
  return out;
}

std::optional<nn::ArchSpec> decode_arch(const util::JsonValue& value) {
  if (value.type() != util::JsonValue::Type::kObject) return std::nullopt;
  nn::ArchSpec spec;
  const auto temporal = temporal_from_name(value.get("temporal").as_string());
  const auto activation =
      activation_from_name(value.get("activation").as_string());
  if (!temporal.has_value() || !activation.has_value()) return std::nullopt;
  spec.temporal = *temporal;
  spec.activation = *activation;
  const auto as_size = [&value](const char* key) {
    return static_cast<std::size_t>(value.get(key).as_number());
  };
  spec.conv_filters = as_size("conv_filters");
  spec.conv_kernel = as_size("conv_kernel");
  spec.rnn_hidden = as_size("rnn_hidden");
  spec.scalar_hidden = as_size("scalar_hidden");
  spec.merge_hidden = as_size("merge_hidden");
  spec.merge_layers = as_size("merge_layers");
  spec.shared_trunk = value.get("shared_trunk").as_bool();
  return spec;
}

}  // namespace

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kChecked: return "checked";
    case Stage::kProbed: return "probed";
    case Stage::kTrained: return "trained";
  }
  return "?";
}

CandidateStore::CandidateStore(std::string path, StoreScope scope)
    : path_(std::move(path)), scope_(std::move(scope)) {
  if (scope_.env.empty() || scope_.config_digest.empty()) {
    throw std::invalid_argument("CandidateStore: empty scope");
  }
  const bool torn_tail = load();
  util::ensure_directories(util::parent_directory(path_));
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("CandidateStore: cannot open " + path_ +
                             " for append");
  }
  if (torn_tail) {
    // The journal ends mid-line (crash during an append). Terminate the
    // torn line so the next record starts clean; the fragment itself stays
    // behind as one skipped line.
    out_ << '\n';
    out_.flush();
  }
}

bool CandidateStore::load() {
  const auto content = util::read_file_if_exists(path_);
  if (!content.has_value()) return false;
  bool torn_tail = false;
  std::size_t start = 0;
  while (start < content->size()) {
    std::size_t end = content->find('\n', start);
    if (end == std::string::npos) {  // no trailing newline: torn append
      end = content->size();
      torn_tail = true;
    }
    const std::string line = content->substr(start, end - start);
    start = end + 1;
    if (util::trim(line).empty()) continue;
    auto record = decode_line(line, scope_);
    if (record.has_value()) {
      put_locked(*record);
    } else {
      // Torn final line after a crash, or foreign/corrupt data: recover by
      // skipping. Everything before a torn line is intact because appends
      // are single buffered writes followed by a flush.
      ++line_errors_;
    }
  }
  return torn_tail;
}

void CandidateStore::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_.store(metrics, std::memory_order_release);
}

std::optional<OutcomeRecord> CandidateStore::lookup(
    const Fingerprint& fp) const {
  obs::MetricsRegistry* metrics = metrics_.load(std::memory_order_acquire);
  obs::ScopedTimer timer(obs::maybe_histogram(metrics, "store.lookup.seconds"));
  std::lock_guard lock(mutex_);
  const auto it = index_.find(fp.hex());
  if (metrics != nullptr) {
    metrics->counter("store.lookups").add();
    if (it != index_.end()) metrics->counter("store.lookup_hits").add();
  }
  if (it == index_.end()) return std::nullopt;
  return records_[it->second];
}

bool CandidateStore::put_locked(const OutcomeRecord& record) {
  const std::string key = record.fingerprint.hex();
  const auto it = index_.find(key);
  if (it == index_.end()) {
    index_.emplace(key, records_.size());
    records_.push_back(record);
    return true;
  }
  if (records_[it->second].stage >= record.stage) return false;
  records_[it->second] = record;
  return true;
}

bool CandidateStore::put(const OutcomeRecord& record) {
  if (record.fingerprint.is_zero()) {
    throw std::invalid_argument("CandidateStore::put: zero fingerprint");
  }
  obs::MetricsRegistry* metrics = metrics_.load(std::memory_order_acquire);
  obs::ScopedTimer timer(obs::maybe_histogram(metrics, "store.append.seconds"));
  if (metrics != nullptr) metrics->counter("store.appends").add();
  std::lock_guard lock(mutex_);
  if (!put_locked(record)) return false;
  if (metrics != nullptr) metrics->counter("store.appends_accepted").add();
  if (out_.is_open()) {
    const std::string line = encode_line(record, scope_) + "\n";
    out_.write(line.data(), static_cast<std::streamsize>(line.size()));
    out_.flush();
    if (!out_) {
      // Losing durability silently (e.g. ENOSPC) would let a run keep
      // "checkpointing" into the void; fail loudly instead.
      throw std::runtime_error("CandidateStore: append to " + path_ +
                               " failed (disk full or I/O error)");
    }
  }
  return true;
}

std::size_t CandidateStore::size() const {
  std::lock_guard lock(mutex_);
  return records_.size();
}

std::vector<OutcomeRecord> CandidateStore::records() const {
  std::lock_guard lock(mutex_);
  return records_;
}

std::size_t CandidateStore::merge_from(const CandidateStore& other) {
  if (!(other.scope() == scope_)) {
    throw std::invalid_argument(
        "CandidateStore::merge_from: scope mismatch (" + other.scope().env +
        "/" + other.scope().config_digest + " vs " + scope_.env + "/" +
        scope_.config_digest + ")");
  }
  std::size_t accepted = 0;
  for (const auto& record : other.records()) {
    if (put(record)) ++accepted;
  }
  return accepted;
}

std::size_t CandidateStore::compact() {
  std::lock_guard lock(mutex_);
  // Count the live journal's lines (incl. blank/torn/foreign ones) so the
  // caller learns how much was reclaimed.
  std::size_t old_lines = 0;
  if (const auto content = util::read_file_if_exists(path_)) {
    std::size_t start = 0;
    while (start < content->size()) {
      std::size_t end = content->find('\n', start);
      if (end == std::string::npos) end = content->size();
      if (!util::trim(content->substr(start, end - start)).empty()) {
        ++old_lines;
      }
      start = end + 1;
    }
  }

  const std::string tmp_path = path_ + ".compact.tmp";
  {
    std::ofstream tmp(tmp_path, std::ios::binary | std::ios::trunc);
    if (!tmp) {
      throw std::runtime_error("CandidateStore::compact: cannot open " +
                               tmp_path);
    }
    for (const auto& record : records_) {
      tmp << encode_line(record, scope_) << '\n';
    }
    tmp.flush();
    if (!tmp) {
      throw std::runtime_error("CandidateStore::compact: write to " +
                               tmp_path + " failed");
    }
  }

  // Swap the compacted file in atomically. The append handle must be
  // re-opened either way: after a rename the old handle points at an
  // unlinked inode and further puts would checkpoint into the void.
  out_.close();
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    // Leave the original journal intact; reopen it for appends before
    // surfacing the failure.
    out_.open(path_, std::ios::binary | std::ios::app);
    throw std::runtime_error("CandidateStore::compact: rename " + tmp_path +
                             " -> " + path_ + " failed");
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("CandidateStore::compact: cannot reopen " +
                             path_ + " for append");
  }
  line_errors_ = 0;
  return old_lines > records_.size() ? old_lines - records_.size() : 0;
}

std::string CandidateStore::encode_line(const OutcomeRecord& record,
                                        const StoreScope& scope) {
  util::JsonValue out = util::JsonValue::object();
  out.set("fp", util::JsonValue::string(record.fingerprint.hex()));
  out.set("env", util::JsonValue::string(scope.env));
  out.set("digest", util::JsonValue::string(scope.config_digest));
  out.set("stage", util::JsonValue::number(
                       static_cast<double>(static_cast<int>(record.stage))));
  out.set("id", util::JsonValue::string(record.id));
  out.set("source", util::JsonValue::string(record.source));
  if (record.arch.has_value()) out.set("arch", encode_arch(*record.arch));
  out.set("compiled", util::JsonValue::boolean(record.compiled));
  out.set("compile_error", util::JsonValue::string(record.compile_error));
  out.set("normalized", util::JsonValue::boolean(record.normalized));
  out.set("normalization_error",
          util::JsonValue::string(record.normalization_error));
  out.set("early_probed", util::JsonValue::boolean(record.early_probed));
  out.set("early_rewards", util::json_doubles(record.early_rewards));
  out.set("fully_trained", util::JsonValue::boolean(record.fully_trained));
  out.set("test_score", util::JsonValue::number(record.test_score));
  out.set("emulation_score", util::JsonValue::number(record.emulation_score));
  out.set("curve_epochs", util::json_doubles(record.curve_epochs));
  out.set("median_curve", util::json_doubles(record.median_curve));
  return out.dump();
}

std::optional<OutcomeRecord> CandidateStore::decode_line(
    const std::string& line, const StoreScope& scope) {
  util::JsonValue value;
  try {
    value = util::JsonValue::parse(line);
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
  if (value.type() != util::JsonValue::Type::kObject) return std::nullopt;
  if (value.get("env").as_string() != scope.env ||
      value.get("digest").as_string() != scope.config_digest) {
    return std::nullopt;
  }
  const auto fp = Fingerprint::from_hex(value.get("fp").as_string());
  if (!fp.has_value()) return std::nullopt;
  const double stage_raw = value.get("stage").as_number(-1.0);
  if (stage_raw < 0.0 || stage_raw > 2.0) return std::nullopt;

  OutcomeRecord record;
  record.fingerprint = *fp;
  record.stage = static_cast<Stage>(static_cast<int>(stage_raw));
  record.id = value.get("id").as_string();
  record.source = value.get("source").as_string();
  if (value.has("arch")) {
    record.arch = decode_arch(value.get("arch"));
    if (!record.arch.has_value()) return std::nullopt;
  }
  record.compiled = value.get("compiled").as_bool();
  record.compile_error = value.get("compile_error").as_string();
  record.normalized = value.get("normalized").as_bool();
  record.normalization_error = value.get("normalization_error").as_string();
  record.early_probed = value.get("early_probed").as_bool();
  record.early_rewards = util::json_to_doubles(value.get("early_rewards"));
  record.fully_trained = value.get("fully_trained").as_bool();
  record.test_score = value.get("test_score").as_number(-1e9);
  record.emulation_score = value.get("emulation_score").as_number();
  record.curve_epochs = util::json_to_doubles(value.get("curve_epochs"));
  record.median_curve = util::json_to_doubles(value.get("median_curve"));
  return record;
}

std::string default_store_path(const StoreScope& scope) {
  const char* dir = std::getenv("NADA_STORE_DIR");
  std::string base = (dir != nullptr && *dir != '\0') ? dir : "nada_store";
  return base + "/" + scope.env + "-" + scope.config_digest.substr(0, 16) +
         ".jsonl";
}

}  // namespace nada::store

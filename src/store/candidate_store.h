// Persistent, content-addressed store of candidate outcomes.
//
// The store is the funnel's memory between runs: an append-only journal
// of per-candidate results keyed by (fingerprint, environment,
// train-config digest). The pipeline checkpoints into it after every
// funnel stage, so
//
//   * a rerun over the same candidate stream skips straight to the
//     recorded results (zero duplicate probes or full trainings),
//   * a run killed mid-funnel resumes from whatever the journal holds —
//     load-on-open tolerates a torn final append (the crash case) by
//     dropping it,
//   * shard stores produced by independent workers merge by union, with
//     the furthest-progressed record winning per fingerprint.
//
// Two on-disk formats implement the same contract (docs/STORE_FORMAT.md):
//
//   * JSONL (".jsonl", the default) — one JSON object per line,
//     human-greppable; opening loads every record into memory.
//   * binary (".nsb") — length-prefixed checksummed frames plus an mmap'd
//     fingerprint->offset sidecar ("<journal>.idx"), so open() costs
//     O(index) instead of O(records) and lookup() deserializes exactly one
//     frame. Built for million-candidate journals.
//
// The format is chosen by file extension; path producers (default paths,
// shard runners, the supervisor) pick the extension from
// NADA_STORE_FORMAT=jsonl|binary. Both formats hold identical record sets
// for identical runs, and tools/store_convert migrates either direction.
//
// Records carry a Stage marking how far through the funnel the work
// products go; `put` is append-only and monotone (a record never regresses
// the stage already journaled for its fingerprint, and same-stage
// duplicates are not re-appended, so steady-state reruns do not grow the
// file). All public methods are thread-safe: probe/training workers
// checkpoint concurrently from the pool.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "nn/arch.h"
#include "obs/metrics.h"
#include "store/fingerprint.h"
#include "store/mmap_index.h"

namespace nada::store {

/// How far through the funnel a record's results go.
enum class Stage : int {
  kChecked = 0,  ///< compile + normalization results
  kProbed = 1,   ///< + early-training probe rewards
  kTrained = 2,  ///< + full-scale training scores and curves
};

[[nodiscard]] const char* stage_name(Stage stage);

/// On-disk journal encoding. JSONL is the default until binary parity has
/// been proven in a deployment; both satisfy the same store contract.
enum class StoreFormat {
  kJsonl,
  kBinary,
};

/// Reads NADA_STORE_FORMAT ("jsonl" | "binary"; unset/empty = jsonl).
/// Throws std::runtime_error on any other value — a typo must not silently
/// run a million-candidate search on the wrong format.
[[nodiscard]] StoreFormat store_format_from_env();

/// ".jsonl" / ".nsb" — what path producers append for `format`.
[[nodiscard]] const char* journal_extension(StoreFormat format);

/// Format implied by a journal path: ".nsb" is binary, everything else is
/// JSONL (the historical default for extensionless test paths).
[[nodiscard]] StoreFormat format_for_path(std::string_view path);

/// The work products of one candidate's trip through the funnel. Field for
/// field this mirrors core::CandidateOutcome minus the per-run selection
/// verdict (early_stopped), which depends on the cohort, not the candidate.
struct OutcomeRecord {
  Fingerprint fingerprint;
  Stage stage = Stage::kChecked;
  std::string id;                    ///< generator id of the first sighting
  std::string source;                ///< state source / arch description
  std::optional<nn::ArchSpec> arch;  ///< architecture candidates only
  bool compiled = false;
  std::string compile_error;
  bool normalized = false;
  std::string normalization_error;
  bool early_probed = false;
  std::vector<double> early_rewards;
  bool fully_trained = false;
  double test_score = -1e9;
  double emulation_score = 0.0;
  std::vector<double> curve_epochs;
  std::vector<double> median_curve;
};

/// Scope of a store: results are only comparable within one environment
/// and one training protocol, so both are part of every journal line and
/// are verified at load.
struct StoreScope {
  std::string env;            ///< trace::environment_name of the dataset
  std::string config_digest;  ///< Fingerprint::hex of the funnel config

  [[nodiscard]] bool operator==(const StoreScope&) const = default;
};

class CandidateStore {
 public:
  /// Opens (creating if absent) the journal at `path`, in the format
  /// implied by its extension. Records from a different scope or with
  /// corrupt/torn encodings are skipped and counted in
  /// `recovered_line_errors()`. A binary journal opens through its mmap'd
  /// sidecar index when fresh; a stale sidecar triggers a scan of only the
  /// un-indexed tail, a missing/corrupt one a full rebuild.
  CandidateStore(std::string path, StoreScope scope);
  ~CandidateStore();

  CandidateStore(const CandidateStore&) = delete;
  CandidateStore& operator=(const CandidateStore&) = delete;

  /// Latest-stage record for a fingerprint (a copy: the index mutates
  /// under concurrent puts). On a binary store this reads exactly one
  /// frame from disk; a frame that fails its checksum is counted in
  /// recovered_line_errors() and reported as a miss.
  [[nodiscard]] std::optional<OutcomeRecord> lookup(
      const Fingerprint& fp) const;

  /// Journals a record. Monotone per fingerprint: ignored entirely when
  /// the indexed record already reached `record.stage`. Appends one
  /// line/frame and flushes before returning, so a crash after put() never
  /// loses the record; an append that fails (disk full, I/O error) throws
  /// rather than silently dropping durability. Returns true when the
  /// record was accepted.
  bool put(const OutcomeRecord& record);

  /// Number of distinct fingerprints indexed.
  [[nodiscard]] std::size_t size() const;

  /// Snapshot of the latest record per fingerprint, in first-sighting
  /// order. On a binary store this is the one deliberately O(records)
  /// call: it re-scans the journal (merge paths and tests want the full
  /// set; the funnel itself never calls it).
  [[nodiscard]] std::vector<OutcomeRecord> records() const;

  /// Unions another store's records into this one (same-scope only;
  /// throws std::invalid_argument otherwise). Returns records accepted.
  /// Works across formats: the source may be JSONL and this binary, or
  /// vice versa.
  std::size_t merge_from(const CandidateStore& other);

  /// Rewrites the journal to exactly one record per fingerprint — the
  /// latest-stage record — dropping superseded-stage duplicates, torn
  /// fragments, and foreign/corrupt records accumulated across runs.
  /// Format-aware: a binary store compacts to fresh frames and rebuilds
  /// its sidecar index. Crash-safe: the compacted journal is written to
  /// "<path>.compact.tmp", flushed, and atomically renamed over the
  /// original, so a crash at any point leaves either the old journal or
  /// the new one, never a mix. Returns the number of journal
  /// records/fragments dropped. Resets recovered_line_errors() to zero
  /// (the rewritten file is clean).
  std::size_t compact();

  /// Binary stores only (no-op returning 0 on JSONL): rescans the journal
  /// and rewrites the sidecar index from scratch. Returns the number of
  /// indexed fingerprints. The sidecar is also persisted automatically on
  /// clean destruction and after open-time recovery.
  std::size_t rebuild_index();

  /// Attaches a profiling registry (pure readout, never changes journal
  /// bytes): lookup()/put() latencies land in store.lookup.seconds /
  /// store.append.seconds, volumes in store.lookups, store.lookup_hits,
  /// store.appends, store.appends_accepted. Pass nullptr to detach. The
  /// registry must outlive the store (SearchJob wires its
  /// JobOptions::metrics in here automatically).
  void set_metrics(obs::MetricsRegistry* metrics);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const StoreScope& scope() const { return scope_; }
  [[nodiscard]] StoreFormat format() const { return format_; }
  [[nodiscard]] std::size_t recovered_line_errors() const {
    std::lock_guard lock(mutex_);
    return line_errors_;
  }

  /// Binary stores: frames deserialized on demand since open (lookup and
  /// records() reads). The allocation guard for "open() materializes
  /// nothing": after an indexed open this is 0, and a cache-hit lookup
  /// raises it by exactly 1. Always 0 on JSONL stores (which materialize
  /// eagerly at load instead).
  [[nodiscard]] std::size_t decoded_frames() const {
    std::lock_guard lock(mutex_);
    return decoded_frames_;
  }

  // JSONL codec, exposed for tests and external tooling (thin wrappers
  // over store/record_codec.h, which also houses the binary codec).
  [[nodiscard]] static std::string encode_line(const OutcomeRecord& record,
                                               const StoreScope& scope);
  /// nullopt when the line is torn/corrupt or from a different scope.
  [[nodiscard]] static std::optional<OutcomeRecord> decode_line(
      const std::string& line, const StoreScope& scope);

 private:
  struct DeltaEntry {
    std::uint64_t offset = 0;  ///< frame start in the journal
    Stage stage = Stage::kChecked;
  };

  /// Returns true when the journal ended mid-record (torn final append).
  bool load();
  bool load_binary();
  bool put_locked(const OutcomeRecord& record);
  /// Latest stage for a fingerprint in the binary backend (delta wins).
  std::optional<DeltaEntry> binary_entry_locked(const Fingerprint& fp) const;
  /// Reads + decodes the frame at `offset`; counts a line error and
  /// returns nullopt on checksum/decode failure.
  std::optional<OutcomeRecord> read_frame_locked(std::uint64_t offset) const;
  std::vector<OutcomeRecord> scan_records_locked() const;
  /// Full journal rescan + sidecar rewrite; returns distinct fingerprints.
  std::size_t rebuild_index_locked();
  /// Merges the mmap'd base index with the in-memory delta and persists
  /// the sidecar. Best-effort in the destructor, loud elsewhere.
  void persist_index_locked();
  std::string index_path() const { return path_ + ".idx"; }
  std::uint64_t scope_hash() const;
  void open_append_handle();

  mutable std::mutex mutex_;
  // atomic, not mutex-guarded: lookup/put read it before taking mutex_ so
  // the recorded latency includes lock wait (the contended part).
  std::atomic<obs::MetricsRegistry*> metrics_{nullptr};
  std::string path_;
  StoreScope scope_;
  StoreFormat format_ = StoreFormat::kJsonl;
  std::ofstream out_;  ///< append handle, kept open for the store's life
  /// Binary backend read handle for on-demand frame loads (seek + read
  /// under mutex_; reopened after compaction swaps the inode).
  mutable std::ifstream in_;

  // ---- JSONL backend: every record materialized at load ----
  std::vector<OutcomeRecord> records_;
  // fingerprint hex -> index into records_
  std::unordered_map<std::string, std::size_t> index_;

  // ---- binary backend: offsets only; frames read on demand ----
  MmapIndex base_;  ///< mmap'd sidecar (may be closed when journal is new)
  // fingerprint hex -> entry for records appended/upgraded since the
  // sidecar was built (overrides base_).
  std::unordered_map<std::string, DeltaEntry> delta_;
  std::size_t distinct_ = 0;        ///< distinct fingerprints (base + new)
  std::uint64_t append_offset_ = 0; ///< journal byte length
  bool index_dirty_ = false;

  mutable std::size_t line_errors_ = 0;
  mutable std::size_t decoded_frames_ = 0;
};

/// Default journal location: $NADA_STORE_DIR (default "nada_store")
/// /<env>-<digest prefix><.jsonl|.nsb per NADA_STORE_FORMAT>.
[[nodiscard]] std::string default_store_path(const StoreScope& scope);

}  // namespace nada::store

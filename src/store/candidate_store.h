// Persistent, content-addressed store of candidate outcomes.
//
// The store is the funnel's memory between runs: an append-only JSONL
// journal of per-candidate results keyed by (fingerprint, environment,
// train-config digest). The pipeline checkpoints into it after every
// funnel stage, so
//
//   * a rerun over the same candidate stream skips straight to the
//     recorded results (zero duplicate probes or full trainings),
//   * a run killed mid-funnel resumes from whatever the journal holds —
//     load-on-open tolerates a torn final line (the crash case) by
//     dropping it,
//   * shard stores produced by independent workers merge by union, with
//     the furthest-progressed record winning per fingerprint.
//
// Records carry a Stage marking how far through the funnel the work
// products go; `put` is append-only and monotone (a record never regresses
// the stage already journaled for its fingerprint, and same-stage
// duplicates are not re-appended, so steady-state reruns do not grow the
// file). All public methods are thread-safe: probe/training workers
// checkpoint concurrently from the pool.
#pragma once

#include <atomic>
#include <cstddef>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/arch.h"
#include "obs/metrics.h"
#include "store/fingerprint.h"

namespace nada::store {

/// How far through the funnel a record's results go.
enum class Stage : int {
  kChecked = 0,  ///< compile + normalization results
  kProbed = 1,   ///< + early-training probe rewards
  kTrained = 2,  ///< + full-scale training scores and curves
};

[[nodiscard]] const char* stage_name(Stage stage);

/// The work products of one candidate's trip through the funnel. Field for
/// field this mirrors core::CandidateOutcome minus the per-run selection
/// verdict (early_stopped), which depends on the cohort, not the candidate.
struct OutcomeRecord {
  Fingerprint fingerprint;
  Stage stage = Stage::kChecked;
  std::string id;                    ///< generator id of the first sighting
  std::string source;                ///< state source / arch description
  std::optional<nn::ArchSpec> arch;  ///< architecture candidates only
  bool compiled = false;
  std::string compile_error;
  bool normalized = false;
  std::string normalization_error;
  bool early_probed = false;
  std::vector<double> early_rewards;
  bool fully_trained = false;
  double test_score = -1e9;
  double emulation_score = 0.0;
  std::vector<double> curve_epochs;
  std::vector<double> median_curve;
};

/// Scope of a store: results are only comparable within one environment
/// and one training protocol, so both are part of every journal line and
/// are verified at load.
struct StoreScope {
  std::string env;            ///< trace::environment_name of the dataset
  std::string config_digest;  ///< Fingerprint::hex of the funnel config

  [[nodiscard]] bool operator==(const StoreScope&) const = default;
};

class CandidateStore {
 public:
  /// Opens (creating if absent) the journal at `path`. Lines from a
  /// different scope or with corrupt/torn JSON are skipped and counted in
  /// `recovered_line_errors()`.
  CandidateStore(std::string path, StoreScope scope);

  CandidateStore(const CandidateStore&) = delete;
  CandidateStore& operator=(const CandidateStore&) = delete;

  /// Latest-stage record for a fingerprint (a copy: the index mutates
  /// under concurrent puts).
  [[nodiscard]] std::optional<OutcomeRecord> lookup(
      const Fingerprint& fp) const;

  /// Journals a record. Monotone per fingerprint: ignored entirely when
  /// the indexed record already reached `record.stage`. Appends one JSON
  /// line and flushes before returning, so a crash after put() never loses
  /// the record; an append that fails (disk full, I/O error) throws rather
  /// than silently dropping durability. Returns true when the record was
  /// accepted.
  bool put(const OutcomeRecord& record);

  /// Number of distinct fingerprints indexed.
  [[nodiscard]] std::size_t size() const;

  /// Snapshot of the latest record per fingerprint.
  [[nodiscard]] std::vector<OutcomeRecord> records() const;

  /// Unions another store's records into this one (same-scope only;
  /// throws std::invalid_argument otherwise). Returns records accepted.
  std::size_t merge_from(const CandidateStore& other);

  /// Rewrites the journal to exactly one line per fingerprint — the
  /// latest-stage record — dropping superseded-stage duplicates, torn
  /// fragments, and foreign/corrupt lines accumulated across runs.
  /// Crash-safe: the compacted journal is written to "<path>.compact.tmp",
  /// flushed, and atomically renamed over the original, so a crash at any
  /// point leaves either the old journal or the new one, never a mix.
  /// Returns the number of journal lines dropped. Resets
  /// recovered_line_errors() to zero (the rewritten file is clean).
  std::size_t compact();

  /// Attaches a profiling registry (pure readout, never changes journal
  /// bytes): lookup()/put() latencies land in store.lookup.seconds /
  /// store.append.seconds, volumes in store.lookups, store.lookup_hits,
  /// store.appends, store.appends_accepted. Pass nullptr to detach. The
  /// registry must outlive the store (SearchJob wires its
  /// JobOptions::metrics in here automatically).
  void set_metrics(obs::MetricsRegistry* metrics);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const StoreScope& scope() const { return scope_; }
  [[nodiscard]] std::size_t recovered_line_errors() const {
    return line_errors_;
  }

  // JSONL codec, exposed for tests and external tooling.
  [[nodiscard]] static std::string encode_line(const OutcomeRecord& record,
                                               const StoreScope& scope);
  /// nullopt when the line is torn/corrupt or from a different scope.
  [[nodiscard]] static std::optional<OutcomeRecord> decode_line(
      const std::string& line, const StoreScope& scope);

 private:
  /// Returns true when the journal ended mid-line (torn final append).
  bool load();
  bool put_locked(const OutcomeRecord& record);

  mutable std::mutex mutex_;
  // atomic, not mutex-guarded: lookup/put read it before taking mutex_ so
  // the recorded latency includes lock wait (the contended part).
  std::atomic<obs::MetricsRegistry*> metrics_{nullptr};
  std::string path_;
  StoreScope scope_;
  std::ofstream out_;  ///< append handle, kept open for the store's life
  std::vector<OutcomeRecord> records_;
  // fingerprint hex -> index into records_
  std::unordered_map<std::string, std::size_t> index_;
  std::size_t line_errors_ = 0;
};

/// Default journal location: $NADA_STORE_DIR (default "nada_store")
/// /<env>-<digest prefix>.jsonl.
[[nodiscard]] std::string default_store_path(const StoreScope& scope);

}  // namespace nada::store

#include "store/convert.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "store/candidate_store.h"
#include "store/record_codec.h"
#include "util/fs.h"
#include "util/strings.h"

namespace nada::store {
namespace {

// Streams every decodable (record, scope) pair out of a journal in order,
// counting what open-time recovery would have skipped.
std::vector<ScopedRecord> read_journal(const std::string& path,
                                       std::size_t* skipped) {
  const auto content = util::read_file_if_exists(path);
  if (!content.has_value()) {
    throw std::runtime_error("store_convert: cannot read " + path);
  }
  std::vector<ScopedRecord> out;
  if (format_for_path(path) == StoreFormat::kBinary) {
    std::string_view view(*content);
    if (view.size() < kBinaryJournalMagic.size() ||
        view.substr(0, kBinaryJournalMagic.size()) != kBinaryJournalMagic) {
      throw std::runtime_error("store_convert: " + path +
                               " is not a binary store journal (bad magic)");
    }
    const ScanStats stats = scan_binary_journal(
        view.substr(kBinaryJournalMagic.size()),
        [&](std::uint64_t, std::string_view frame) {
          if (auto scoped = decode_record_any(frame)) {
            out.push_back(std::move(*scoped));
          } else {
            ++*skipped;
          }
        });
    *skipped += stats.corrupt_frames + (stats.torn_tail ? 1 : 0);
    return out;
  }
  std::size_t start = 0;
  while (start < content->size()) {
    std::size_t end = content->find('\n', start);
    const bool torn = end == std::string::npos;
    if (torn) end = content->size();
    const std::string line = content->substr(start, end - start);
    start = end + 1;
    if (util::trim(line).empty()) continue;
    if (auto scoped = decode_jsonl_line_any(line); scoped && !torn) {
      out.push_back(std::move(*scoped));
    } else {
      ++*skipped;
    }
  }
  return out;
}

}  // namespace

ConvertStats convert_journal(const std::string& in_path,
                             const std::string& out_path) {
  ConvertStats stats;
  const std::vector<ScopedRecord> records =
      read_journal(in_path, &stats.skipped);

  const StoreFormat out_format = format_for_path(out_path);
  const std::string tmp_path = out_path + ".tmp";
  util::ensure_directories(util::parent_directory(out_path));
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("store_convert: cannot open " + tmp_path);
    }
    if (out_format == StoreFormat::kBinary) {
      out.write(kBinaryJournalMagic.data(),
                static_cast<std::streamsize>(kBinaryJournalMagic.size()));
      for (const auto& scoped : records) {
        const std::string frame = encode_record(scoped.record, scoped.scope);
        out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
      }
    } else {
      for (const auto& scoped : records) {
        out << encode_jsonl_line(scoped.record, scoped.scope) << '\n';
      }
    }
    out.flush();
    if (!out) {
      throw std::runtime_error("store_convert: write to " + tmp_path +
                               " failed");
    }
  }
  if (std::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
    throw std::runtime_error("store_convert: rename " + tmp_path + " -> " +
                             out_path + " failed");
  }
  stats.records = records.size();
  return stats;
}

}  // namespace nada::store

// Lossless journal format conversion (JSONL <-> binary).
//
// `convert_journal` rewrites a store journal into the format implied by the
// output path's extension, preserving record order, per-record scope, and
// duplicate entries (a journal is an append-only history; conversion must
// not collapse it). Torn tails and corrupt frames/lines are skipped and
// counted, exactly as CandidateStore's open-time recovery would skip them.
//
// A converted binary journal carries no sidecar index — CandidateStore
// rebuilds one on first open (and scopes it to its own filter), so the
// converter stays scope-agnostic and can migrate mixed-scope journals.
#pragma once

#include <cstddef>
#include <string>

namespace nada::store {

struct ConvertStats {
  std::size_t records = 0;  ///< records re-encoded into the output
  std::size_t skipped = 0;  ///< torn/corrupt/blank journal units dropped
};

/// Converts the journal at `in_path` into `out_path`. Formats are implied
/// by the extensions (".nsb" = binary, anything else JSONL); converting
/// between two paths of the same format is a valid (normalizing) copy.
/// Writes through "<out_path>.tmp" + atomic rename. Throws
/// std::runtime_error when the input is missing/unreadable or the output
/// cannot be written.
ConvertStats convert_journal(const std::string& in_path,
                             const std::string& out_path);

}  // namespace nada::store

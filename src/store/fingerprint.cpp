#include "store/fingerprint.h"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "dsl/canonical.h"
#include "dsl/parser.h"
#include "dsl/value.h"
#include "util/strings.h"

namespace nada::store {

std::string Fingerprint::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

std::optional<Fingerprint> Fingerprint::from_hex(std::string_view text) {
  if (text.size() != 32) return std::nullopt;
  Fingerprint fp;
  const auto parse_half = [&](std::string_view half, std::uint64_t& out) {
    const auto [end, ec] =
        std::from_chars(half.data(), half.data() + half.size(), out, 16);
    return ec == std::errc() && end == half.data() + half.size();
  };
  if (!parse_half(text.substr(0, 16), fp.hi)) return std::nullopt;
  if (!parse_half(text.substr(16, 16), fp.lo)) return std::nullopt;
  return fp;
}

Fingerprint fingerprint_text(std::string_view text) {
  Fingerprint fp;
  fp.hi = util::mix64(util::fnv1a64(text, 0x51a7e5ULL));
  fp.lo = util::mix64(util::fnv1a64(text, 0xa9c4edULL));
  return fp;
}

Fingerprint combine(const Fingerprint& a, const Fingerprint& b) {
  Fingerprint fp;
  fp.hi = util::mix64(a.hi ^ util::mix64(b.hi));
  fp.lo = util::mix64(a.lo ^ util::mix64(b.lo));
  return fp;
}

Fingerprint fingerprint_state_source(const std::string& source) {
  try {
    const dsl::Program program = dsl::parse(source);
    return fingerprint_text("state:" + dsl::canonical_source(program));
  } catch (const dsl::CompileError&) {
    // Unparsable candidates still deserve stable identities: byte-identical
    // broken outputs (modulo surrounding whitespace) hash together, in a
    // domain separated from canonical hashes.
    return fingerprint_text(std::string("raw-state:") +
                            std::string(util::trim(source)));
  }
}

std::string canonical_arch(const nn::ArchSpec& spec) {
  std::ostringstream out;
  out << "arch{temporal=" << nn::temporal_unit_name(spec.temporal)
      << ";conv_filters=" << spec.conv_filters
      << ";conv_kernel=" << spec.conv_kernel
      << ";rnn_hidden=" << spec.rnn_hidden
      << ";scalar_hidden=" << spec.scalar_hidden
      << ";merge_hidden=" << spec.merge_hidden
      << ";merge_layers=" << spec.merge_layers
      << ";activation=" << nn::activation_name(spec.activation)
      << ";shared_trunk=" << (spec.shared_trunk ? 1 : 0) << "}";
  return out.str();
}

Fingerprint fingerprint_arch(const nn::ArchSpec& spec) {
  return fingerprint_text(canonical_arch(spec));
}

std::string canonical_train_config(const rl::TrainConfig& c) {
  std::ostringstream out;
  out << "train{epochs=" << c.epochs << ";test_interval=" << c.test_interval
      << ";gamma=";
  out << util::shortest_double(c.gamma);
  out << ";lr=";
  out << util::shortest_double(c.learning_rate);
  out << ";entropy_start=";
  out << util::shortest_double(c.entropy_start);
  out << ";entropy_end=";
  out << util::shortest_double(c.entropy_end);
  out << ";critic_weight=";
  out << util::shortest_double(c.critic_weight);
  out << ";grad_clip=";
  out << util::shortest_double(c.grad_clip);
  out << ";reward_scale=";
  out << util::shortest_double(c.reward_scale);
  out << ";normalize_advantages=" << (c.normalize_advantages ? 1 : 0)
      << ";advantage_clip=";
  out << util::shortest_double(c.advantage_clip);
  out << ";huber_delta=";
  out << util::shortest_double(c.huber_delta);
  out << ";fidelity=" << static_cast<int>(c.fidelity)
      << ";evaluate_checkpoints=" << (c.evaluate_checkpoints ? 1 : 0)
      << ";max_eval_traces=" << c.max_eval_traces
      << ";emulation_final_eval=" << (c.emulation_final_eval ? 1 : 0) << "}";
  return out.str();
}

}  // namespace nada::store

// Content-addressed candidate fingerprints.
//
// A Fingerprint is a 128-bit content hash with three producers:
//
//   * state sources — hashed via the canonical AST serialization
//     (dsl/canonical.h) so formatting- and alpha-equivalent programs
//     collide on purpose; sources that do not parse fall back to a hash of
//     the trimmed raw text (identical broken outputs still deduplicate),
//   * architectures — hashed via a canonical field-by-field encoding of
//     nn::ArchSpec (every field, fixed order, named),
//   * configurations — rl::TrainConfig plus the funnel budgets, so results
//     trained under different protocols never alias in the store.
//
// A candidate in the funnel is a (state, arch) pair; `combine` folds the
// two component fingerprints into the store key.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "nn/arch.h"
#include "rl/trainer.h"

namespace nada::store {

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] bool operator==(const Fingerprint&) const = default;
  [[nodiscard]] bool is_zero() const { return hi == 0 && lo == 0; }

  /// 32 lowercase hex digits, hi first.
  [[nodiscard]] std::string hex() const;

  /// Parses `hex()` output; nullopt on malformed input.
  [[nodiscard]] static std::optional<Fingerprint> from_hex(
      std::string_view text);
};

/// Hashes arbitrary text (two independent seeded FNV-1a streams, each
/// finished with a splitmix64 avalanche so `hi` is uniform enough for
/// range sharding).
[[nodiscard]] Fingerprint fingerprint_text(std::string_view text);

/// Order-sensitive fold of two fingerprints into one.
[[nodiscard]] Fingerprint combine(const Fingerprint& a, const Fingerprint& b);

/// Fingerprint of a state-function source: canonical AST hash when the
/// source parses, raw-text hash (distinct domain) otherwise.
[[nodiscard]] Fingerprint fingerprint_state_source(const std::string& source);

/// Canonical one-line encoding of every ArchSpec field, and its hash.
[[nodiscard]] std::string canonical_arch(const nn::ArchSpec& spec);
[[nodiscard]] Fingerprint fingerprint_arch(const nn::ArchSpec& spec);

/// Canonical one-line encoding of every TrainConfig field (the training
/// half of the store's config digest).
[[nodiscard]] std::string canonical_train_config(const rl::TrainConfig& c);

}  // namespace nada::store

#include "store/mmap_index.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "util/fs.h"
#include "util/strings.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace nada::store {
namespace {

constexpr char kIndexMagic[8] = {'N', 'S', 'B', 'I', 'D', 'X', '1', '\0'};
constexpr std::uint32_t kIndexVersion = 1;

// Fixed 64-byte header ahead of the entry array.
struct IndexHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t reserved0;
  std::uint64_t n_entries;
  std::uint64_t covered_bytes;
  std::uint64_t entries_hash;
  std::uint64_t scope_hash;
  std::uint64_t reserved1;
  std::uint64_t reserved2;
};
static_assert(sizeof(IndexHeader) == 64, "on-disk header layout");

// Word-wise mix hash over the entry array. Entry sizes are 8-byte
// multiples, so this processes whole u64 words — roughly 4x faster than the
// byte-at-a-time FNV, which matters for the open-in-milliseconds budget
// (validating a 1M-entry sidecar hashes 32 MB).
std::uint64_t hash_words(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ bytes;
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, p + i, 8);
    h = util::mix64(h ^ word);
  }
  std::uint64_t tail = 0;
  if (i < bytes) {
    std::memcpy(&tail, p + i, bytes - i);
    h = util::mix64(h ^ tail);
  }
  return h;
}

bool entry_less(const MmapIndex::Entry& a, const MmapIndex::Entry& b) {
  return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
}

}  // namespace

MmapIndex::~MmapIndex() { close(); }

MmapIndex::MmapIndex(MmapIndex&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      entries_(std::exchange(other.entries_, nullptr)),
      n_entries_(std::exchange(other.n_entries_, 0)),
      covered_bytes_(std::exchange(other.covered_bytes_, 0)) {}

MmapIndex& MmapIndex::operator=(MmapIndex&& other) noexcept {
  if (this != &other) {
    close();
    map_ = std::exchange(other.map_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    entries_ = std::exchange(other.entries_, nullptr);
    n_entries_ = std::exchange(other.n_entries_, 0);
    covered_bytes_ = std::exchange(other.covered_bytes_, 0);
  }
  return *this;
}

void MmapIndex::close() {
#if !defined(_WIN32)
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
#else
  delete[] static_cast<char*>(map_);
#endif
  map_ = nullptr;
  map_bytes_ = 0;
  entries_ = nullptr;
  n_entries_ = 0;
  covered_bytes_ = 0;
}

bool MmapIndex::open(const std::string& path, std::uint64_t scope_hash) {
  close();
#if !defined(_WIN32)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0 ||
      static_cast<std::size_t>(st.st_size) < sizeof(IndexHeader)) {
    ::close(fd);
    return false;
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  void* map = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (map == MAP_FAILED) return false;
  map_ = map;
  map_bytes_ = bytes;
#else
  // Portability fallback: plain read into heap memory.
  const auto content = util::read_file_if_exists(path);
  if (!content.has_value() || content->size() < sizeof(IndexHeader)) {
    return false;
  }
  char* buffer = new char[content->size()];
  std::memcpy(buffer, content->data(), content->size());
  map_ = buffer;
  map_bytes_ = content->size();
#endif

  IndexHeader header{};
  std::memcpy(&header, map_, sizeof(header));
  const auto* entries =
      reinterpret_cast<const Entry*>(static_cast<const char*>(map_) +
                                     sizeof(IndexHeader));
  const bool valid =
      std::memcmp(header.magic, kIndexMagic, sizeof(kIndexMagic)) == 0 &&
      header.version == kIndexVersion && header.scope_hash == scope_hash &&
      map_bytes_ == sizeof(IndexHeader) + header.n_entries * sizeof(Entry) &&
      header.entries_hash ==
          hash_words(entries, header.n_entries * sizeof(Entry)) &&
      std::is_sorted(entries, entries + header.n_entries, entry_less);
  if (!valid) {
    close();
    return false;
  }
  entries_ = entries;
  n_entries_ = static_cast<std::size_t>(header.n_entries);
  covered_bytes_ = header.covered_bytes;
  return true;
}

std::optional<MmapIndex::Entry> MmapIndex::find(const Fingerprint& fp) const {
  if (entries_ == nullptr) return std::nullopt;
  Entry probe;
  probe.hi = fp.hi;
  probe.lo = fp.lo;
  const Entry* end = entries_ + n_entries_;
  const Entry* it = std::lower_bound(entries_, end, probe, entry_less);
  if (it == end || it->hi != fp.hi || it->lo != fp.lo) return std::nullopt;
  return *it;
}

void MmapIndex::write(const std::string& path,
                      const std::vector<Entry>& entries,
                      std::uint64_t covered_bytes, std::uint64_t scope_hash) {
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (!entry_less(entries[i - 1], entries[i])) {
      throw std::invalid_argument(
          "MmapIndex::write: entries must be sorted and unique");
    }
  }
  IndexHeader header{};
  std::memcpy(header.magic, kIndexMagic, sizeof(kIndexMagic));
  header.version = kIndexVersion;
  header.n_entries = entries.size();
  header.covered_bytes = covered_bytes;
  header.entries_hash =
      hash_words(entries.data(), entries.size() * sizeof(Entry));
  header.scope_hash = scope_hash;

  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("MmapIndex::write: cannot open " + tmp_path);
    }
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(entries.data()),
              static_cast<std::streamsize>(entries.size() * sizeof(Entry)));
    out.flush();
    if (!out) {
      throw std::runtime_error("MmapIndex::write: write to " + tmp_path +
                               " failed");
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("MmapIndex::write: rename " + tmp_path + " -> " +
                             path + " failed");
  }
}

std::uint64_t MmapIndex::scope_hash(const std::string& env,
                                    const std::string& digest) {
  return util::fnv1a64(env + "\n" + digest, 0x1d9a7uLL);
}

}  // namespace nada::store

// Memory-mapped fingerprint -> journal-offset index for binary stores.
//
// The sidecar (`<journal>.idx`) makes opening a million-record journal
// O(index) instead of O(records): a fixed header plus a sorted array of
// 32-byte entries (fingerprint hi/lo, byte offset of the record's frame in
// the journal, furthest stage journaled). CandidateStore mmaps it
// read-only, binary-searches lookups, and reads exactly one frame from the
// journal per hit.
//
// The sidecar is always rebuildable from the journal — it is a cache, not
// a source of truth. The header carries everything needed to detect a
// stale or foreign sidecar without touching the journal's records:
//
//   * `covered_bytes` — the journal length the entries describe. Journal
//     longer: the index is merely behind; only the tail needs scanning.
//     Journal shorter: the journal was rewritten (compaction, manual
//     surgery); full rebuild.
//   * `scope_hash` — hash of the owning scope (env + config digest), so a
//     store never trusts entries built under someone else's scope filter.
//   * `entries_hash` — word-wise mix hash over the entry bytes; a corrupt
//     or truncated sidecar fails validation and is rebuilt.
//
// Writes go through the atomic tmp+rename path, so readers never map a
// half-written sidecar.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "store/fingerprint.h"

namespace nada::store {

class MmapIndex {
 public:
  struct Entry {
    std::uint64_t hi = 0;      ///< Fingerprint::hi
    std::uint64_t lo = 0;      ///< Fingerprint::lo
    std::uint64_t offset = 0;  ///< frame start in the journal (>= magic)
    std::uint32_t stage = 0;   ///< furthest store::Stage journaled
    std::uint32_t reserved = 0;
  };
  static_assert(sizeof(Entry) == 32, "on-disk entry layout");

  MmapIndex() = default;
  ~MmapIndex();
  MmapIndex(const MmapIndex&) = delete;
  MmapIndex& operator=(const MmapIndex&) = delete;
  MmapIndex(MmapIndex&& other) noexcept;
  MmapIndex& operator=(MmapIndex&& other) noexcept;

  /// Maps and validates the sidecar at `path`. Returns false — leaving the
  /// index closed — when the file is missing, malformed, fails its entry
  /// checksum, is unsorted, or was built under a different scope hash.
  bool open(const std::string& path, std::uint64_t scope_hash);

  void close();
  [[nodiscard]] bool is_open() const { return entries_ != nullptr; }

  /// Binary search by (hi, lo).
  [[nodiscard]] std::optional<Entry> find(const Fingerprint& fp) const;

  [[nodiscard]] std::size_t size() const { return n_entries_; }
  /// Journal byte length the entries describe.
  [[nodiscard]] std::uint64_t covered_bytes() const { return covered_bytes_; }
  /// Entry array view (for merging with in-memory deltas).
  [[nodiscard]] const Entry* entries() const { return entries_; }

  /// Writes a sidecar atomically (tmp + rename). `entries` must be sorted
  /// ascending by (hi, lo) and unique; throws std::invalid_argument when
  /// not, std::runtime_error on I/O failure.
  static void write(const std::string& path,
                    const std::vector<Entry>& entries,
                    std::uint64_t covered_bytes, std::uint64_t scope_hash);

  /// Hash folding a store scope into the header (env + '\n' + digest).
  [[nodiscard]] static std::uint64_t scope_hash(const std::string& env,
                                                const std::string& digest);

 private:
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  const Entry* entries_ = nullptr;
  std::size_t n_entries_ = 0;
  std::uint64_t covered_bytes_ = 0;
};

}  // namespace nada::store

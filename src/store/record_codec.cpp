#include "store/record_codec.h"

#include <cstring>
#include <stdexcept>

#include "util/json.h"
#include "util/strings.h"

namespace nada::store {
namespace {

// ---- little-endian byte IO -------------------------------------------------

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void append_f64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  append_u64(out, bits);
}

void append_str(std::string& out, const std::string& s) {
  append_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void append_doubles(std::string& out, const std::vector<double>& v) {
  append_u32(out, static_cast<std::uint32_t>(v.size()));
  for (double d : v) append_f64(out, d);
}

/// Bounds-checked cursor over a frame body. Every read method returns
/// false (instead of throwing) on overrun — a corrupt frame must decode to
/// nullopt, not an exception, on the store's recovery paths.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > data_.size()) return false;
    v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, 8);
    return true;
  }
  bool str(std::string& v) {
    std::uint32_t len = 0;
    if (!u32(len) || pos_ + len > data_.size()) return false;
    v.assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }
  bool doubles(std::vector<double>& v) {
    std::uint32_t count = 0;
    if (!u32(count)) return false;
    if (pos_ + static_cast<std::size_t>(count) * 8 > data_.size()) {
      return false;
    }
    v.resize(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      if (!f64(v[i])) return false;
    }
    return true;
  }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// Record flags (body byte 17). Unknown bits reject the frame: a flipped
// flag bit must read as corruption, not as silently-dropped data.
constexpr std::uint8_t kFlagHasArch = 1u << 0;
constexpr std::uint8_t kFlagCompiled = 1u << 1;
constexpr std::uint8_t kFlagNormalized = 1u << 2;
constexpr std::uint8_t kFlagEarlyProbed = 1u << 3;
constexpr std::uint8_t kFlagFullyTrained = 1u << 4;
constexpr std::uint8_t kKnownFlags =
    kFlagHasArch | kFlagCompiled | kFlagNormalized | kFlagEarlyProbed |
    kFlagFullyTrained;

constexpr std::uint8_t kNumTemporalUnits = 4;  // kConv1D..kDense
constexpr std::uint8_t kNumActivations = 6;    // kLinear..kElu

std::string encode_body(const OutcomeRecord& record, const StoreScope& scope) {
  std::string body;
  body.reserve(128 + record.source.size() +
               8 * (record.early_rewards.size() + record.curve_epochs.size() +
                    record.median_curve.size()));
  append_u64(body, record.fingerprint.hi);
  append_u64(body, record.fingerprint.lo);
  body.push_back(static_cast<char>(static_cast<int>(record.stage)));
  std::uint8_t flags = 0;
  if (record.arch.has_value()) flags |= kFlagHasArch;
  if (record.compiled) flags |= kFlagCompiled;
  if (record.normalized) flags |= kFlagNormalized;
  if (record.early_probed) flags |= kFlagEarlyProbed;
  if (record.fully_trained) flags |= kFlagFullyTrained;
  body.push_back(static_cast<char>(flags));
  append_str(body, scope.env);
  append_str(body, scope.config_digest);
  append_str(body, record.id);
  append_str(body, record.source);
  append_str(body, record.compile_error);
  append_str(body, record.normalization_error);
  if (record.arch.has_value()) {
    const nn::ArchSpec& arch = *record.arch;
    body.push_back(static_cast<char>(static_cast<int>(arch.temporal)));
    body.push_back(static_cast<char>(static_cast<int>(arch.activation)));
    body.push_back(static_cast<char>(arch.shared_trunk ? 1 : 0));
    append_u32(body, static_cast<std::uint32_t>(arch.conv_filters));
    append_u32(body, static_cast<std::uint32_t>(arch.conv_kernel));
    append_u32(body, static_cast<std::uint32_t>(arch.rnn_hidden));
    append_u32(body, static_cast<std::uint32_t>(arch.scalar_hidden));
    append_u32(body, static_cast<std::uint32_t>(arch.merge_hidden));
    append_u32(body, static_cast<std::uint32_t>(arch.merge_layers));
  }
  append_f64(body, record.test_score);
  append_f64(body, record.emulation_score);
  append_doubles(body, record.early_rewards);
  append_doubles(body, record.curve_epochs);
  append_doubles(body, record.median_curve);
  return body;
}

std::optional<ScopedRecord> decode_body(std::string_view body) {
  Reader in(body);
  ScopedRecord out;
  OutcomeRecord& record = out.record;
  std::uint8_t stage = 0, flags = 0;
  if (!in.u64(record.fingerprint.hi) || !in.u64(record.fingerprint.lo) ||
      !in.u8(stage) || !in.u8(flags)) {
    return std::nullopt;
  }
  if (stage > 2 || (flags & ~kKnownFlags) != 0) return std::nullopt;
  record.stage = static_cast<Stage>(stage);
  record.compiled = (flags & kFlagCompiled) != 0;
  record.normalized = (flags & kFlagNormalized) != 0;
  record.early_probed = (flags & kFlagEarlyProbed) != 0;
  record.fully_trained = (flags & kFlagFullyTrained) != 0;
  if (!in.str(out.scope.env) || !in.str(out.scope.config_digest) ||
      !in.str(record.id) || !in.str(record.source) ||
      !in.str(record.compile_error) || !in.str(record.normalization_error)) {
    return std::nullopt;
  }
  if ((flags & kFlagHasArch) != 0) {
    std::uint8_t temporal = 0, activation = 0, shared = 0;
    std::uint32_t conv_filters = 0, conv_kernel = 0, rnn_hidden = 0;
    std::uint32_t scalar_hidden = 0, merge_hidden = 0, merge_layers = 0;
    if (!in.u8(temporal) || !in.u8(activation) || !in.u8(shared) ||
        !in.u32(conv_filters) || !in.u32(conv_kernel) || !in.u32(rnn_hidden) ||
        !in.u32(scalar_hidden) || !in.u32(merge_hidden) ||
        !in.u32(merge_layers)) {
      return std::nullopt;
    }
    if (temporal >= kNumTemporalUnits || activation >= kNumActivations ||
        shared > 1) {
      return std::nullopt;
    }
    nn::ArchSpec arch;
    arch.temporal = static_cast<nn::TemporalUnit>(temporal);
    arch.activation = static_cast<nn::Activation>(activation);
    arch.shared_trunk = shared != 0;
    arch.conv_filters = conv_filters;
    arch.conv_kernel = conv_kernel;
    arch.rnn_hidden = rnn_hidden;
    arch.scalar_hidden = scalar_hidden;
    arch.merge_hidden = merge_hidden;
    arch.merge_layers = merge_layers;
    record.arch = arch;
  }
  if (!in.f64(record.test_score) || !in.f64(record.emulation_score) ||
      !in.doubles(record.early_rewards) || !in.doubles(record.curve_epochs) ||
      !in.doubles(record.median_curve)) {
    return std::nullopt;
  }
  // Trailing bytes mean the length field and the body disagree — corrupt.
  if (!in.exhausted()) return std::nullopt;
  return out;
}

/// Validates frame header + checksum and returns the body view.
std::optional<std::string_view> frame_body(std::string_view frame) {
  if (frame.size() < kFrameHeaderBytes) return std::nullopt;
  Reader header(frame.substr(0, kFrameHeaderBytes));
  std::uint32_t len = 0;
  std::uint64_t checksum = 0;
  header.u32(len);
  header.u64(checksum);
  if (len > kMaxFrameBodyBytes ||
      frame.size() != kFrameHeaderBytes + static_cast<std::size_t>(len)) {
    return std::nullopt;
  }
  const std::string_view body = frame.substr(kFrameHeaderBytes);
  if (util::fnv1a64(body) != checksum) return std::nullopt;
  return body;
}

// ---- JSONL helpers (moved from candidate_store.cpp) ------------------------

std::optional<nn::TemporalUnit> temporal_from_name(const std::string& name) {
  for (const auto u : {nn::TemporalUnit::kConv1D, nn::TemporalUnit::kRnn,
                       nn::TemporalUnit::kLstm, nn::TemporalUnit::kDense}) {
    if (name == nn::temporal_unit_name(u)) return u;
  }
  return std::nullopt;
}

std::optional<nn::Activation> activation_from_name(const std::string& name) {
  for (const auto a :
       {nn::Activation::kLinear, nn::Activation::kRelu,
        nn::Activation::kLeakyRelu, nn::Activation::kTanh,
        nn::Activation::kSigmoid, nn::Activation::kElu}) {
    if (name == nn::activation_name(a)) return a;
  }
  return std::nullopt;
}

util::JsonValue encode_arch(const nn::ArchSpec& spec) {
  util::JsonValue out = util::JsonValue::object();
  out.set("temporal",
          util::JsonValue::string(nn::temporal_unit_name(spec.temporal)));
  out.set("conv_filters",
          util::JsonValue::number(static_cast<double>(spec.conv_filters)));
  out.set("conv_kernel",
          util::JsonValue::number(static_cast<double>(spec.conv_kernel)));
  out.set("rnn_hidden",
          util::JsonValue::number(static_cast<double>(spec.rnn_hidden)));
  out.set("scalar_hidden",
          util::JsonValue::number(static_cast<double>(spec.scalar_hidden)));
  out.set("merge_hidden",
          util::JsonValue::number(static_cast<double>(spec.merge_hidden)));
  out.set("merge_layers",
          util::JsonValue::number(static_cast<double>(spec.merge_layers)));
  out.set("activation",
          util::JsonValue::string(nn::activation_name(spec.activation)));
  out.set("shared_trunk", util::JsonValue::boolean(spec.shared_trunk));
  return out;
}

std::optional<nn::ArchSpec> decode_arch(const util::JsonValue& value) {
  if (value.type() != util::JsonValue::Type::kObject) return std::nullopt;
  nn::ArchSpec spec;
  const auto temporal = temporal_from_name(value.get("temporal").as_string());
  const auto activation =
      activation_from_name(value.get("activation").as_string());
  if (!temporal.has_value() || !activation.has_value()) return std::nullopt;
  spec.temporal = *temporal;
  spec.activation = *activation;
  const auto as_size = [&value](const char* key) {
    return static_cast<std::size_t>(value.get(key).as_number());
  };
  spec.conv_filters = as_size("conv_filters");
  spec.conv_kernel = as_size("conv_kernel");
  spec.rnn_hidden = as_size("rnn_hidden");
  spec.scalar_hidden = as_size("scalar_hidden");
  spec.merge_hidden = as_size("merge_hidden");
  spec.merge_layers = as_size("merge_layers");
  spec.shared_trunk = value.get("shared_trunk").as_bool();
  return spec;
}

}  // namespace

// ---- binary codec ----------------------------------------------------------

std::string encode_record(const OutcomeRecord& record,
                          const StoreScope& scope) {
  const std::string body = encode_body(record, scope);
  if (body.size() > kMaxFrameBodyBytes) {
    throw std::invalid_argument("encode_record: record exceeds the " +
                                std::to_string(kMaxFrameBodyBytes) +
                                "-byte frame limit");
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  append_u32(frame, static_cast<std::uint32_t>(body.size()));
  append_u64(frame, util::fnv1a64(body));
  frame.append(body);
  return frame;
}

std::optional<OutcomeRecord> decode_record(std::string_view frame,
                                           const StoreScope& scope) {
  auto scoped = decode_record_any(frame);
  if (!scoped.has_value() || !(scoped->scope == scope)) return std::nullopt;
  return std::move(scoped->record);
}

std::optional<ScopedRecord> decode_record_any(std::string_view frame) {
  const auto body = frame_body(frame);
  if (!body.has_value()) return std::nullopt;
  auto scoped = decode_body(*body);
  if (scoped.has_value() && scoped->record.fingerprint.is_zero()) {
    return std::nullopt;  // a record that could never have been put()
  }
  return scoped;
}

ScanStats scan_binary_journal(
    std::string_view content,
    const std::function<void(std::uint64_t, std::string_view)>& frame_fn) {
  ScanStats stats;
  std::uint64_t offset = 0;
  while (offset < content.size()) {
    const std::string_view rest = content.substr(offset);
    if (rest.size() < kFrameHeaderBytes) {
      stats.torn_tail = true;
      break;
    }
    Reader header(rest.substr(0, kFrameHeaderBytes));
    std::uint32_t len = 0;
    std::uint64_t checksum = 0;
    header.u32(len);
    header.u64(checksum);
    if (len > kMaxFrameBodyBytes) {
      // A corrupt length field loses frame sync: everything from here on
      // is undecodable, exactly like a torn tail.
      stats.torn_tail = true;
      break;
    }
    const std::uint64_t frame_bytes =
        kFrameHeaderBytes + static_cast<std::uint64_t>(len);
    if (rest.size() < frame_bytes) {
      stats.torn_tail = true;  // partial final append
      break;
    }
    const std::string_view frame = rest.substr(0, frame_bytes);
    if (util::fnv1a64(frame.substr(kFrameHeaderBytes)) == checksum) {
      ++stats.frames;
      if (frame_fn) frame_fn(offset, frame);
    } else {
      ++stats.corrupt_frames;
    }
    offset += frame_bytes;
    stats.clean_end = offset;
  }
  return stats;
}

// ---- JSONL codec -----------------------------------------------------------

std::string encode_jsonl_line(const OutcomeRecord& record,
                              const StoreScope& scope) {
  util::JsonValue out = util::JsonValue::object();
  out.set("fp", util::JsonValue::string(record.fingerprint.hex()));
  out.set("env", util::JsonValue::string(scope.env));
  out.set("digest", util::JsonValue::string(scope.config_digest));
  out.set("stage", util::JsonValue::number(
                       static_cast<double>(static_cast<int>(record.stage))));
  out.set("id", util::JsonValue::string(record.id));
  out.set("source", util::JsonValue::string(record.source));
  if (record.arch.has_value()) out.set("arch", encode_arch(*record.arch));
  out.set("compiled", util::JsonValue::boolean(record.compiled));
  out.set("compile_error", util::JsonValue::string(record.compile_error));
  out.set("normalized", util::JsonValue::boolean(record.normalized));
  out.set("normalization_error",
          util::JsonValue::string(record.normalization_error));
  out.set("early_probed", util::JsonValue::boolean(record.early_probed));
  out.set("early_rewards", util::json_doubles(record.early_rewards));
  out.set("fully_trained", util::JsonValue::boolean(record.fully_trained));
  out.set("test_score", util::JsonValue::number(record.test_score));
  out.set("emulation_score", util::JsonValue::number(record.emulation_score));
  out.set("curve_epochs", util::json_doubles(record.curve_epochs));
  out.set("median_curve", util::json_doubles(record.median_curve));
  return out.dump();
}

std::optional<OutcomeRecord> decode_jsonl_line(const std::string& line,
                                               const StoreScope& scope) {
  auto scoped = decode_jsonl_line_any(line);
  if (!scoped.has_value() || !(scoped->scope == scope)) return std::nullopt;
  return std::move(scoped->record);
}

std::optional<ScopedRecord> decode_jsonl_line_any(const std::string& line) {
  util::JsonValue value;
  try {
    value = util::JsonValue::parse(line);
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
  if (value.type() != util::JsonValue::Type::kObject) return std::nullopt;
  ScopedRecord out;
  out.scope.env = value.get("env").as_string();
  out.scope.config_digest = value.get("digest").as_string();
  if (out.scope.env.empty() || out.scope.config_digest.empty()) {
    return std::nullopt;
  }
  const auto fp = Fingerprint::from_hex(value.get("fp").as_string());
  if (!fp.has_value()) return std::nullopt;
  const double stage_raw = value.get("stage").as_number(-1.0);
  if (stage_raw < 0.0 || stage_raw > 2.0) return std::nullopt;

  OutcomeRecord& record = out.record;
  record.fingerprint = *fp;
  record.stage = static_cast<Stage>(static_cast<int>(stage_raw));
  record.id = value.get("id").as_string();
  record.source = value.get("source").as_string();
  if (value.has("arch")) {
    record.arch = decode_arch(value.get("arch"));
    if (!record.arch.has_value()) return std::nullopt;
  }
  record.compiled = value.get("compiled").as_bool();
  record.compile_error = value.get("compile_error").as_string();
  record.normalized = value.get("normalized").as_bool();
  record.normalization_error = value.get("normalization_error").as_string();
  record.early_probed = value.get("early_probed").as_bool();
  record.early_rewards = util::json_to_doubles(value.get("early_rewards"));
  record.fully_trained = value.get("fully_trained").as_bool();
  record.test_score = value.get("test_score").as_number(-1e9);
  record.emulation_score = value.get("emulation_score").as_number();
  record.curve_epochs = util::json_to_doubles(value.get("curve_epochs"));
  record.median_curve = util::json_to_doubles(value.get("median_curve"));
  return out;
}

}  // namespace nada::store

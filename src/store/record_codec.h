// Record codecs for the candidate store journals.
//
// Two wire formats encode the same store::OutcomeRecord + store::StoreScope
// pair (see docs/STORE_FORMAT.md):
//
//   * JSONL — one JSON object per newline-terminated line, human-greppable,
//     the historical default. Key order is canonical (sorted), so
//     decode -> re-encode reproduces a store-written line byte for byte.
//   * binary (".nsb") — a length-prefixed, checksummed frame per record:
//     `u32 body_len | u64 fnv1a64(body) | body`, all little-endian, after
//     an 8-byte file magic. Fixed field order, strings and double vectors
//     length-prefixed, doubles as raw IEEE-754 bit patterns (non-finite
//     values round-trip exactly, unlike JSON). The frame offsets are what
//     the mmap'd fingerprint index (store/mmap_index.h) points at, so a
//     lookup deserializes exactly one frame.
//
// Both decoders exist in a scope-filtered flavor (mirrors the store's
// foreign-line skipping) and a scope-preserving "_any" flavor for format
// converters, which must migrate mixed-scope journals losslessly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "store/candidate_store.h"

namespace nada::store {

/// A record paired with the scope its journal line carried. Converters use
/// this to migrate journals without knowing (or unifying) their scopes.
struct ScopedRecord {
  StoreScope scope;
  OutcomeRecord record;
};

// ---- binary journal framing ------------------------------------------------

/// 8-byte magic opening every binary (.nsb) journal.
inline constexpr std::string_view kBinaryJournalMagic = "NSBJRNL1";
/// Frame header: u32 body length + u64 FNV-1a body checksum, little-endian.
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// A declared body length above this is treated as a corrupt length field
/// (lost frame sync), not a real frame.
inline constexpr std::uint32_t kMaxFrameBodyBytes = 64u << 20;

/// Encodes one record as a complete binary frame (header + body).
[[nodiscard]] std::string encode_record(const OutcomeRecord& record,
                                        const StoreScope& scope);

/// Decodes one complete frame (header + body). nullopt when the frame is
/// torn, fails its checksum, malforms, or carries a different scope — the
/// binary analogue of CandidateStore::decode_line.
[[nodiscard]] std::optional<OutcomeRecord> decode_record(
    std::string_view frame, const StoreScope& scope);

/// Scope-preserving decode; nullopt only for torn/corrupt frames.
[[nodiscard]] std::optional<ScopedRecord> decode_record_any(
    std::string_view frame);

/// Result of walking a journal buffer frame by frame.
struct ScanStats {
  /// Offset (relative to the scanned buffer) where intact framing ends.
  /// Bytes past this point are a torn tail.
  std::uint64_t clean_end = 0;
  std::size_t frames = 0;          ///< checksum-valid frames delivered
  std::size_t corrupt_frames = 0;  ///< checksum-mismatch frames skipped
  bool torn_tail = false;          ///< trailing bytes formed no frame
};

/// Walks `content` — journal bytes AFTER the 8-byte magic — and calls
/// `frame_fn(offset, frame)` for every checksum-valid frame, where `offset`
/// is relative to the start of `content` and `frame` spans header + body.
/// Checksum-mismatch frames with an intact, sane length are skipped and
/// counted (framing survives a flipped body byte); an impossible length or
/// a trailing partial frame ends the scan as a torn tail.
ScanStats scan_binary_journal(
    std::string_view content,
    const std::function<void(std::uint64_t, std::string_view)>& frame_fn);

// ---- JSONL codec (shared by CandidateStore and the converters) -------------

[[nodiscard]] std::string encode_jsonl_line(const OutcomeRecord& record,
                                            const StoreScope& scope);
[[nodiscard]] std::optional<OutcomeRecord> decode_jsonl_line(
    const std::string& line, const StoreScope& scope);
[[nodiscard]] std::optional<ScopedRecord> decode_jsonl_line_any(
    const std::string& line);

}  // namespace nada::store

#include "store/shard.h"

#include <stdexcept>
#include <string_view>
#include <utility>

#include "store/record_codec.h"
#include "util/fs.h"
#include "util/strings.h"

namespace nada::store {

ShardPlan::ShardPlan(std::size_t num_shards) : num_shards_(num_shards) {
  if (num_shards == 0) {
    throw std::invalid_argument("ShardPlan: zero shards");
  }
}

std::size_t ShardPlan::shard_of(const Fingerprint& fp) const {
  // Multiply-shift range partition: monotone in fp.hi, so each shard owns
  // one contiguous range, and exact (no modulo bias at the boundaries).
  const auto product = static_cast<unsigned __int128>(fp.hi) *
                       static_cast<unsigned __int128>(num_shards_);
  return static_cast<std::size_t>(product >> 64);
}

ShardPlan::Range ShardPlan::range(std::size_t shard) const {
  if (shard >= num_shards_) {
    throw std::out_of_range("ShardPlan::range: shard index out of range");
  }
  // Smallest hi with shard_of == shard is ceil(shard * 2^64 / n).
  const auto lower_bound = [this](std::size_t s) -> std::uint64_t {
    const auto numerator = static_cast<unsigned __int128>(s) << 64;
    const auto n = static_cast<unsigned __int128>(num_shards_);
    return static_cast<std::uint64_t>((numerator + n - 1) / n);
  };
  Range r;
  r.lo = lower_bound(shard);
  r.hi = shard + 1 == num_shards_ ? ~std::uint64_t{0}
                                  : lower_bound(shard + 1) - 1;
  return r;
}

std::vector<std::vector<std::size_t>> ShardPlan::partition(
    std::span<const Fingerprint> fingerprints) const {
  std::vector<std::vector<std::size_t>> shards(num_shards_);
  for (std::size_t i = 0; i < fingerprints.size(); ++i) {
    shards[shard_of(fingerprints[i])].push_back(i);
  }
  return shards;
}

std::pair<ShardPlan::Range, ShardPlan::Range> split_range(
    ShardPlan::Range parent, std::uint64_t boundary) {
  if (boundary <= parent.lo || boundary > parent.hi) {
    throw std::invalid_argument(
        "split_range: boundary " + std::to_string(boundary) +
        " outside (" + std::to_string(parent.lo) + ", " +
        std::to_string(parent.hi) + "]");
  }
  return {ShardPlan::Range{parent.lo, boundary - 1},
          ShardPlan::Range{boundary, parent.hi}};
}

std::pair<ShardPlan::Range, ShardPlan::Range> split_midpoint(
    ShardPlan::Range parent) {
  if (!parent.splittable()) {
    throw std::invalid_argument(
        "split_midpoint: single-value range [" + std::to_string(parent.lo) +
        ", " + std::to_string(parent.hi) + "] is not splittable");
  }
  // lo + ceil(width/2) without overflow: width()-1 == hi-lo fits, and the
  // midpoint lands strictly inside (lo, hi] for every splittable range.
  return split_range(parent, parent.lo + (parent.hi - parent.lo) / 2 + 1);
}

std::size_t merge_shard_files(std::span<const std::string> shard_paths,
                              CandidateStore& dest) {
  std::size_t accepted = 0;
  for (const auto& path : shard_paths) {
    // Read-only decode: a missing shard journal is a worker that never
    // reported — surface it instead of silently merging nothing (and never
    // open merge sources for append). Torn/foreign records are skipped, as
    // on any journal load. Each source's format comes from its own
    // extension, so mixed-format shard sets merge fine.
    const std::string content = util::read_file(path);
    if (format_for_path(path) == StoreFormat::kBinary) {
      std::string_view view(content);
      if (view.size() < kBinaryJournalMagic.size() ||
          view.substr(0, kBinaryJournalMagic.size()) != kBinaryJournalMagic) {
        throw std::runtime_error("merge_shard_files: " + path +
                                 " is not a binary store journal");
      }
      scan_binary_journal(view.substr(kBinaryJournalMagic.size()),
                          [&](std::uint64_t, std::string_view frame) {
                            const auto record =
                                decode_record(frame, dest.scope());
                            if (record.has_value() && dest.put(*record)) {
                              ++accepted;
                            }
                          });
      continue;
    }
    for (const auto& line : util::split(content, '\n')) {
      if (util::trim(line).empty()) continue;
      const auto record = CandidateStore::decode_line(line, dest.scope());
      if (record.has_value() && dest.put(*record)) ++accepted;
    }
  }
  return accepted;
}

std::size_t merge_existing_shard_files(std::span<const std::string> paths,
                                       CandidateStore& dest,
                                       std::size_t* missing) {
  std::vector<std::string> present;
  present.reserve(paths.size());
  std::size_t absent = 0;
  for (const auto& path : paths) {
    if (util::file_exists(path)) {
      present.push_back(path);
    } else {
      ++absent;
    }
  }
  if (missing != nullptr) *missing = absent;
  return merge_shard_files(present, dest);
}

}  // namespace nada::store

// Fingerprint-range shard planning for multi-worker searches.
//
// A ShardPlan splits the 64-bit fingerprint `hi` space into N contiguous,
// equal-width ranges. Every worker runs the same generator stream, keeps
// only the candidates whose fingerprint falls in its range, journals into
// its own store file, and a final merge unions the shard stores. Because
// assignment is by content hash, the partition is stable across runs,
// machines, and candidate orderings — the properties systematic coverage
// tracking needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "store/candidate_store.h"
#include "store/fingerprint.h"

namespace nada::store {

class ShardPlan {
 public:
  /// Splits the fingerprint space across `num_shards` workers (>= 1).
  explicit ShardPlan(std::size_t num_shards);

  [[nodiscard]] std::size_t num_shards() const { return num_shards_; }

  /// Which shard owns a fingerprint. In [0, num_shards).
  [[nodiscard]] std::size_t shard_of(const Fingerprint& fp) const;

  /// Inclusive bounds [lo, hi] on Fingerprint::hi for shard `i`. Ranges
  /// are contiguous and cover the whole 64-bit space exactly once.
  struct Range {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    [[nodiscard]] bool operator==(const Range&) const = default;
    /// Membership is on Fingerprint::hi, matching shard_of.
    [[nodiscard]] bool contains(const Fingerprint& fp) const {
      return fp.hi >= lo && fp.hi <= hi;
    }
    /// Number of distinct hi values covered; 0 means the full 2^64 space
    /// (the count does not fit in 64 bits).
    [[nodiscard]] std::uint64_t width() const { return hi - lo + 1; }
    /// A single-hi-value range cannot be split further.
    [[nodiscard]] bool splittable() const { return lo < hi; }
  };
  [[nodiscard]] Range range(std::size_t shard) const;

  /// Partitions indices of `fingerprints` by owning shard (outer size ==
  /// num_shards; each inner vector preserves input order).
  [[nodiscard]] std::vector<std::vector<std::size_t>> partition(
      std::span<const Fingerprint> fingerprints) const;

 private:
  std::size_t num_shards_;
};

/// Splits `parent` at `boundary` into ([lo, boundary-1], [boundary, hi]).
/// The two halves partition the parent exactly: no gap, no overlap, and the
/// union of fingerprints they contain is the parent's set bit-for-bit.
/// Requires parent.lo < boundary <= parent.hi (throws std::invalid_argument
/// otherwise — a boundary at parent.lo would make the left half empty, and
/// a single-hi-value range is not splittable).
[[nodiscard]] std::pair<ShardPlan::Range, ShardPlan::Range> split_range(
    ShardPlan::Range parent, std::uint64_t boundary);

/// split_range at the midpoint: the left half gets ceil(width/2) of the hi
/// values. Requires parent.splittable().
[[nodiscard]] std::pair<ShardPlan::Range, ShardPlan::Range> split_midpoint(
    ShardPlan::Range parent);

/// Reads each shard journal (read-only; throws std::runtime_error when a
/// path is missing) and unions its records into `dest` under dest's scope.
/// Each source's format follows its own extension, so JSONL and binary
/// shard journals can merge into one destination of either format.
/// Returns the number of records accepted into dest.
std::size_t merge_shard_files(std::span<const std::string> shard_paths,
                              CandidateStore& dest);

/// Crash-tolerant variant for supervised runs: journals of workers that
/// died before their first append may simply not exist, and that is fine —
/// whatever the merged store misses, the driver's funnel pass recomputes
/// (bit-identically, since per-candidate seeds are fingerprint-derived).
/// Missing paths are skipped and counted in `*missing` when non-null;
/// existing journals merge exactly as merge_shard_files.
std::size_t merge_existing_shard_files(std::span<const std::string> paths,
                                       CandidateStore& dest,
                                       std::size_t* missing = nullptr);

}  // namespace nada::store

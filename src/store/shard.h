// Fingerprint-range shard planning for multi-worker searches.
//
// A ShardPlan splits the 64-bit fingerprint `hi` space into N contiguous,
// equal-width ranges. Every worker runs the same generator stream, keeps
// only the candidates whose fingerprint falls in its range, journals into
// its own store file, and a final merge unions the shard stores. Because
// assignment is by content hash, the partition is stable across runs,
// machines, and candidate orderings — the properties systematic coverage
// tracking needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "store/candidate_store.h"
#include "store/fingerprint.h"

namespace nada::store {

class ShardPlan {
 public:
  /// Splits the fingerprint space across `num_shards` workers (>= 1).
  explicit ShardPlan(std::size_t num_shards);

  [[nodiscard]] std::size_t num_shards() const { return num_shards_; }

  /// Which shard owns a fingerprint. In [0, num_shards).
  [[nodiscard]] std::size_t shard_of(const Fingerprint& fp) const;

  /// Inclusive bounds [lo, hi] on Fingerprint::hi for shard `i`. Ranges
  /// are contiguous and cover the whole 64-bit space exactly once.
  struct Range {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
  };
  [[nodiscard]] Range range(std::size_t shard) const;

  /// Partitions indices of `fingerprints` by owning shard (outer size ==
  /// num_shards; each inner vector preserves input order).
  [[nodiscard]] std::vector<std::vector<std::size_t>> partition(
      std::span<const Fingerprint> fingerprints) const;

 private:
  std::size_t num_shards_;
};

/// Reads each shard journal (read-only; throws std::runtime_error when a
/// path is missing) and unions its records into `dest` under dest's scope.
/// Returns the number of records accepted into dest.
std::size_t merge_shard_files(std::span<const std::string> shard_paths,
                              CandidateStore& dest);

}  // namespace nada::store

#include "svc/lease_log.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>
#include <utility>

#include "obs/status.h"
#include "util/fs.h"
#include "util/strings.h"

namespace nada::svc {

std::string hex_u64(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

std::uint64_t parse_hex_u64(const std::string& text) {
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value, 16);
  if (ec != std::errc{} || ptr != last || text.empty() || text.size() > 16) {
    throw std::runtime_error("parse_hex_u64: malformed hex '" + text + "'");
  }
  return value;
}

namespace {

util::JsonValue base_line(const std::string& event) {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("event", util::JsonValue::string(event));
  doc.set("ts_unix", util::JsonValue::number(obs::unix_now()));
  return doc;
}

/// Decodes the lease payload of a grant line; throws on malformed fields
/// (the caller treats the line as torn).
Lease decode_grant(const util::JsonValue& doc) {
  Lease lease;
  lease.id = static_cast<std::uint64_t>(doc.get("lease").as_number());
  lease.range.lo = parse_hex_u64(doc.get("lo").as_string());
  lease.range.hi = parse_hex_u64(doc.get("hi").as_string());
  lease.journal_path = doc.get("journal").as_string();
  lease.status_path = doc.get("status").as_string();
  lease.attempt = static_cast<std::size_t>(doc.get("attempt").as_number());
  lease.parent = static_cast<std::uint64_t>(doc.get("parent").as_number());
  return lease;
}

}  // namespace

LeaseLog::LeaseLog(std::string path) : path_(std::move(path)) {
  const std::string parent = util::parent_directory(path_);
  if (!parent.empty()) util::ensure_directories(parent);
  // Newline-terminate a torn tail (supervisor killed mid-append) so the
  // next event starts on its own line; the fragment itself stays in the
  // file and recovery skips it — same policy as the candidate store.
  const auto existing = util::read_file_if_exists(path_);
  const bool torn =
      existing.has_value() && !existing->empty() && existing->back() != '\n';
  out_.open(path_, std::ios::app);
  if (!out_.is_open()) {
    throw std::runtime_error("LeaseLog: cannot open " + path_);
  }
  if (torn) {
    out_ << '\n';
    out_.flush();
  }
}

void LeaseLog::append(util::JsonValue line) {
  out_ << line.dump() << '\n';
  out_.flush();
  if (!out_) {
    throw std::runtime_error("LeaseLog: append to " + path_ + " failed");
  }
  ++lines_;
}

void LeaseLog::grant(const Lease& lease) {
  util::JsonValue doc = base_line("grant");
  doc.set("lease", util::JsonValue::number(static_cast<double>(lease.id)));
  doc.set("lo", util::JsonValue::string(hex_u64(lease.range.lo)));
  doc.set("hi", util::JsonValue::string(hex_u64(lease.range.hi)));
  doc.set("journal", util::JsonValue::string(lease.journal_path));
  doc.set("status", util::JsonValue::string(lease.status_path));
  doc.set("attempt",
          util::JsonValue::number(static_cast<double>(lease.attempt)));
  doc.set("parent",
          util::JsonValue::number(static_cast<double>(lease.parent)));
  append(std::move(doc));
}

void LeaseLog::complete(std::uint64_t lease_id) {
  util::JsonValue doc = base_line("complete");
  doc.set("lease", util::JsonValue::number(static_cast<double>(lease_id)));
  append(std::move(doc));
}

void LeaseLog::revoke(std::uint64_t lease_id, const std::string& reason) {
  util::JsonValue doc = base_line("revoke");
  doc.set("lease", util::JsonValue::number(static_cast<double>(lease_id)));
  doc.set("reason", util::JsonValue::string(reason));
  append(std::move(doc));
}

void LeaseLog::note(
    const std::string& event, std::uint64_t lease_id,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  util::JsonValue doc = base_line(event);
  if (lease_id != 0) {
    doc.set("lease", util::JsonValue::number(static_cast<double>(lease_id)));
  }
  for (const auto& [key, value] : fields) {
    doc.set(key, util::JsonValue::string(value));
  }
  append(std::move(doc));
}

LeaseLog::Recovered LeaseLog::recover(const std::string& path) {
  Recovered state;
  const auto content = util::read_file_if_exists(path);
  if (!content.has_value()) return state;
  for (const auto& line : util::split(*content, '\n')) {
    if (util::trim(line).empty()) continue;
    util::JsonValue doc;
    try {
      doc = util::JsonValue::parse(line);
    } catch (const std::exception&) {
      ++state.skipped_lines;  // torn tail or foreign bytes
      continue;
    }
    const std::string& event = doc.get("event").as_string();
    try {
      if (event == "grant") {
        const Lease lease = decode_grant(doc);
        state.max_lease_id = std::max(state.max_lease_id, lease.id);
        state.outstanding[lease.id] = lease;
        state.revoked.erase(lease.id);
      } else if (event == "complete") {
        const auto id =
            static_cast<std::uint64_t>(doc.get("lease").as_number());
        const auto it = state.outstanding.find(id);
        if (it != state.outstanding.end()) {
          state.completed_journals.push_back(it->second.journal_path);
          state.outstanding.erase(it);
        }
        state.completed.insert(id);
      } else if (event == "revoke") {
        const auto id =
            static_cast<std::uint64_t>(doc.get("lease").as_number());
        const auto it = state.outstanding.find(id);
        if (it != state.outstanding.end()) {
          state.revoked[id] = it->second;
          state.outstanding.erase(it);
        }
      }
      // Operational events (spawn/restart/stale_kill/split/...) carry no
      // durable lease state.
    } catch (const std::exception&) {
      ++state.skipped_lines;  // well-formed JSON, malformed payload
    }
  }
  return state;
}

std::vector<util::JsonValue> LeaseLog::read_events(const std::string& path) {
  std::vector<util::JsonValue> events;
  const auto content = util::read_file_if_exists(path);
  if (!content.has_value()) return events;
  for (const auto& line : util::split(*content, '\n')) {
    if (util::trim(line).empty()) continue;
    try {
      events.push_back(util::JsonValue::parse(line));
    } catch (const std::exception&) {
      // torn tail: skip
    }
  }
  return events;
}

}  // namespace nada::svc

// LeaseLog: the supervisor's crash-tolerant JSONL event journal.
//
// Every supervision decision is one appended-and-flushed JSON line:
//
//   {"event":"grant","ts_unix":...,"lease":3,"attempt":1,
//    "lo":"8000000000000000","hi":"bfffffffffffffff",
//    "journal":".../lease-3.jsonl","parent":0}
//   {"event":"complete","ts_unix":...,"lease":3}
//   {"event":"revoke","ts_unix":...,"lease":3,"reason":"crash: exit 42"}
//   {"event":"spawn"|"restart"|"stale_kill"|"split"|"reassign"|"abort",...}
//
// Range bounds are hex strings (JSON doubles cannot carry full 64-bit
// precision). The grant/complete/revoke triple is the durable lease state:
// recover() replays the log into {outstanding, completed} so a supervisor
// restarted after a crash re-grants exactly the unfinished sub-ranges —
// their journals are still on disk, so the re-run is mostly cache hits.
// All other event types are operational history (the record the
// supervisor-smoke CI job asserts restarts and reassignments from) and are
// ignored by recovery. Torn tails are handled like the candidate store's:
// skipped on read, newline-terminated on append-open so the next line
// starts clean.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "store/shard.h"
#include "util/json.h"

namespace nada::svc {

/// One leasable unit of work: a sub-range of the fingerprint space, the
/// journal its worker appends to, and the heartbeat file the supervisor
/// watches. Equality of WHAT it computes is range-only — journal and
/// status paths are bookkeeping.
struct Lease {
  std::uint64_t id = 0;
  store::ShardPlan::Range range;
  std::string journal_path;
  /// Heartbeat snapshot (obs::StatusWriter) path; by convention
  /// journal_path + ".status.json", matching ShardRunner's workers.
  std::string status_path;
  /// How many times this range has been (re)granted after a failure. The
  /// command builder sees it (fault-injection flags only on attempt 0 in
  /// tests) and max_restarts bounds it.
  std::size_t attempt = 0;
  /// Lease this one was split from during straggler reassignment (0 =
  /// planned up front).
  std::uint64_t parent = 0;
};

class LeaseLog {
 public:
  /// Opens `path` for append (creating directories and file as needed),
  /// newline-terminating a torn tail first. Throws std::runtime_error when
  /// the file cannot be opened.
  explicit LeaseLog(std::string path);

  void grant(const Lease& lease);
  void complete(std::uint64_t lease_id);
  void revoke(std::uint64_t lease_id, const std::string& reason);

  /// Operational event with optional lease context (`lease_id` 0 = none)
  /// and free-form detail fields.
  void note(const std::string& event, std::uint64_t lease_id,
            const std::vector<std::pair<std::string, std::string>>& fields);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

  /// Durable lease state replayed from a log file. Unparsable (torn) lines
  /// are skipped and counted.
  struct Recovered {
    /// Granted, neither completed nor revoked — the work a restarted
    /// supervisor must re-grant. Keyed by lease id; `attempt` holds the
    /// LAST granted attempt.
    std::map<std::uint64_t, Lease> outstanding;
    /// Revoked and never re-granted (the failure happened right before the
    /// supervisor died): also work to re-grant.
    std::map<std::uint64_t, Lease> revoked;
    std::set<std::uint64_t> completed;
    /// Journal paths of completed leases (merge inputs).
    std::vector<std::string> completed_journals;
    std::uint64_t max_lease_id = 0;
    std::size_t skipped_lines = 0;
  };
  [[nodiscard]] static Recovered recover(const std::string& path);

  /// Every parsable event line, in order (test/CI helper).
  [[nodiscard]] static std::vector<util::JsonValue> read_events(
      const std::string& path);

 private:
  void append(util::JsonValue line);

  std::string path_;
  std::ofstream out_;
  std::uint64_t lines_ = 0;
};

/// Hex round-trip for full-precision 64-bit values inside JSON documents
/// (16 lowercase digits, zero-padded).
[[nodiscard]] std::string hex_u64(std::uint64_t value);
/// Parses hex_u64 output (and shorter hex strings); throws
/// std::runtime_error on malformed input.
[[nodiscard]] std::uint64_t parse_hex_u64(const std::string& text);

}  // namespace nada::svc

#include "svc/process.h"

#include <stdexcept>
#include <utility>

#ifndef _WIN32
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace nada::svc {

std::string ExitStatus::describe() const {
  switch (kind) {
    case Kind::kRunning: return "running";
    case Kind::kExited: return "exit " + std::to_string(exit_code);
    case Kind::kSignaled: return "signal " + std::to_string(signal);
  }
  return "unknown";
}

ChildProcess::ChildProcess(ChildProcess&& other) noexcept
    : pid_(other.pid_), last_(other.last_), reaped_(other.reaped_) {
  other.pid_ = -1;
  other.reaped_ = false;
}

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
  if (this != &other) {
    pid_ = other.pid_;
    last_ = other.last_;
    reaped_ = other.reaped_;
    other.pid_ = -1;
    other.reaped_ = false;
  }
  return *this;
}

#ifndef _WIN32

ChildProcess ChildProcess::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) {
    throw std::invalid_argument("ChildProcess::spawn: empty argv");
  }
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  for (const auto& arg : argv) raw.push_back(const_cast<char*>(arg.c_str()));
  raw.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error("ChildProcess::spawn: fork failed for " +
                             argv[0]);
  }
  if (pid == 0) {
    ::execvp(raw[0], raw.data());
    // exec failed (missing binary, permissions). _exit, never return into
    // the parent's state: flushing its stdio or running its atexit hooks
    // from the forked child would corrupt both.
    ::_exit(127);
  }
  ChildProcess child;
  child.pid_ = pid;
  return child;
}

ExitStatus ChildProcess::wait_impl(bool block) {
  if (reaped_ || !valid()) return last_;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, block ? 0 : WNOHANG);
  if (r == 0) return ExitStatus{};  // still running
  if (r < 0) {
    // ECHILD or similar: nothing to reap; report the child as crashed so
    // the supervisor's restart path handles a state we cannot explain.
    last_ = ExitStatus{ExitStatus::Kind::kSignaled, 0, SIGKILL};
    reaped_ = true;
    return last_;
  }
  if (WIFEXITED(status)) {
    last_ = ExitStatus{ExitStatus::Kind::kExited, WEXITSTATUS(status), 0};
    reaped_ = true;
  } else if (WIFSIGNALED(status)) {
    last_ = ExitStatus{ExitStatus::Kind::kSignaled, 0, WTERMSIG(status)};
    reaped_ = true;
  }
  return reaped_ ? last_ : ExitStatus{};
}

ExitStatus ChildProcess::poll() { return wait_impl(/*block=*/false); }

ExitStatus ChildProcess::wait() { return wait_impl(/*block=*/true); }

void ChildProcess::terminate(int signum) {
  if (reaped_ || !valid()) return;
  ::kill(pid_, signum);
}

#else  // _WIN32: the svc layer needs POSIX process control.

ChildProcess ChildProcess::spawn(const std::vector<std::string>&) {
  throw std::runtime_error(
      "ChildProcess::spawn: process supervision requires POSIX");
}

ExitStatus ChildProcess::wait_impl(bool) { return last_; }
ExitStatus ChildProcess::poll() { return last_; }
ExitStatus ChildProcess::wait() { return last_; }
void ChildProcess::terminate(int) {}

#endif

}  // namespace nada::svc

// ChildProcess: the minimal POSIX process handle the supervisor runs on.
//
// fork/execvp to spawn, waitpid(WNOHANG) to poll, kill(2) to terminate —
// nothing more. The supervisor never talks to its workers through pipes or
// shared memory: the per-worker journal files and obs::StatusWriter
// heartbeat snapshots are the only coupling, exactly as in the multi-
// process sharded search this subsystem productionizes. Non-POSIX builds
// get a stub that throws on spawn (the svc layer is gated the same way).
#pragma once

#include <string>
#include <vector>

#include <sys/types.h>

namespace nada::svc {

/// Terminal (or not-yet-terminal) state of a spawned child.
struct ExitStatus {
  enum class Kind { kRunning, kExited, kSignaled };
  Kind kind = Kind::kRunning;
  int exit_code = 0;  ///< valid when kExited
  int signal = 0;     ///< valid when kSignaled

  [[nodiscard]] bool running() const { return kind == Kind::kRunning; }
  /// Clean exit (kExited with code 0).
  [[nodiscard]] bool ok() const {
    return kind == Kind::kExited && exit_code == 0;
  }
  /// "exit 3" / "signal 9" / "running", for logs and error messages.
  [[nodiscard]] std::string describe() const;
};

/// One spawned child. Movable, not copyable; the destructor does NOT kill
/// or reap a still-running child (the supervisor owns that policy — a
/// dropped handle simply leaks the child to init, which only a supervisor
/// bug can cause and a kill-leak beats a surprise SIGKILL).
class ChildProcess {
 public:
  ChildProcess() = default;
  ChildProcess(ChildProcess&& other) noexcept;
  ChildProcess& operator=(ChildProcess&& other) noexcept;
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;
  ~ChildProcess() = default;

  /// fork + execvp. `argv[0]` is the binary (PATH-resolved); throws
  /// std::invalid_argument on empty argv and std::runtime_error when fork
  /// fails. An exec failure inside the child surfaces as exit code 127 on
  /// the next poll — indistinguishable from any other startup crash, which
  /// is exactly how the supervisor treats it.
  [[nodiscard]] static ChildProcess spawn(
      const std::vector<std::string>& argv);

  [[nodiscard]] pid_t pid() const { return pid_; }
  [[nodiscard]] bool valid() const { return pid_ > 0; }

  /// Non-blocking waitpid. Once terminal, the status is cached and further
  /// polls return it (the child is reaped exactly once).
  ExitStatus poll();

  /// Blocking waitpid (returns immediately when already reaped).
  ExitStatus wait();

  /// Sends `signum` (default SIGKILL). No-op once the child is reaped.
  void terminate(int signum);

 private:
  [[nodiscard]] ExitStatus wait_impl(bool block);

  pid_t pid_ = -1;
  ExitStatus last_{};
  bool reaped_ = false;
};

}  // namespace nada::svc

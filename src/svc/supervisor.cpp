#include "svc/supervisor.h"

#include <algorithm>
#include <chrono>
#include <signal.h>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/status.h"
#include "store/candidate_store.h"
#include "util/fs.h"

namespace nada::svc {

namespace {

std::string default_path(const SupervisorConfig& config,
                         const std::string& leaf) {
  return config.dir + "/" + config.prefix + leaf;
}

}  // namespace

Supervisor::Supervisor(SupervisorConfig config, CommandBuilder command)
    : config_(std::move(config)), command_(std::move(command)) {
  if (config_.num_workers == 0) {
    throw std::invalid_argument("Supervisor: num_workers must be >= 1");
  }
  if (config_.dir.empty()) {
    throw std::invalid_argument("Supervisor: dir must be set");
  }
  if (config_.poll_interval_seconds <= 0.0) {
    throw std::invalid_argument("Supervisor: poll interval must be > 0");
  }
  if (!command_) {
    throw std::invalid_argument("Supervisor: command builder must be set");
  }
  if (config_.initial_leases == 0) config_.initial_leases = config_.num_workers;
  if (config_.event_log_path.empty()) {
    config_.event_log_path = default_path(config_, "supervisor.jsonl");
  }
  if (config_.cluster_status_path.empty()) {
    config_.cluster_status_path = default_path(config_, "cluster.json");
  }
}

std::string Supervisor::lease_journal_path(std::uint64_t id) const {
  // Candidate journals follow NADA_STORE_FORMAT; the supervisor's own
  // event log stays JSONL regardless (it is an operator-facing log).
  return default_path(
      config_,
      "lease-" + std::to_string(id) +
          store::journal_extension(store::store_format_from_env()));
}

Lease Supervisor::make_lease(std::uint64_t id, store::ShardPlan::Range range,
                             std::size_t attempt, std::uint64_t parent) {
  Lease lease;
  lease.id = id;
  lease.range = range;
  lease.journal_path = lease_journal_path(id);
  lease.status_path = lease.journal_path + ".status.json";
  lease.attempt = attempt;
  lease.parent = parent;
  return lease;
}

void Supervisor::track_journal(const std::string& path) {
  auto& paths = report_.journal_paths;
  if (std::find(paths.begin(), paths.end(), path) == paths.end()) {
    paths.push_back(path);
  }
}

void Supervisor::plan_or_recover() {
  const auto recovered =
      config_.resume ? LeaseLog::recover(config_.event_log_path)
                     : LeaseLog::Recovered{};
  log_.emplace(config_.event_log_path);

  if (!recovered.outstanding.empty() || !recovered.revoked.empty() ||
      !recovered.completed.empty()) {
    // Resume: completed leases keep their journals (merge inputs); every
    // unfinished lease — outstanding when the previous supervisor died, or
    // revoked without a re-grant — goes back on the queue with the SAME
    // journal, so finished candidates replay as cache hits.
    next_lease_id_ = recovered.max_lease_id + 1;
    for (const auto& path : recovered.completed_journals) track_journal(path);
    report_.leases_completed += recovered.completed.size();
    for (const auto& [id, lease] : recovered.outstanding) {
      pending_.push_back(lease);
      track_journal(lease.journal_path);
    }
    for (const auto& [id, lease] : recovered.revoked) {
      Lease regrant = lease;
      regrant.attempt += 1;
      pending_.push_back(regrant);
      track_journal(regrant.journal_path);
    }
    report_.leases_planned = pending_.size();
    log_->note("resume", 0,
               {{"pending", std::to_string(pending_.size())},
                {"completed", std::to_string(recovered.completed.size())}});
    return;
  }

  // Fresh run: carve the full fingerprint space into initial_leases
  // contiguous sub-ranges via the same planner the static sharding uses.
  const store::ShardPlan plan(config_.initial_leases);
  for (std::size_t i = 0; i < plan.num_shards(); ++i) {
    pending_.push_back(make_lease(next_lease_id_++, plan.range(i), 0, 0));
  }
  report_.leases_planned = pending_.size();
}

void Supervisor::spawn_pending() {
  while (!pending_.empty() && slots_.size() < config_.num_workers) {
    Lease lease = pending_.front();
    pending_.pop_front();
    log_->grant(lease);
    track_journal(lease.journal_path);
    const std::vector<std::string> argv = command_(lease);
    Slot slot;
    slot.lease = std::move(lease);
    slot.process = ChildProcess::spawn(argv);
    slot.spawn_unix = obs::unix_now();
    log_->note("spawn", slot.lease.id,
               {{"pid", std::to_string(slot.process.pid())},
                {"attempt", std::to_string(slot.lease.attempt)}});
    slots_.push_back(std::move(slot));
    ++report_.spawned;
  }
}

bool Supervisor::handle_exit(Slot& slot, const ExitStatus& status) {
  if (status.ok()) {
    log_->complete(slot.lease.id);
    ++report_.leases_completed;
    return true;
  }
  log_->revoke(slot.lease.id, "crash: " + status.describe());
  if (status.kind == ExitStatus::Kind::kExited &&
      status.exit_code == config_.fail_fast_exit_code) {
    // The worker says its arguments are wrong. Restarting would reproduce
    // the same failure max_restarts times and then fail anyway — abort now
    // with the root cause front and center.
    log_->note("abort", slot.lease.id, {{"reason", status.describe()}});
    fail("worker for lease " + std::to_string(slot.lease.id) +
         " failed fast (" + status.describe() +
         "): bad worker arguments, not restarting");
    return false;
  }
  if (slot.lease.attempt >= config_.max_restarts) {
    log_->note("abort", slot.lease.id,
               {{"reason", "max restarts exceeded (" + status.describe() +
                               ")"}});
    fail("lease " + std::to_string(slot.lease.id) + " failed " +
         std::to_string(slot.lease.attempt + 1) + " times (last: " +
         status.describe() + "), max_restarts=" +
         std::to_string(config_.max_restarts) + " exhausted");
    return false;
  }
  // Crash restart: same lease id, same range, SAME journal. Whatever the
  // dead attempt journaled (minus a torn tail) replays as cache hits; only
  // the remainder of the range executes.
  Lease retry = slot.lease;
  retry.attempt += 1;
  log_->note("restart", retry.id,
             {{"attempt", std::to_string(retry.attempt)},
              {"cause", status.describe()}});
  pending_.push_back(std::move(retry));
  ++report_.crash_restarts;
  return true;
}

void Supervisor::check_staleness() {
  if (config_.heartbeat_timeout_seconds <= 0.0) return;
  const double now = obs::unix_now();
  for (std::size_t i = 0; i < slots_.size();) {
    Slot& slot = slots_[i];
    const auto snapshot = obs::read_status(slot.lease.status_path);
    // Judge from max(spawn, heartbeat): a snapshot left behind by a dead
    // previous attempt must not condemn a worker that just started, and a
    // worker that never writes its first snapshot is judged from spawn.
    double reference = slot.spawn_unix;
    if (snapshot.has_value()) {
      reference = std::max(reference, snapshot->heartbeat_unix);
      if (snapshot->done()) {  // finished, just hasn't exited yet
        ++i;
        continue;
      }
    }
    if (now - reference <= config_.heartbeat_timeout_seconds) {
      ++i;
      continue;
    }

    // Straggler: kill it, then split its range at the fingerprint midpoint
    // so two workers share the remainder. The partial journal stays on the
    // merge list — only genuinely-unfinished candidates re-execute.
    slot.process.terminate(SIGKILL);
    (void)slot.process.wait();
    log_->note("stale_kill", slot.lease.id,
               {{"age_seconds", std::to_string(now - reference)}});
    log_->revoke(slot.lease.id, "stale");
    ++report_.stale_kills;

    const Lease dead = slot.lease;
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));

    if (dead.attempt >= config_.max_restarts) {
      log_->note("abort", dead.id, {{"reason", "max restarts exceeded "
                                               "(stale)"}});
      fail("lease " + std::to_string(dead.id) +
           " stalled past max_restarts=" +
           std::to_string(config_.max_restarts));
      return;
    }
    if (dead.range.splittable()) {
      const auto [left, right] = store::split_midpoint(dead.range);
      Lease a = make_lease(next_lease_id_++, left, dead.attempt + 1, dead.id);
      Lease b = make_lease(next_lease_id_++, right, dead.attempt + 1, dead.id);
      log_->note("split", dead.id,
                 {{"left", std::to_string(a.id)},
                  {"right", std::to_string(b.id)}});
      log_->note("reassign", a.id, {{"parent", std::to_string(dead.id)}});
      log_->note("reassign", b.id, {{"parent", std::to_string(dead.id)}});
      pending_.push_back(std::move(a));
      pending_.push_back(std::move(b));
      ++report_.splits;
    } else {
      // Single-hi-value range: nothing to split, requeue as-is.
      Lease retry = dead;
      retry.attempt += 1;
      log_->note("restart", retry.id,
                 {{"attempt", std::to_string(retry.attempt)},
                  {"cause", "stale"}});
      pending_.push_back(std::move(retry));
      ++report_.crash_restarts;
    }
  }
}

void Supervisor::fail(const std::string& error) {
  failed_ = true;
  report_.error = error;
  // Kill and reap everything still running; leave pending_ as a record of
  // unfinished work (it also survives in the lease log for resume).
  for (auto& slot : slots_) {
    slot.process.terminate(SIGKILL);
    (void)slot.process.wait();
    log_->revoke(slot.lease.id, "supervisor abort");
  }
  slots_.clear();
}

util::JsonValue Supervisor::cluster_status() const {
  std::vector<std::optional<obs::StatusSnapshot>> snapshots;
  snapshots.reserve(slots_.size());
  for (const auto& slot : slots_) {
    snapshots.push_back(obs::read_status(slot.lease.status_path));
  }
  util::JsonValue doc = obs::aggregate_status(
      snapshots, obs::unix_now(), config_.heartbeat_timeout_seconds);

  util::JsonValue sup = util::JsonValue::object();
  sup.set("pending_leases",
          util::JsonValue::number(static_cast<double>(pending_.size())));
  sup.set("running_workers",
          util::JsonValue::number(static_cast<double>(slots_.size())));
  sup.set("leases_completed", util::JsonValue::number(static_cast<double>(
                                  report_.leases_completed)));
  sup.set("crash_restarts", util::JsonValue::number(static_cast<double>(
                                report_.crash_restarts)));
  sup.set("stale_kills",
          util::JsonValue::number(static_cast<double>(report_.stale_kills)));
  sup.set("splits",
          util::JsonValue::number(static_cast<double>(report_.splits)));
  util::JsonValue leases = util::JsonValue::array();
  for (const auto& slot : slots_) {
    util::JsonValue entry = util::JsonValue::object();
    entry.set("lease",
              util::JsonValue::number(static_cast<double>(slot.lease.id)));
    entry.set("attempt", util::JsonValue::number(
                             static_cast<double>(slot.lease.attempt)));
    entry.set("lo", util::JsonValue::string(hex_u64(slot.lease.range.lo)));
    entry.set("hi", util::JsonValue::string(hex_u64(slot.lease.range.hi)));
    entry.set("pid", util::JsonValue::number(
                         static_cast<double>(slot.process.pid())));
    leases.push_back(std::move(entry));
  }
  sup.set("leases", std::move(leases));
  doc.set("supervisor", std::move(sup));
  return doc;
}

void Supervisor::write_cluster_status() {
  const double now = obs::unix_now();
  if (now - last_status_write_ < config_.cluster_status_interval_seconds) {
    return;
  }
  last_status_write_ = now;
  util::write_file_atomic(config_.cluster_status_path,
                          cluster_status().dump() + "\n");
}

SupervisorReport Supervisor::run() {
  if (started_) {
    throw std::logic_error("Supervisor::run: single-shot, already ran");
  }
  started_ = true;
  util::ensure_directories(config_.dir);
  report_.event_log_path = config_.event_log_path;
  report_.cluster_status_path = config_.cluster_status_path;
  plan_or_recover();

  while (!failed_ && (!pending_.empty() || !slots_.empty())) {
    spawn_pending();
    // Reap in reverse so erase() never shifts an unvisited slot.
    for (std::size_t i = slots_.size(); i-- > 0 && !failed_;) {
      const ExitStatus status = slots_[i].process.poll();
      if (status.running()) continue;
      if (!handle_exit(slots_[i], status)) break;  // fail() cleared slots_
      slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    if (failed_) break;
    check_staleness();
    write_cluster_status();
    if (pending_.empty() && slots_.empty()) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(
        config_.poll_interval_seconds));
  }

  report_.success = !failed_;
  // Final status snapshot regardless of the rate limit.
  last_status_write_ = 0.0;
  write_cluster_status();
  if (report_.success) {
    log_->note("done", 0,
               {{"leases_completed",
                 std::to_string(report_.leases_completed)},
                {"spawned", std::to_string(report_.spawned)}});
  }
  return report_;
}

}  // namespace nada::svc

// Supervisor: elastic work-queue sharding with crash restart and
// straggler reassignment over the journals-as-only-coupling design.
//
// The sharded search (search::ShardRunner + tools/shard_worker) proves
// that WHERE a candidate executes cannot change WHAT it computes: shard
// assignment is by content fingerprint and per-candidate seeds are
// fingerprint-derived. The supervisor turns that proof into fault
// tolerance. Instead of N statically-owned ranges launched by a shell
// `for` loop, the fingerprint space becomes a work QUEUE of leasable
// sub-ranges:
//
//   * each idle worker slot is granted the next pending lease — a
//     store::ShardPlan::Range plus its own journal file — recorded in a
//     crash-tolerant JSONL LeaseLog before the worker process spawns,
//   * the supervisor owns its workers (fork/exec + waitpid) and watches
//     the obs::StatusWriter heartbeat file every worker already writes,
//   * a worker that DIES (nonzero exit, signal) has its lease re-granted
//     with the SAME journal: the partial journal is intact (torn tail
//     dropped on reopen), so the replacement serves finished candidates
//     from cache and executes only the remainder,
//   * a worker that STALLS (alive, heartbeat older than the staleness
//     threshold) is killed and its range is SPLIT at the fingerprint
//     midpoint into two fresh leases that idle workers pick up — the
//     straggler's partial journal still merges at the end, so only its
//     genuinely-unfinished candidates re-execute,
//   * a worker that exits with the fail-fast code (bad arguments — a
//     config bug every restart would reproduce) aborts the run instead of
//     burning restarts,
//   * the final merge unions every journal any attempt ever wrote —
//     partial journals from killed workers merge like any other, which is
//     exactly what the store's monotone stage-upgrade semantics were built
//     for. Anything lost entirely is recomputed bit-identically by the
//     driver's funnel pass.
//
// Equivalence contract: a supervised run with any schedule of crashes,
// stalls, splits, and restarts produces byte-identical rankings and
// journal record sets to an uninterrupted single-process run
// (tests/svc_test.cpp and the supervisor-smoke CI job pin it).
//
// The supervisor is itself crash-tolerant: on start it replays an
// existing lease log and re-grants exactly the unfinished sub-ranges.
// Policy details and the lease-log format: docs/SERVICE.md.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "svc/lease_log.h"
#include "svc/process.h"
#include "util/json.h"

namespace nada::svc {

struct SupervisorConfig {
  /// Concurrent worker processes (slots). >= 1.
  std::size_t num_workers = 2;
  /// Initial sub-range leases the fingerprint space is split into
  /// (store::ShardPlan ranges). 0 = num_workers; more than num_workers
  /// makes the queue elastic from the start (finer-grained stealing).
  std::size_t initial_leases = 0;
  /// Re-grants a failed lease allows before the run fails. Counts crash
  /// restarts and stale kills alike; split children inherit
  /// parent.attempt + 1 so a heritable fault cannot split forever.
  std::size_t max_restarts = 3;
  /// Heartbeat age (seconds) past which a live worker counts as stalled
  /// and is killed + reassigned. <= 0 disables staleness handling. The
  /// reference point is max(spawn time, last heartbeat), so a stale file
  /// left by a previous attempt never condemns a fresh worker.
  double heartbeat_timeout_seconds = 30.0;
  /// Supervision loop cadence.
  double poll_interval_seconds = 0.05;
  /// Directory for lease journals, the lease log, and the cluster status.
  std::string dir = "nada_svc";
  /// File-name prefix inside `dir` (derive it from the store scope so
  /// concurrent searches never collide): lease journals are
  /// "<dir>/<prefix>lease-<id>.jsonl".
  std::string prefix;
  /// Lease/event log path; "" = "<dir>/<prefix>supervisor.jsonl".
  std::string event_log_path;
  /// Live cluster status JSON (atomically replaced each refresh);
  /// "" = "<dir>/<prefix>cluster.json".
  std::string cluster_status_path;
  double cluster_status_interval_seconds = 1.0;
  /// Worker exit code that means "config bug, every restart would fail
  /// the same way": abort the run instead of restarting. Matches
  /// shard_worker's bad-arguments code.
  int fail_fast_exit_code = 2;
  /// Replay an existing event log and resume its unfinished leases
  /// instead of planning afresh.
  bool resume = true;
};

/// Builds the argv for one lease's worker process. Called on every grant
/// (including re-grants); `lease.attempt` distinguishes first attempts
/// from restarts, which is how tests inject faults into attempt 0 only.
/// The command must journal into lease.journal_path, heartbeat into
/// lease.status_path, and execute exactly the candidates in lease.range.
using CommandBuilder = std::function<std::vector<std::string>(const Lease&)>;

struct SupervisorReport {
  bool success = false;
  std::string error;  ///< set when !success
  std::size_t leases_planned = 0;    ///< initial queue (or recovered)
  std::size_t leases_completed = 0;  ///< exited 0, lease marked complete
  std::size_t spawned = 0;           ///< worker processes launched
  std::size_t crash_restarts = 0;    ///< re-grants after death
  std::size_t stale_kills = 0;       ///< stragglers killed
  std::size_t splits = 0;            ///< ranges split for reassignment
  /// Every journal path any lease ever owned (deduplicated, grant order).
  /// Partial journals of failed attempts included — merging them is how
  /// killed workers' finished candidates avoid re-execution downstream.
  std::vector<std::string> journal_paths;
  std::string event_log_path;
  std::string cluster_status_path;
};

class Supervisor {
 public:
  /// Throws std::invalid_argument on a degenerate config (zero workers,
  /// empty dir, non-positive poll interval).
  Supervisor(SupervisorConfig config, CommandBuilder command);

  /// Runs the whole schedule to completion (or failure): plans/recovers
  /// leases, spawns and supervises workers, restarts, reassigns, and
  /// returns when the queue is drained and every worker has exited. On
  /// failure (fail-fast exit or max_restarts exhausted) every running
  /// worker is killed and reaped before returning. Single-shot.
  [[nodiscard]] SupervisorReport run();

  /// The supervisor's own live view: worker heartbeat snapshots aggregated
  /// with obs::aggregate_status (staleness classified against the
  /// configured timeout) plus a "supervisor" section with queue/restart
  /// gauges. Written to cluster_status_path every
  /// cluster_status_interval_seconds while run() executes.
  [[nodiscard]] util::JsonValue cluster_status() const;

 private:
  struct Slot {
    Lease lease;
    ChildProcess process;
    double spawn_unix = 0.0;
  };

  [[nodiscard]] std::string lease_journal_path(std::uint64_t id) const;
  [[nodiscard]] Lease make_lease(std::uint64_t id,
                                 store::ShardPlan::Range range,
                                 std::size_t attempt, std::uint64_t parent);
  void plan_or_recover();
  void spawn_pending();
  /// Handles one dead worker; returns false when the run must abort.
  [[nodiscard]] bool handle_exit(Slot& slot, const ExitStatus& status);
  void check_staleness();
  void write_cluster_status();
  void fail(const std::string& error);
  void track_journal(const std::string& path);

  SupervisorConfig config_;
  CommandBuilder command_;
  std::optional<LeaseLog> log_;
  std::deque<Lease> pending_;
  std::vector<Slot> slots_;
  std::uint64_t next_lease_id_ = 1;
  SupervisorReport report_;
  bool started_ = false;
  bool failed_ = false;
  double last_status_write_ = 0.0;
};

}  // namespace nada::svc

#include "trace/generator.h"

#include <cmath>
#include <stdexcept>

namespace nada::trace {

const char* environment_name(Environment env) {
  switch (env) {
    case Environment::kFcc: return "FCC";
    case Environment::kStarlink: return "Starlink";
    case Environment::k4G: return "4G";
    case Environment::k5G: return "5G";
  }
  throw std::invalid_argument("environment_name: unknown environment");
}

const std::vector<Environment>& all_environments() {
  static const std::vector<Environment> kAll = {
      Environment::kFcc, Environment::kStarlink, Environment::k4G,
      Environment::k5G};
  return kAll;
}

GeneratorModel model_for(Environment env) {
  GeneratorModel m;
  switch (env) {
    case Environment::kFcc:
      // Fixed broadband: long stable plateaus, small within-plateau jitter,
      // essentially no outages.
      m.base_mbps = 1.22;
      m.regime_sigma = 0.35;
      m.within_sigma = 0.04;
      m.ar_coeff = 0.95;
      m.regime_hold_mean_s = 150.0;
      m.outage_rate_per_s = 0.0;
      m.floor_mbps = 0.1;
      break;
    case Environment::kStarlink:
      // Shared satellite link at peak hours: alternating good/congested
      // regimes, frequent short dips at the ~15 s satellite handover scale.
      // The paper scales Starlink capacity to 1/8 to emulate peak usage.
      m.base_mbps = 12.5;
      m.regime_sigma = 0.50;
      m.within_sigma = 0.18;
      m.ar_coeff = 0.85;
      m.regime_hold_mean_s = 25.0;
      m.outage_rate_per_s = 1.0 / 15.0;
      m.outage_depth = 0.15;
      m.outage_len_mean_s = 2.0;
      m.capacity_scale = 1.0 / 8.0;
      m.floor_mbps = 0.05;
      break;
    case Environment::k4G:
      // Mobility between cells: medium-period regime swings, moderate
      // in-cell fading, occasional deep fades.
      m.base_mbps = 18.6;
      m.regime_sigma = 0.40;
      m.within_sigma = 0.15;
      m.ar_coeff = 0.88;
      m.regime_hold_mean_s = 40.0;
      m.outage_rate_per_s = 1.0 / 40.0;
      m.outage_depth = 0.20;
      m.outage_len_mean_s = 3.0;
      m.floor_mbps = 0.3;
      break;
    case Environment::k5G:
      // mmWave-flavoured: high bursts, hard blockage outages that drop
      // throughput to near-zero for a couple of seconds.
      m.base_mbps = 27.5;
      m.regime_sigma = 0.55;
      m.within_sigma = 0.20;
      m.ar_coeff = 0.82;
      m.regime_hold_mean_s = 20.0;
      m.outage_rate_per_s = 1.0 / 25.0;
      m.outage_depth = 0.05;
      m.outage_len_mean_s = 2.0;
      m.floor_mbps = 0.3;
      break;
  }
  return m;
}

Trace generate_trace(Environment env, double duration_s, util::Rng& rng) {
  const std::string name =
      std::string(environment_name(env)) + "_trace_" +
      std::to_string(rng.uniform_int(0, 999999));
  return generate_trace(model_for(env), name, duration_s, rng);
}

Trace generate_trace(const GeneratorModel& model, const std::string& name,
                     double duration_s, util::Rng& rng) {
  if (duration_s < 2.0) {
    throw std::invalid_argument("generate_trace: duration too short");
  }
  const auto steps = static_cast<std::size_t>(duration_s);
  std::vector<TracePoint> points;
  points.reserve(steps);

  const double log_base = std::log(model.base_mbps);
  double regime_log = log_base + rng.normal(0.0, model.regime_sigma);
  double regime_left_s = rng.exponential(1.0 / model.regime_hold_mean_s);
  double level_log = regime_log;
  double outage_left_s = 0.0;

  for (std::size_t t = 0; t < steps; ++t) {
    // Regime switching.
    regime_left_s -= 1.0;
    if (regime_left_s <= 0.0) {
      regime_log = log_base + rng.normal(0.0, model.regime_sigma);
      regime_left_s = rng.exponential(1.0 / model.regime_hold_mean_s);
    }
    // Mean-reverting AR(1) around the regime level (log-space).
    level_log = regime_log + model.ar_coeff * (level_log - regime_log) +
                rng.normal(0.0, model.within_sigma);
    double mbps = std::exp(level_log);

    // Outage process.
    if (outage_left_s > 0.0) {
      mbps *= model.outage_depth;
      outage_left_s -= 1.0;
    } else if (model.outage_rate_per_s > 0.0 &&
               rng.bernoulli(model.outage_rate_per_s)) {
      outage_left_s = rng.exponential(1.0 / model.outage_len_mean_s);
      mbps *= model.outage_depth;
    }

    mbps *= model.capacity_scale;
    mbps = std::max(mbps, model.floor_mbps * model.capacity_scale);
    points.push_back({static_cast<double>(t + 1), mbps * 1000.0});
  }
  return Trace(name, std::move(points));
}

DatasetSpec paper_spec(Environment env) {
  DatasetSpec s;
  s.env = env;
  switch (env) {
    case Environment::kFcc:
      s.train_traces = 85;
      s.train_hours = 10.0;
      s.test_traces = 290;
      s.test_hours = 25.7;
      s.mean_throughput_mbps = 1.3;
      s.train_epochs = 40000;
      s.test_interval = 500;
      break;
    case Environment::kStarlink:
      s.train_traces = 13;
      s.train_hours = 0.9;
      s.test_traces = 12;
      s.test_hours = 0.8;
      s.mean_throughput_mbps = 1.6;
      s.train_epochs = 4000;
      s.test_interval = 100;
      break;
    case Environment::k4G:
      s.train_traces = 119;
      s.train_hours = 10.0;
      s.test_traces = 121;
      s.test_hours = 10.0;
      s.mean_throughput_mbps = 19.8;
      s.train_epochs = 40000;
      s.test_interval = 500;
      break;
    case Environment::k5G:
      s.train_traces = 117;
      s.train_hours = 10.0;
      s.test_traces = 119;
      s.test_hours = 10.0;
      s.mean_throughput_mbps = 30.2;
      s.train_epochs = 40000;
      s.test_interval = 500;
      break;
  }
  return s;
}

double Dataset::train_hours() const {
  double total = 0.0;
  for (const auto& t : train) total += t.duration_s();
  return total / 3600.0;
}

double Dataset::test_hours() const {
  double total = 0.0;
  for (const auto& t : test) total += t.duration_s();
  return total / 3600.0;
}

double Dataset::mean_throughput_mbps() const {
  double integral_kbps_s = 0.0;
  double total_s = 0.0;
  for (const auto* split : {&train, &test}) {
    for (const auto& t : *split) {
      integral_kbps_s += t.mean_kbps() * t.duration_s();
      total_s += t.duration_s();
    }
  }
  return total_s > 0.0 ? integral_kbps_s / total_s / 1000.0 : 0.0;
}

Dataset build_dataset(Environment env, double trace_scale,
                      std::uint64_t seed) {
  if (trace_scale <= 0.0) {
    throw std::invalid_argument("build_dataset: trace_scale <= 0");
  }
  Dataset ds;
  ds.spec = paper_spec(env);
  util::Rng rng(seed ^ (static_cast<std::uint64_t>(env) << 32));

  const auto scaled = [trace_scale](std::size_t paper_count) {
    const auto n = static_cast<std::size_t>(
        std::round(static_cast<double>(paper_count) * trace_scale));
    return std::max<std::size_t>(n, 2);
  };
  const std::size_t n_train = scaled(ds.spec.train_traces);
  const std::size_t n_test = scaled(ds.spec.test_traces);

  // Keep the paper's per-trace duration so dataset "hours" scale with the
  // trace count.
  const double train_dur_s =
      ds.spec.train_hours * 3600.0 / static_cast<double>(ds.spec.train_traces);
  const double test_dur_s =
      ds.spec.test_hours * 3600.0 / static_cast<double>(ds.spec.test_traces);

  ds.train.reserve(n_train);
  for (std::size_t i = 0; i < n_train; ++i) {
    ds.train.push_back(generate_trace(env, train_dur_s, rng));
  }
  ds.test.reserve(n_test);
  for (std::size_t i = 0; i < n_test; ++i) {
    ds.test.push_back(generate_trace(env, test_dur_s, rng));
  }
  return ds;
}

}  // namespace nada::trace

// Synthetic trace generators for the four network environments studied in
// the paper (Table 1). Real measurement campaigns (FCC broadband, a Starlink
// RV terminal, 4G/5G drive tests) are not available offline, so each
// environment is modelled as a Markov-modulated log-AR(1) process whose
// regimes reproduce the qualitative character described in the paper and
// whose parameters are calibrated to Table 1's mean throughputs:
//
//   FCC       1.3 Mbps  — stable broadband plateaus, rare capacity shifts
//   Starlink  1.6 Mbps  — peak-hour sharing: alternating good/congested
//                         regimes, 15 s-scale handover dips, paper's 1/8
//                         capacity scaling applied on top
//   4G        19.8 Mbps — mobility swings between good/medium/poor cells
//   5G        30.2 Mbps — mmWave bursts with hard blockage outages
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "trace/trace.h"
#include "util/rng.h"

namespace nada::trace {

enum class Environment { kFcc, kStarlink, k4G, k5G };

[[nodiscard]] const char* environment_name(Environment env);

/// All four environments in paper order.
[[nodiscard]] const std::vector<Environment>& all_environments();

/// Tunable per-environment generator model. Defaults are produced by
/// `model_for(env)`; tests perturb these to probe the generator.
struct GeneratorModel {
  double base_mbps = 1.0;        ///< anchor throughput (pre-scaling)
  double regime_sigma = 0.3;     ///< lognormal spread of regime levels
  double within_sigma = 0.08;    ///< AR(1) noise within a regime (log-space)
  double ar_coeff = 0.9;         ///< AR(1) pull toward the regime level
  double regime_hold_mean_s = 60.0;  ///< mean sojourn time in a regime
  double outage_rate_per_s = 0.0;    ///< Poisson rate of dips/outages
  double outage_depth = 0.1;     ///< multiplier applied during an outage
  double outage_len_mean_s = 2.0;
  double capacity_scale = 1.0;   ///< final multiplier (Starlink: 1/8)
  double floor_mbps = 0.05;      ///< never drop below this
};

[[nodiscard]] GeneratorModel model_for(Environment env);

/// Generates one trace with 1 Hz samples of the given duration.
[[nodiscard]] Trace generate_trace(Environment env, double duration_s,
                                   util::Rng& rng);

/// Generates with an explicit model (ablation/testing hook).
[[nodiscard]] Trace generate_trace(const GeneratorModel& model,
                                   const std::string& name, double duration_s,
                                   util::Rng& rng);

/// Paper Table 1 row: dataset sizes, training budget, checkpoint cadence.
struct DatasetSpec {
  Environment env = Environment::kFcc;
  std::size_t train_traces = 0;
  double train_hours = 0.0;
  std::size_t test_traces = 0;
  double test_hours = 0.0;
  double mean_throughput_mbps = 0.0;  ///< Table 1 "Throughput" column
  std::size_t train_epochs = 0;
  std::size_t test_interval = 0;  ///< checkpoint every N epochs
};

/// The exact Table 1 values.
[[nodiscard]] DatasetSpec paper_spec(Environment env);

/// A generated train/test split.
struct Dataset {
  DatasetSpec spec;
  std::vector<Trace> train;
  std::vector<Trace> test;

  [[nodiscard]] double train_hours() const;
  [[nodiscard]] double test_hours() const;
  /// Duration-weighted mean throughput over train+test, in Mbps.
  [[nodiscard]] double mean_throughput_mbps() const;
};

/// Builds a dataset whose per-split counts are `spec`'s scaled by
/// `trace_scale` (>= 2 traces per split) and whose per-trace duration keeps
/// the paper's hours-per-trace ratio.
[[nodiscard]] Dataset build_dataset(Environment env, double trace_scale,
                                    std::uint64_t seed);

}  // namespace nada::trace

#include "trace/trace.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/stats.h"
#include "util/strings.h"

namespace nada::trace {

Trace::Trace(std::string name, std::vector<TracePoint> points)
    : name_(std::move(name)), points_(std::move(points)) {
  if (points_.empty()) {
    throw std::invalid_argument("Trace: no points");
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].time_s <= points_[i - 1].time_s) {
      throw std::invalid_argument("Trace: timestamps must strictly increase");
    }
  }
  for (const auto& p : points_) {
    if (p.bandwidth_kbps < 0.0 || !std::isfinite(p.bandwidth_kbps)) {
      throw std::invalid_argument("Trace: bandwidth must be finite and >= 0");
    }
  }
}

double Trace::duration_s() const {
  return points_.empty() ? 0.0 : points_.back().time_s;
}

std::size_t Trace::index_at(double t) const {
  if (points_.empty()) throw std::logic_error("Trace::index_at: empty");
  const double dur = duration_s();
  if (dur <= 0.0) return 0;
  double wrapped = std::fmod(t, dur);
  if (wrapped < 0.0) wrapped += dur;
  // Find the last point with time_s <= wrapped.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), wrapped,
      [](double value, const TracePoint& p) { return value < p.time_s; });
  if (it == points_.begin()) return 0;
  return static_cast<std::size_t>(std::distance(points_.begin(), it)) - 1;
}

double Trace::bandwidth_kbps_at(double t) const {
  if (points_.empty()) throw std::logic_error("Trace: empty");
  if (points_.size() == 1) return points_[0].bandwidth_kbps;
  return points_[index_at(std::max(t, 0.0))].bandwidth_kbps;
}

double Trace::mean_kbps() const {
  if (points_.empty()) return 0.0;
  if (points_.size() == 1) return points_[0].bandwidth_kbps;
  // Piecewise-constant integral: each sample holds until the next timestamp.
  double integral = 0.0;
  double total_time = 0.0;
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    const double dt = points_[i + 1].time_s - points_[i].time_s;
    integral += points_[i].bandwidth_kbps * dt;
    total_time += dt;
  }
  return total_time > 0.0 ? integral / total_time : points_[0].bandwidth_kbps;
}

double Trace::stddev_kbps() const {
  std::vector<double> values;
  values.reserve(points_.size());
  for (const auto& p : points_) values.push_back(p.bandwidth_kbps);
  return util::stddev(values);
}

Trace Trace::scaled(double factor) const {
  if (factor < 0.0) throw std::invalid_argument("Trace::scaled: factor < 0");
  std::vector<TracePoint> scaled_points = points_;
  for (auto& p : scaled_points) p.bandwidth_kbps *= factor;
  return Trace(name_ + "_x" + std::to_string(factor), std::move(scaled_points));
}

std::string to_cooked_format(const Trace& trace) {
  std::ostringstream out;
  out.precision(6);
  for (const auto& p : trace.points()) {
    out << p.time_s << '\t' << p.bandwidth_kbps / 1000.0 << '\n';
  }
  return out.str();
}

Trace from_cooked_format(const std::string& name, const std::string& text) {
  std::vector<TracePoint> points;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    double time_s = 0.0;
    double mbps = 0.0;
    if (!(fields >> time_s >> mbps)) {
      throw std::runtime_error("from_cooked_format: bad line " +
                               std::to_string(line_no) + " in " + name);
    }
    points.push_back({time_s, mbps * 1000.0});
  }
  return Trace(name, std::move(points));
}

std::string to_mahimahi_format(const Trace& trace) {
  // A mahimahi schedule lists, for each 1500-byte packet, the millisecond at
  // which it may be delivered. We walk the trace accumulating "bytes owed"
  // and emit a line whenever a full MTU has accumulated.
  static constexpr double kMtuBytes = 1500.0;
  std::ostringstream out;
  double owed_bytes = 0.0;
  const double step_ms = 1.0;
  const double end_ms = trace.duration_s() * 1000.0;
  for (double t_ms = 0.0; t_ms < end_ms; t_ms += step_ms) {
    const double kbps = trace.bandwidth_kbps_at(t_ms / 1000.0);
    owed_bytes += kbps * 1000.0 / 8.0 / 1000.0;  // bytes per ms
    while (owed_bytes >= kMtuBytes) {
      out << static_cast<long long>(t_ms) + 1 << '\n';
      owed_bytes -= kMtuBytes;
    }
  }
  return out.str();
}

Trace from_mahimahi_format(const std::string& name, const std::string& text) {
  static constexpr double kMtuBytes = 1500.0;
  std::istringstream in(text);
  std::string line;
  std::vector<long long> deliveries_ms;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    deliveries_ms.push_back(std::stoll(line));
  }
  if (deliveries_ms.empty()) {
    throw std::runtime_error("from_mahimahi_format: empty schedule");
  }
  // Bucket packet deliveries per second and convert to kbps.
  const long long end_ms = deliveries_ms.back();
  const auto seconds = static_cast<std::size_t>(end_ms / 1000) + 1;
  std::vector<double> bytes_per_s(seconds, 0.0);
  for (long long ms : deliveries_ms) {
    bytes_per_s[static_cast<std::size_t>(ms / 1000)] += kMtuBytes;
  }
  std::vector<TracePoint> points;
  points.reserve(seconds);
  for (std::size_t s = 0; s < seconds; ++s) {
    points.push_back(
        {static_cast<double>(s + 1), bytes_per_s[s] * 8.0 / 1000.0});
  }
  return Trace(name, std::move(points));
}

std::uint64_t traces_digest(const std::vector<Trace>& traces) {
  const auto fold = [](std::uint64_t h, std::string_view text) {
    return util::mix64(h ^ util::fnv1a64(text));
  };
  std::uint64_t h = traces.size();
  for (const auto& t : traces) {
    h = fold(h, t.name());
    h = util::mix64(h ^ t.size());
    h = fold(h, util::shortest_double(t.mean_kbps()));
  }
  return h;
}

}  // namespace nada::trace

// Network bandwidth traces: the substrate every experiment replays.
//
// A Trace is a piecewise-constant bandwidth series, matching the "cooked"
// Pensieve trace format (one (timestamp, throughput) sample every ~second).
// Traces loop when a streaming session outlives them, exactly as Pensieve's
// simulator wraps its trace pointer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nada::trace {

struct TracePoint {
  double time_s = 0.0;
  double bandwidth_kbps = 0.0;
};

class Trace {
 public:
  Trace() = default;
  Trace(std::string name, std::vector<TracePoint> points);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<TracePoint>& points() const {
    return points_;
  }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// Duration covered by the samples (time of last sample). At least one
  /// sample step is assumed; a single-point trace reports its timestamp.
  [[nodiscard]] double duration_s() const;

  /// Bandwidth at absolute time t (seconds). Times beyond the end wrap
  /// around (the trace loops); negative times are clamped to the start.
  [[nodiscard]] double bandwidth_kbps_at(double t) const;

  /// Time-weighted mean bandwidth.
  [[nodiscard]] double mean_kbps() const;

  /// Sample standard deviation of the bandwidth samples.
  [[nodiscard]] double stddev_kbps() const;

  /// Returns a copy with every bandwidth multiplied by `factor` (used for
  /// the paper's Starlink peak-hour 1/8 capacity scaling).
  [[nodiscard]] Trace scaled(double factor) const;

  /// Index of the sample interval containing wrapped time t.
  [[nodiscard]] std::size_t index_at(double t) const;

 private:
  std::string name_;
  std::vector<TracePoint> points_;  // sorted by time_s, strictly increasing
};

/// Serializes as "time_s<TAB>bandwidth_mbps" lines (Pensieve cooked format).
std::string to_cooked_format(const Trace& trace);

/// Parses the cooked format; throws std::runtime_error on malformed input.
Trace from_cooked_format(const std::string& name, const std::string& text);

/// Converts to a Mahimahi packet-delivery schedule: one line per 1500-byte
/// packet delivery opportunity, milliseconds since start, covering the trace
/// duration. This is the format mm-link consumes.
std::string to_mahimahi_format(const Trace& trace);

/// Parses a Mahimahi schedule back into a per-second bandwidth trace.
Trace from_mahimahi_format(const std::string& name, const std::string& text);

/// Identity hash of a trace set for store-scope digests: folds each trace's
/// name, sample count, and mean throughput (plus the set size) through
/// mix64/fnv1a64. Every TaskDomain's append_scope_spec uses this one
/// definition, so two domains can never drift in how they fingerprint the
/// data their cached results depend on.
[[nodiscard]] std::uint64_t traces_digest(const std::vector<Trace>& traces);

}  // namespace nada::trace

// Over-aligned allocator for SIMD-friendly buffers.
//
// nn::Mat stores its elements through this allocator so every matrix base
// pointer is 32-byte aligned (one AVX2 register of doubles). The vector
// kernels still use unaligned loads — a row at an arbitrary column count is
// not itself aligned — but an aligned base keeps whole-matrix sweeps and
// the first row on register-width boundaries and never splits a cache line
// within a load.
#pragma once

#include <cstddef>
#include <limits>
#include <new>

namespace nada::util {

template <typename T, std::size_t Align>
struct AlignedAlloc {
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");
  static_assert(Align >= alignof(T), "alignment below the type's natural");

  using value_type = T;

  AlignedAlloc() = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAlloc<U, Align>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  friend bool operator==(const AlignedAlloc&, const AlignedAlloc&) {
    return true;
  }
  friend bool operator!=(const AlignedAlloc&, const AlignedAlloc&) {
    return false;
  }
};

}  // namespace nada::util

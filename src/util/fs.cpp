#include "util/fs.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nada::util {

namespace fs = std::filesystem;

bool file_exists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path, ec);
}

std::optional<std::string> read_file_if_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (!file_exists(path)) return std::nullopt;
    throw std::runtime_error("read_file: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw std::runtime_error("read_file: read failed for " + path);
  return buffer.str();
}

std::string read_file(const std::string& path) {
  auto content = read_file_if_exists(path);
  if (!content.has_value()) {
    throw std::runtime_error("read_file: no such file " + path);
  }
  return *std::move(content);
}

void write_file_atomic(const std::string& path, const std::string& content) {
  ensure_directories(parent_directory(path));
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("write_file_atomic: cannot open " + tmp);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("write_file_atomic: write failed for " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("write_file_atomic: rename to " + path +
                             " failed: " + ec.message());
  }
}

void ensure_directories(const std::string& path) {
  if (path.empty()) return;
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    throw std::runtime_error("ensure_directories: cannot create " + path +
                             ": " + ec.message());
  }
}

std::string parent_directory(const std::string& path) {
  return fs::path(path).parent_path().string();
}

}  // namespace nada::util

// Filesystem helpers for the persistent stores: whole-file reads, atomic
// replacement writes (write to a sibling temp file, then rename), and the
// small existence/creation queries the store layer needs. All paths are
// UTF-8 narrow strings, as everywhere else in the codebase.
#pragma once

#include <optional>
#include <string>

namespace nada::util {

/// True if `path` names an existing regular file.
[[nodiscard]] bool file_exists(const std::string& path);

/// Reads a whole file; std::nullopt when the file does not exist. Throws
/// std::runtime_error on I/O errors for files that do exist.
[[nodiscard]] std::optional<std::string> read_file_if_exists(
    const std::string& path);

/// Reads a whole file; throws std::runtime_error when missing/unreadable.
[[nodiscard]] std::string read_file(const std::string& path);

/// Atomically replaces `path` with `content`: the bytes land in
/// `path + ".tmp"` first and are renamed over the target, so readers never
/// observe a half-written file.
void write_file_atomic(const std::string& path, const std::string& content);

/// Creates every missing directory on `path` (no-op when it exists).
void ensure_directories(const std::string& path);

/// The directory portion of `path` ("" when there is none).
[[nodiscard]] std::string parent_directory(const std::string& path);

}  // namespace nada::util

#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "util/strings.h"

namespace nada::util {
namespace {

const std::string kEmptyString;
const JsonValue kNullValue;

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  // JSON has no non-finite literals; bare non-finite numbers degrade to
  // null (vectors that must round-trip exactly go through json_doubles).
  out += std::isfinite(d) ? shortest_double(d) : "null";
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::null();
      default: return parse_number();
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || end != text_.data() + pos_ || pos_ == start) {
      fail("malformed number");
    }
    return JsonValue::number(value);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // The journal only ever emits \u00XX control escapes; decode the
          // BMP code point as UTF-8 for completeness.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue out = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
      } else if (c == ']') {
        ++pos_;
        return out;
      } else {
        fail("expected ',' or ']'");
      }
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue out = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.set(key, parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
      } else if (c == '}') {
        ++pos_;
        return out;
      } else {
        fail("expected ',' or '}'");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::as_bool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

double JsonValue::as_number(double fallback) const {
  return type_ == Type::kNumber ? number_ : fallback;
}

const std::string& JsonValue::as_string() const {
  return type_ == Type::kString ? string_ : kEmptyString;
}

void JsonValue::push_back(JsonValue v) {
  if (type_ != Type::kArray) {
    throw std::runtime_error("json: push_back on non-array");
  }
  array_.push_back(std::move(v));
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (type_ != Type::kArray || i >= array_.size()) return kNullValue;
  return array_[i];
}

void JsonValue::set(const std::string& key, JsonValue v) {
  if (type_ != Type::kObject) {
    throw std::runtime_error("json: set on non-object");
  }
  object_[key] = std::move(v);
}

bool JsonValue::has(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) > 0;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  if (type_ != Type::kObject) return kNullValue;
  const auto it = object_.find(key);
  return it == object_.end() ? kNullValue : it->second;
}

std::string JsonValue::dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull: out = "null"; break;
    case Type::kBool: out = bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, number_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& item : array_) {
        if (!first) out += ',';
        first = false;
        out += item.dump();
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, key);
        out += ':';
        out += value.dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue json_doubles(const std::vector<double>& values) {
  JsonValue out = JsonValue::array();
  for (double v : values) {
    // JSON has no non-finite literals; encode them as strings so a cached
    // reward curve containing NaN/inf round-trips exactly instead of
    // silently becoming 0.0 (which would re-rank a resumed run).
    if (std::isfinite(v)) {
      out.push_back(JsonValue::number(v));
    } else if (std::isnan(v)) {
      out.push_back(JsonValue::string("nan"));
    } else {
      out.push_back(JsonValue::string(v > 0 ? "inf" : "-inf"));
    }
  }
  return out;
}

std::vector<double> json_to_doubles(const JsonValue& value) {
  std::vector<double> out;
  out.reserve(value.size());
  for (const auto& item : value.items()) {
    if (item.type() == JsonValue::Type::kString) {
      const std::string& s = item.as_string();
      if (s == "nan") {
        out.push_back(std::nan(""));
        continue;
      }
      if (s == "inf") {
        out.push_back(std::numeric_limits<double>::infinity());
        continue;
      }
      if (s == "-inf") {
        out.push_back(-std::numeric_limits<double>::infinity());
        continue;
      }
    }
    out.push_back(item.as_number());
  }
  return out;
}

}  // namespace nada::util

// Minimal JSON reader/writer for the candidate store's JSONL journal.
//
// Deliberately tiny: objects, arrays, strings, finite numbers, booleans and
// null — enough to round-trip OutcomeRecord lines without an external
// dependency. Numbers are emitted with the shortest representation that
// round-trips (std::to_chars); non-finite doubles degrade to null so a
// crashed training run can never poison the journal with unparsable bytes.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace nada::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(double d);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }

  /// Typed accessors; the `fallback` overloads never throw and are the
  /// workhorses for schema-tolerant journal decoding.
  [[nodiscard]] bool as_bool(bool fallback = false) const;
  [[nodiscard]] double as_number(double fallback = 0.0) const;
  [[nodiscard]] const std::string& as_string() const;

  // Array interface.
  void push_back(JsonValue v);
  [[nodiscard]] std::size_t size() const { return array_.size(); }
  [[nodiscard]] const JsonValue& at(std::size_t i) const;
  [[nodiscard]] const std::vector<JsonValue>& items() const { return array_; }

  // Object interface. `get` returns a shared null for missing keys.
  void set(const std::string& key, JsonValue v);
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] const JsonValue& get(const std::string& key) const;

  /// Serializes on one line (no insignificant whitespace).
  [[nodiscard]] std::string dump() const;

  /// Parses a complete JSON document; throws std::runtime_error on any
  /// syntax error or trailing garbage.
  [[nodiscard]] static JsonValue parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;  // sorted => deterministic dumps
};

/// Encodes a double array as a JsonValue array (helper for record fields).
/// Non-finite entries are encoded as the strings "nan"/"inf"/"-inf" so the
/// array round-trips exactly.
[[nodiscard]] JsonValue json_doubles(const std::vector<double>& values);

/// Decodes a json_doubles array ("nan"/"inf"/"-inf" strings included;
/// anything else non-numeric becomes 0.0).
[[nodiscard]] std::vector<double> json_to_doubles(const JsonValue& value);

}  // namespace nada::util

#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace nada::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  has_cached_normal_ = false;
}

Rng Rng::fork() {
  // Mix two fresh outputs into a new seed; streams are decorrelated by the
  // splitmix64 scrambling in reseed().
  const std::uint64_t a = next();
  const std::uint64_t b = next();
  return Rng(a ^ rotl(b, 17) ^ 0xd1b54a32d192ed03ULL);
}

Rng::result_type Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("Rng::weighted_index: empty weights");
  }
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::weighted_index: all weights zero");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // floating-point slack
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: first k slots become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace nada::util

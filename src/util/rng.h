// Deterministic, fast random number generation for simulations and search.
//
// All stochastic components in this repository draw from util::Rng so that
// every experiment is reproducible from a single seed. The generator is
// xoshiro256++ seeded via splitmix64, which has far better statistical
// quality than minstd/rand and is much faster than std::mt19937_64.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace nada::util {

/// xoshiro256++ PRNG with convenience samplers.
///
/// Satisfies UniformRandomBitGenerator so it can be used with <random>
/// distributions, but the member samplers below are preferred: they are
/// deterministic across platforms (libstdc++/libc++ distributions are not).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state via splitmix64 so that nearby seeds give uncorrelated
  /// streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Derives an independent child stream; used to give each parallel
  /// candidate evaluation its own generator.
  [[nodiscard]] Rng fork();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached pair).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal such that the underlying normal has the given parameters.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Non-positive weights are treated as zero; throws if all weights are
  /// zero or the span is empty.
  std::size_t weighted_index(std::span<const double> weights);

  /// Uniformly samples one element of a non-empty container.
  template <typename Container>
  const auto& choice(const Container& c) {
    if (c.empty()) throw std::invalid_argument("Rng::choice: empty container");
    return c[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(c.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Samples k distinct indices from [0, n) in random order. k must be <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  result_type next();

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace nada::util

#include "util/scale.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace nada::util {

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

long env_long(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw) return fallback;
  return value;
}

ScaleConfig ScaleConfig::from_env() {
  ScaleConfig cfg;
  // Bench-friendly defaults: each table bench completes in roughly a minute.
  cfg.gen = env_double("NADA_SCALE_GEN", 0.04);
  cfg.epochs = env_double("NADA_SCALE_EPOCHS", 0.12);
  cfg.seeds = env_double("NADA_SCALE_SEEDS", 0.6);  // 5 -> 3 seeds
  cfg.traces = env_double("NADA_SCALE_TRACES", 0.15);
  return cfg;
}

std::size_t ScaleConfig::apply(std::size_t paper_value, double factor,
                               std::size_t min_value) {
  if (factor < 0.0) factor = 0.0;
  const double scaled = std::round(static_cast<double>(paper_value) * factor);
  const auto value = static_cast<std::size_t>(std::max(scaled, 0.0));
  return std::max(value, min_value);
}

std::string ScaleConfig::describe() const {
  std::ostringstream out;
  out << "scale{gen=" << gen << ", epochs=" << epochs << ", seeds=" << seeds
      << ", traces=" << traces << "}";
  return out.str();
}

}  // namespace nada::util

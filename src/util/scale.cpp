#include "util/scale.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace nada::util {

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

long env_long(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw) return fallback;
  return value;
}

namespace {

/// A scale factor must parse as a positive finite number. Unparseable,
/// zero, negative, or NaN values would all silently run the workload at an
/// unintended size, so a set-but-invalid variable is an error, not a
/// fallback. `!(value > 0.0)` is deliberate — it also catches NaN.
double positive_factor(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  double value = fallback;
  if (raw != nullptr && *raw != '\0') {
    char* end = nullptr;
    value = std::strtod(raw, &end);
    const bool parsed = end != raw && *end == '\0';
    if (!parsed || !(value > 0.0) || !std::isfinite(value)) {
      throw std::runtime_error(std::string(name) +
                               " must be a positive finite number, got \"" +
                               raw + "\"");
    }
  }
  return value;
}

}  // namespace

ScaleConfig ScaleConfig::from_env() {
  ScaleConfig cfg;
  // Bench-friendly defaults: each table bench completes in roughly a minute.
  cfg.gen = positive_factor("NADA_SCALE_GEN", 0.04);
  cfg.epochs = positive_factor("NADA_SCALE_EPOCHS", 0.12);
  cfg.seeds = positive_factor("NADA_SCALE_SEEDS", 0.6);  // 5 -> 3 seeds
  cfg.traces = positive_factor("NADA_SCALE_TRACES", 0.15);
  return cfg;
}

std::size_t ScaleConfig::apply(std::size_t paper_value, double factor,
                               std::size_t min_value) {
  if (factor < 0.0) factor = 0.0;
  const double scaled = std::round(static_cast<double>(paper_value) * factor);
  const auto value = static_cast<std::size_t>(std::max(scaled, 0.0));
  return std::max(value, min_value);
}

std::string ScaleConfig::describe() const {
  std::ostringstream out;
  out << "scale{gen=" << gen << ", epochs=" << epochs << ", seeds=" << seeds
      << ", traces=" << traces << "}";
  return out.str();
}

}  // namespace nada::util

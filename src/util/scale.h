// Experiment scaling. The paper trains thousands of designs for tens of
// thousands of epochs; the benches here must regenerate every table and
// figure on one machine. ScaleConfig shrinks candidate counts, epoch
// budgets, seeds, and dataset sizes by multiplicative factors read from
// environment variables. Setting every factor to 1.0 reproduces the
// paper-scale workload.
#pragma once

#include <cstddef>
#include <string>

namespace nada::util {

struct ScaleConfig {
  /// Multiplier on generated-candidate counts (paper: 3,000 per profile).
  double gen = 1.0;
  /// Multiplier on training-epoch budgets (paper: 4,000-40,000).
  double epochs = 1.0;
  /// Multiplier on seeds per design (paper: 5 sessions).
  double seeds = 1.0;
  /// Multiplier on trace-dataset sizes (paper: Table 1 counts).
  double traces = 1.0;

  /// Reads NADA_SCALE_GEN / NADA_SCALE_EPOCHS / NADA_SCALE_SEEDS /
  /// NADA_SCALE_TRACES, falling back to bench-friendly defaults tuned so a
  /// full `for b in build/bench/*; do $b; done` finishes in minutes.
  /// Throws std::runtime_error when a variable is set to anything that is
  /// not a positive finite number — including unparseable text (which
  /// would otherwise silently run the workload at the default size).
  static ScaleConfig from_env();

  /// Applies a factor with a floor of `min_value`.
  [[nodiscard]] static std::size_t apply(std::size_t paper_value,
                                         double factor,
                                         std::size_t min_value = 1);

  [[nodiscard]] std::size_t gen_count(std::size_t paper_value,
                                      std::size_t min_value = 8) const {
    return apply(paper_value, gen, min_value);
  }
  [[nodiscard]] std::size_t epoch_count(std::size_t paper_value,
                                        std::size_t min_value = 20) const {
    return apply(paper_value, epochs, min_value);
  }
  [[nodiscard]] std::size_t seed_count(std::size_t paper_value,
                                       std::size_t min_value = 1) const {
    return apply(paper_value, seeds, min_value);
  }
  [[nodiscard]] std::size_t trace_count(std::size_t paper_value,
                                        std::size_t min_value = 2) const {
    return apply(paper_value, traces, min_value);
  }

  [[nodiscard]] std::string describe() const;
};

/// Reads a double env var; returns fallback if unset or unparsable.
double env_double(const char* name, double fallback);

/// Reads an integer env var; returns fallback if unset or unparsable.
long env_long(const char* name, long fallback);

}  // namespace nada::util

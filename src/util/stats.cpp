#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nada::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p out of [0, 100]");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double ema(std::span<const double> xs, double alpha) {
  if (xs.empty()) return 0.0;
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("ema: alpha out of (0, 1]");
  }
  double value = xs[0];
  for (std::size_t i = 1; i < xs.size(); ++i) {
    value = alpha * xs[i] + (1.0 - alpha) * value;
  }
  return value;
}

std::vector<double> ema_series(std::span<const double> xs, double alpha) {
  std::vector<double> out;
  out.reserve(xs.size());
  if (xs.empty()) return out;
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("ema_series: alpha out of (0, 1]");
  }
  double value = xs[0];
  out.push_back(value);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    value = alpha * xs[i] + (1.0 - alpha) * value;
    out.push_back(value);
  }
  return out;
}

double linear_trend(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  // Closed form with x = 0..n-1: slope = cov(x, y) / var(x).
  const double nd = static_cast<double>(n);
  const double mean_x = (nd - 1.0) / 2.0;
  const double mean_y = mean(xs);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = static_cast<double>(i) - mean_x;
    num += dx * (xs[i] - mean_y);
    den += dx * dx;
  }
  return den > 0.0 ? num / den : 0.0;
}

double linreg_predict_next(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  if (xs.size() == 1) return xs[0];
  const double slope = linear_trend(xs);
  const double mean_x = (static_cast<double>(xs.size()) - 1.0) / 2.0;
  const double intercept = mean(xs) - slope * mean_x;
  return intercept + slope * static_cast<double>(xs.size());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("pearson: size mismatch");
  }
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double tail_mean(std::span<const double> xs, std::size_t k) {
  if (xs.empty()) return 0.0;
  const std::size_t start = xs.size() > k ? xs.size() - k : 0;
  return mean(xs.subspan(start));
}

std::vector<double> savgol5(std::span<const double> xs) {
  std::vector<double> out(xs.begin(), xs.end());
  if (xs.size() < 5) return out;
  // Quadratic/cubic Savitzky-Golay coefficients for window 5:
  // (-3, 12, 17, 12, -3) / 35.
  static constexpr double kC[5] = {-3.0 / 35, 12.0 / 35, 17.0 / 35,
                                   12.0 / 35, -3.0 / 35};
  for (std::size_t i = 2; i + 2 < xs.size(); ++i) {
    double acc = 0.0;
    for (int j = -2; j <= 2; ++j) {
      acc += kC[j + 2] * xs[i + static_cast<std::size_t>(j + 2) - 2];
    }
    out[i] = acc;
  }
  return out;
}

}  // namespace nada::util

// Streaming and batch descriptive statistics used across trace generation,
// training-curve analysis, and the experiment reports.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nada::util {

/// Welford-style accumulator: numerically stable mean/variance in one pass.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample variance (n-1); 0 for fewer than two elements.
double variance(std::span<const double> xs);

double stddev(std::span<const double> xs);

/// Median via partial sort of a copy; 0 for an empty span.
double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);

/// Exponential moving average of the whole series; returns the final value.
/// alpha in (0, 1] is the weight of the newest sample.
double ema(std::span<const double> xs, double alpha);

/// Per-step exponential moving average series (same length as input).
std::vector<double> ema_series(std::span<const double> xs, double alpha);

/// Least-squares slope of xs against indices 0..n-1; 0 for n < 2.
double linear_trend(std::span<const double> xs);

/// Least-squares extrapolation of the series one step past its end.
double linreg_predict_next(std::span<const double> xs);

/// Pearson correlation; 0 if either side is constant. Sizes must match.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Mean of the last k elements (or of all elements if k >= size).
double tail_mean(std::span<const double> xs, std::size_t k);

/// Savitzky-Golay smoothing (window 5, quadratic), mirroring the paper's
/// observation that generated designs used scipy's savgol_filter to smooth
/// buffer-size history. Series shorter than the window are returned as-is.
std::vector<double> savgol5(std::span<const double> xs);

}  // namespace nada::util

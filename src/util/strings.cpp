#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace nada::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string join(std::span<const std::string> parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fnv1a64(std::string_view text, std::uint64_t seed) {
  std::uint64_t hash = 0xcbf29ce484222325ULL ^ mix64(seed);
  for (char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string shortest_double(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) return "?";
  return std::string(buf, end);
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string format_duration(double seconds) {
  if (std::isnan(seconds)) return "nan";
  if (seconds < 0) return "-" + format_duration(-seconds);
  if (std::isinf(seconds)) return "inf";
  char buf[64];
  if (seconds < 0.001) {
    std::snprintf(buf, sizeof(buf), "%.3fms", seconds * 1000.0);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1000.0);
  } else if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else if (seconds < 3600.0) {
    const auto whole = static_cast<long>(seconds);
    std::snprintf(buf, sizeof(buf), "%ldm%02lds", whole / 60, whole % 60);
  } else {
    const auto minutes = static_cast<long>(seconds / 60.0);
    std::snprintf(buf, sizeof(buf), "%ldh%02ldm", minutes / 60, minutes % 60);
  }
  return buf;
}

std::string replace_all(std::string text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return text;
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

}  // namespace nada::util

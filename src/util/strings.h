// Small string helpers shared by the DSL front end and the report writers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace nada::util {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Joins with a separator.
std::string join(std::span<const std::string> parts, std::string_view sep);

/// Lowercases ASCII.
std::string to_lower(std::string_view text);

/// FNV-1a 64-bit hash; used for the hashed n-gram "text embedding".
std::uint64_t fnv1a64(std::string_view text);

/// Seeded FNV-1a variant: folds `seed` into the offset basis so independent
/// hash streams can be derived from the same text (content fingerprints use
/// two streams for a 128-bit digest).
std::uint64_t fnv1a64(std::string_view text, std::uint64_t seed);

/// splitmix64 finalizer: full-avalanche bijective mixer, applied to FNV
/// outputs so fingerprint bits are uniform enough for range sharding.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string text, std::string_view from,
                        std::string_view to);

/// Fixed-precision human duration: "0.012ms" under a millisecond, "23.4ms"
/// under a second, "1.53s" under a minute, then "2m05s" / "1h02m". The one
/// formatter every duration a human reads goes through — StreamObserver
/// stage/window lines, status snapshots, driver summaries — so progress
/// output never degrades to raw doubles like "1.2e-05s". NaN prints "nan",
/// negatives keep their sign.
std::string format_duration(double seconds);

/// Shortest decimal representation that round-trips the double
/// (std::to_chars). Non-finite values print as "nan" / "inf" / "-inf".
/// Canonical encodings (fingerprints, store records) depend on this being
/// the single source of number formatting.
std::string shortest_double(double value);

}  // namespace nada::util
